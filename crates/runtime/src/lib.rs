//! The task-graph runtime every GOSH worker team rides.
//!
//! Before this crate existed the workspace carried four hand-rolled
//! copies of the same spawn/shard/barrier discipline: the warp executor's
//! kernel pool (`gosh-gpu`), the persistent Hogwild team
//! (`gosh-core::train_cpu`), the fused coarsening team
//! (`gosh-coarsen::fused`), and the ingestion team
//! (`gosh-graph::ingest`). Each one re-derived the same three facts:
//!
//! 1. **Workers must persist.** Spawning OS threads costs ~10 ms on this
//!    class of machine and GOSH dispatches tens of thousands of team
//!    tasks per run (one per epoch / per level / per chunk), so teams
//!    must reuse threads — [`Runtime`] keeps one persistent, growable
//!    worker set and publishes borrowed jobs to it.
//! 2. **Shards must be deterministic.** Byte-identical output at every
//!    thread count is the contract all the proptests enforce, so shard
//!    assignment is a pure function of `(items, team)` — [`shard_ranges`]
//!    — never of scheduling order.
//! 3. **Panics must propagate.** A panicking worker parked its siblings
//!    on a `std::sync::Barrier` forever; the runtime's [`WorkerCtx::barrier`]
//!    is poisonable, so one panic unwinds the whole team and re-raises
//!    the original payload on the submitting thread.
//!
//! On top of the in-process teams, [`transport`] extends the same model
//! across node boundaries: a node is just another device with a slow
//! interconnect (priced by [`transport::Interconnect`], the PCIe cost
//! model generalized), reachable through the [`transport::Transport`]
//! trait — an in-process channel mesh for tests and a TCP-loopback mesh
//! that exercises real sockets.
//!
//! Task model:
//! - [`Runtime::run`] — a *team task*: the closure runs once on every
//!   worker index `0..team`, typically looping an atomic cursor or its
//!   [`shard_ranges`] shard, synchronizing on [`WorkerCtx::barrier`].
//! - [`Runtime::map_jobs`] — *typed task submission*: `jobs` independent
//!   indexed tasks, claimed by a work cursor, results restored to job
//!   order (byte-identical for any team size).

// This crate contains audited `unsafe` (see docs/SAFETY.md and the
// `gosh audit` gate): every unsafe operation must sit in an explicit
// block with its own `// SAFETY:` invariant, even inside `unsafe fn`.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::undocumented_unsafe_blocks)]

mod pool;
pub mod transport;

pub use pool::{Runtime, WorkerCtx};

use std::ops::Range;
use std::sync::OnceLock;

/// Deterministic contiguous shard assignment: shard `t` of `team` owns
/// `items * t / team .. items * (t + 1) / team`. Shards tile `0..items`
/// exactly, never differ in length by more than one, and depend only on
/// the arguments — the foundation of every byte-identical-across-thread-
/// counts guarantee in the workspace.
pub fn shard_ranges(items: usize, team: usize) -> Vec<Range<usize>> {
    let team = team.max(1);
    (0..team)
        .map(|t| (t * items / team)..((t + 1) * items / team))
        .collect()
}

static GLOBAL: OnceLock<Runtime> = OnceLock::new();

/// The process-wide runtime shared by the CPU-side teams (training,
/// coarsening, ingestion, expansion, eval). Workers are spawned lazily
/// up to the largest team ever requested. Simulated devices and
/// distributed nodes own *private* [`Runtime`]s instead: they train
/// concurrently with each other, and one shared launch lock would
/// serialize them (and deadlock a mid-training delta exchange).
pub fn global() -> &'static Runtime {
    GLOBAL.get_or_init(Runtime::empty)
}

/// Run `jobs` independent indexed tasks on the global runtime; see
/// [`Runtime::map_jobs`].
pub fn map_jobs<T, F>(team: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    global().map_jobs(team, jobs, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_tile_exactly() {
        for items in [0usize, 1, 2, 7, 100, 101] {
            for team in [1usize, 2, 3, 4, 8, 16] {
                let shards = shard_ranges(items, team);
                assert_eq!(shards.len(), team);
                let mut next = 0;
                for r in &shards {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, items);
                let lens: Vec<usize> = shards.iter().map(|r| r.len()).collect();
                let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(hi - lo <= 1, "unbalanced shards: {lens:?}");
            }
        }
    }

    #[test]
    fn shard_ranges_clamps_zero_team() {
        assert_eq!(shard_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn global_runtime_is_shared_and_usable() {
        let out = map_jobs(4, 10, |i| i * i);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }
}
