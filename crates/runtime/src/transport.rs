//! Node-to-node message transport: the runtime's task model stretched
//! across a process boundary.
//!
//! A distributed node is just another device with a slow interconnect —
//! the same framing works over an in-process channel (tests, perfect
//! determinism) and a real TCP loopback socket (exercises serialization
//! and the kernel network stack). Both carry the identical byte stream:
//! a typed tag, a length, and an opaque payload, so everything built on
//! [`Transport`] is bit-identical across implementations by
//! construction — the cross-transport equality proptests enforce it.
//!
//! Frames are `[tag: u32 LE][len: u64 LE][payload bytes]`. Message
//! *meaning* (which tag is a delta, which a base broadcast) lives with
//! the caller — see `gosh-core::distrib` for the typed message layer.
//!
//! A dead peer is an *error*, not a crash: `send`/`recv` return
//! [`TransportError`] carrying which peer died and what frame was in
//! flight, so long-running callers (`gosh serve`, `gosh train --nodes N`)
//! can report the failure and keep their process. [`FramedConn`] carries
//! the same framing over one duplex socket for client/server protocols
//! that are not a mesh (the `gosh serve` query layer).
//!
//! [`Interconnect`] prices the copies: the PCIe cost model from the
//! simulated device (`bytes / (gbps · 1e9)` of idle wall-clock, charged
//! only when it is long enough to schedule) generalized to the network
//! link between nodes.

use std::io::{self, BufReader, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;

/// Why a transport operation failed: which peer, which direction, and —
/// for sends — which frame tag was in flight. The message is the
/// product: a mesh node or a server loop prints it and survives, where
/// the old `expect("tcp peer hung up mid-run")` killed the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransportError {
    /// Operation that failed: `"send"` or `"recv"`.
    pub op: &'static str,
    /// The peer of the failed frame (mesh node id or address label).
    pub peer: String,
    /// Tag of the frame being sent (`None` on recv — the tag never
    /// arrived).
    pub tag: Option<u32>,
    /// Underlying cause (I/O error text, or "peer endpoint dropped").
    pub detail: String,
}

impl TransportError {
    fn new(op: &'static str, peer: impl Into<String>, tag: Option<u32>, detail: String) -> Self {
        Self {
            op,
            peer: peer.into(),
            tag,
            detail,
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.tag {
            Some(tag) => write!(
                f,
                "{} of frame 0x{tag:X} to peer {} failed: {}",
                self.op, self.peer, self.detail
            ),
            None => write!(
                f,
                "{} from peer {} failed: {}",
                self.op, self.peer, self.detail
            ),
        }
    }
}

impl std::error::Error for TransportError {}

/// A byte-frame transport between the nodes of one training run.
///
/// Endpoints are single-owner (`&mut self`): each node thread holds its
/// own endpoint exclusively, mirroring one process's view of the mesh.
/// `send` never blocks on the peer draining (buffered mesh); `recv`
/// blocks until the peer's next frame arrives. Both surface a dead peer
/// as [`TransportError`] instead of panicking.
pub trait Transport: Send {
    /// This endpoint's node id in `0..nodes()`.
    fn node(&self) -> usize;
    /// Number of nodes in the mesh.
    fn nodes(&self) -> usize;
    /// Send one tagged frame to `peer`.
    fn send(&mut self, peer: usize, tag: u32, payload: &[u8]) -> Result<(), TransportError>;
    /// Receive the next frame *from `peer`* (per-peer FIFO order).
    fn recv(&mut self, peer: usize) -> Result<(u32, Vec<u8>), TransportError>;
}

/// The interconnect cost model: the simulated device's PCIe pricing
/// (`gosh-gpu`'s `dma_delay`) generalized to the link between nodes.
/// Copies are charged `bytes / (gbps · 1e9)` seconds of idle wall-clock;
/// delays under 20 µs are treated as free because the host cannot
/// schedule a sleep that short anyway.
#[derive(Clone, Copy, Debug)]
pub struct Interconnect {
    /// Modeled link bandwidth in GB/s.
    pub gbps: f64,
}

impl Interconnect {
    const MIN_SLEEP: f64 = 20e-6;

    pub fn new(gbps: f64) -> Self {
        assert!(gbps > 0.0, "interconnect bandwidth must be positive");
        Self { gbps }
    }

    /// The modeled transfer time for `bytes` over this link.
    pub fn delay(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 / (self.gbps * 1e9))
    }

    /// Charge a transfer: sleep the modeled delay if it is long enough
    /// to schedule. Returns the charged duration (zero when skipped).
    pub fn charge(&self, bytes: usize) -> Duration {
        let d = self.delay(bytes);
        if d.as_secs_f64() >= Self::MIN_SLEEP {
            std::thread::sleep(d);
            d
        } else {
            Duration::ZERO
        }
    }
}

// ---------------------------------------------------------------------
// In-process channel mesh
// ---------------------------------------------------------------------

/// One in-flight frame on the channel mesh: `(tag, payload)`.
type Frame = (u32, Vec<u8>);

/// In-process transport: a full mesh of unbounded channels, one per
/// ordered node pair. The reference implementation — zero serialization
/// cost, deterministic per-peer FIFO delivery.
pub struct ChannelTransport {
    node: usize,
    /// `senders[j]` carries frames `self.node -> j` (`None` at `j == node`).
    senders: Vec<Option<Sender<Frame>>>,
    /// `receivers[j]` carries frames `j -> self.node`.
    receivers: Vec<Option<Receiver<Frame>>>,
}

/// Build the full in-process mesh for `nodes` endpoints.
pub fn channel_mesh(nodes: usize) -> Vec<ChannelTransport> {
    assert!(nodes >= 1, "a mesh needs at least one node");
    let mut endpoints: Vec<ChannelTransport> = (0..nodes)
        .map(|node| ChannelTransport {
            node,
            senders: (0..nodes).map(|_| None).collect(),
            receivers: (0..nodes).map(|_| None).collect(),
        })
        .collect();
    for i in 0..nodes {
        for j in 0..nodes {
            if i == j {
                continue;
            }
            let (tx, rx) = channel();
            endpoints[i].senders[j] = Some(tx);
            endpoints[j].receivers[i] = Some(rx);
        }
    }
    endpoints
}

impl Transport for ChannelTransport {
    fn node(&self) -> usize {
        self.node
    }

    fn nodes(&self) -> usize {
        self.senders.len()
    }

    fn send(&mut self, peer: usize, tag: u32, payload: &[u8]) -> Result<(), TransportError> {
        self.senders[peer]
            .as_ref()
            .expect("no channel to self")
            .send((tag, payload.to_vec()))
            .map_err(|_| {
                TransportError::new(
                    "send",
                    peer.to_string(),
                    Some(tag),
                    "peer endpoint dropped".into(),
                )
            })
    }

    fn recv(&mut self, peer: usize) -> Result<(u32, Vec<u8>), TransportError> {
        self.receivers[peer]
            .as_ref()
            .expect("no channel from self")
            .recv()
            .map_err(|_| {
                TransportError::new(
                    "recv",
                    peer.to_string(),
                    None,
                    "peer endpoint dropped".into(),
                )
            })
    }
}

// ---------------------------------------------------------------------
// Frame codec shared by the TCP mesh and FramedConn
// ---------------------------------------------------------------------

/// Write one `[tag][len][payload]` frame to a stream.
fn write_frame<W: Write>(w: &mut W, tag: u32, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 12];
    header[..4].copy_from_slice(&tag.to_le_bytes());
    header[4..].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame from a stream. `max_len` bounds the allocation an
/// untrusted length prefix can demand (a garbage header must not OOM the
/// server before the payload even arrives).
fn read_frame<R: Read>(r: &mut R, max_len: u64) -> io::Result<(u32, Vec<u8>)> {
    let mut header = [0u8; 12];
    r.read_exact(&mut header)?;
    let tag = u32::from_le_bytes(header[..4].try_into().unwrap()); // audit:allow(unwrap): fixed 4-byte slice
    let len = u64::from_le_bytes(header[4..].try_into().unwrap()); // audit:allow(unwrap): fixed 8-byte slice
    if len > max_len {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {max_len}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((tag, payload))
}

/// Frame-length ceiling for connections that face untrusted peers
/// ([`FramedConn`]). Mesh endpoints are wired between our own nodes and
/// accept any length.
pub const MAX_FRAME_BYTES: u64 = 1 << 30;

// ---------------------------------------------------------------------
// TCP loopback mesh
// ---------------------------------------------------------------------

/// TCP transport over 127.0.0.1: one socket per ordered node pair,
/// wired centrally before the node threads start (the nodes of a
/// simulated cluster live in one process, so no handshake protocol is
/// needed — the mesh builder owns both ends of every accept).
pub struct TcpTransport {
    node: usize,
    /// `writers[j]` is the write half of the `self.node -> j` socket.
    writers: Vec<Option<TcpStream>>,
    /// `readers[j]` is the buffered read half of the `j -> self.node` socket.
    readers: Vec<Option<BufReader<TcpStream>>>,
}

/// Build the full TCP-loopback mesh for `nodes` endpoints.
pub fn tcp_mesh(nodes: usize) -> io::Result<Vec<TcpTransport>> {
    assert!(nodes >= 1, "a mesh needs at least one node");
    let mut endpoints: Vec<TcpTransport> = (0..nodes)
        .map(|node| TcpTransport {
            node,
            writers: (0..nodes).map(|_| None).collect(),
            readers: (0..nodes).map(|_| None).collect(),
        })
        .collect();
    for i in 0..nodes {
        for j in 0..nodes {
            if i == j {
                continue;
            }
            // Ephemeral-port listener per pair: no fixed ports, no
            // clashes with whatever else runs on the host.
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            let writer = TcpStream::connect(addr)?;
            let (reader, _) = listener.accept()?;
            writer.set_nodelay(true)?;
            reader.set_nodelay(true)?;
            endpoints[i].writers[j] = Some(writer);
            endpoints[j].readers[i] = Some(BufReader::new(reader));
        }
    }
    Ok(endpoints)
}

impl Transport for TcpTransport {
    fn node(&self) -> usize {
        self.node
    }

    fn nodes(&self) -> usize {
        self.writers.len()
    }

    fn send(&mut self, peer: usize, tag: u32, payload: &[u8]) -> Result<(), TransportError> {
        let w = self.writers[peer].as_mut().expect("no socket to self");
        write_frame(w, tag, payload).map_err(|e| {
            TransportError::new(
                "send",
                peer.to_string(),
                Some(tag),
                format!("tcp peer hung up ({e})"),
            )
        })
    }

    fn recv(&mut self, peer: usize) -> Result<(u32, Vec<u8>), TransportError> {
        let r = self.readers[peer].as_mut().expect("no socket from self");
        read_frame(r, u64::MAX).map_err(|e| {
            TransportError::new(
                "recv",
                peer.to_string(),
                None,
                format!("tcp peer hung up ({e})"),
            )
        })
    }
}

// ---------------------------------------------------------------------
// Single-socket framed connection (client/server protocols)
// ---------------------------------------------------------------------

/// One duplex TCP connection speaking the mesh's frame format — the
/// transport of request/response protocols that are not a mesh (the
/// `gosh serve` query layer). The peer is identified by its socket
/// address in every error, and incoming frame lengths are capped at
/// [`MAX_FRAME_BYTES`] because the far end is untrusted.
pub struct FramedConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: String,
}

impl FramedConn {
    /// Connect to a listening server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Wrap an accepted (or connected) stream.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            peer,
        })
    }

    /// The peer's socket address (as it appears in errors).
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Send one tagged frame.
    pub fn send(&mut self, tag: u32, payload: &[u8]) -> Result<(), TransportError> {
        write_frame(&mut self.writer, tag, payload)
            .map_err(|e| TransportError::new("send", self.peer.clone(), Some(tag), e.to_string()))
    }

    /// Receive the next frame. A cleanly closed connection surfaces as
    /// an error whose detail mentions EOF — callers treating disconnect
    /// as routine can match on [`FramedConn::recv_opt`] instead.
    pub fn recv(&mut self) -> Result<(u32, Vec<u8>), TransportError> {
        read_frame(&mut self.reader, MAX_FRAME_BYTES)
            .map_err(|e| TransportError::new("recv", self.peer.clone(), None, e.to_string()))
    }

    /// Receive the next frame, mapping a clean EOF (the peer closed the
    /// socket between frames) to `Ok(None)`. Mid-frame disconnects and
    /// I/O errors still surface as `Err`.
    pub fn recv_opt(&mut self) -> Result<Option<(u32, Vec<u8>)>, TransportError> {
        match read_frame(&mut self.reader, MAX_FRAME_BYTES) {
            Ok(frame) => Ok(Some(frame)),
            Err(e) if e.kind() == ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(TransportError::new(
                "recv",
                self.peer.clone(),
                None,
                e.to_string(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(mut mesh: Vec<Box<dyn Transport>>) {
        let n = mesh.len();
        assert_eq!(n, 3);
        // Every ordered pair carries two frames; per-peer FIFO holds.
        std::thread::scope(|scope| {
            for ep in mesh.iter_mut() {
                scope.spawn(move || {
                    let me = ep.node();
                    for peer in 0..n {
                        if peer == me {
                            continue;
                        }
                        ep.send(peer, 7, &[me as u8, peer as u8]).unwrap();
                        ep.send(peer, 8, &[0xAB; 1000]).unwrap();
                    }
                    for peer in 0..n {
                        if peer == me {
                            continue;
                        }
                        let (tag, body) = ep.recv(peer).unwrap();
                        assert_eq!((tag, body), (7, vec![peer as u8, me as u8]));
                        let (tag, body) = ep.recv(peer).unwrap();
                        assert_eq!(tag, 8);
                        assert_eq!(body, vec![0xAB; 1000]);
                    }
                });
            }
        });
    }

    #[test]
    fn channel_mesh_roundtrips_frames() {
        let mesh = channel_mesh(3)
            .into_iter()
            .map(|e| Box::new(e) as Box<dyn Transport>)
            .collect();
        roundtrip(mesh);
    }

    #[test]
    fn tcp_mesh_roundtrips_frames() {
        let mesh = tcp_mesh(3)
            .expect("loopback mesh")
            .into_iter()
            .map(|e| Box::new(e) as Box<dyn Transport>)
            .collect();
        roundtrip(mesh);
    }

    #[test]
    fn tcp_frames_larger_than_socket_buffers_survive() {
        let mut mesh = tcp_mesh(2).expect("loopback mesh");
        let payload: Vec<u8> = (0..4_000_000u32).map(|i| (i * 31) as u8).collect();
        let expect = payload.clone();
        let (mut a, mut b) = {
            let b = mesh.pop().unwrap();
            let a = mesh.pop().unwrap();
            (a, b)
        };
        // Writer must run concurrently: 4 MB exceeds loopback buffering.
        std::thread::scope(|scope| {
            scope.spawn(move || a.send(1, 42, &payload).unwrap());
            let (tag, body) = b.recv(0).unwrap();
            assert_eq!(tag, 42);
            assert_eq!(body, expect);
        });
    }

    /// The kill-one-peer regression: a dead TCP peer must surface as a
    /// `TransportError` naming the peer, not abort the process.
    #[test]
    fn tcp_dead_peer_is_an_error_naming_the_peer() {
        let mut mesh = tcp_mesh(2).expect("loopback mesh");
        let b = mesh.pop().unwrap();
        let mut a = mesh.pop().unwrap();
        drop(b); // peer 1 dies

        let err = a.recv(1).unwrap_err();
        assert_eq!(err.op, "recv");
        assert_eq!(err.peer, "1");
        assert!(err.to_string().contains("peer 1"), "{err}");

        // A send may need several frames before the kernel reports the
        // broken pipe (loopback buffers absorb the first writes), but it
        // must eventually fail — and with peer context, not a panic.
        let payload = vec![0u8; 1 << 20];
        let mut send_err = None;
        for _ in 0..64 {
            if let Err(e) = a.send(1, 9, &payload) {
                send_err = Some(e);
                break;
            }
        }
        let err = send_err.expect("send to a dead peer never failed");
        assert_eq!(err.op, "send");
        assert_eq!(err.tag, Some(9));
        assert!(err.to_string().contains("peer 1"), "{err}");
    }

    #[test]
    fn channel_dead_peer_is_an_error_naming_the_peer() {
        let mut mesh = channel_mesh(2);
        let b = mesh.pop().unwrap();
        let mut a = mesh.pop().unwrap();
        drop(b);
        let err = a.send(1, 3, &[1, 2]).unwrap_err();
        assert_eq!((err.op, err.tag), ("send", Some(3)));
        assert!(err.to_string().contains("peer 1"), "{err}");
        let err = a.recv(1).unwrap_err();
        assert_eq!((err.op, err.tag), ("recv", None));
        assert!(err.to_string().contains("peer 1"), "{err}");
    }

    #[test]
    fn framed_conn_roundtrips_and_reports_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = FramedConn::from_stream(stream).unwrap();
            let (tag, body) = conn.recv().unwrap();
            conn.send(tag + 1, &body).unwrap();
            // Client hangs up after one exchange: clean EOF, not an error.
            assert!(conn.recv_opt().unwrap().is_none());
        });
        let mut client = FramedConn::connect(addr).unwrap();
        client.send(5, b"ping").unwrap();
        let (tag, body) = client.recv().unwrap();
        assert_eq!((tag, body.as_slice()), (6, b"ping".as_slice()));
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn framed_conn_rejects_oversized_length_prefix() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = FramedConn::from_stream(stream).unwrap();
            conn.recv()
        });
        // A raw client claiming a 2^62-byte frame: the server must error
        // out instead of trying to allocate it.
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut header = [0u8; 12];
        header[..4].copy_from_slice(&7u32.to_le_bytes());
        header[4..].copy_from_slice(&(1u64 << 62).to_le_bytes());
        raw.write_all(&header).unwrap();
        raw.flush().unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert!(err.detail.contains("exceeds"), "{err}");
    }

    #[test]
    fn single_node_mesh_is_valid_and_silent() {
        let mesh = channel_mesh(1);
        assert_eq!(mesh.len(), 1);
        assert_eq!(mesh[0].nodes(), 1);
    }

    #[test]
    fn interconnect_prices_like_the_pcie_model() {
        let link = Interconnect::new(1.0); // 1 GB/s
                                           // 1 MB at 1 GB/s = 1 ms — chargeable.
        assert!((link.delay(1_000_000).as_secs_f64() - 1e-3).abs() < 1e-9);
        assert!(link.charge(1_000_000) > Duration::ZERO);
        // 1 KB = 1 µs — below the scheduling floor, free.
        assert_eq!(link.charge(1_000), Duration::ZERO);
    }
}
