//! Node-to-node message transport: the runtime's task model stretched
//! across a process boundary.
//!
//! A distributed node is just another device with a slow interconnect —
//! the same framing works over an in-process channel (tests, perfect
//! determinism) and a real TCP loopback socket (exercises serialization
//! and the kernel network stack). Both carry the identical byte stream:
//! a typed tag, a length, and an opaque payload, so everything built on
//! [`Transport`] is bit-identical across implementations by
//! construction — the cross-transport equality proptests enforce it.
//!
//! Frames are `[tag: u32 LE][len: u64 LE][payload bytes]`. Message
//! *meaning* (which tag is a delta, which a base broadcast) lives with
//! the caller — see `gosh-core::distrib` for the typed message layer.
//!
//! [`Interconnect`] prices the copies: the PCIe cost model from the
//! simulated device (`bytes / (gbps · 1e9)` of idle wall-clock, charged
//! only when it is long enough to schedule) generalized to the network
//! link between nodes.

use std::io::{self, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;

/// A byte-frame transport between the nodes of one training run.
///
/// Endpoints are single-owner (`&mut self`): each node thread holds its
/// own endpoint exclusively, mirroring one process's view of the mesh.
/// `send` never blocks on the peer draining (buffered mesh); `recv`
/// blocks until the peer's next frame arrives.
pub trait Transport: Send {
    /// This endpoint's node id in `0..nodes()`.
    fn node(&self) -> usize;
    /// Number of nodes in the mesh.
    fn nodes(&self) -> usize;
    /// Send one tagged frame to `peer`.
    fn send(&mut self, peer: usize, tag: u32, payload: &[u8]);
    /// Receive the next frame *from `peer`* (per-peer FIFO order).
    fn recv(&mut self, peer: usize) -> (u32, Vec<u8>);
}

/// The interconnect cost model: the simulated device's PCIe pricing
/// (`gosh-gpu`'s `dma_delay`) generalized to the link between nodes.
/// Copies are charged `bytes / (gbps · 1e9)` seconds of idle wall-clock;
/// delays under 20 µs are treated as free because the host cannot
/// schedule a sleep that short anyway.
#[derive(Clone, Copy, Debug)]
pub struct Interconnect {
    /// Modeled link bandwidth in GB/s.
    pub gbps: f64,
}

impl Interconnect {
    const MIN_SLEEP: f64 = 20e-6;

    pub fn new(gbps: f64) -> Self {
        assert!(gbps > 0.0, "interconnect bandwidth must be positive");
        Self { gbps }
    }

    /// The modeled transfer time for `bytes` over this link.
    pub fn delay(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 / (self.gbps * 1e9))
    }

    /// Charge a transfer: sleep the modeled delay if it is long enough
    /// to schedule. Returns the charged duration (zero when skipped).
    pub fn charge(&self, bytes: usize) -> Duration {
        let d = self.delay(bytes);
        if d.as_secs_f64() >= Self::MIN_SLEEP {
            std::thread::sleep(d);
            d
        } else {
            Duration::ZERO
        }
    }
}

// ---------------------------------------------------------------------
// In-process channel mesh
// ---------------------------------------------------------------------

/// One in-flight frame on the channel mesh: `(tag, payload)`.
type Frame = (u32, Vec<u8>);

/// In-process transport: a full mesh of unbounded channels, one per
/// ordered node pair. The reference implementation — zero serialization
/// cost, deterministic per-peer FIFO delivery.
pub struct ChannelTransport {
    node: usize,
    /// `senders[j]` carries frames `self.node -> j` (`None` at `j == node`).
    senders: Vec<Option<Sender<Frame>>>,
    /// `receivers[j]` carries frames `j -> self.node`.
    receivers: Vec<Option<Receiver<Frame>>>,
}

/// Build the full in-process mesh for `nodes` endpoints.
pub fn channel_mesh(nodes: usize) -> Vec<ChannelTransport> {
    assert!(nodes >= 1, "a mesh needs at least one node");
    let mut endpoints: Vec<ChannelTransport> = (0..nodes)
        .map(|node| ChannelTransport {
            node,
            senders: (0..nodes).map(|_| None).collect(),
            receivers: (0..nodes).map(|_| None).collect(),
        })
        .collect();
    for i in 0..nodes {
        for j in 0..nodes {
            if i == j {
                continue;
            }
            let (tx, rx) = channel();
            endpoints[i].senders[j] = Some(tx);
            endpoints[j].receivers[i] = Some(rx);
        }
    }
    endpoints
}

impl Transport for ChannelTransport {
    fn node(&self) -> usize {
        self.node
    }

    fn nodes(&self) -> usize {
        self.senders.len()
    }

    fn send(&mut self, peer: usize, tag: u32, payload: &[u8]) {
        self.senders[peer]
            .as_ref()
            .expect("no channel to self")
            .send((tag, payload.to_vec()))
            .expect("peer endpoint dropped mid-run");
    }

    fn recv(&mut self, peer: usize) -> (u32, Vec<u8>) {
        self.receivers[peer]
            .as_ref()
            .expect("no channel from self")
            .recv()
            .expect("peer endpoint dropped mid-run")
    }
}

// ---------------------------------------------------------------------
// TCP loopback mesh
// ---------------------------------------------------------------------

/// TCP transport over 127.0.0.1: one socket per ordered node pair,
/// wired centrally before the node threads start (the nodes of a
/// simulated cluster live in one process, so no handshake protocol is
/// needed — the mesh builder owns both ends of every accept).
pub struct TcpTransport {
    node: usize,
    /// `writers[j]` is the write half of the `self.node -> j` socket.
    writers: Vec<Option<TcpStream>>,
    /// `readers[j]` is the buffered read half of the `j -> self.node` socket.
    readers: Vec<Option<BufReader<TcpStream>>>,
}

/// Build the full TCP-loopback mesh for `nodes` endpoints.
pub fn tcp_mesh(nodes: usize) -> io::Result<Vec<TcpTransport>> {
    assert!(nodes >= 1, "a mesh needs at least one node");
    let mut endpoints: Vec<TcpTransport> = (0..nodes)
        .map(|node| TcpTransport {
            node,
            writers: (0..nodes).map(|_| None).collect(),
            readers: (0..nodes).map(|_| None).collect(),
        })
        .collect();
    for i in 0..nodes {
        for j in 0..nodes {
            if i == j {
                continue;
            }
            // Ephemeral-port listener per pair: no fixed ports, no
            // clashes with whatever else runs on the host.
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            let writer = TcpStream::connect(addr)?;
            let (reader, _) = listener.accept()?;
            writer.set_nodelay(true)?;
            reader.set_nodelay(true)?;
            endpoints[i].writers[j] = Some(writer);
            endpoints[j].readers[i] = Some(BufReader::new(reader));
        }
    }
    Ok(endpoints)
}

impl Transport for TcpTransport {
    fn node(&self) -> usize {
        self.node
    }

    fn nodes(&self) -> usize {
        self.writers.len()
    }

    fn send(&mut self, peer: usize, tag: u32, payload: &[u8]) {
        let w = self.writers[peer].as_mut().expect("no socket to self");
        let mut header = [0u8; 12];
        header[..4].copy_from_slice(&tag.to_le_bytes());
        header[4..].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        w.write_all(&header).expect("tcp peer hung up mid-run");
        w.write_all(payload).expect("tcp peer hung up mid-run");
        w.flush().expect("tcp peer hung up mid-run");
    }

    fn recv(&mut self, peer: usize) -> (u32, Vec<u8>) {
        let r = self.readers[peer].as_mut().expect("no socket from self");
        let mut header = [0u8; 12];
        r.read_exact(&mut header).expect("tcp peer hung up mid-run");
        let tag = u32::from_le_bytes(header[..4].try_into().unwrap());
        let len = u64::from_le_bytes(header[4..].try_into().unwrap()) as usize;
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)
            .expect("tcp peer hung up mid-run");
        (tag, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(mut mesh: Vec<Box<dyn Transport>>) {
        let n = mesh.len();
        assert_eq!(n, 3);
        // Every ordered pair carries two frames; per-peer FIFO holds.
        std::thread::scope(|scope| {
            for ep in mesh.iter_mut() {
                scope.spawn(move || {
                    let me = ep.node();
                    for peer in 0..n {
                        if peer == me {
                            continue;
                        }
                        ep.send(peer, 7, &[me as u8, peer as u8]);
                        ep.send(peer, 8, &[0xAB; 1000]);
                    }
                    for peer in 0..n {
                        if peer == me {
                            continue;
                        }
                        let (tag, body) = ep.recv(peer);
                        assert_eq!((tag, body), (7, vec![peer as u8, me as u8]));
                        let (tag, body) = ep.recv(peer);
                        assert_eq!(tag, 8);
                        assert_eq!(body, vec![0xAB; 1000]);
                    }
                });
            }
        });
    }

    #[test]
    fn channel_mesh_roundtrips_frames() {
        let mesh = channel_mesh(3)
            .into_iter()
            .map(|e| Box::new(e) as Box<dyn Transport>)
            .collect();
        roundtrip(mesh);
    }

    #[test]
    fn tcp_mesh_roundtrips_frames() {
        let mesh = tcp_mesh(3)
            .expect("loopback mesh")
            .into_iter()
            .map(|e| Box::new(e) as Box<dyn Transport>)
            .collect();
        roundtrip(mesh);
    }

    #[test]
    fn tcp_frames_larger_than_socket_buffers_survive() {
        let mut mesh = tcp_mesh(2).expect("loopback mesh");
        let payload: Vec<u8> = (0..4_000_000u32).map(|i| (i * 31) as u8).collect();
        let expect = payload.clone();
        let (mut a, mut b) = {
            let b = mesh.pop().unwrap();
            let a = mesh.pop().unwrap();
            (a, b)
        };
        // Writer must run concurrently: 4 MB exceeds loopback buffering.
        std::thread::scope(|scope| {
            scope.spawn(move || a.send(1, 42, &payload));
            let (tag, body) = b.recv(0);
            assert_eq!(tag, 42);
            assert_eq!(body, expect);
        });
    }

    #[test]
    fn single_node_mesh_is_valid_and_silent() {
        let mesh = channel_mesh(1);
        assert_eq!(mesh.len(), 1);
        assert_eq!(mesh[0].nodes(), 1);
    }

    #[test]
    fn interconnect_prices_like_the_pcie_model() {
        let link = Interconnect::new(1.0); // 1 GB/s
                                           // 1 MB at 1 GB/s = 1 ms — chargeable.
        assert!((link.delay(1_000_000).as_secs_f64() - 1e-3).abs() < 1e-9);
        assert!(link.charge(1_000_000) > Duration::ZERO);
        // 1 KB = 1 µs — below the scheduling floor, free.
        assert_eq!(link.charge(1_000), Duration::ZERO);
    }
}
