//! The one worker-pool implementation in the workspace.
//!
//! Spawning OS threads per task costs ~10 ms on this class of machine;
//! GOSH dispatches tens of thousands of team tasks per run (one per
//! epoch / per level / per chunk), so tasks must reuse workers. This is
//! a minimal rayon-style scoped pool: [`Runtime::run`] publishes a
//! borrowed job, wakes every worker, and blocks until all of them have
//! finished it — which is what makes handing a non-`'static` closure to
//! long-lived threads sound.
//!
//! Two things the four hand-rolled predecessors did not have:
//!
//! - **A growable worker set.** Workers spawn lazily up to the largest
//!   team ever requested; a job for a smaller team simply leaves the
//!   higher-indexed workers idle (they acknowledge the sequence number
//!   and go back to sleep), so one process-wide runtime serves every
//!   team size without respawning.
//! - **Panic propagation.** Each worker runs the job under
//!   `catch_unwind`; a panic poisons the job's [`JobBarrier`] (waking
//!   and unwinding any sibling parked on it — the deadlock the old
//!   `std::sync::Barrier` teams had), and the first real payload is
//!   re-raised on the submitting thread by `resume_unwind` once the
//!   whole team has drained. The pool itself survives: workers are
//!   reused for the next job.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Marker payload for workers unwound *because a sibling panicked*.
/// Never propagated to the submitter — only the original panic is.
struct SiblingAbort;

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // The runtime's own invariants do not depend on these critical
    // sections completing (poisoning happens exactly when a worker
    // closure panicked, which we handle explicitly), so a poisoned
    // mutex is still safe to enter.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A poisonable, reusable epoch barrier scoped to one job.
///
/// `wait` parks until all `team` members arrive, then releases the
/// generation together — same contract as `std::sync::Barrier`, plus:
/// when any team member panics the barrier is poisoned, every current
/// and future waiter unwinds (with a [`SiblingAbort`] payload the pool
/// swallows), and the team drains instead of deadlocking.
struct JobBarrier {
    team: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl JobBarrier {
    fn new(team: usize) -> Self {
        Self {
            team,
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut s = lock_ignore_poison(&self.state);
        if s.poisoned {
            drop(s);
            std::panic::panic_any(SiblingAbort);
        }
        s.arrived += 1;
        if s.arrived == self.team {
            s.arrived = 0;
            s.generation += 1;
            self.cv.notify_all();
            return;
        }
        let gen = s.generation;
        while s.generation == gen && !s.poisoned {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.poisoned {
            drop(s);
            std::panic::panic_any(SiblingAbort);
        }
    }

    fn poison(&self) {
        let mut s = lock_ignore_poison(&self.state);
        s.poisoned = true;
        self.cv.notify_all();
    }
}

/// Per-worker view of the running team task: the worker's stable index,
/// the team size, and the job's epoch barrier.
pub struct WorkerCtx {
    index: usize,
    team: usize,
    barrier: Arc<JobBarrier>,
}

impl WorkerCtx {
    /// This worker's index in `0..team()`. Stable for the whole job —
    /// the deterministic shard identity.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of workers running this job.
    pub fn team(&self) -> usize {
        self.team
    }

    /// Park until every team member arrives (an epoch boundary).
    ///
    /// # Panics
    /// Unwinds if any team member panicked — the runtime converts what
    /// used to be a deadlock on `std::sync::Barrier` into a panic that
    /// reaches the submitting thread.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// A borrowed job erased to a raw pointer. The pointer is only
/// dereferenced between publication and the final `pending` decrement,
/// and `run` does not return before `pending` reaches zero, so the
/// borrow is live for every dereference.
#[derive(Clone, Copy)]
struct ErasedFn {
    ptr: *const (dyn Fn(&WorkerCtx) + Sync),
}
// SAFETY: the pointee is `Sync` (asserted at construction) and the pool
// guarantees it outlives all uses (see `run`).
unsafe impl Send for ErasedFn {}
// SAFETY: as for `Send` — shared references only expose the `Sync` pointee.
unsafe impl Sync for ErasedFn {}

struct Job {
    seq: u64,
    team: usize,
    f: ErasedFn,
    /// Team members that have not finished this job yet.
    pending: Arc<AtomicUsize>,
    done: Arc<(Mutex<()>, Condvar)>,
    barrier: Arc<JobBarrier>,
    /// First *real* panic payload raised by a team member.
    panic: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
}

impl Clone for Job {
    fn clone(&self) -> Self {
        Self {
            seq: self.seq,
            team: self.team,
            f: self.f,
            pending: self.pending.clone(),
            done: self.done.clone(),
            barrier: self.barrier.clone(),
            panic: self.panic.clone(),
        }
    }
}

struct Slot {
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    job_cv: Condvar,
}

/// A persistent, growable pool of workers that execute one team task at
/// a time. See the [crate docs](crate) for the task model.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Serializes `run` calls from different host threads, and holds the
    /// job sequence number.
    launch: Mutex<u64>,
}

impl Runtime {
    /// A runtime with no workers yet; they spawn lazily per `run`.
    pub fn empty() -> Self {
        Self {
            shared: Arc::new(Shared {
                slot: Mutex::new(Slot {
                    job: None,
                    shutdown: false,
                }),
                job_cv: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
            launch: Mutex::new(0),
        }
    }

    /// A runtime with `threads` workers pre-spawned (it still grows if a
    /// larger team is ever requested).
    pub fn new(threads: usize) -> Self {
        let rt = Self::empty();
        if threads > 1 {
            let seq = lock_ignore_poison(&rt.launch);
            rt.ensure_workers(threads, *seq);
        }
        rt
    }

    /// Number of workers currently spawned.
    pub fn spawned_workers(&self) -> usize {
        lock_ignore_poison(&self.workers).len()
    }

    // Caller must hold the launch lock (passes its sequence value), so a
    // freshly spawned worker can never pick up an already-drained job.
    fn ensure_workers(&self, team: usize, current_seq: u64) {
        let mut workers = lock_ignore_poison(&self.workers);
        while workers.len() < team {
            let index = workers.len();
            let shared = self.shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("gosh-runtime-{index}"))
                .spawn(move || worker_loop(&shared, index, current_seq))
                .expect("failed to spawn runtime worker");
            workers.push(handle);
        }
    }

    /// Run `f` once on every worker index `0..team`; returns when all
    /// finish. `f` typically loops over an atomic work cursor or over
    /// its [`crate::shard_ranges`] shard, synchronizing epochs with
    /// [`WorkerCtx::barrier`].
    ///
    /// `team == 1` runs inline on the calling thread (no workers, no
    /// synchronization) — the sequential reference path.
    ///
    /// # Panics
    /// Re-raises the first panic any team member raised, after the whole
    /// team has drained. The pool survives and is reusable.
    pub fn run<F: Fn(&WorkerCtx) + Sync>(&self, team: usize, f: F) {
        let team = team.max(1);
        if team == 1 {
            let ctx = WorkerCtx {
                index: 0,
                team: 1,
                barrier: Arc::new(JobBarrier::new(1)),
            };
            f(&ctx);
            return;
        }

        let mut seq_guard = lock_ignore_poison(&self.launch);
        self.ensure_workers(team, *seq_guard);
        *seq_guard += 1;
        let pending = Arc::new(AtomicUsize::new(team));
        let done = Arc::new((Mutex::new(()), Condvar::new()));
        let panic_slot: Arc<Mutex<Option<Box<dyn Any + Send>>>> = Arc::new(Mutex::new(None));
        {
            let fref: &(dyn Fn(&WorkerCtx) + Sync) = &f;
            // SAFETY: we erase the lifetime, but we block below until
            // `pending == 0`, i.e. until no worker will touch `f` again,
            // before `f` can be dropped.
            // audit:allow(transmute): lifetime erasure only, same type
            let fref: *const (dyn Fn(&WorkerCtx) + Sync) = unsafe { std::mem::transmute(fref) };
            let mut slot = lock_ignore_poison(&self.shared.slot);
            slot.job = Some(Job {
                seq: *seq_guard,
                team,
                f: ErasedFn { ptr: fref },
                pending: pending.clone(),
                done: done.clone(),
                barrier: Arc::new(JobBarrier::new(team)),
                panic: panic_slot.clone(),
            });
            self.shared.job_cv.notify_all();
        }
        {
            let (lock, cv) = &*done;
            let mut g = lock_ignore_poison(lock);
            while pending.load(Ordering::Acquire) != 0 {
                g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }
        let first_panic = lock_ignore_poison(&panic_slot).take();
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
    }

    /// Typed task submission: run `jobs` independent indexed tasks and
    /// collect their results *in job order*. Jobs are claimed by an
    /// atomic cursor, so wall-clock balances dynamically, while the
    /// returned `Vec` is byte-identical for any team size. A team of one
    /// (or one job) runs sequentially inline.
    pub fn map_jobs<T, F>(&self, team: usize, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if jobs == 0 {
            return Vec::new();
        }
        let team = team.max(1).min(jobs);
        if team == 1 {
            return (0..jobs).map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Vec<(usize, T)>>> =
            (0..team).map(|_| Mutex::new(Vec::new())).collect();
        self.run(team, |ctx| {
            let mut mine: Vec<(usize, T)> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                mine.push((i, f(i)));
            }
            *lock_ignore_poison(&slots[ctx.index()]) = mine;
        });
        // Job-order restore: which worker computed a result is
        // scheduling-dependent; where it lands is not.
        let mut out: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
        for slot in slots {
            for (i, v) in slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
                out[i] = Some(v);
            }
        }
        out.into_iter()
            .map(|v| v.expect("every job index produced exactly once"))
            .collect()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        {
            let mut slot = lock_ignore_poison(&self.shared.slot);
            slot.shutdown = true;
            self.shared.job_cv.notify_all();
        }
        for h in lock_ignore_poison(&self.workers).drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize, start_seq: u64) {
    // Jobs published at or before spawn time are already drained (the
    // spawner holds the launch lock) — never pick them up.
    let mut seen = start_seq;
    loop {
        let job = {
            let mut slot = lock_ignore_poison(&shared.slot);
            loop {
                if slot.shutdown {
                    return;
                }
                match &slot.job {
                    Some(j) if j.seq > seen => {
                        seen = j.seq;
                        break j.clone();
                    }
                    _ => slot = shared.job_cv.wait(slot).unwrap_or_else(|e| e.into_inner()),
                }
            }
        };
        if index >= job.team {
            // Not on this team: acknowledge the sequence and sleep.
            continue;
        }
        let ctx = WorkerCtx {
            index,
            team: job.team,
            barrier: job.barrier.clone(),
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: `run` keeps the closure alive until `pending` hits
            // zero; we are strictly before our decrement.
            let f = unsafe { &*job.f.ptr };
            f(&ctx);
        }));
        if let Err(payload) = result {
            // Unwind any sibling parked on the epoch barrier, then
            // record the payload — first real panic wins; sibling-abort
            // markers are bookkeeping, not errors.
            job.barrier.poison();
            if !payload.is::<SiblingAbort>() {
                let mut first = lock_ignore_poison(&job.panic);
                if first.is_none() {
                    *first = Some(payload);
                }
            }
        }
        // Final touch of the job: decrement, then notify under the lock.
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let (lock, cv) = &*job.done;
            let _g = lock_ignore_poison(lock);
            cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_borrowed_work_to_completion() {
        let rt = Runtime::new(4);
        let counter = AtomicUsize::new(0);
        let cursor = AtomicUsize::new(0);
        rt.run(4, |_| {
            while cursor.fetch_add(1, Ordering::Relaxed) < 1000 {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn sequential_jobs_do_not_interleave() {
        let rt = Runtime::new(4);
        let log = Mutex::new(Vec::new());
        for round in 0..50 {
            rt.run(4, |_| {
                lock_ignore_poison(&log).push(round);
            });
        }
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), 50 * 4);
        // All entries of round r precede all entries of round r+1.
        for (i, w) in log.windows(2).enumerate() {
            assert!(w[0] <= w[1], "interleaved at {i}: {:?}", &log[i..i + 2]);
        }
    }

    #[test]
    fn many_tiny_jobs_are_fast() {
        let rt = Runtime::new(8);
        let t0 = std::time::Instant::now();
        for _ in 0..2000 {
            rt.run(8, |_| {});
        }
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt < 2.0, "2000 empty jobs took {dt}s");
    }

    #[test]
    fn single_thread_runs_inline() {
        let rt = Runtime::empty();
        let x = AtomicUsize::new(0);
        rt.run(1, |ctx| {
            assert_eq!(ctx.index(), 0);
            assert_eq!(ctx.team(), 1);
            ctx.barrier(); // team of one: no-op, must not park
            x.fetch_add(7, Ordering::Relaxed);
        });
        assert_eq!(x.load(Ordering::Relaxed), 7);
        assert_eq!(rt.spawned_workers(), 0);
    }

    #[test]
    fn pool_grows_to_largest_team() {
        let rt = Runtime::empty();
        rt.run(2, |_| {});
        assert_eq!(rt.spawned_workers(), 2);
        rt.run(5, |_| {});
        assert_eq!(rt.spawned_workers(), 5);
        // Smaller team reuses the existing workers.
        let hits = AtomicUsize::new(0);
        rt.run(3, |ctx| {
            assert!(ctx.index() < 3);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        assert_eq!(rt.spawned_workers(), 5);
    }

    #[test]
    fn barrier_separates_epochs() {
        let rt = Runtime::new(4);
        let arrived = [
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ];
        rt.run(4, |ctx| {
            for (e, slot) in arrived.iter().enumerate() {
                slot.fetch_add(1, Ordering::SeqCst);
                ctx.barrier();
                // After the barrier, every team member has finished
                // epoch e and no one has started e+1's increment beyond
                // what we can observe here.
                assert_eq!(slot.load(Ordering::SeqCst), 4, "epoch {e} not complete");
                ctx.barrier();
            }
        });
    }

    /// Regression: a panicking worker used to park its siblings on a
    /// `std::sync::Barrier` forever. The runtime must unwind the whole
    /// team and re-raise the original payload on the submitting thread —
    /// and the pool must survive for the next job.
    #[test]
    fn mid_epoch_panic_propagates_and_pool_survives() {
        let rt = Runtime::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            rt.run(4, |ctx| {
                ctx.barrier(); // epoch 0 completes normally
                if ctx.index() == 2 {
                    panic!("injected mid-epoch failure");
                }
                // Siblings park here; the poison must wake them.
                ctx.barrier();
                ctx.barrier();
            });
        }));
        let payload = result.expect_err("panic must reach the submitter");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("original payload, not a sibling marker");
        assert_eq!(msg, "injected mid-epoch failure");

        // The team drained; workers are reusable.
        let x = AtomicUsize::new(0);
        rt.run(4, |_| {
            x.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(x.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panic_before_any_barrier_still_propagates() {
        let rt = Runtime::new(3);
        let result = catch_unwind(AssertUnwindSafe(|| {
            rt.run(3, |ctx| {
                if ctx.index() == 0 {
                    panic!("early failure");
                }
                // Siblings that never touch a barrier just finish.
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn inline_panic_propagates_naturally() {
        let rt = Runtime::empty();
        let result = catch_unwind(AssertUnwindSafe(|| {
            rt.run(1, |_| panic!("inline"));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn map_jobs_restores_job_order() {
        let rt = Runtime::new(4);
        let out = rt.map_jobs(4, 100, |i| i as u64 * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn map_jobs_sequential_paths() {
        let rt = Runtime::empty();
        assert_eq!(rt.map_jobs(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(rt.map_jobs(1, 5, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(rt.map_jobs(8, 1, |i| i + 10), vec![10]);
        assert_eq!(rt.spawned_workers(), 0);
    }
}
