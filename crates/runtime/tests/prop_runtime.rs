//! Property-based tests for the runtime's determinism contract: every
//! team primitive must produce byte-identical results at every thread
//! count, because the worker teams riding it (training, coarsening,
//! ingestion, expansion, eval) all promise exactly that to *their*
//! proptests.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use gosh_runtime::{global, map_jobs, shard_ranges};
use proptest::prelude::*;

/// The team sizes every contract is checked across: inline execution
/// (1), even splits (2, 4), and more workers than this machine has
/// cores (8).
const TEAMS: [usize; 4] = [1, 2, 4, 8];

/// A cheap pure mixer so job outputs depend on both index and input.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^ (x >> 29)
}

proptest! {
    #[test]
    fn map_jobs_matches_sequential_at_every_team_size(
        inputs in prop::collection::vec(0u64..u64::MAX, 0..80),
        salt in 0u64..u64::MAX,
    ) {
        let expected: Vec<u64> = inputs
            .iter()
            .enumerate()
            .map(|(j, &x)| mix(salt.wrapping_add(j as u64), x))
            .collect();
        for team in TEAMS {
            let got = map_jobs(team, inputs.len(), |j| {
                mix(salt.wrapping_add(j as u64), inputs[j])
            });
            prop_assert_eq!(&got, &expected, "team {}", team);
        }
    }

    #[test]
    fn sharded_writes_are_byte_identical_at_every_team_size(
        items in 0usize..300,
        salt in 0u64..u64::MAX,
    ) {
        // The slot-mutex discipline every ported team uses: the buffer is
        // split along `shard_ranges`, each worker claims its slab once,
        // and the result must not depend on who ran where or when.
        let fill = |team: usize| -> Vec<u64> {
            let mut buf = vec![0u64; items];
            let shards = shard_ranges(items, team);
            let slabs: Vec<Mutex<Option<&mut [u64]>>> = {
                let mut rest = buf.as_mut_slice();
                shards
                    .iter()
                    .map(|r| {
                        let (mine, tail) = std::mem::take(&mut rest).split_at_mut(r.len());
                        rest = tail;
                        Mutex::new(Some(mine))
                    })
                    .collect()
            };
            map_jobs(team, team, |t| {
                let mut slab = slabs[t]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("slab claimed once");
                for (off, cell) in slab.iter_mut().enumerate() {
                    *cell = mix(salt, (shards[t].start + off) as u64);
                }
            });
            drop(slabs);
            buf
        };
        let reference = fill(1);
        for team in &TEAMS[1..] {
            prop_assert_eq!(&fill(*team), &reference, "team {}", team);
        }
    }

    #[test]
    fn cursor_claimed_team_tasks_cover_every_job_exactly_once(
        jobs in 0usize..200,
        team in 1usize..=8,
    ) {
        // `Runtime::run` with an atomic work cursor (the Hogwild /
        // coarsen / ingest pattern): every job index must be claimed by
        // exactly one worker regardless of scheduling.
        let cursor = AtomicUsize::new(0);
        let claimed: Vec<AtomicUsize> = (0..jobs).map(|_| AtomicUsize::new(0)).collect();
        global().run(team, |_ctx| loop {
            let j = cursor.fetch_add(1, Ordering::Relaxed);
            if j >= jobs {
                break;
            }
            claimed[j].fetch_add(1, Ordering::Relaxed);
        });
        for (j, c) in claimed.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "job {}", j);
        }
    }

    #[test]
    fn shard_ranges_tile_and_balance(items in 0usize..5000, team in 1usize..=32) {
        let shards = shard_ranges(items, team);
        prop_assert_eq!(shards.len(), team);
        let mut next = 0usize;
        for r in &shards {
            prop_assert_eq!(r.start, next);
            next = r.end;
        }
        prop_assert_eq!(next, items);
        let lens: Vec<usize> = shards.iter().map(|r| r.len()).collect();
        let lo = lens.iter().min().unwrap();
        let hi = lens.iter().max().unwrap();
        prop_assert!(hi - lo <= 1, "unbalanced shards: {:?}", lens);
    }
}
