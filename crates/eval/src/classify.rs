//! Node classification — the paper's stated extension task (§6: "we will
//! extend our work for other ML tasks such as classification").
//!
//! A one-vs-rest logistic-regression classifier is trained on a labelled
//! fraction of the vertices' embedding rows and scored on the rest. The
//! synthetic community generator provides ground-truth labels, mirroring
//! the community/label structure of the datasets used by multilevel
//! embedding papers (MILE evaluates this way).

use gosh_core::model::Embedding;
use gosh_graph::rng::Xorshift128Plus;

use crate::features::FeatureSet;
use crate::logreg::{LogisticRegression, TrainMethod};

/// Configuration for [`node_classification_accuracy`].
#[derive(Clone, Copy, Debug)]
pub struct ClassifyConfig {
    /// Fraction of vertices used for training the classifier.
    pub train_fraction: f64,
    /// Optimizer for each one-vs-rest head.
    pub method: TrainMethod,
    /// Classifier learning rate.
    pub lr: f32,
    /// L2 regularization.
    pub l2: f32,
    /// Shuffle/SGD seed.
    pub seed: u64,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        Self {
            train_fraction: 0.5,
            method: TrainMethod::Sgd { epochs: 10 },
            lr: 0.1,
            l2: 1e-4,
            seed: 0xC1A5,
        }
    }
}

/// Train one-vs-rest heads on embedding rows and return test accuracy in
/// `[0, 1]`. `labels[v]` is vertex `v`'s class.
pub fn node_classification_accuracy(m: &Embedding, labels: &[u32], cfg: &ClassifyConfig) -> f64 {
    assert_eq!(
        m.num_vertices(),
        labels.len(),
        "labels must cover all vertices"
    );
    let n = labels.len();
    assert!(n >= 4, "too few vertices to split");
    let num_classes = labels.iter().copied().max().unwrap_or(0) as usize + 1;
    let d = m.dim();

    // Shuffled vertex split.
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = Xorshift128Plus::new(cfg.seed);
    for i in (1..n).rev() {
        let j = rng.below(i as u32 + 1) as usize;
        order.swap(i, j);
    }
    let n_train = ((n as f64 * cfg.train_fraction) as usize).clamp(1, n - 1);
    let (train_v, test_v) = order.split_at(n_train);

    // One-vs-rest heads over the raw embedding rows.
    let mut features = Vec::with_capacity(n_train * d);
    for &v in train_v {
        features.extend_from_slice(m.row(v));
    }
    let heads: Vec<LogisticRegression> = (0..num_classes)
        .map(|c| {
            let labels_c: Vec<bool> = train_v
                .iter()
                .map(|&v| labels[v as usize] == c as u32)
                .collect();
            let set = FeatureSet {
                features: features.clone(),
                labels: labels_c,
                dim: d,
            };
            LogisticRegression::train(&set, cfg.method, cfg.lr, cfg.l2, cfg.seed ^ c as u64)
        })
        .collect();

    // Argmax over head scores.
    let mut correct = 0usize;
    for &v in test_v {
        let row = m.row(v);
        let mut best = 0usize;
        let mut best_score = f32::NEG_INFINITY;
        for (c, head) in heads.iter().enumerate() {
            let s = head.predict(row);
            if s > best_score {
                best_score = s;
                best = c;
            }
        }
        if best as u32 == labels[v as usize] {
            correct += 1;
        }
    }
    correct as f64 / test_v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosh_core::config::{GoshConfig, Preset};
    use gosh_core::pipeline::embed;
    use gosh_gpu::{Device, DeviceConfig};
    use gosh_graph::gen::{community_graph_with_labels, CommunityConfig};

    #[test]
    fn classifies_separable_embedding_perfectly() {
        // Hand-built embedding: class = sign pattern of the row.
        let n = 200;
        let mut m = Embedding::zeros(n, 4);
        let labels: Vec<u32> = (0..n as u32).map(|v| v % 2).collect();
        for v in 0..n as u32 {
            let sign = if v % 2 == 0 { 1.0 } else { -1.0 };
            m.row_mut(v)
                .copy_from_slice(&[sign, -sign, sign * 0.5, 0.1]);
        }
        let acc = node_classification_accuracy(&m, &labels, &ClassifyConfig::default());
        assert!(acc > 0.95, "acc = {acc}");
    }

    #[test]
    fn random_embedding_is_near_chance() {
        let n = 300;
        let m = Embedding::random(n, 8, 3);
        let labels: Vec<u32> = (0..n as u32).map(|v| v % 3).collect();
        let acc = node_classification_accuracy(&m, &labels, &ClassifyConfig::default());
        assert!(acc < 0.55, "acc = {acc}");
    }

    #[test]
    fn gosh_embedding_recovers_communities() {
        let (g, labels) = community_graph_with_labels(&CommunityConfig::new(1024, 8), 9);
        let device = Device::new(DeviceConfig::titan_x());
        let cfg = GoshConfig::preset(Preset::Normal, false)
            .with_dim(16)
            .with_epochs(120)
            .with_threads(4);
        let (m, _) = embed(&g, &cfg, &device);
        let acc = node_classification_accuracy(&m, &labels, &ClassifyConfig::default());
        // Chance is ~1/num_communities (< 10%); the embedding should make
        // communities close to linearly separable.
        assert!(acc > 0.6, "acc = {acc}");
    }

    #[test]
    #[should_panic(expected = "labels must cover")]
    fn label_length_mismatch_panics() {
        let m = Embedding::zeros(4, 2);
        node_classification_accuracy(&m, &[0, 1], &ClassifyConfig::default());
    }
}
