//! End-to-end link-prediction evaluation (§4.1).
//!
//! Given an embedding of `G_train` and the held-out test edges, build the
//! balanced train/test feature sets, fit the classifier on `R_train`, and
//! report AUCROC on `R_test` — the number every table in the paper's
//! evaluation reports.

use gosh_core::model::Embedding;
use gosh_graph::csr::{Csr, VertexId};

use crate::auc::auc_roc;
use crate::features::build_feature_set;
use crate::logreg::{LogisticRegression, TrainMethod};

/// Evaluation parameters.
#[derive(Clone, Copy, Debug)]
pub struct EvalConfig {
    /// Cap on classifier training positives (the paper switches from
    /// `LogisticRegression` to `SGDClassifier` on large graphs; we cap the
    /// feature matrix instead for the same reason — classifier cost must
    /// not swamp embedding cost).
    pub max_train_positives: usize,
    /// Optimizer for the classifier.
    pub method: TrainMethod,
    /// Classifier learning rate.
    pub lr: f32,
    /// L2 regularization.
    pub l2: f32,
    /// Seed for negative sampling and SGD shuffling.
    pub seed: u64,
    /// Worker team for the Hadamard feature fill (bit-identical output
    /// for any value ≥ 1).
    pub threads: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            max_train_positives: 200_000,
            method: TrainMethod::Sgd { epochs: 8 },
            lr: 0.05,
            l2: 1e-5,
            seed: 0xE7A1,
            threads: 1,
        }
    }
}

/// Train the classifier on `G_train`'s edges and score the test edges.
/// Returns AUCROC in `[0, 1]`.
pub fn evaluate_link_prediction(
    m: &Embedding,
    g_train: &Csr,
    test_edges: &[(VertexId, VertexId)],
    cfg: &EvalConfig,
) -> f64 {
    assert_eq!(
        m.num_vertices(),
        g_train.num_vertices(),
        "embedding must cover the training graph"
    );
    let train_pos: Vec<(VertexId, VertexId)> = g_train.undirected_edges().collect();
    let train_set = build_feature_set(
        m,
        g_train,
        &train_pos,
        cfg.max_train_positives,
        cfg.seed,
        cfg.threads,
    );
    let model = LogisticRegression::train(&train_set, cfg.method, cfg.lr, cfg.l2, cfg.seed);

    // Test set: held-out edges vs fresh non-edges (never capped — the
    // paper scores every test edge).
    let test_set = build_feature_set(
        m,
        g_train,
        test_edges,
        usize::MAX,
        cfg.seed ^ 0x7E57,
        cfg.threads,
    );
    let scores = model.predict_all(&test_set);
    auc_roc(&scores, &test_set.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosh_core::config::{GoshConfig, Preset};
    use gosh_core::pipeline::embed;
    use gosh_gpu::{Device, DeviceConfig};
    use gosh_graph::gen::{community_graph, CommunityConfig};
    use gosh_graph::split::{train_test_split, SplitConfig};

    #[test]
    fn random_embedding_scores_near_chance() {
        let g = community_graph(&CommunityConfig::new(512, 6), 5);
        let split = train_test_split(&g, &SplitConfig::default());
        let m = Embedding::random(split.train.num_vertices(), 16, 3);
        let auc =
            evaluate_link_prediction(&m, &split.train, &split.test_edges, &EvalConfig::default());
        assert!((auc - 0.5).abs() < 0.15, "auc = {auc}");
    }

    #[test]
    fn trained_embedding_beats_random() {
        let g = community_graph(&CommunityConfig::new(512, 8), 8);
        let split = train_test_split(&g, &SplitConfig::default());
        let device = Device::new(DeviceConfig::titan_x());
        let cfg = GoshConfig::preset(Preset::Normal, false)
            .with_dim(16)
            .with_epochs(80)
            .with_threads(4);
        let (m, _) = embed(&split.train, &cfg, &device);
        let auc =
            evaluate_link_prediction(&m, &split.train, &split.test_edges, &EvalConfig::default());
        assert!(auc > 0.75, "auc = {auc}");
    }

    #[test]
    fn batch_and_sgd_agree_roughly() {
        let g = community_graph(&CommunityConfig::new(400, 6), 9);
        let split = train_test_split(&g, &SplitConfig::default());
        let device = Device::new(DeviceConfig::titan_x());
        let cfg = GoshConfig::preset(Preset::Fast, false)
            .with_dim(16)
            .with_epochs(60)
            .with_threads(4);
        let (m, _) = embed(&split.train, &cfg, &device);
        let sgd =
            evaluate_link_prediction(&m, &split.train, &split.test_edges, &EvalConfig::default());
        let batch = evaluate_link_prediction(
            &m,
            &split.train,
            &split.test_edges,
            &EvalConfig {
                method: TrainMethod::Batch { iterations: 150 },
                lr: 1.0,
                ..Default::default()
            },
        );
        assert!((sgd - batch).abs() < 0.12, "sgd {sgd} vs batch {batch}");
    }
}
