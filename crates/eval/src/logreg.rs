//! Logistic regression for edge classification.
//!
//! The paper trains scikit-learn's `LogisticRegression` on medium graphs
//! and falls back to `SGDClassifier` (logistic loss) on large ones, where
//! the batch solver gets too expensive. Both roles are covered here:
//! full-batch gradient descent with a decaying step, and single-pass-style
//! SGD over shuffled rows. Weights include a bias term.

use crate::features::FeatureSet;
use gosh_graph::rng::Xorshift128Plus;

/// Which optimizer trains the classifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainMethod {
    /// Full-batch gradient descent (`LogisticRegression` role).
    Batch {
        /// Gradient-descent iterations.
        iterations: u32,
    },
    /// Shuffled stochastic gradient descent (`SGDClassifier` role).
    Sgd {
        /// Passes over the data.
        epochs: u32,
    },
}

/// A trained logistic-regression model.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    /// Feature weights (length = feature dim).
    pub weights: Vec<f32>,
    /// Bias term.
    pub bias: f32,
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Train on a feature set.
    pub fn train(data: &FeatureSet, method: TrainMethod, lr: f32, l2: f32, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty feature set");
        let d = data.dim;
        let n = data.len();
        let mut w = vec![0f32; d];
        let mut b = 0f32;

        match method {
            TrainMethod::Batch { iterations } => {
                let mut grad = vec![0f32; d];
                for it in 0..iterations {
                    grad.iter_mut().for_each(|g| *g = 0.0);
                    let mut gb = 0f32;
                    for i in 0..n {
                        let row = data.row(i);
                        let y = if data.labels[i] { 1.0 } else { 0.0 };
                        let p = sigmoid(dot(&w, row) + b);
                        let err = p - y;
                        for (g, &x) in grad.iter_mut().zip(row) {
                            *g += err * x;
                        }
                        gb += err;
                    }
                    let step = lr / (1.0 + it as f32 * 0.01) / n as f32;
                    for (wk, &g) in w.iter_mut().zip(&grad) {
                        *wk -= step * (g + l2 * *wk * n as f32);
                    }
                    b -= step * gb;
                }
            }
            TrainMethod::Sgd { epochs } => {
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng = Xorshift128Plus::new(seed);
                for epoch in 0..epochs {
                    // Fisher–Yates reshuffle per epoch.
                    for i in (1..n).rev() {
                        let j = rng.below(i as u32 + 1) as usize;
                        order.swap(i, j);
                    }
                    let step = lr / (1.0 + epoch as f32);
                    for &i in &order {
                        let row = data.row(i);
                        let y = if data.labels[i] { 1.0 } else { 0.0 };
                        let p = sigmoid(dot(&w, row) + b);
                        let err = p - y;
                        for (wk, &x) in w.iter_mut().zip(row) {
                            *wk -= step * (err * x + l2 * *wk);
                        }
                        b -= step * err;
                    }
                }
            }
        }
        Self {
            weights: w,
            bias: b,
        }
    }

    /// P(edge) for one feature row.
    #[inline]
    pub fn predict(&self, row: &[f32]) -> f32 {
        sigmoid(dot(&self.weights, row) + self.bias)
    }

    /// Scores for every row of a feature set.
    pub fn predict_all(&self, data: &FeatureSet) -> Vec<f32> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auc::auc_roc;

    /// Linearly separable synthetic set: positives have positive mean.
    fn separable(n: usize, d: usize, seed: u64) -> FeatureSet {
        let mut rng = Xorshift128Plus::new(seed);
        let mut features = Vec::with_capacity(n * d);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let pos = i % 2 == 0;
            for _ in 0..d {
                let base = if pos { 0.6 } else { -0.6 };
                features.push(base + rng.next_f32() - 0.5);
            }
            labels.push(pos);
        }
        FeatureSet {
            features,
            labels,
            dim: d,
        }
    }

    #[test]
    fn batch_solver_separates() {
        let data = separable(400, 6, 1);
        let model =
            LogisticRegression::train(&data, TrainMethod::Batch { iterations: 200 }, 1.0, 1e-4, 1);
        let auc = auc_roc(&model.predict_all(&data), &data.labels);
        assert!(auc > 0.95, "auc = {auc}");
    }

    #[test]
    fn sgd_solver_separates() {
        let data = separable(400, 6, 2);
        let model = LogisticRegression::train(&data, TrainMethod::Sgd { epochs: 10 }, 0.1, 1e-4, 2);
        let auc = auc_roc(&model.predict_all(&data), &data.labels);
        assert!(auc > 0.95, "auc = {auc}");
    }

    #[test]
    fn random_labels_give_chance_auc() {
        let mut rng = Xorshift128Plus::new(3);
        let n = 600;
        let d = 4;
        let features: Vec<f32> = (0..n * d).map(|_| rng.next_f32() - 0.5).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.next_f32() < 0.5).collect();
        let data = FeatureSet {
            features,
            labels,
            dim: d,
        };
        let model = LogisticRegression::train(&data, TrainMethod::Sgd { epochs: 5 }, 0.1, 1e-4, 3);
        let auc = auc_roc(&model.predict_all(&data), &data.labels);
        assert!((auc - 0.5).abs() < 0.1, "auc = {auc}");
    }

    #[test]
    fn predictions_are_probabilities() {
        let data = separable(100, 3, 4);
        let model =
            LogisticRegression::train(&data, TrainMethod::Batch { iterations: 50 }, 1.0, 0.0, 4);
        for s in model.predict_all(&data) {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn training_is_deterministic() {
        let data = separable(200, 4, 5);
        let a = LogisticRegression::train(&data, TrainMethod::Sgd { epochs: 3 }, 0.1, 1e-4, 7);
        let b = LogisticRegression::train(&data, TrainMethod::Sgd { epochs: 3 }, 0.1, 1e-4, 7);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias, b.bias);
    }

    #[test]
    #[should_panic(expected = "empty feature set")]
    fn empty_set_panics() {
        let data = FeatureSet {
            features: vec![],
            labels: vec![],
            dim: 4,
        };
        LogisticRegression::train(&data, TrainMethod::Sgd { epochs: 1 }, 0.1, 0.0, 1);
    }
}
