//! # gosh-eval
//!
//! The link-prediction evaluation pipeline of §4.1: Hadamard
//! (element-wise-product) edge features from an embedding, a balanced
//! train set (every training edge plus an equal number of sampled
//! non-edges), a logistic-regression classifier (batch or SGD, mirroring
//! scikit-learn's `LogisticRegression` / `SGDClassifier` roles), and
//! AUCROC on the held-out edges.

// No unsafe in this crate: the audit gate (docs/SAFETY.md) keeps it that way.
#![forbid(unsafe_code)]

pub mod auc;
pub mod classify;
pub mod features;
pub mod logreg;
pub mod pipeline;

pub use auc::auc_roc;
pub use classify::{node_classification_accuracy, ClassifyConfig};
pub use logreg::{LogisticRegression, TrainMethod};
pub use pipeline::{evaluate_link_prediction, EvalConfig};
