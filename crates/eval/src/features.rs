//! Edge features for the link-prediction classifier (§4.1).
//!
//! Each candidate edge `(u, v)` becomes the element-wise (Hadamard)
//! product of the two embedding rows — the `R_train` / `R_test` vectors of
//! the paper. Negative candidates are drawn uniformly from
//! `(V × V) \ E` to balance the positives.

use gosh_core::model::Embedding;
use gosh_graph::csr::{Csr, VertexId};
use gosh_graph::rng::Xorshift128Plus;

/// A labelled feature set: `features` is row-major `num_rows × dim`.
#[derive(Clone, Debug)]
pub struct FeatureSet {
    /// Hadamard features, row-major.
    pub features: Vec<f32>,
    /// One label per row (true = edge).
    pub labels: Vec<bool>,
    /// Feature dimension (= embedding dimension).
    pub dim: usize,
}

impl FeatureSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.features[i * self.dim..(i + 1) * self.dim]
    }
}

/// Write the Hadamard product of rows `u` and `v` into `out`.
#[inline]
pub fn hadamard(m: &Embedding, u: VertexId, v: VertexId, out: &mut [f32]) {
    let (ru, rv) = (m.row(u), m.row(v));
    for ((o, &a), &b) in out.iter_mut().zip(ru).zip(rv) {
        *o = a * b;
    }
}

/// Sample `count` non-edges of `g` (uniform over V × V minus E and the
/// diagonal).
pub fn sample_negative_edges(g: &Csr, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let n = g.num_vertices() as u32;
    assert!(n >= 2, "graph too small for negative sampling");
    let mut rng = Xorshift128Plus::new(seed);
    let mut out = Vec::with_capacity(count);
    let mut guard = 0usize;
    while out.len() < count && guard < count * 100 {
        guard += 1;
        let u = rng.below(n);
        let v = rng.below(n);
        if u != v && !g.has_edge(u, v) {
            out.push((u, v));
        }
    }
    out
}

/// Build a balanced feature set: all of `positives` (capped at
/// `max_positives`) plus an equal number of sampled non-edges of `g`.
///
/// The Hadamard fill is sharded over the worker team: each worker owns a
/// disjoint contiguous row slab, so the output is bit-identical to the
/// sequential loop for any `threads >= 1` (pure per-row products — no
/// accumulation across rows).
pub fn build_feature_set(
    m: &Embedding,
    g: &Csr,
    positives: &[(VertexId, VertexId)],
    max_positives: usize,
    seed: u64,
    threads: usize,
) -> FeatureSet {
    let d = m.dim();
    // Cap by uniform stride so the subsample stays deterministic.
    let take = positives.len().min(max_positives);
    let stride = (positives.len().max(1) as f64 / take.max(1) as f64).max(1.0);
    let chosen: Vec<(VertexId, VertexId)> = (0..take)
        .map(|i| positives[(i as f64 * stride) as usize])
        .collect();
    let negatives = sample_negative_edges(g, chosen.len(), seed);

    let rows = chosen.len() + negatives.len();
    let pairs: Vec<(VertexId, VertexId)> = chosen.iter().chain(negatives.iter()).copied().collect();
    let labels: Vec<bool> = (0..rows).map(|i| i < chosen.len()).collect();
    let mut features = vec![0f32; rows * d];
    if rows > 0 && d > 0 {
        let team = threads.max(1).min(rows);
        let shards = gosh_runtime::shard_ranges(rows, team);
        let slabs: Vec<std::sync::Mutex<Option<&mut [f32]>>> = shards
            .iter()
            .scan(features.as_mut_slice(), |rest, r| {
                let (mine, tail) = std::mem::take(rest).split_at_mut(r.len() * d);
                *rest = tail;
                Some(std::sync::Mutex::new(Some(mine)))
            })
            .collect();
        gosh_runtime::map_jobs(team, team, |t| {
            let slab = slabs[t]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("feature slab claimed once");
            for (j, &(u, v)) in pairs[shards[t].clone()].iter().enumerate() {
                hadamard(m, u, v, &mut slab[j * d..(j + 1) * d]);
            }
        });
    }
    FeatureSet {
        features,
        labels,
        dim: d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosh_graph::builder::csr_from_edges;
    use gosh_graph::gen::erdos_renyi;

    #[test]
    fn hadamard_is_elementwise_product() {
        let mut m = Embedding::zeros(2, 3);
        m.row_mut(0).copy_from_slice(&[1.0, 2.0, -3.0]);
        m.row_mut(1).copy_from_slice(&[4.0, -5.0, 6.0]);
        let mut out = [0f32; 3];
        hadamard(&m, 0, 1, &mut out);
        assert_eq!(out, [4.0, -10.0, -18.0]);
    }

    #[test]
    fn negatives_are_really_non_edges() {
        let g = erdos_renyi(100, 600, 3);
        let negs = sample_negative_edges(&g, 200, 7);
        assert_eq!(negs.len(), 200);
        for &(u, v) in &negs {
            assert_ne!(u, v);
            assert!(!g.has_edge(u, v));
        }
    }

    #[test]
    fn feature_set_is_balanced() {
        let g = erdos_renyi(60, 200, 5);
        let m = Embedding::random(60, 8, 1);
        let pos: Vec<_> = g.undirected_edges().collect();
        let fs = build_feature_set(&m, &g, &pos, usize::MAX, 11, 3);
        assert_eq!(fs.len(), 2 * pos.len());
        assert_eq!(fs.labels.iter().filter(|&&l| l).count(), pos.len());
        assert_eq!(fs.dim, 8);
    }

    #[test]
    fn cap_subsamples_positives() {
        let g = erdos_renyi(80, 400, 9);
        let m = Embedding::random(80, 4, 2);
        let pos: Vec<_> = g.undirected_edges().collect();
        let fs = build_feature_set(&m, &g, &pos, 50, 13, 2);
        assert_eq!(fs.labels.iter().filter(|&&l| l).count(), 50);
        assert_eq!(fs.len(), 100);
    }

    #[test]
    fn feature_rows_match_hadamard() {
        let g = csr_from_edges(4, &[(0, 1), (2, 3)]);
        let m = Embedding::random(4, 5, 3);
        let pos = vec![(0u32, 1u32)];
        let fs = build_feature_set(&m, &g, &pos, usize::MAX, 17, 4);
        let mut expect = [0f32; 5];
        hadamard(&m, 0, 1, &mut expect);
        assert_eq!(fs.row(0), &expect);
    }
}
