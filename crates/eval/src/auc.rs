//! Area under the ROC curve.
//!
//! Computed by the rank-sum (Mann–Whitney) identity: AUC is the
//! probability that a random positive scores above a random negative,
//! with ties counted half. O(n log n) in the number of scored samples.

/// AUCROC for `scores` with boolean `labels` (true = positive).
///
/// Returns 0.5 when either class is empty (the metric is undefined; 0.5 is
/// the chance level and keeps pipelines total).
///
/// NaN scores are ordered by the IEEE 754 total order ([`f32::total_cmp`]):
/// positive NaN ranks above every number, negative NaN below. A diverged
/// embedding that emits a NaN therefore yields a well-defined,
/// deterministic AUC instead of killing the whole evaluation run — the
/// seed implementation panicked on the first NaN. Note the ranking is
/// deterministic, not pessimistic: a positive-labelled +NaN ranks *high*
/// (sign and payload come from whatever op diverged), so callers that
/// must treat divergence as failure should check their scores for NaN —
/// this function's contract is totality, not divergence detection.
pub fn auc_roc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    // Sort indices by score; average ranks over tie groups. `total_cmp`
    // is total on NaN, so the sort (and thus the result) is
    // deterministic for any input. NaNs never form tie groups below
    // (`==` is false for NaN), which only means each NaN carries its own
    // exact rank.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_unstable_by(|&a, &b| scores[a].total_cmp(&scores[b]));

    let mut rank_sum_pos = 0f64; // 1-based ranks of positives
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Tie group spans ranks i+1 ..= j+1; everyone gets the average.
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let pos = pos as f64;
    let neg = neg as f64;
    (rank_sum_pos - pos * (pos + 1.0) / 2.0) / (pos * neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert_eq!(auc_roc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_separation_is_zero() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [false, false, true, true];
        assert_eq!(auc_roc(&scores, &labels), 0.0);
    }

    #[test]
    fn all_tied_is_half() {
        let scores = [0.5; 6];
        let labels = [true, false, true, false, true, false];
        assert!((auc_roc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_returns_half() {
        assert_eq!(auc_roc(&[0.1, 0.2], &[true, true]), 0.5);
        assert_eq!(auc_roc(&[0.1, 0.2], &[false, false]), 0.5);
        assert_eq!(auc_roc(&[], &[]), 0.5);
    }

    #[test]
    fn partial_overlap() {
        // One mis-ranked pair out of 4: AUC = 3/4.
        let scores = [0.1, 0.6, 0.4, 0.9];
        let labels = [false, false, true, true];
        assert!((auc_roc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn matches_pairwise_definition_on_random_data() {
        use gosh_graph::rng::Xorshift128Plus;
        let mut rng = Xorshift128Plus::new(13);
        let n = 200;
        let scores: Vec<f32> = (0..n)
            .map(|_| (rng.next_f32() * 8.0).round() / 8.0)
            .collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.next_f32() < 0.3).collect();
        // O(n²) reference with tie-halving.
        let mut wins = 0f64;
        let mut pairs = 0f64;
        for i in 0..n {
            for j in 0..n {
                if labels[i] && !labels[j] {
                    pairs += 1.0;
                    if scores[i] > scores[j] {
                        wins += 1.0;
                    } else if scores[i] == scores[j] {
                        wins += 0.5;
                    }
                }
            }
        }
        let reference = wins / pairs;
        assert!((auc_roc(&scores, &labels) - reference).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        auc_roc(&[0.1], &[true, false]);
    }

    #[test]
    fn nan_scores_do_not_panic_and_rank_by_total_order() {
        // Positive NaN ranks above every number: both positives outrank
        // both negatives, so AUC is exactly 1.
        let scores = [0.1, f32::NAN, 0.5, 0.9];
        let labels = [false, true, false, true];
        assert_eq!(auc_roc(&scores, &labels), 1.0);
        // Negative NaN ranks below every number.
        let scores = [0.1, -f32::NAN, 0.5, 0.9];
        assert_eq!(auc_roc(&scores, &labels), 0.5);
    }

    #[test]
    fn nan_scores_are_deterministic() {
        let scores = [f32::NAN, 0.2, f32::NAN, 0.8, -f32::NAN, 0.4];
        let labels = [true, false, false, true, true, false];
        let first = auc_roc(&scores, &labels);
        assert!(first.is_finite());
        assert!((0.0..=1.0).contains(&first));
        for _ in 0..10 {
            assert_eq!(auc_roc(&scores, &labels), first);
        }
        // Spelled out: ascending total order is -NaN, 0.2, 0.4, 0.8,
        // NaN, NaN. Positives hold ranks 1, 4, and one of {5, 6} (the
        // two NaNs compare equal under total order, so the unstable sort
        // may put either first — deterministically for a given input).
        let rank_sum_low = (1.0 + 4.0 + 5.0) - 3.0 * 4.0 / 2.0;
        let rank_sum_high = (1.0 + 4.0 + 6.0) - 3.0 * 4.0 / 2.0;
        assert!(
            first == rank_sum_low / 9.0 || first == rank_sum_high / 9.0,
            "{first}"
        );
    }
}
