//! Property-based tests for the evaluation stack.

use gosh_eval::auc_roc;
use gosh_eval::features::FeatureSet;
use gosh_eval::{LogisticRegression, TrainMethod};
use proptest::prelude::*;

fn scored_labels() -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
    prop::collection::vec((0.0f32..1.0, prop::bool::ANY), 2..200).prop_map(|pairs| {
        let (scores, labels): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        (scores, labels)
    })
}

proptest! {
    #[test]
    fn auc_is_bounded((scores, labels) in scored_labels()) {
        let auc = auc_roc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn auc_invariant_under_monotone_transform((scores, labels) in scored_labels()) {
        // AUC depends only on the ranking: any strictly increasing
        // transform of the scores must not change it.
        let auc1 = auc_roc(&scores, &labels);
        let transformed: Vec<f32> = scores.iter().map(|&s| (3.0 * s + 1.0).exp()).collect();
        let auc2 = auc_roc(&transformed, &labels);
        prop_assert!((auc1 - auc2).abs() < 1e-9, "{auc1} vs {auc2}");
    }

    #[test]
    fn auc_flips_under_negation((scores, labels) in scored_labels()) {
        let pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(pos > 0 && pos < labels.len());
        let auc = auc_roc(&scores, &labels);
        let negated: Vec<f32> = scores.iter().map(|&s| -s).collect();
        let auc_neg = auc_roc(&negated, &labels);
        prop_assert!((auc + auc_neg - 1.0).abs() < 1e-9, "{auc} + {auc_neg} != 1");
    }

    #[test]
    fn auc_invariant_under_label_consistent_permutation((scores, labels) in scored_labels(), seed in 0u64..100) {
        use gosh_graph::rng::Xorshift128Plus;
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        let mut rng = Xorshift128Plus::new(seed);
        for i in (1..idx.len()).rev() {
            let j = rng.below(i as u32 + 1) as usize;
            idx.swap(i, j);
        }
        let s2: Vec<f32> = idx.iter().map(|&i| scores[i]).collect();
        let l2: Vec<bool> = idx.iter().map(|&i| labels[i]).collect();
        prop_assert!((auc_roc(&scores, &labels) - auc_roc(&s2, &l2)).abs() < 1e-9);
    }

    #[test]
    fn logreg_predictions_stay_probabilities(
        rows in prop::collection::vec(prop::collection::vec(-2.0f32..2.0, 4..=4), 4..60),
        epochs in 1u32..6,
    ) {
        let n = rows.len();
        let features: Vec<f32> = rows.iter().flatten().copied().collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let data = FeatureSet { features, labels, dim: 4 };
        let model = LogisticRegression::train(&data, TrainMethod::Sgd { epochs }, 0.1, 1e-4, 1);
        for s in model.predict_all(&data) {
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!(s.is_finite());
        }
    }
}
