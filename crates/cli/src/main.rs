//! `gosh` — command-line interface to the GOSH reproduction.
//!
//! ```text
//! gosh generate <dataset|N:K> <out.{txt,csr}>    synthesize a graph
//! gosh stats <graph> [--threads N]               structural statistics
//! gosh convert <in> <out> [--threads N]          re-encode txt <-> csr
//! gosh coarsen <graph> [--threads N] [--threshold T]
//! gosh embed <graph> <out.emb> [--dim D] [--preset P] [--epochs E]
//!                              [--device-mb M] [--threads N]
//!                              [--backend cpu|gpu|auto]
//!                              [--precision f32|f16|i8]
//!                              [--precision-schedule C:F[:V]]
//! gosh train <graph> <out.emb> [--nodes N] [--transport channel|tcp]
//!                              [--net-gbps G] [--exchange-every E]
//!                              [--shard-min V] [+ embed's pipeline flags]
//! gosh eval <graph> [--dim D] [--preset P] [--epochs E] [--device-mb M]
//!                   [--backend cpu|gpu|auto] [--precision f32|f16|i8]
//!                   [--precision-schedule C:F[:V]] [+ train's node flags]
//! gosh update <graph> <delta> <store.embin> <out.emb>
//!                   [--threads N] [--preset P] [--epochs E] [--seed S]
//!                   [--fallback-fraction F] [--epoch-scale X]
//!                   [--precision f32|f16|i8] [--save-graph FILE]
//! gosh serve <store.embin> [--addr H:P] [--threads N] [--ivf true|false]
//! gosh query <store.embin> --addr H:P [--ids 0,1,2] [--k K]
//!                          [--nprobe P] [--shutdown true|false]
//! gosh bench-train [--vertices N] [--degree K] [--dim D] [--threads T]
//!                  [--epochs E] [--negatives NS] [--seed S] [--reps R]
//!                  [--baseline true|false] [--precisions true|false]
//!                  [--out FILE]
//! gosh bench-coarsen [--vertices N] [--degree K] [--threads T]
//!                    [--threshold V] [--seed S] [--reps R]
//!                    [--baseline true|false] [--out FILE]
//! gosh bench-ingest [--vertices N] [--degree K] [--threads T]
//!                   [--seed S] [--reps R] [--baseline true|false]
//!                   [--out FILE]
//! gosh bench-distrib [--vertices N] [--degree K] [--dim D] [--threads T]
//!                    [--nodes N] [--transport channel|tcp] [--net-gbps G]
//!                    [--exchange-every E] [--shard-min V] [--epochs E]
//!                    [--seed S] [--reps R] [--baseline true|false]
//!                    [--out FILE]
//! gosh bench-large [--vertices N] [--degree K] [--dim D] [--device-kb M]
//!                  [--pcie-gbps G] [--epochs E] [--batch B] [--negatives NS]
//!                  [--pgpu P] [--sgpu S] [--threads T] [--host-threads H]
//!                  [--seed S] [--reps R] [--baseline true|false] [--out FILE]
//! gosh bench-serve [--vertices N] [--degree K] [--dim D] [--threads T]
//!                  [--precision f32|f16|i8] [--k K] [--nprobe P]
//!                  [--batch B] [--latency L] [--epochs E] [--seed S]
//!                  [--reps R] [--out FILE]
//! gosh bench-stream [--dataset NAME | --vertices N [--degree K]]
//!                   [--dim D] [--threads T] [--window F] [--steps S]
//!                   [--epochs E] [--warm-scale X] [--fallback-fraction F]
//!                   [--max-gap G] [--seed S] [--out FILE]
//! gosh audit [--root DIR] [--write true]         safety static-analysis gate
//! ```
//!
//! Graphs load from SNAP-style edge lists (`.txt`, any extension; a
//! weighted KONECT third column is accepted and discarded) through the
//! parallel streaming ingestion path, or from the binary CSR format
//! (`.csr`) through the chunked streaming-validated loader. `eval` runs
//! the paper's full §4.1 link-prediction pipeline: 80/20 split, embed
//! the train graph, report AUCROC on the held-out edges.

// No unsafe in this crate: the audit gate (docs/SAFETY.md) keeps it that way.
#![forbid(unsafe_code)]

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(|s| s.as_str()) {
        Some("generate") => commands::generate(&argv[1..]),
        Some("stats") => commands::stats(&argv[1..]),
        Some("convert") => commands::convert(&argv[1..]),
        Some("coarsen") => commands::coarsen(&argv[1..]),
        Some("embed") => commands::embed(&argv[1..]),
        Some("train") => commands::train(&argv[1..]),
        Some("eval") => commands::eval(&argv[1..]),
        Some("update") => commands::update(&argv[1..]),
        Some("serve") => commands::serve(&argv[1..]),
        Some("query") => commands::query(&argv[1..]),
        Some("bench-train") => commands::bench_train(&argv[1..]),
        Some("bench-coarsen") => commands::bench_coarsen(&argv[1..]),
        Some("bench-ingest") => commands::bench_ingest(&argv[1..]),
        Some("bench-distrib") => commands::bench_distrib(&argv[1..]),
        Some("bench-large") => commands::bench_large(&argv[1..]),
        Some("bench-serve") => commands::bench_serve(&argv[1..]),
        Some("bench-stream") => commands::bench_stream(&argv[1..]),
        Some("audit") => commands::audit(&argv[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
gosh — GOSH graph embedding (ICPP 2020 reproduction)

USAGE:
  gosh generate <dataset|N:K> <out.{txt,csr}>   synthesize a graph
  gosh stats <graph> [--threads N]              structural statistics
  gosh convert <in> <out> [--threads N]         re-encode txt <-> csr
  gosh coarsen <graph> [--threads N] [--threshold T]
  gosh embed <graph> <out.emb> [--dim D] [--preset P] [--epochs E]
                               [--device-mb M] [--threads N]
                               [--backend cpu|gpu|auto]
                               [--precision f32|f16|i8]
                               [--precision-schedule C:F[:V]]
  gosh train <graph> <out.emb> [--nodes N] [--transport channel|tcp]
                               [--net-gbps G] [--exchange-every E]
                               [--shard-min V] [+ embed's pipeline flags]
  gosh eval <graph> [--dim D] [--preset P] [--epochs E] [--device-mb M]
                    [--backend cpu|gpu|auto] [--precision f32|f16|i8]
                    [--precision-schedule C:F[:V]] [+ train's node flags]
  gosh update <graph> <delta> <store.embin> <out.emb>
                    [--threads N] [--preset P] [--epochs E] [--seed S]
                    [--fallback-fraction F] [--epoch-scale X]
                    [--precision f32|f16|i8] [--save-graph FILE]
  gosh serve <store.embin> [--addr H:P] [--threads N] [--ivf true|false]
  gosh query <store.embin> --addr H:P [--ids 0,1,2] [--k K]
                           [--nprobe P] [--shutdown true|false]
  gosh bench-train [--vertices N] [--degree K] [--dim D] [--threads T]
                   [--epochs E] [--negatives NS] [--seed S] [--reps R]
                   [--baseline true|false] [--precisions true|false]
                   [--out FILE]
  gosh bench-coarsen [--vertices N] [--degree K] [--threads T]
                     [--threshold V] [--seed S] [--reps R]
                     [--baseline true|false] [--out FILE]
  gosh bench-ingest [--vertices N] [--degree K] [--threads T]
                    [--seed S] [--reps R] [--baseline true|false]
                    [--out FILE]
  gosh bench-distrib [--vertices N] [--degree K] [--dim D] [--threads T]
                     [--nodes N] [--transport channel|tcp] [--net-gbps G]
                     [--exchange-every E] [--shard-min V] [--epochs E]
                     [--seed S] [--reps R] [--baseline true|false]
                     [--out FILE]
  gosh bench-large [--vertices N] [--degree K] [--dim D] [--device-kb M]
                   [--pcie-gbps G] [--epochs E] [--batch B] [--negatives NS]
                   [--pgpu P] [--sgpu S] [--threads T] [--host-threads H]
                   [--seed S] [--reps R] [--baseline true|false] [--out FILE]
  gosh bench-serve [--vertices N] [--degree K] [--dim D] [--threads T]
                   [--precision f32|f16|i8] [--k K] [--nprobe P]
                   [--batch B] [--latency L] [--epochs E] [--seed S]
                   [--reps R] [--out FILE]
  gosh bench-stream [--dataset NAME | --vertices N [--degree K]]
                    [--dim D] [--threads T] [--window F] [--steps S]
                    [--epochs E] [--warm-scale X] [--fallback-fraction F]
                    [--max-gap G] [--seed S] [--out FILE]
  gosh audit [--root DIR] [--write true]         safety static-analysis gate

  <dataset> is a suite name (dblp-like, orkut-like, ...; see
  `gosh_graph::gen::suite`), or N:K for N vertices with average degree K.
  <graph> is an edge-list file, or binary CSR if it ends in .csr.
  Edge lists parse through the parallel streaming ingestion path
  (--threads workers where accepted); `u v w` weighted KONECT lines are
  accepted (the weight is validated and discarded), and dropped
  self-loop/duplicate counts are reported by stats and convert.
  convert re-encodes between the formats; text-to-text conversions
  keep the original vertex ids of the input file.
  P is one of fast | normal | slow | nocoarse (Table 3).
  --device-mb simulates a device with that much memory (default: 12288,
  the paper's Titan X); small values force the partitioned Algorithm 5.
  --backend selects the training engine chain: cpu forces the Hogwild
  CPU trainer, gpu uses the device only, auto (default) prefers the
  device and falls back per level.
  --precision stores embedding rows as f32 (default, the bit-exact
  reference), f16, or i8 with a per-row scale; quantized rows are
  priced at their true byte width, so 2-4x larger graphs fit on the
  same device at a small, documented AUC cost.
  --precision-schedule C:F[:V] picks the precision per level instead:
  levels with fewer than V vertices (default 4096) train at precision
  C, levels at or above V at precision F — e.g. f32:i8 spends full
  precision only where epochs concentrate.
  train runs the multi-node replica pipeline on --nodes N simulated
  nodes: coarse levels (< --shard-min vertices) are replicated on
  identical seeds at zero network cost, fine levels are sharded with a
  delta exchange every --exchange-every epochs over --transport
  (in-process channels or TCP loopback), each copy charged through the
  modeled --net-gbps interconnect. --nodes 1 is bit-identical to the
  CPU-backend embed. eval accepts the same node flags to score a
  distributed run end-to-end.
  embed and train write two artifacts: the text .emb (six decimal
  places — lossy) and a checksummed binary .embin store next to it
  that round-trips bit-exactly and serves via mmap without decoding.
  update applies an edge-delta file to a trained model: `+ u v` /
  `- u v` lines batched into epochs by `commit` lines (within one epoch
  deletion wins; across epochs later lines see the earlier result;
  unknown insertion endpoints become new vertices, unknown deletions
  are dropped and counted). The graph is merged in place, the
  coarsening hierarchy is repaired around the touched clusters (or
  recoarsened past --fallback-fraction), and only the dirty region is
  retrained for --epoch-scale of the epoch budget, starting from the
  stored rows. Writes the same .emb/.embin pair as embed.
  serve maps an .embin store and answers top-k neighbour queries over
  TCP (framed protocol); by default it builds an IVF coarse-quantizer
  index so clients can trade recall for speed with --nprobe (0 =
  brute-force exact). query reads vertex rows from a local copy of the
  store, sends them as one batch, and prints id:score pairs per vertex;
  --shutdown true stops the server after the batch.
  bench-serve times the IVF query engine against exact search through
  a real TCP loopback server and writes BENCH_serve.json (queries/sec
  per engine, p50/p99 single-query latency, recall@k, and
  speedup_vs_exact).
  bench-distrib times the multi-node replica trainer against the
  single-node path on a synthetic community graph and writes
  BENCH_distrib.json (updates/sec, exchange-stall seconds, bytes on
  the wire, plus speedup_vs_single unless --baseline false).
  bench-train times the sharded CPU trainer hot path on a synthetic
  community graph and writes BENCH_hotpath.json (updates/sec, threads,
  dim, plus the frozen scalar- and seed-engine baselines unless
  --baseline false, and per-precision f16/i8 rows with bytes-normalized
  throughput unless --precisions false).
  bench-coarsen times the fused multi-level coarsening pipeline on a
  synthetic community graph and writes BENCH_coarsen.json (levels/sec,
  collapsed vertices/sec, plus the frozen sequential-path baseline
  unless --baseline false).
  bench-ingest times the parallel streaming edge-list parser on a
  frozen-seed synthetic SNAP-style file and writes BENCH_ingest.json
  (edges/sec, MB/sec, plus the frozen seed-parser baseline unless
  --baseline false).
  bench-large squeezes a synthetic graph through the partitioned
  Algorithm 5 pipeline on a small simulated device and writes
  BENCH_large.json (kernels/sec, transfer-stall seconds, plus the
  frozen synchronous-engine baseline unless --baseline false);
  --pcie-gbps scales the modeled interconnect, --device-kb the device.
  bench-stream rolls a temporal window over a suite graph's edge
  stream: each step retires the oldest batch and ingests the next one,
  processed by both the delta path (apply + repair + warm retrain) and
  a full rebuild, scored on the unseen future batch. Writes
  BENCH_stream.json (delta vs rebuild seconds, AUC of both paths and
  their gap, and speedup_vs_rebuild).
";
