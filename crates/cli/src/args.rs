//! Minimal flag parsing (positional args + `--key value` / `--key=value`
//! flags), validated against each command's known flag set.
//!
//! Three failure modes of a free-form parser are closed here: an unknown
//! flag is an error instead of being silently swallowed (`--epoch 100`
//! must not quietly do nothing), `--key=value` is accepted, and a flag
//! whose "value" is the next `--flag` is rejected instead of consuming
//! it.

use std::collections::HashMap;

/// Parsed command-line tail: positionals in order, flags by name.
#[derive(Debug)]
pub struct Parsed {
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// Split `args` into positionals and flags. Every flag must appear in
/// `known` (the command's flag vocabulary); values come from either
/// `--key value` or `--key=value`, and a value may not itself start with
/// `--`.
pub fn parse(args: &[String], known: &[&str]) -> Result<Parsed, String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(rest) = a.strip_prefix("--") else {
            positional.push(a.clone());
            continue;
        };
        let (key, value) = match rest.split_once('=') {
            Some((key, value)) => (key, value.to_string()),
            None => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{rest} expects a value"))?;
                if value.starts_with("--") {
                    return Err(format!(
                        "flag --{rest} expects a value, got another flag `{value}`"
                    ));
                }
                (rest, value.clone())
            }
        };
        if !known.contains(&key) {
            return Err(if known.is_empty() {
                format!("unknown flag --{key} (this command takes no flags)")
            } else {
                format!(
                    "unknown flag --{key} (known flags: --{})",
                    known.join(", --")
                )
            });
        }
        flags.insert(key.to_string(), value);
    }
    Ok(Parsed { positional, flags })
}

impl Parsed {
    /// Required positional argument `i`, with a name for error messages.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing <{name}> argument"))
    }

    /// Optional flag parsed into `T`; parse failures carry the type's
    /// own error detail (e.g. the valid choices for an enum flag).
    pub fn flag<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|e| format!("invalid value `{raw}` for --{key}: {e}")),
        }
    }

    /// Optional string flag.
    pub fn flag_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    const KNOWN: &[&str] = &["dim", "preset", "epochs"];

    #[test]
    fn splits_positionals_and_flags() {
        let p = parse(
            &strs(&["a.txt", "--dim", "32", "out.emb", "--preset", "fast"]),
            KNOWN,
        )
        .unwrap();
        assert_eq!(p.positional, vec!["a.txt", "out.emb"]);
        assert_eq!(p.flag::<usize>("dim").unwrap(), Some(32));
        assert_eq!(p.flag_str("preset"), Some("fast"));
        assert_eq!(p.flag::<u32>("epochs").unwrap(), None);
    }

    #[test]
    fn equals_form_is_accepted() {
        let p = parse(&strs(&["--dim=32", "--preset=fast"]), KNOWN).unwrap();
        assert_eq!(p.flag::<usize>("dim").unwrap(), Some(32));
        assert_eq!(p.flag_str("preset"), Some("fast"));
    }

    #[test]
    fn unknown_flag_errors() {
        let err = parse(&strs(&["--epoch", "100"]), KNOWN).unwrap_err();
        assert!(err.contains("unknown flag --epoch"), "{err}");
        assert!(err.contains("--epochs"), "should list known flags: {err}");
        let err = parse(&strs(&["--dim=8"]), &[]).unwrap_err();
        assert!(err.contains("takes no flags"), "{err}");
    }

    #[test]
    fn missing_flag_value_errors() {
        assert!(parse(&strs(&["--dim"]), KNOWN).is_err());
    }

    #[test]
    fn flag_as_value_errors() {
        let err = parse(&strs(&["--dim", "--epochs", "10"]), KNOWN).unwrap_err();
        assert!(err.contains("expects a value"), "{err}");
    }

    #[test]
    fn bad_flag_type_errors() {
        let p = parse(&strs(&["--dim", "banana"]), KNOWN).unwrap();
        assert!(p.flag::<usize>("dim").is_err());
    }

    #[test]
    fn missing_positional_errors() {
        let p = parse(&strs(&[]), KNOWN).unwrap();
        assert!(p.positional(0, "graph").is_err());
    }
}
