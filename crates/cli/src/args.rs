//! Minimal flag parsing (positional args + `--key value` flags).

use std::collections::HashMap;

/// Parsed command-line tail: positionals in order, flags by name.
pub struct Parsed {
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// Split `args` into positionals and `--key value` flags.
pub fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} expects a value"))?;
            flags.insert(key.to_string(), value.clone());
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Parsed { positional, flags })
}

impl Parsed {
    /// Required positional argument `i`, with a name for error messages.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing <{name}> argument"))
    }

    /// Optional flag parsed into `T`; parse failures carry the type's
    /// own error detail (e.g. the valid choices for an enum flag).
    pub fn flag<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|e| format!("invalid value `{raw}` for --{key}: {e}")),
        }
    }

    /// Optional string flag.
    pub fn flag_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn splits_positionals_and_flags() {
        let p = parse(&strs(&[
            "a.txt", "--dim", "32", "out.emb", "--preset", "fast",
        ]))
        .unwrap();
        assert_eq!(p.positional, vec!["a.txt", "out.emb"]);
        assert_eq!(p.flag::<usize>("dim").unwrap(), Some(32));
        assert_eq!(p.flag_str("preset"), Some("fast"));
        assert_eq!(p.flag::<u32>("epochs").unwrap(), None);
    }

    #[test]
    fn missing_flag_value_errors() {
        assert!(parse(&strs(&["--dim"])).is_err());
    }

    #[test]
    fn bad_flag_type_errors() {
        let p = parse(&strs(&["--dim", "banana"])).unwrap();
        assert!(p.flag::<usize>("dim").is_err());
    }

    #[test]
    fn missing_positional_errors() {
        let p = parse(&strs(&[])).unwrap();
        assert!(p.positional(0, "graph").is_err());
    }
}
