//! The CLI commands.

use std::io::Write;
use std::time::Instant;

use gosh_bench::coarsen::{run_coarsen_bench, CoarsenBenchConfig};
use gosh_bench::distrib::{run_distrib_bench, DistribBenchConfig};
use gosh_bench::hotpath::{run_hotpath, HotpathConfig};
use gosh_bench::ingest::{run_ingest_bench, IngestBenchConfig};
use gosh_bench::large::{run_large_bench, LargeBenchConfig};
use gosh_bench::serve::{run_serve_bench, ServeBenchConfig};
use gosh_bench::stream::{run_stream_bench, StreamBenchConfig};

use gosh_coarsen::hierarchy::{coarsen_hierarchy, CoarsenConfig};
use gosh_core::backend::BackendChoice;
use gosh_core::config::{GoshConfig, PrecisionSchedule, Preset};
use gosh_core::distrib::{embed_distributed, DistribConfig, TransportKind};
use gosh_core::model::Embedding;
use gosh_core::pipeline::embed as gosh_embed;
use gosh_core::quant::Precision;
use gosh_core::serve::{ServeClient, ServeConfig, Server};
use gosh_core::store::{embin_path_for, write_store, EmbeddingStore};
use gosh_eval::{evaluate_link_prediction, EvalConfig};
use gosh_gpu::{Device, DeviceConfig};
use gosh_graph::components::connected_components;
use gosh_graph::csr::Csr;
use gosh_graph::gen::{community_graph, sampled_clustering, CommunityConfig};
use gosh_graph::ingest::{load_edge_list_parallel, IngestConfig};
use gosh_graph::io::{self, LoadedGraph};
use gosh_graph::split::{train_test_split, SplitConfig};
use gosh_graph::stats::GraphStats;
use gosh_graph::stream::{apply_delta, load_delta, resolve_delta};

use crate::args::{parse, Parsed};

/// Flags shared by `embed`, `eval` and `train` (the GOSH pipeline knobs).
const PIPELINE_FLAGS: &[&str] = &[
    "dim",
    "preset",
    "epochs",
    "device-mb",
    "threads",
    "backend",
    "precision",
    "precision-schedule",
];

/// Flags of the multi-node path (`train`, and `eval --nodes N`).
const DISTRIB_FLAGS: &[&str] = &[
    "nodes",
    "transport",
    "net-gbps",
    "exchange-every",
    "shard-min",
];

/// `PIPELINE_FLAGS ∪ DISTRIB_FLAGS` for commands that accept both.
fn pipeline_and_distrib_flags() -> Vec<&'static str> {
    [PIPELINE_FLAGS, DISTRIB_FLAGS].concat()
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8)
        .min(16)
}

/// A loaded input file: binary CSRs carry only the graph, text edge
/// lists also carry the original-id mapping and parse statistics.
enum LoadedInput {
    Binary(Csr),
    Text(LoadedGraph),
}

impl LoadedInput {
    fn graph(&self) -> &Csr {
        match self {
            LoadedInput::Binary(g) => g,
            LoadedInput::Text(l) => &l.graph,
        }
    }

    fn into_graph(self) -> Csr {
        match self {
            LoadedInput::Binary(g) => g,
            LoadedInput::Text(l) => l.graph,
        }
    }
}

/// Load an input file: `.csr` binary (streaming-validated) or edge-list
/// text (parallel ingestion path with `threads` workers).
fn load_input(path: &str, threads: usize) -> Result<LoadedInput, String> {
    if path.ends_with(".csr") {
        io::load_binary(path)
            .map(LoadedInput::Binary)
            .map_err(|e| format!("loading {path}: {e}"))
    } else {
        load_edge_list_parallel(path, &IngestConfig::with_threads(threads))
            .map(LoadedInput::Text)
            .map_err(|e| format!("loading {path}: {e}"))
    }
}

/// Load a graph: `.csr` binary or edge-list text, honouring the
/// command's `--threads` flag (commands without one use the default).
fn load_graph(path: &str, p: &Parsed) -> Result<Csr, String> {
    let threads = p.flag::<usize>("threads")?.unwrap_or_else(default_threads);
    load_input(path, threads).map(LoadedInput::into_graph)
}

/// Save a graph: `.csr` binary or edge-list text.
fn save_graph(path: &str, g: &Csr) -> Result<(), String> {
    let result = if path.ends_with(".csr") {
        io::write_binary(path, g)
    } else {
        io::write_edge_list(path, g)
    };
    result.map_err(|e| format!("writing {path}: {e}"))
}

fn parse_preset(p: &Parsed) -> Result<Preset, String> {
    match p.flag_str("preset").unwrap_or("normal") {
        "fast" => Ok(Preset::Fast),
        "normal" => Ok(Preset::Normal),
        "slow" => Ok(Preset::Slow),
        "nocoarse" => Ok(Preset::NoCoarsening),
        other => Err(format!(
            "unknown preset `{other}` (fast|normal|slow|nocoarse)"
        )),
    }
}

fn build_config(p: &Parsed) -> Result<(GoshConfig, Device), String> {
    let preset = parse_preset(p)?;
    let mut cfg = GoshConfig::preset(preset, false)
        .with_dim(p.flag::<usize>("dim")?.unwrap_or(32))
        .with_threads(p.flag::<usize>("threads")?.unwrap_or_else(default_threads));
    if let Some(e) = p.flag::<u32>("epochs")? {
        cfg = cfg.with_epochs(e);
    }
    if let Some(backend) = p.flag::<BackendChoice>("backend")? {
        cfg = cfg.with_backend(backend);
    }
    if let Some(precision) = p.flag::<gosh_core::Precision>("precision")? {
        cfg = cfg.with_precision(precision);
    }
    if let Some(spec) = p.flag_str("precision-schedule") {
        cfg = cfg.with_precision_schedule(parse_precision_schedule(spec)?);
    }
    let device_mb = p.flag::<usize>("device-mb")?.unwrap_or(12 * 1024);
    let device = Device::new(DeviceConfig::tiny(device_mb << 20));
    Ok((cfg, device))
}

/// Parse `--precision-schedule coarse:fine[:cutoff]` (e.g. `f32:i8` or
/// `f32:f16:8192`).
fn parse_precision_schedule(spec: &str) -> Result<PrecisionSchedule, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let err = || {
        format!(
            "bad precision schedule `{spec}` \
             (expected coarse:fine[:cutoff], e.g. f32:i8 or f32:f16:8192)"
        )
    };
    if parts.len() < 2 || parts.len() > 3 {
        return Err(err());
    }
    let coarse = parts[0]
        .parse::<gosh_core::Precision>()
        .map_err(|_| err())?;
    let fine = parts[1]
        .parse::<gosh_core::Precision>()
        .map_err(|_| err())?;
    let cutoff = match parts.get(2) {
        Some(c) => c.parse::<usize>().map_err(|_| err())?,
        None => PrecisionSchedule::DEFAULT_CUTOFF,
    };
    Ok(PrecisionSchedule {
        coarse,
        fine,
        cutoff,
    })
}

/// Parse the `--nodes`/`--transport`/... flags into a [`DistribConfig`].
fn parse_distrib(p: &Parsed) -> Result<DistribConfig, String> {
    let mut dcfg = DistribConfig::default();
    if let Some(n) = p.flag::<usize>("nodes")? {
        if n == 0 {
            return Err("--nodes must be at least 1".into());
        }
        dcfg.nodes = n;
    }
    if let Some(t) = p.flag::<TransportKind>("transport")? {
        dcfg.transport = t;
    }
    if let Some(g) = p.flag::<f64>("net-gbps")? {
        if g <= 0.0 {
            return Err("--net-gbps must be positive".into());
        }
        dcfg.net_gbps = g;
    }
    if let Some(e) = p.flag::<u32>("exchange-every")? {
        if e == 0 {
            return Err("--exchange-every must be at least 1".into());
        }
        dcfg.exchange_every = e;
    }
    if let Some(v) = p.flag::<usize>("shard-min")? {
        dcfg.shard_min = v;
    }
    Ok(dcfg)
}

/// `gosh generate <dataset|N:K> <out>`.
pub fn generate(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["seed"])?;
    let spec = p.positional(0, "dataset|N:K")?;
    let out = p.positional(1, "output file")?;
    let seed = p.flag::<u64>("seed")?.unwrap_or(42);

    let g = if let Some(d) = gosh_graph::gen::dataset(spec) {
        d.generate(seed)
    } else if let Some((n, k)) = spec.split_once(':') {
        let n: usize = n.parse().map_err(|_| format!("bad vertex count `{n}`"))?;
        let k: usize = k.parse().map_err(|_| format!("bad degree `{k}`"))?;
        community_graph(&CommunityConfig::new(n, k), seed)
    } else {
        return Err(format!(
            "`{spec}` is neither a suite dataset nor N:K (try `gosh generate 10000:8 g.txt`)"
        ));
    };
    save_graph(out, &g)?;
    println!(
        "wrote {} ({} vertices, {} edges)",
        out,
        g.num_vertices(),
        g.num_undirected_edges()
    );
    Ok(())
}

/// `gosh stats <graph> [--threads N]`.
pub fn stats(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["threads"])?;
    let threads = p.flag::<usize>("threads")?.unwrap_or_else(default_threads);
    let input = load_input(p.positional(0, "graph")?, threads)?;
    let g = input.graph();
    let s = GraphStats::compute(g);
    let comps = connected_components(g);
    println!("vertices        {}", s.num_vertices);
    println!("edges           {}", s.num_edges);
    println!("density |E|/|V| {:.3}", s.density);
    println!("max degree      {}", s.max_degree);
    println!("isolated        {}", s.isolated);
    println!("hub mass (top1%) {:.3}", s.hub_mass);
    println!("clustering est. {:.3}", sampled_clustering(g, 4000, 7));
    println!("components      {}", comps.count);
    println!(
        "giant component {:.1}%",
        100.0 * comps.giant_fraction(s.num_vertices)
    );
    if let LoadedInput::Text(l) = &input {
        println!("edge lines      {}", l.stats.edge_lines);
        println!("weighted lines  {}", l.stats.weighted_lines);
        println!("self loops dropped {}", l.stats.self_loops_dropped);
        println!("duplicates dropped {}", l.stats.duplicates_dropped);
    }
    Ok(())
}

/// `gosh convert <in> <out> [--threads N]`: re-encode a graph between
/// the edge-list and binary CSR formats. Text inputs keep their original
/// vertex ids when written back as text (binary CSRs have no id mapping,
/// so text written from `.csr` uses the dense ids).
pub fn convert(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["threads"])?;
    let input_path = p.positional(0, "input graph")?;
    let out = p.positional(1, "output file")?;
    let threads = p.flag::<usize>("threads")?.unwrap_or_else(default_threads);
    let input = load_input(input_path, threads)?;
    let to_csr = out.ends_with(".csr");
    let result = match (&input, to_csr) {
        (_, true) => io::write_binary(out, input.graph()),
        (LoadedInput::Text(l), false) => l.write_edge_list(out),
        (LoadedInput::Binary(g), false) => io::write_edge_list(out, g),
    };
    result.map_err(|e| format!("writing {out}: {e}"))?;
    let g = input.graph();
    println!(
        "wrote {} ({} vertices, {} edges{})",
        out,
        g.num_vertices(),
        g.num_undirected_edges(),
        match (&input, to_csr) {
            (LoadedInput::Text(_), false) => ", original ids preserved",
            _ => "",
        }
    );
    if let LoadedInput::Text(l) = &input {
        if l.stats.self_loops_dropped + l.stats.duplicates_dropped > 0 {
            println!(
                "cleaned: {} self loops, {} duplicate edges dropped",
                l.stats.self_loops_dropped, l.stats.duplicates_dropped
            );
        }
    }
    Ok(())
}

/// `gosh coarsen <graph> [--threads N] [--threshold T]`.
pub fn coarsen(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["threads", "threshold"])?;
    let g = load_graph(p.positional(0, "graph")?, &p)?;
    let cfg = CoarsenConfig {
        threads: p.flag::<usize>("threads")?.unwrap_or_else(default_threads),
        threshold: p.flag::<usize>("threshold")?.unwrap_or(100),
        ..Default::default()
    };
    let n0 = g.num_vertices();
    let h = coarsen_hierarchy(g, &cfg);
    println!("level 0: {} vertices", n0);
    for s in &h.stats {
        println!(
            "level {}: {} vertices, {} arcs, {:.4}s",
            s.level, s.vertices, s.edges, s.seconds
        );
    }
    println!(
        "D = {}, total {:.4}s (tau = {})",
        h.depth(),
        h.total_seconds(),
        cfg.threads
    );
    Ok(())
}

/// Shared by `embed` and `eval`: run GOSH on `g`. Returns the embedding,
/// the wall seconds, and the configured storage precision (so `embed`
/// can write the `.embin` store at the precision the run trained with).
fn run_gosh(g: &Csr, p: &Parsed) -> Result<(Embedding, f64, Precision), String> {
    let (cfg, device) = build_config(p)?;
    let t0 = Instant::now();
    let (m, report) = gosh_embed(g, &cfg, &device);
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "embedded: D = {} levels, {:.2}s total ({:.2}s coarsening), {} partitioned levels, {} CPU levels",
        report.depth,
        secs,
        report.coarsening_seconds,
        report.levels.iter().filter(|l| l.used_large_path).count(),
        report
            .levels
            .iter()
            .filter(|l| l.backend == gosh_core::BackendKind::CpuHogwild)
            .count()
    );
    Ok((m, secs, cfg.precision))
}

/// Write an embedding in the text format `embed`/`train` emit.
fn write_embedding(out: &str, m: &Embedding) -> Result<(), String> {
    let file = std::fs::File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "{} {}", m.num_vertices(), m.dim()).map_err(|e| e.to_string())?;
    for v in 0..m.num_vertices() as u32 {
        let row: Vec<String> = m.row(v).iter().map(|x| format!("{x:.6}")).collect();
        writeln!(w, "{v} {}", row.join(" ")).map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())?;
    println!("wrote {} ({} x {})", out, m.num_vertices(), m.dim());
    Ok(())
}

/// Write both artifacts of an embedding run: the text format (kept for
/// interoperability; its `{x:.6}` rendering truncates mantissas) and the
/// checksummed `.embin` binary store next to it, which round-trips
/// bit-exactly and is what `gosh serve` maps.
fn write_outputs(out: &str, m: &Embedding, precision: Precision) -> Result<(), String> {
    write_embedding(out, m)?;
    let bin = embin_path_for(out);
    write_store(&bin, m, precision).map_err(|e| format!("writing {bin}: {e}"))?;
    println!("wrote {bin} ({precision} store, lossless round-trip)");
    Ok(())
}

/// `gosh embed <graph> <out.emb> [...]`.
pub fn embed(args: &[String]) -> Result<(), String> {
    let p = parse(args, PIPELINE_FLAGS)?;
    let g = load_graph(p.positional(0, "graph")?, &p)?;
    let out = p.positional(1, "output file")?;
    let (m, _, precision) = run_gosh(&g, &p)?;
    write_outputs(out, &m, precision)
}

/// `gosh train <graph> <out.emb> --nodes N [...]`: embed across a mesh
/// of simulated nodes (replicated coarse levels, delta-exchanged sharded
/// fine levels) and write node 0's matrix.
pub fn train(args: &[String]) -> Result<(), String> {
    let p = parse(args, &pipeline_and_distrib_flags())?;
    let g = load_graph(p.positional(0, "graph")?, &p)?;
    let out = p.positional(1, "output file")?;
    let (cfg, _device) = build_config(&p)?;
    let dcfg = parse_distrib(&p)?;
    let (m, report) = embed_distributed(&g, &cfg, &dcfg).map_err(|e| e.to_string())?;
    println!(
        "trained on {} node(s): D = {} levels ({} sharded, {} replicated), \
         {} exchanges, {:.1} MB on the wire, {:.3}s exchange stall, \
         {:.0} updates/sec ({:.2}s total)",
        report.nodes,
        report.depth,
        report.sharded_levels,
        report.replicated_levels,
        report.exchanges,
        report.bytes_exchanged as f64 / (1024.0 * 1024.0),
        report.exchange_stall_seconds,
        report.updates_per_sec(),
        report.total_seconds,
    );
    write_outputs(out, &m, cfg.precision)
}

/// `gosh eval <graph> [...]`: split, embed the train side, report AUCROC.
/// With `--nodes N` the embedding trains on the multi-node path.
pub fn eval(args: &[String]) -> Result<(), String> {
    let p = parse(args, &pipeline_and_distrib_flags())?;
    let g = load_graph(p.positional(0, "graph")?, &p)?;
    let split = train_test_split(&g, &SplitConfig::default());
    println!(
        "split: train |V| = {}, |E| = {}; test edges = {}",
        split.train.num_vertices(),
        split.train.num_undirected_edges(),
        split.test_edges.len()
    );
    let dcfg = parse_distrib(&p)?;
    let (m, secs, threads) = if dcfg.nodes > 1 {
        let (cfg, _device) = build_config(&p)?;
        let t0 = Instant::now();
        let (m, report) =
            embed_distributed(&split.train, &cfg, &dcfg).map_err(|e| e.to_string())?;
        println!(
            "embedded on {} nodes: D = {} levels, {} exchanges, {:.3}s exchange stall",
            report.nodes, report.depth, report.exchanges, report.exchange_stall_seconds,
        );
        (m, t0.elapsed().as_secs_f64(), cfg.threads)
    } else {
        let (m, secs, _) = run_gosh(&split.train, &p)?;
        let threads = p.flag::<usize>("threads")?.unwrap_or_else(default_threads);
        (m, secs, threads)
    };
    let auc = evaluate_link_prediction(
        &m,
        &split.train,
        &split.test_edges,
        &EvalConfig {
            threads,
            ..Default::default()
        },
    );
    println!(
        "link-prediction AUCROC: {:.2}% ({:.2}s embedding)",
        100.0 * auc,
        secs
    );
    Ok(())
}

/// `gosh update <graph> <delta> <store.embin> <out.emb> [...]`: apply an
/// edge-delta file to a trained model — merge the delta into the graph,
/// repair the coarsening hierarchy around the touched region, and
/// warm-start retrain only the dirty vertices, with the old rows as
/// initialization. Orders of magnitude cheaper than re-embedding when
/// the delta is small relative to the graph.
pub fn update(args: &[String]) -> Result<(), String> {
    let p = parse(
        args,
        &[
            "threads",
            "preset",
            "epochs",
            "seed",
            "fallback-fraction",
            "epoch-scale",
            "precision",
            "save-graph",
        ],
    )?;
    let graph_path = p.positional(0, "graph")?;
    let delta_path = p.positional(1, "delta file")?;
    let store_path = p.positional(2, "model store (.embin)")?;
    let out = p.positional(3, "output file")?;
    let threads = p.flag::<usize>("threads")?.unwrap_or_else(default_threads);

    let input = load_input(graph_path, threads)?;
    let mut original_ids: Vec<u64> = match &input {
        LoadedInput::Binary(g) => (0..g.num_vertices() as u64).collect(),
        LoadedInput::Text(l) => l.original_ids.clone(),
    };
    let g_old = input.into_graph();

    let store = EmbeddingStore::open(store_path).map_err(|e| format!("{store_path}: {e}"))?;
    if store.num_vertices() != g_old.num_vertices() {
        return Err(format!(
            "store has {} rows but the graph has {} vertices — \
             is {store_path} the model trained on {graph_path}?",
            store.num_vertices(),
            g_old.num_vertices()
        ));
    }
    let m_old = store.to_embedding();
    let out_precision = p
        .flag::<Precision>("precision")?
        .unwrap_or_else(|| store.precision());

    let (raw_epochs, dstats) = load_delta(delta_path).map_err(|e| format!("{delta_path}: {e}"))?;

    let preset = parse_preset(&p)?;
    let mut cfg = GoshConfig::preset(preset, false)
        .with_dim(store.dim())
        .with_threads(threads);
    if let Some(e) = p.flag::<u32>("epochs")? {
        cfg = cfg.with_epochs(e);
    }
    cfg.seed = p.flag::<u64>("seed")?.unwrap_or(cfg.seed);
    let wcfg = gosh_core::warm::WarmConfig {
        fallback_fraction: p.flag::<f64>("fallback-fraction")?.unwrap_or(0.25),
        epoch_scale: p.flag::<f64>("epoch-scale")?.unwrap_or(0.5),
        cfg,
    };

    // The old hierarchy the repair works from: recover it once from the
    // pre-delta graph (coarsening is cheap next to training).
    let t0 = Instant::now();
    let h_old = coarsen_hierarchy(
        g_old.clone(),
        &CoarsenConfig {
            threshold: wcfg.cfg.coarsen_threshold,
            threads,
            ..Default::default()
        },
    );

    // Apply the delta epochs in order — within one epoch deletion wins,
    // across epochs later lines see the earlier result — accumulating
    // the dirty set for one warm retrain at the end.
    let mut g_cur = g_old;
    let mut dirty: Vec<u32> = Vec::new();
    let mut dropped = 0usize;
    for raw in &raw_epochs {
        let r = resolve_delta(raw, &original_ids);
        original_ids.extend(&r.new_original_ids);
        dropped += r.dropped_deletions;
        dirty.extend(r.delta.dirty_vertices(g_cur.num_vertices()));
        g_cur = apply_delta(&g_cur, &r.delta);
    }
    dirty.sort_unstable();
    dirty.dedup();

    let (m_new, _h_new, rep) = gosh_core::warm::warm_embed(&g_cur, &h_old, &m_old, &dirty, &wcfg);
    println!(
        "applied {} epoch(s): +{} -{} edge lines ({} unknown deletions dropped), \
         {} new vertices, {} dirty vertices",
        raw_epochs.len(),
        dstats.insert_lines,
        dstats.delete_lines,
        dropped,
        g_cur.num_vertices() - m_old.num_vertices(),
        dirty.len(),
    );
    println!(
        "warm retrain: D = {} levels ({} repaired{}), {} epochs over the dirty region, \
         {:.2}s repair + {:.2}s training ({:.2}s total)",
        rep.depth,
        rep.repaired_levels,
        if rep.fell_back {
            ", fell back to recoarsening"
        } else {
            ""
        },
        rep.epochs_per_level.iter().sum::<u32>(),
        rep.repair_seconds,
        rep.training_seconds,
        t0.elapsed().as_secs_f64(),
    );
    if let Some(path) = p.flag_str("save-graph") {
        save_graph(path, &g_cur)?;
        println!(
            "wrote {} ({} vertices, {} edges, dense ids)",
            path,
            g_cur.num_vertices(),
            g_cur.num_undirected_edges()
        );
    }
    write_outputs(out, &m_new, out_precision)
}

/// `gosh bench-train [...]`: time the CPU trainer hot path and write the
/// `BENCH_hotpath.json` perf-trajectory report (schema documented in
/// `gosh_bench::hotpath`).
pub fn bench_train(args: &[String]) -> Result<(), String> {
    let p = parse(
        args,
        &[
            "vertices",
            "degree",
            "dim",
            "threads",
            "epochs",
            "negatives",
            "seed",
            "baseline",
            "precisions",
            "reps",
            "out",
        ],
    )?;
    let defaults = HotpathConfig::default();
    let cfg = HotpathConfig {
        vertices: p.flag::<usize>("vertices")?.unwrap_or(defaults.vertices),
        degree: p.flag::<usize>("degree")?.unwrap_or(defaults.degree),
        dim: p.flag::<usize>("dim")?.unwrap_or(defaults.dim),
        threads: p.flag::<usize>("threads")?.unwrap_or(defaults.threads),
        epochs: p.flag::<u32>("epochs")?.unwrap_or(defaults.epochs),
        negative_samples: p
            .flag::<usize>("negatives")?
            .unwrap_or(defaults.negative_samples),
        seed: p.flag::<u64>("seed")?.unwrap_or(defaults.seed),
        baseline: p.flag::<bool>("baseline")?.unwrap_or(defaults.baseline),
        precisions: p.flag::<bool>("precisions")?.unwrap_or(defaults.precisions),
        repetitions: p.flag::<u32>("reps")?.unwrap_or(defaults.repetitions),
    };
    if cfg.threads == 0 || cfg.vertices < 2 {
        return Err("bench-train needs --threads >= 1 and --vertices >= 2".into());
    }
    let report = run_hotpath(&cfg);
    let out = p.flag_str("out").unwrap_or("BENCH_hotpath.json");
    std::fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "hotpath: {:.0} updates/sec ({} updates, {} threads, d = {}, {:.3}s)",
        report.updates_per_sec, report.updates, report.threads, report.dim, report.seconds
    );
    if let (Some(s), Some(x)) = (report.scalar_seconds, report.speedup_vs_scalar()) {
        println!(
            "scalar engine: {:.0} updates/sec — SIMD speedup {x:.2}x",
            report.updates as f64 / s
        );
    }
    if let (Some(b), Some(x)) = (report.seed_updates_per_sec(), report.speedup_vs_seed()) {
        println!("seed engine: {b:.0} updates/sec — speedup {x:.2}x");
    }
    for (name, precision, secs) in [
        ("f16", gosh_core::Precision::F16, report.f16_seconds),
        ("i8", gosh_core::Precision::I8, report.i8_seconds),
    ] {
        if let (Some(s), Some(x)) = (secs, report.speedup_vs_f32_per_byte(precision)) {
            println!(
                "{name}: {:.0} updates/sec — per-byte speedup {x:.2}x",
                report.updates as f64 / s
            );
        }
    }
    println!("wrote {out}");
    Ok(())
}

/// `gosh bench-coarsen [...]`: time the fused coarsening pipeline
/// against the frozen seed sequential path and write the
/// `BENCH_coarsen.json` perf-trajectory report (schema documented in
/// `gosh_bench::coarsen`).
pub fn bench_coarsen(args: &[String]) -> Result<(), String> {
    let p = parse(
        args,
        &[
            "vertices",
            "degree",
            "threads",
            "threshold",
            "seed",
            "baseline",
            "reps",
            "out",
        ],
    )?;
    let defaults = CoarsenBenchConfig::default();
    let cfg = CoarsenBenchConfig {
        vertices: p.flag::<usize>("vertices")?.unwrap_or(defaults.vertices),
        degree: p.flag::<usize>("degree")?.unwrap_or(defaults.degree),
        threads: p.flag::<usize>("threads")?.unwrap_or(defaults.threads),
        threshold: p.flag::<usize>("threshold")?.unwrap_or(defaults.threshold),
        seed: p.flag::<u64>("seed")?.unwrap_or(defaults.seed),
        baseline: p.flag::<bool>("baseline")?.unwrap_or(defaults.baseline),
        repetitions: p.flag::<u32>("reps")?.unwrap_or(defaults.repetitions),
    };
    if cfg.vertices < 4 || cfg.threads < 2 || cfg.threshold < 2 {
        return Err(
            "bench-coarsen needs --vertices >= 4, --threads >= 2 (1 selects the \
             sequential reference path, not the fused pipeline), --threshold >= 2"
                .into(),
        );
    }
    let report = run_coarsen_bench(&cfg);
    let out = p.flag_str("out").unwrap_or("BENCH_coarsen.json");
    std::fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "coarsen: {} levels to {} vertices in {:.4}s ({:.0} collapsed vertices/sec, {} threads)",
        report.levels,
        report.coarsest_vertices,
        report.seconds,
        report.vertices_collapsed_per_sec(),
        report.threads,
    );
    if let (Some(s), Some(x)) = (report.seq_seconds, report.speedup_vs_seq()) {
        println!("frozen sequential path: {s:.4}s — speedup {x:.2}x");
    }
    println!("wrote {out}");
    Ok(())
}

/// `gosh bench-ingest [...]`: time the parallel streaming edge-list
/// parser against the sequential reference parser and write the
/// `BENCH_ingest.json` perf-trajectory report (schema documented in
/// `gosh_bench::ingest`).
pub fn bench_ingest(args: &[String]) -> Result<(), String> {
    let p = parse(
        args,
        &[
            "vertices", "degree", "threads", "seed", "baseline", "reps", "out",
        ],
    )?;
    let defaults = IngestBenchConfig::default();
    let cfg = IngestBenchConfig {
        vertices: p.flag::<usize>("vertices")?.unwrap_or(defaults.vertices),
        degree: p.flag::<usize>("degree")?.unwrap_or(defaults.degree),
        threads: p.flag::<usize>("threads")?.unwrap_or(defaults.threads),
        seed: p.flag::<u64>("seed")?.unwrap_or(defaults.seed),
        baseline: p.flag::<bool>("baseline")?.unwrap_or(defaults.baseline),
        repetitions: p.flag::<u32>("reps")?.unwrap_or(defaults.repetitions),
    };
    if cfg.threads == 0 || cfg.vertices < 2 {
        return Err("bench-ingest needs --threads >= 1 and --vertices >= 2".into());
    }
    let report = run_ingest_bench(&cfg);
    let out = p.flag_str("out").unwrap_or("BENCH_ingest.json");
    std::fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "ingest: {:.0} edges/sec ({} edge lines, {:.1} MB, {} threads, {:.4}s, {:.1} MB/s)",
        report.edges_per_sec(),
        report.edge_lines,
        report.bytes as f64 / (1024.0 * 1024.0),
        report.threads,
        report.seconds,
        report.mb_per_sec(),
    );
    if let (Some(b), Some(x)) = (report.seq_edges_per_sec(), report.speedup_vs_seq()) {
        println!("frozen seed parser: {b:.0} edges/sec — speedup {x:.2}x");
    }
    println!("wrote {out}");
    Ok(())
}

/// `gosh bench-distrib [...]`: time the multi-node replica trainer
/// against the single-node path and write the `BENCH_distrib.json`
/// perf-trajectory report (schema documented in `gosh_bench::distrib`).
pub fn bench_distrib(args: &[String]) -> Result<(), String> {
    let p = parse(
        args,
        &[
            "vertices",
            "degree",
            "dim",
            "threads",
            "nodes",
            "transport",
            "net-gbps",
            "exchange-every",
            "shard-min",
            "epochs",
            "seed",
            "baseline",
            "reps",
            "out",
        ],
    )?;
    let defaults = DistribBenchConfig::default();
    let cfg = DistribBenchConfig {
        vertices: p.flag::<usize>("vertices")?.unwrap_or(defaults.vertices),
        degree: p.flag::<usize>("degree")?.unwrap_or(defaults.degree),
        dim: p.flag::<usize>("dim")?.unwrap_or(defaults.dim),
        threads: p.flag::<usize>("threads")?.unwrap_or(defaults.threads),
        nodes: p.flag::<usize>("nodes")?.unwrap_or(defaults.nodes),
        transport: p
            .flag::<TransportKind>("transport")?
            .unwrap_or(defaults.transport),
        net_gbps: p.flag::<f64>("net-gbps")?.unwrap_or(defaults.net_gbps),
        exchange_every: p
            .flag::<u32>("exchange-every")?
            .unwrap_or(defaults.exchange_every),
        shard_min: p.flag::<usize>("shard-min")?.unwrap_or(defaults.shard_min),
        epochs: p.flag::<u32>("epochs")?.unwrap_or(defaults.epochs),
        seed: p.flag::<u64>("seed")?.unwrap_or(defaults.seed),
        baseline: p.flag::<bool>("baseline")?.unwrap_or(defaults.baseline),
        repetitions: p.flag::<u32>("reps")?.unwrap_or(defaults.repetitions),
    };
    if cfg.vertices < 4 || cfg.nodes == 0 || cfg.threads == 0 || cfg.net_gbps <= 0.0 {
        return Err(
            "bench-distrib needs --vertices >= 4, --nodes >= 1, --threads >= 1, --net-gbps > 0"
                .into(),
        );
    }
    let report = run_distrib_bench(&cfg);
    let out = p.flag_str("out").unwrap_or("BENCH_distrib.json");
    std::fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    let d = &report.distrib;
    println!(
        "distrib: {:.0} updates/sec over {} nodes ({} levels sharded, {} replicated, \
         {} exchanges, {:.1} MB on wire, {:.3}s exchange stall, {:.3}s training)",
        d.updates_per_sec(),
        d.nodes,
        d.sharded_levels,
        d.replicated_levels,
        d.exchanges,
        d.bytes_exchanged as f64 / (1024.0 * 1024.0),
        d.exchange_stall_seconds,
        d.training_seconds,
    );
    if let (Some(s), Some(x)) = (report.single_seconds, report.speedup_vs_single()) {
        println!("single-node path: {s:.3}s training — speedup {x:.2}x");
    }
    println!("wrote {out}");
    Ok(())
}

/// `gosh bench-large [...]`: time the stream-overlapped Algorithm 5
/// pipeline against the frozen synchronous engine and write the
/// `BENCH_large.json` perf-trajectory report (schema documented in
/// `gosh_bench::large`).
pub fn bench_large(args: &[String]) -> Result<(), String> {
    let p = parse(
        args,
        &[
            "vertices",
            "degree",
            "dim",
            "device-kb",
            "pcie-gbps",
            "host-threads",
            "threads",
            "epochs",
            "batch",
            "negatives",
            "pgpu",
            "sgpu",
            "seed",
            "baseline",
            "reps",
            "out",
        ],
    )?;
    let defaults = LargeBenchConfig::default();
    let cfg = LargeBenchConfig {
        vertices: p.flag::<usize>("vertices")?.unwrap_or(defaults.vertices),
        degree: p.flag::<usize>("degree")?.unwrap_or(defaults.degree),
        dim: p.flag::<usize>("dim")?.unwrap_or(defaults.dim),
        device_bytes: p
            .flag::<usize>("device-kb")?
            .map(|kb| kb << 10)
            .unwrap_or(defaults.device_bytes),
        pcie_gbps: p.flag::<f64>("pcie-gbps")?.unwrap_or(defaults.pcie_gbps),
        host_threads: p
            .flag::<usize>("host-threads")?
            .unwrap_or(defaults.host_threads),
        threads: p.flag::<usize>("threads")?.unwrap_or(defaults.threads),
        epochs: p.flag::<u32>("epochs")?.unwrap_or(defaults.epochs),
        batch_b: p.flag::<usize>("batch")?.unwrap_or(defaults.batch_b),
        negative_samples: p
            .flag::<usize>("negatives")?
            .unwrap_or(defaults.negative_samples),
        p_gpu: p.flag::<usize>("pgpu")?.unwrap_or(defaults.p_gpu),
        s_gpu: p.flag::<usize>("sgpu")?.unwrap_or(defaults.s_gpu),
        seed: p.flag::<u64>("seed")?.unwrap_or(defaults.seed),
        baseline: p.flag::<bool>("baseline")?.unwrap_or(defaults.baseline),
        repetitions: p.flag::<u32>("reps")?.unwrap_or(defaults.repetitions),
    };
    if cfg.vertices < 4 || cfg.batch_b == 0 || cfg.p_gpu < 2 || cfg.s_gpu < 1 {
        return Err(
            "bench-large needs --vertices >= 4, --batch >= 1, --pgpu >= 2, --sgpu >= 1".into(),
        );
    }
    let report = run_large_bench(&cfg).map_err(|e| format!("bench-large: {e}"))?;
    let out = p.flag_str("out").unwrap_or("BENCH_large.json");
    std::fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    let r = &report.pipelined;
    println!(
        "large path: {:.1} kernels/sec ({} kernels, K = {}, {} bins, {:.3}s; {:.3}s transfer stall, {} of {} loads prefetched)",
        report.kernels_per_sec(),
        r.kernels,
        r.num_parts,
        r.bins,
        r.seconds,
        r.transfer_stall_seconds,
        r.prefetches,
        r.loads,
    );
    if let (Some(b), Some(x)) = (report.sync_kernels_per_sec(), report.speedup_vs_sync()) {
        println!("sync engine: {b:.1} kernels/sec — speedup {x:.2}x");
    }
    println!("wrote {out}");
    Ok(())
}

/// `gosh serve <store.embin> [--addr H:P] [--threads N] [--ivf BOOL]`:
/// map an `.embin` store and answer top-k queries over TCP until a
/// client sends shutdown. `--ivf false` skips the coarse-quantizer build
/// and serves exact-only (clients must then use `--nprobe 0`).
pub fn serve(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["addr", "threads", "ivf"])?;
    let path = p.positional(0, ".embin store")?;
    let store = EmbeddingStore::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let (n, dim, precision) = (store.num_vertices(), store.dim(), store.precision());
    let cfg = ServeConfig {
        threads: p.flag::<usize>("threads")?.unwrap_or_else(default_threads),
        build_ivf: p.flag::<bool>("ivf")?.unwrap_or(true),
        verbose: true,
    };
    let addr = p.flag_str("addr").unwrap_or("127.0.0.1:7070");
    let server = Server::bind(store, addr, cfg).map_err(|e| format!("binding {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    match server.index() {
        Some(ivf) => println!(
            "serving {path} ({n} x {dim}, {precision}) on {local}, {} IVF lists",
            ivf.nlist()
        ),
        None => println!("serving {path} ({n} x {dim}, {precision}) on {local}, exact only"),
    }
    std::io::stdout().flush().ok();
    server.run().map_err(|e| format!("serve loop: {e}"))
}

/// `gosh query <store.embin> --addr H:P [--ids 0,1,2] [--k K]
/// [--nprobe P] [--shutdown BOOL]`: look up the given vertices' rows in
/// the local store, send them as a batch to a running `gosh serve`, and
/// print each vertex's top-k neighbours as `id:score` pairs.
/// `--nprobe 0` (the default) asks for exact search.
pub fn query(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["addr", "ids", "k", "nprobe", "shutdown"])?;
    let path = p.positional(0, ".embin store")?;
    let addr = p
        .flag_str("addr")
        .ok_or("missing --addr (host:port printed by `gosh serve`)")?;
    let store = EmbeddingStore::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let k = p.flag::<usize>("k")?.unwrap_or(10);
    let nprobe = p.flag::<usize>("nprobe")?.unwrap_or(0);
    let ids: Vec<u32> = match p.flag_str("ids") {
        Some(spec) => spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("bad vertex id `{s}` in --ids"))
            })
            .collect::<Result<_, _>>()?,
        None => vec![0],
    };
    let dim = store.dim();
    let mut queries = vec![0.0f32; ids.len() * dim];
    for (i, &id) in ids.iter().enumerate() {
        if (id as usize) >= store.num_vertices() {
            return Err(format!(
                "vertex {id} out of range (store has {} rows)",
                store.num_vertices()
            ));
        }
        store.decode_row(id, &mut queries[i * dim..(i + 1) * dim]);
    }
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    let t0 = Instant::now();
    let results = client
        .query(&queries, dim, k, nprobe)
        .map_err(|e| e.to_string())?;
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    for (id, hits) in ids.iter().zip(&results) {
        let row: Vec<String> = hits
            .iter()
            .map(|h| format!("{}:{:.4}", h.id, h.score))
            .collect();
        println!("{id} -> {}", row.join(" "));
    }
    let engine = if nprobe == 0 {
        "exact".to_string()
    } else {
        format!("ivf nprobe {nprobe}")
    };
    println!("{} quer(ies) in {ms:.2} ms ({engine})", ids.len());
    if p.flag::<bool>("shutdown")?.unwrap_or(false) {
        client.shutdown().map_err(|e| e.to_string())?;
        println!("server shut down");
    }
    Ok(())
}

/// `gosh bench-serve [...]`: time the IVF query engine against
/// brute-force exact search through a real TCP loopback server and write
/// the `BENCH_serve.json` perf-trajectory report (schema documented in
/// `gosh_bench::serve`).
pub fn bench_serve(args: &[String]) -> Result<(), String> {
    let p = parse(
        args,
        &[
            "vertices",
            "degree",
            "dim",
            "threads",
            "precision",
            "k",
            "nprobe",
            "batch",
            "latency",
            "epochs",
            "seed",
            "reps",
            "out",
        ],
    )?;
    let defaults = ServeBenchConfig::default();
    let cfg = ServeBenchConfig {
        vertices: p.flag::<usize>("vertices")?.unwrap_or(defaults.vertices),
        degree: p.flag::<usize>("degree")?.unwrap_or(defaults.degree),
        dim: p.flag::<usize>("dim")?.unwrap_or(defaults.dim),
        threads: p.flag::<usize>("threads")?.unwrap_or(defaults.threads),
        precision: p
            .flag::<Precision>("precision")?
            .unwrap_or(defaults.precision),
        k: p.flag::<usize>("k")?.unwrap_or(defaults.k),
        nprobe: p.flag::<usize>("nprobe")?.unwrap_or(defaults.nprobe),
        batch_queries: p.flag::<usize>("batch")?.unwrap_or(defaults.batch_queries),
        latency_queries: p
            .flag::<usize>("latency")?
            .unwrap_or(defaults.latency_queries),
        epochs: p.flag::<u32>("epochs")?.unwrap_or(defaults.epochs),
        seed: p.flag::<u64>("seed")?.unwrap_or(defaults.seed),
        repetitions: p.flag::<u32>("reps")?.unwrap_or(defaults.repetitions),
    };
    if cfg.vertices < 4 || cfg.k == 0 || cfg.nprobe == 0 || cfg.batch_queries == 0 {
        return Err(
            "bench-serve needs --vertices >= 4, --k >= 1, --nprobe >= 1, --batch >= 1".into(),
        );
    }
    let report = run_serve_bench(&cfg);
    let out = p.flag_str("out").unwrap_or("BENCH_serve.json");
    std::fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "serve: exact {:.0} q/s, ivf {:.0} q/s (nprobe {}/{} lists, recall@{} {:.3}, \
         p50 {:.3} ms, p99 {:.3} ms, {} threads)",
        report.exact_qps,
        report.ivf_qps,
        report.nprobe,
        report.nlist,
        report.k,
        report.recall_at_k,
        report.p50_ms,
        report.p99_ms,
        report.threads,
    );
    println!("ivf vs exact: speedup {:.2}x", report.speedup_vs_exact());
    println!("wrote {out}");
    Ok(())
}

/// `gosh bench-stream [...]`: time the streaming delta path (edge-delta
/// apply + hierarchy repair + warm-start retrain) against a full rebuild
/// on a rolling temporal window, and write the `BENCH_stream.json`
/// perf-trajectory report (schema documented in `gosh_bench::stream`).
pub fn bench_stream(args: &[String]) -> Result<(), String> {
    let p = parse(
        args,
        &[
            "dataset",
            "vertices",
            "degree",
            "dim",
            "threads",
            "window",
            "steps",
            "epochs",
            "warm-scale",
            "fallback-fraction",
            "max-gap",
            "seed",
            "out",
        ],
    )?;
    let defaults = StreamBenchConfig::default();
    let dataset = match (p.flag_str("dataset"), p.flag::<usize>("vertices")?) {
        (Some(name), _) => Some(
            gosh_graph::gen::dataset(name)
                .ok_or_else(|| format!("unknown dataset `{name}`"))?
                .name,
        ),
        (None, Some(_)) => None, // explicit --vertices: community graph
        (None, None) => defaults.dataset,
    };
    let cfg = StreamBenchConfig {
        dataset,
        vertices: p.flag::<usize>("vertices")?.unwrap_or(defaults.vertices),
        degree: p.flag::<usize>("degree")?.unwrap_or(defaults.degree),
        dim: p.flag::<usize>("dim")?.unwrap_or(defaults.dim),
        threads: p.flag::<usize>("threads")?.unwrap_or(defaults.threads),
        window_fraction: p.flag::<f64>("window")?.unwrap_or(defaults.window_fraction),
        steps: p.flag::<usize>("steps")?.unwrap_or(defaults.steps),
        epochs: p.flag::<u32>("epochs")?.unwrap_or(defaults.epochs),
        warm_epoch_scale: p
            .flag::<f64>("warm-scale")?
            .unwrap_or(defaults.warm_epoch_scale),
        fallback_fraction: p
            .flag::<f64>("fallback-fraction")?
            .unwrap_or(defaults.fallback_fraction),
        max_auc_gap: p.flag::<f64>("max-gap")?.unwrap_or(defaults.max_auc_gap),
        seed: p.flag::<u64>("seed")?.unwrap_or(defaults.seed),
    };
    if cfg.steps == 0 || !(0.1..1.0).contains(&cfg.window_fraction) {
        return Err("bench-stream needs --steps >= 1 and --window in [0.1, 1.0)".into());
    }
    let report = run_stream_bench(&cfg);
    let out = p.flag_str("out").unwrap_or("BENCH_stream.json");
    std::fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "stream: {} steps of {} edges over a {}-edge window ({} vertices, {} threads)",
        report.steps, report.batch_edges, report.window_edges, report.vertices, report.threads,
    );
    println!(
        "delta path {:.2}s vs rebuild {:.2}s; AUC warm {:.4} vs full {:.4} (gap {:+.4})",
        report.delta_seconds,
        report.rebuild_seconds,
        report.auc_warm,
        report.auc_full,
        report.auc_gap(),
    );
    println!(
        "delta vs rebuild: speedup {:.2}x{}",
        report.speedup_vs_rebuild(),
        if report.fell_back_steps > 0 {
            format!(
                " ({} step(s) fell back to recoarsening)",
                report.fell_back_steps
            )
        } else {
            String::new()
        },
    );
    println!("wrote {out}");
    Ok(())
}

pub fn audit(args: &[String]) -> Result<(), String> {
    let p = parse(args, &["root", "write"])?;
    let root = std::path::PathBuf::from(p.flag_str("root").unwrap_or("."));
    let write = p.flag::<bool>("write")?.unwrap_or(false);

    let outcome = gosh_audit::run(&root, write)?;
    println!(
        "audit: {} files scanned, {} unsafe sites ({} in tests), {} waiver(s)",
        outcome.files_scanned, outcome.sites, outcome.test_sites, outcome.waivers,
    );
    for wrote in &outcome.wrote {
        println!("wrote {wrote}");
    }
    if outcome.passed() {
        println!("audit: PASS");
        Ok(())
    } else {
        for v in &outcome.violations {
            eprintln!("{v}");
        }
        Err(format!(
            "audit: {} violation(s); rules are documented in docs/SAFETY.md",
            outcome.violations.len()
        ))
    }
}
