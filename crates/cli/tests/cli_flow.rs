//! End-to-end CLI flows exercised through the command functions.

use std::path::PathBuf;
use std::process::Command;

fn gosh_bin() -> PathBuf {
    // Cargo puts integration-test binaries in target/<profile>/deps; the
    // CLI binary sits one directory up.
    let mut p = std::env::current_exe().unwrap();
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    p.join("gosh")
}

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(gosh_bin())
        .args(args)
        .output()
        .expect("failed to run gosh binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn generate_stats_coarsen_eval_flow() {
    let dir = std::env::temp_dir().join(format!("gosh_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("g.csr");
    let graph_s = graph.to_str().unwrap();

    let (ok, text) = run(&["generate", "3000:6", graph_s]);
    assert!(ok, "{text}");
    assert!(text.contains("3000 vertices"));

    let (ok, text) = run(&["stats", graph_s]);
    assert!(ok, "{text}");
    assert!(text.contains("giant component"));

    let (ok, text) = run(&["coarsen", graph_s, "--threads", "2"]);
    assert!(ok, "{text}");
    assert!(text.contains("level 1:"));

    let emb = dir.join("g.emb");
    let (ok, text) = run(&[
        "embed",
        graph_s,
        emb.to_str().unwrap(),
        "--dim",
        "8",
        "--epochs",
        "20",
    ]);
    assert!(ok, "{text}");
    let first_line = std::fs::read_to_string(&emb).unwrap();
    assert!(first_line.starts_with("3000 8"));

    let (ok, text) = run(&[
        "eval", graph_s, "--dim", "8", "--epochs", "40", "--preset", "fast",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("AUCROC"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (ok, text) = run(&["bogus-command"]);
    assert!(!ok);
    assert!(text.contains("unknown command"));

    let (ok, text) = run(&["generate", "not-a-spec", "/tmp/never.csr"]);
    assert!(!ok);
    assert!(text.contains("neither a suite dataset"));

    let (ok, text) = run(&["stats", "/definitely/missing/file.txt"]);
    assert!(!ok);
    assert!(text.contains("loading"));

    let (ok, text) = run(&["embed", "--dim"]);
    assert!(!ok);
    assert!(text.contains("expects a value"));
}

#[test]
fn flag_validation_catches_typos_and_misuse() {
    // An unknown flag must error, not be silently swallowed — the classic
    // trap was `--epoch 100` doing nothing.
    let (ok, text) = run(&["embed", "g.csr", "out.emb", "--epoch", "100"]);
    assert!(!ok);
    assert!(text.contains("unknown flag --epoch"), "{text}");
    assert!(text.contains("--epochs"), "should list known flags: {text}");

    // A flag directly followed by another flag must not consume it.
    let (ok, text) = run(&["embed", "g.csr", "out.emb", "--dim", "--epochs", "10"]);
    assert!(!ok);
    assert!(text.contains("expects a value"), "{text}");

    // A flag from another command's vocabulary is rejected by name.
    let (ok, text) = run(&["stats", "g.csr", "--dim", "8"]);
    assert!(!ok);
    assert!(text.contains("unknown flag --dim"), "{text}");
}

#[test]
fn equals_form_flags_work_end_to_end() {
    let dir = std::env::temp_dir().join(format!("gosh_cli_eq_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("g.csr");
    let graph_s = graph.to_str().unwrap();
    let (ok, text) = run(&["generate", "500:5", graph_s, "--seed=7"]);
    assert!(ok, "{text}");
    let emb = dir.join("g.emb");
    let (ok, text) = run(&[
        "embed",
        graph_s,
        emb.to_str().unwrap(),
        "--dim=8",
        "--epochs=10",
        "--backend=cpu",
    ]);
    assert!(ok, "{text}");
    let first_line = std::fs::read_to_string(&emb).unwrap();
    assert!(first_line.starts_with("500 8"), "{first_line}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_train_emits_hotpath_json() {
    let dir = std::env::temp_dir().join(format!("gosh_cli_bt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_hotpath.json");
    let (ok, text) = run(&[
        "bench-train",
        "--vertices",
        "512",
        "--degree",
        "6",
        "--dim",
        "16",
        "--threads",
        "2",
        "--epochs",
        "3",
        "--reps",
        "1",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("updates/sec"), "{text}");
    assert!(text.contains("speedup"), "{text}");
    let json = std::fs::read_to_string(&out).unwrap();
    for key in [
        "\"bench\": \"hotpath\"",
        "\"updates_per_sec\"",
        "\"speedup_vs_seed\"",
        "\"threads\": 2",
        "\"dim\": 16",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_coarsen_emits_coarsen_json() {
    let dir = std::env::temp_dir().join(format!("gosh_cli_bc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_coarsen.json");
    let (ok, text) = run(&[
        "bench-coarsen",
        "--vertices",
        "3000",
        "--degree",
        "8",
        "--threads",
        "2",
        "--threshold",
        "50",
        "--reps",
        "1",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("collapsed vertices/sec"), "{text}");
    assert!(text.contains("speedup"), "{text}");
    let json = std::fs::read_to_string(&out).unwrap();
    for key in [
        "\"bench\": \"coarsen\"",
        "\"levels_per_sec\"",
        "\"vertices_collapsed_per_sec\"",
        "\"speedup_vs_seq\"",
        "\"threads\": 2",
        "\"threshold\": 50",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }

    let (ok, text) = run(&["bench-coarsen", "--threshold", "1"]);
    assert!(!ok);
    assert!(text.contains("--threshold >= 2"), "{text}");

    // --threads 1 would silently measure the sequential reference path
    // instead of the fused pipeline: rejected, not coerced.
    let (ok, text) = run(&["bench-coarsen", "--threads", "1"]);
    assert!(!ok);
    assert!(text.contains("--threads >= 2"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn convert_round_trips_formats_and_original_ids() {
    let dir = std::env::temp_dir().join(format!("gosh_cli_cv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // A SNAP-style text file with sparse ids, a weight column, a self
    // loop, and a duplicate line.
    let txt = dir.join("g.txt");
    std::fs::write(
        &txt,
        "# snap-ish\n9000001 17\n17 400 2.5\n400 9000001\n400 400\n17 400\n",
    )
    .unwrap();
    let txt_s = txt.to_str().unwrap();

    // stats on a text file reports the ingestion counts.
    let (ok, text) = run(&["stats", txt_s, "--threads", "2"]);
    assert!(ok, "{text}");
    assert!(text.contains("self loops dropped 1"), "{text}");
    assert!(text.contains("duplicates dropped 1"), "{text}");
    assert!(text.contains("weighted lines  1"), "{text}");

    // Text -> text preserves original ids.
    let txt2 = dir.join("g2.txt");
    let (ok, text) = run(&["convert", txt_s, txt2.to_str().unwrap(), "--threads", "2"]);
    assert!(ok, "{text}");
    assert!(text.contains("original ids preserved"), "{text}");
    assert!(
        text.contains("1 self loops, 1 duplicate edges dropped"),
        "{text}"
    );
    let round = std::fs::read_to_string(&txt2).unwrap();
    assert!(round.contains("9000001"), "ids were relabelled: {round}");

    // Text -> binary -> text flows through both loaders.
    let csr = dir.join("g.csr");
    let (ok, text) = run(&["convert", txt_s, csr.to_str().unwrap()]);
    assert!(ok, "{text}");
    let txt3 = dir.join("g3.txt");
    let (ok, text) = run(&["convert", csr.to_str().unwrap(), txt3.to_str().unwrap()]);
    assert!(ok, "{text}");
    assert!(!text.contains("original ids preserved"), "{text}");
    let (ok, text) = run(&["stats", csr.to_str().unwrap()]);
    assert!(ok, "{text}");
    assert!(text.contains("vertices        3"), "{text}");

    let (ok, text) = run(&["convert", txt_s]);
    assert!(!ok);
    assert!(text.contains("missing <output file>"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_ingest_emits_ingest_json() {
    let dir = std::env::temp_dir().join(format!("gosh_cli_bi_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_ingest.json");
    let (ok, text) = run(&[
        "bench-ingest",
        "--vertices",
        "2000",
        "--degree",
        "6",
        "--threads",
        "2",
        "--reps",
        "1",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("edges/sec"), "{text}");
    assert!(text.contains("speedup"), "{text}");
    let json = std::fs::read_to_string(&out).unwrap();
    for key in [
        "\"bench\": \"ingest\"",
        "\"edges_per_sec\"",
        "\"mb_per_sec\"",
        "\"speedup_vs_seq\"",
        "\"threads\": 2",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }

    let (ok, text) = run(&["bench-ingest", "--threads", "0"]);
    assert!(!ok);
    assert!(text.contains("--threads >= 1"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_large_emits_large_json() {
    let dir = std::env::temp_dir().join(format!("gosh_cli_bl_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_large.json");
    let (ok, text) = run(&[
        "bench-large",
        "--vertices",
        "512",
        "--degree",
        "6",
        "--dim",
        "16",
        "--device-kb",
        "24",
        "--threads",
        "2",
        "--epochs",
        "8",
        "--batch",
        "2",
        "--negatives",
        "2",
        "--reps",
        "1",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("kernels/sec"), "{text}");
    assert!(text.contains("speedup"), "{text}");
    let json = std::fs::read_to_string(&out).unwrap();
    for key in [
        "\"bench\": \"large\"",
        "\"kernels_per_sec\"",
        "\"transfer_stall_seconds\"",
        "\"speedup_vs_sync\"",
        "\"num_parts\"",
        "\"dim\": 16",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }

    let (ok, text) = run(&["bench-large", "--pgpu", "1"]);
    assert!(!ok);
    assert!(text.contains("--pgpu >= 2"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn backend_flag_selects_engines() {
    let dir = std::env::temp_dir().join(format!("gosh_cli_be_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("g.csr");
    let graph_s = graph.to_str().unwrap();
    let (ok, text) = run(&["generate", "600:5", graph_s]);
    assert!(ok, "{text}");

    for backend in ["cpu", "gpu", "auto"] {
        let emb = dir.join(format!("g_{backend}.emb"));
        let (ok, text) = run(&[
            "embed",
            graph_s,
            emb.to_str().unwrap(),
            "--dim",
            "8",
            "--epochs",
            "10",
            "--backend",
            backend,
        ]);
        assert!(ok, "--backend {backend}: {text}");
        assert!(text.contains("CPU levels"), "{text}");
        if backend == "cpu" {
            // Every level off-device: the CPU level count is nonzero.
            // (Comma-anchored so "10 CPU levels" cannot false-match.)
            assert!(!text.contains(", 0 CPU levels"), "{text}");
        }
    }

    let (ok, text) = run(&["embed", graph_s, "/tmp/never.emb", "--backend", "tpu"]);
    assert!(!ok);
    assert!(
        text.contains("unknown backend `tpu` (cpu|gpu|auto)"),
        "{text}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn embed_serve_query_flow_over_tcp_loopback() {
    use std::io::BufRead;

    let dir = std::env::temp_dir().join(format!("gosh_cli_sv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("g.csr");
    let graph_s = graph.to_str().unwrap();
    let (ok, text) = run(&["generate", "800:6", graph_s]);
    assert!(ok, "{text}");

    // embed writes the text artifact AND the lossless binary store.
    let emb = dir.join("g.emb");
    let (ok, text) = run(&[
        "embed",
        graph_s,
        emb.to_str().unwrap(),
        "--dim",
        "8",
        "--epochs",
        "10",
        "--precision",
        "i8",
    ]);
    assert!(ok, "{text}");
    let embin = dir.join("g.embin");
    assert!(text.contains("lossless"), "{text}");
    let header = std::fs::read(&embin).unwrap();
    assert_eq!(&header[..8], b"GOSHEMB1", "bad .embin magic");

    // Serve it on an OS-assigned loopback port; the bound address is the
    // first line of stdout.
    let mut server = Command::new(gosh_bin())
        .args([
            "serve",
            embin.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawning gosh serve");
    let stdout = server.stdout.take().unwrap();
    let mut first_line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut first_line)
        .unwrap();
    let addr = first_line
        .split(" on ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .unwrap_or_else(|| panic!("no address in serve banner: {first_line}"))
        .trim()
        .to_string();

    // Exact and IVF top-k over the socket, then shut the server down.
    let (ok, text) = run(&[
        "query",
        embin.to_str().unwrap(),
        "--addr",
        &addr,
        "--ids",
        "0,5,17",
        "--k",
        "4",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("0 ->") && text.contains("17 ->"), "{text}");
    assert!(text.contains("(exact)"), "{text}");
    let (ok, text) = run(&[
        "query",
        embin.to_str().unwrap(),
        "--addr",
        &addr,
        "--ids",
        "3",
        "--nprobe",
        "4",
        "--shutdown",
        "true",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("ivf nprobe 4"), "{text}");
    assert!(text.contains("server shut down"), "{text}");
    let status = server.wait().expect("server exit");
    assert!(status.success(), "serve exited with {status}");

    // A corrupted store is refused at startup, not served.
    let mut bytes = std::fs::read(&embin).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    let bad = dir.join("bad.embin");
    std::fs::write(&bad, &bytes).unwrap();
    let (ok, text) = run(&["serve", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(text.contains("checksum"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_serve_emits_serve_json() {
    let dir = std::env::temp_dir().join(format!("gosh_cli_bs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("BENCH_serve.json");
    let (ok, text) = run(&[
        "bench-serve",
        "--vertices",
        "600",
        "--degree",
        "6",
        "--dim",
        "16",
        "--threads",
        "2",
        "--epochs",
        "6",
        "--batch",
        "32",
        "--latency",
        "8",
        "--reps",
        "1",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("q/s"), "{text}");
    assert!(text.contains("speedup"), "{text}");
    let json = std::fs::read_to_string(&out).unwrap();
    for key in [
        "\"bench\": \"serve\"",
        "\"exact_qps\"",
        "\"ivf_qps\"",
        "\"p50_ms\"",
        "\"p99_ms\"",
        "\"recall_at_k\"",
        "\"speedup_vs_exact\"",
        "\"threads\": 2",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }

    let (ok, text) = run(&["bench-serve", "--nprobe", "0"]);
    assert!(!ok);
    assert!(text.contains("--nprobe >= 1"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_prints_usage() {
    let (ok, text) = run(&["--help"]);
    assert!(ok);
    assert!(text.contains("USAGE"));
}
