//! End-to-end CLI flows exercised through the command functions.

use std::path::PathBuf;
use std::process::Command;

fn gosh_bin() -> PathBuf {
    // Cargo puts integration-test binaries in target/<profile>/deps; the
    // CLI binary sits one directory up.
    let mut p = std::env::current_exe().unwrap();
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    p.join("gosh")
}

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(gosh_bin())
        .args(args)
        .output()
        .expect("failed to run gosh binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn generate_stats_coarsen_eval_flow() {
    let dir = std::env::temp_dir().join(format!("gosh_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("g.csr");
    let graph_s = graph.to_str().unwrap();

    let (ok, text) = run(&["generate", "3000:6", graph_s]);
    assert!(ok, "{text}");
    assert!(text.contains("3000 vertices"));

    let (ok, text) = run(&["stats", graph_s]);
    assert!(ok, "{text}");
    assert!(text.contains("giant component"));

    let (ok, text) = run(&["coarsen", graph_s, "--threads", "2"]);
    assert!(ok, "{text}");
    assert!(text.contains("level 1:"));

    let emb = dir.join("g.emb");
    let (ok, text) = run(&[
        "embed",
        graph_s,
        emb.to_str().unwrap(),
        "--dim",
        "8",
        "--epochs",
        "20",
    ]);
    assert!(ok, "{text}");
    let first_line = std::fs::read_to_string(&emb).unwrap();
    assert!(first_line.starts_with("3000 8"));

    let (ok, text) = run(&[
        "eval", graph_s, "--dim", "8", "--epochs", "40", "--preset", "fast",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("AUCROC"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (ok, text) = run(&["bogus-command"]);
    assert!(!ok);
    assert!(text.contains("unknown command"));

    let (ok, text) = run(&["generate", "not-a-spec", "/tmp/never.csr"]);
    assert!(!ok);
    assert!(text.contains("neither a suite dataset"));

    let (ok, text) = run(&["stats", "/definitely/missing/file.txt"]);
    assert!(!ok);
    assert!(text.contains("loading"));

    let (ok, text) = run(&["embed", "--dim"]);
    assert!(!ok);
    assert!(text.contains("expects a value"));
}

#[test]
fn backend_flag_selects_engines() {
    let dir = std::env::temp_dir().join(format!("gosh_cli_be_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("g.csr");
    let graph_s = graph.to_str().unwrap();
    let (ok, text) = run(&["generate", "600:5", graph_s]);
    assert!(ok, "{text}");

    for backend in ["cpu", "gpu", "auto"] {
        let emb = dir.join(format!("g_{backend}.emb"));
        let (ok, text) = run(&[
            "embed",
            graph_s,
            emb.to_str().unwrap(),
            "--dim",
            "8",
            "--epochs",
            "10",
            "--backend",
            backend,
        ]);
        assert!(ok, "--backend {backend}: {text}");
        assert!(text.contains("CPU levels"), "{text}");
        if backend == "cpu" {
            // Every level off-device: the CPU level count is nonzero.
            // (Comma-anchored so "10 CPU levels" cannot false-match.)
            assert!(!text.contains(", 0 CPU levels"), "{text}");
        }
    }

    let (ok, text) = run(&["embed", graph_s, "/tmp/never.emb", "--backend", "tpu"]);
    assert!(!ok);
    assert!(
        text.contains("unknown backend `tpu` (cpu|gpu|auto)"),
        "{text}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_prints_usage() {
    let (ok, text) = run(&["--help"]);
    assert!(ok);
    assert!(text.contains("USAGE"));
}
