//! Explicit 8-wide f32 lanes for the training hot path.
//!
//! The pinned toolchain is **stable**, so there is no `std::simd`. Instead
//! every operation here exists twice with one shared contract:
//!
//! * a **scalar core** written as chunked loops over `[f32; 8]` lane
//!   groups — the shape LLVM's autovectorizer reliably turns into
//!   `vmulps`/`vaddps` on any target, and the semantic reference on
//!   targets without hand-written intrinsics;
//! * an **intrinsic path** (`core::arch::x86_64`, AVX2) selected at
//!   runtime via [`is_x86_feature_detected!`] and cached in an atomic, for
//!   the loops whose load/store structure (atomic pair cells) defeats
//!   autovectorization.
//!
//! Both paths are **bit-identical** by construction: the intrinsic code
//! uses `_mm256_mul_ps` + `_mm256_add_ps` (never a fused
//! multiply-add — Rust does not contract scalar `a * b + c` either, so
//! fusing would change results), keeps one vector accumulator whose lanes
//! mirror the scalar `[f32; 8]` accumulator exactly, and funnels through
//! the same fixed horizontal-sum tree [`hsum8`]. Loads are unaligned
//! (`loadu`): row storage comes from ordinary `Vec` allocations with no
//! 32-byte guarantee, and unaligned vector loads have carried no penalty
//! on anything that also has AVX2. A proptest in `prop_core.rs` enforces
//! scalar/intrinsic equality across lane counts and unaligned row lengths.
//!
//! The 8-lane accumulation order defined here is **the** dot-product
//! order of the CPU trainer: [`crate::update::update_embedding`] (plain
//! rows), [`crate::train_cpu::fused_update`] (staged source against an
//! atomic pair row) and the quantized engine all use [`dot8`] /
//! [`dot_pairs`], which keeps every path bit-identical to the scalar
//! reference. Remainder elements land in lanes `0..r`, so a row
//! zero-padded to the paired-lane width produces exactly the same lane
//! sums as the unpadded row.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::model::{pack_pair, unpack_pair};
use crate::update::{SIGMOID_BOUND, SIGMOID_TABLE};

/// Lane width of the trainer's vector operations.
pub const LANES: usize = 8;
/// Atomic pair cells per lane group (each cell holds two f32 lanes).
const GROUP_PAIRS: usize = LANES / 2;

/// The fixed horizontal-sum tree shared by every dot-product path.
///
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` — changing this order changes
/// the bits of every trained embedding, so it exists exactly once.
#[inline(always)]
pub fn hsum8(lanes: &[f32; LANES]) -> f32 {
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
}

/// Whether the intrinsic paths are available, detected once at runtime.
#[inline(always)]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // 0 = unknown, 1 = yes, 2 = no. A racy double-detect is harmless.
        static STATE: AtomicU8 = AtomicU8::new(0);
        match STATE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let yes = std::arch::is_x86_feature_detected!("avx2");
                STATE.store(if yes { 1 } else { 2 }, Ordering::Relaxed);
                yes
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the F16C half-precision conversion instructions are
/// available, detected once at runtime. Used by the quantized storage
/// paths in [`crate::quant`]; `vcvtps2ph`/`vcvtph2ps` with static RNE
/// rounding match the software converters bit for bit on every non-NaN
/// value.
#[inline(always)]
pub fn f16c_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // 0 = unknown, 1 = yes, 2 = no. A racy double-detect is harmless.
        static STATE: AtomicU8 = AtomicU8::new(0);
        match STATE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let yes = std::arch::is_x86_feature_detected!("f16c");
                STATE.store(if yes { 1 } else { 2 }, Ordering::Relaxed);
                yes
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// Plain-f32 rows
// ---------------------------------------------------------------------------

/// 8-lane dot product — the canonical accumulation order of the trainer.
#[inline]
pub fn dot8(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified at runtime.
        return unsafe { dot8_avx2(a, b) };
    }
    dot8_scalar(a, b)
}

/// Scalar core of [`dot8`]: chunked lane groups the autovectorizer turns
/// into `vmulps`/`vaddps`, remainder elements into lanes `0..r`.
#[inline]
pub fn dot8_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        for k in 0..LANES {
            acc[k] += xs[k] * ys[k];
        }
    }
    for (k, (x, y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        acc[k] += x * y;
    }
    hsum8(&acc)
}

/// AVX2 path of [`dot8`]: one vector accumulator whose lanes mirror the
/// scalar accumulator, `mul` + `add` (no fma contraction), the shared
/// [`hsum8`] tree at the end.
///
/// # Safety
/// The CPU must support AVX2 (callers check [`avx2_available`] first).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot8_avx2(a: &[f32], b: &[f32]) -> f32 {
    use core::arch::x86_64::*;
    let n = a.len().min(b.len());
    let chunks = n / LANES;
    let mut acc = _mm256_setzero_ps();
    for c in 0..chunks {
        // SAFETY: `LANES * c + LANES <= n <= a.len(), b.len()`, so both
        // unaligned 8-lane loads read inside their slices.
        let (xs, ys) = unsafe {
            (
                _mm256_loadu_ps(a.as_ptr().add(LANES * c)),
                _mm256_loadu_ps(b.as_ptr().add(LANES * c)),
            )
        };
        acc = _mm256_add_ps(acc, _mm256_mul_ps(xs, ys));
    }
    let mut lanes = [0.0f32; LANES];
    // SAFETY: `lanes` is exactly 8 f32s — the width of one vector store.
    unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), acc) };
    let done = chunks * LANES;
    for (k, (x, y)) in a[done..n].iter().zip(&b[done..n]).enumerate() {
        lanes[k] += x * y;
    }
    hsum8(&lanes)
}

/// The fused two-sided axpy of Algorithm 1 over plain rows: per element,
/// `src += score·smp` and `smp += score·src_old` with pre-update values
/// on both sides. Purely lanewise, so the chunked scalar loop is already
/// the vector semantics; LLVM autovectorizes it.
#[inline]
pub fn fused_axpy8(src: &mut [f32], smp: &mut [f32], score: f32) {
    let mut cs = src.chunks_exact_mut(LANES);
    let mut cm = smp.chunks_exact_mut(LANES);
    for (xs, ys) in (&mut cs).zip(&mut cm) {
        for k in 0..LANES {
            let s_old = xs[k];
            xs[k] += score * ys[k];
            ys[k] += score * s_old;
        }
    }
    for (x, y) in cs.into_remainder().iter_mut().zip(cm.into_remainder()) {
        let s_old = *x;
        *x += score * *y;
        *y += score * s_old;
    }
}

// ---------------------------------------------------------------------------
// Lanewise sigmoid
// ---------------------------------------------------------------------------

/// Eight sigmoids at once: the affine transform and clamps compute
/// lanewise (autovectorized), then the knot values gather from the shared
/// table per lane. Bit-identical to eight [`crate::update::fast_sigmoid`]
/// calls, including saturation at `±8` and NaN propagation.
#[inline]
pub fn fast_sigmoid8(xs: &[f32; LANES]) -> [f32; LANES] {
    let tab = crate::update::sigmoid_table();
    let mut idx = [0usize; LANES];
    let mut frac = [0.0f32; LANES];
    for k in 0..LANES {
        let t = (xs[k] + SIGMOID_BOUND) * (SIGMOID_TABLE as f32 / (2.0 * SIGMOID_BOUND));
        idx[k] = (t as usize).min(SIGMOID_TABLE - 1);
        frac[k] = t - idx[k] as f32;
    }
    let mut out = [0.0f32; LANES];
    for k in 0..LANES {
        // The per-lane table gather; interpolation is lanewise again.
        let lo = tab[idx[k]];
        let hi = tab[idx[k] + 1];
        let interp = lo + (hi - lo) * frac[k];
        out[k] = if xs[k] >= SIGMOID_BOUND {
            1.0
        } else if xs[k] <= -SIGMOID_BOUND {
            0.0
        } else {
            interp
        };
    }
    out
}

// ---------------------------------------------------------------------------
// Atomic pair rows (the SharedMatrix cell format)
// ---------------------------------------------------------------------------

/// Load a group of four pair cells into eight f32 lanes.
#[inline(always)]
fn load_group(ws: &[AtomicU64]) -> [f32; LANES] {
    debug_assert_eq!(ws.len(), GROUP_PAIRS);
    let mut out = [0.0f32; LANES];
    for k in 0..GROUP_PAIRS {
        let (lo, hi) = unpack_pair(ws[k].load(Ordering::Relaxed));
        out[2 * k] = lo;
        out[2 * k + 1] = hi;
    }
    out
}

/// Dot product between a staged (padded) source row and an atomic pair
/// row. `src.len()` must be `2 * sample.len()`.
#[inline]
pub fn dot_pairs(src: &[f32], sample: &[AtomicU64]) -> f32 {
    debug_assert_eq!(src.len(), 2 * sample.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified at runtime.
        return unsafe { dot_pairs_avx2(src, sample) };
    }
    dot_pairs_scalar(src, sample)
}

/// Scalar core of [`dot_pairs`] — same lane assignment as [`dot8_scalar`]
/// over the unpacked row.
#[inline]
pub fn dot_pairs_scalar(src: &[f32], sample: &[AtomicU64]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut cs = src.chunks_exact(LANES);
    let mut cu = sample.chunks_exact(GROUP_PAIRS);
    for (xs, ws) in (&mut cs).zip(&mut cu) {
        let ys = load_group(ws);
        for k in 0..LANES {
            acc[k] += xs[k] * ys[k];
        }
    }
    let xs = cs.remainder();
    for (i, w) in cu.remainder().iter().enumerate() {
        let (y0, y1) = unpack_pair(w.load(Ordering::Relaxed));
        acc[2 * i] += xs[2 * i] * y0;
        acc[2 * i + 1] += xs[2 * i + 1] * y1;
    }
    hsum8(&acc)
}

/// AVX2 path of [`dot_pairs`]. Pair cells are staged into a `[u64; 4]`
/// via relaxed loads, then reinterpreted as eight f32 lanes — on
/// little-endian x86 the low word of `pack_pair` is the even lane, so the
/// cast is exactly [`load_group`] without the shifts. Going through the
/// staging array keeps every atomic access a plain `load` (no vector
/// access aliases the atomics, so there is no tearing and no UB).
///
/// # Safety
/// The CPU must support AVX2 (callers check [`avx2_available`] first),
/// and `src.len()` must be `2 * sample.len()` (the staged-row contract
/// of [`dot_pairs`], asserted there).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_pairs_avx2(src: &[f32], sample: &[AtomicU64]) -> f32 {
    use core::arch::x86_64::*;
    let groups = sample.len() / GROUP_PAIRS;
    let mut acc = _mm256_setzero_ps();
    for g in 0..groups {
        let mut bits = [0u64; GROUP_PAIRS];
        for k in 0..GROUP_PAIRS {
            bits[k] = sample[GROUP_PAIRS * g + k].load(Ordering::Relaxed);
        }
        // SAFETY: `bits` is a local `[u64; 4]` = 32 bytes = one 8-lane
        // read, and `LANES * g + LANES <= 2 * sample.len() = src.len()`,
        // so both loads stay in bounds.
        let (ys, xs) = unsafe {
            (
                _mm256_loadu_ps(bits.as_ptr().cast::<f32>()),
                _mm256_loadu_ps(src.as_ptr().add(LANES * g)),
            )
        };
        acc = _mm256_add_ps(acc, _mm256_mul_ps(xs, ys));
    }
    let mut lanes = [0.0f32; LANES];
    // SAFETY: `lanes` is exactly 8 f32s — the width of one vector store.
    unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), acc) };
    let done = GROUP_PAIRS * groups;
    for (i, w) in sample[done..].iter().enumerate() {
        let (y0, y1) = unpack_pair(w.load(Ordering::Relaxed));
        lanes[2 * i] += src[LANES * groups + 2 * i] * y0;
        lanes[2 * i + 1] += src[LANES * groups + 2 * i + 1] * y1;
    }
    hsum8(&lanes)
}

/// The two-sided axpy of [`crate::train_cpu::fused_update`]: store
/// `u + score·x` back into each pair cell and update the staged source
/// with `x + score·u`, pre-update values on both sides.
#[inline]
pub fn update_pairs(src: &mut [f32], sample: &[AtomicU64], score: f32) {
    debug_assert_eq!(src.len(), 2 * sample.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 presence was just verified at runtime.
        unsafe { update_pairs_avx2(src, sample, score) };
        return;
    }
    update_pairs_scalar(src, sample, score);
}

/// Scalar core of [`update_pairs`].
#[inline]
pub fn update_pairs_scalar(src: &mut [f32], sample: &[AtomicU64], score: f32) {
    let mut cs = src.chunks_exact_mut(LANES);
    let mut cu = sample.chunks_exact(GROUP_PAIRS);
    for (xs, ws) in (&mut cs).zip(&mut cu) {
        let us = load_group(ws);
        for k in 0..GROUP_PAIRS {
            ws[k].store(
                pack_pair(
                    us[2 * k] + score * xs[2 * k],
                    us[2 * k + 1] + score * xs[2 * k + 1],
                ),
                Ordering::Relaxed,
            );
        }
        for k in 0..LANES {
            xs[k] += score * us[k];
        }
    }
    let xs = cs.into_remainder();
    for (i, w) in cu.remainder().iter().enumerate() {
        let (u0, u1) = unpack_pair(w.load(Ordering::Relaxed));
        w.store(
            pack_pair(u0 + score * xs[2 * i], u1 + score * xs[2 * i + 1]),
            Ordering::Relaxed,
        );
        xs[2 * i] += score * u0;
        xs[2 * i + 1] += score * u1;
    }
}

/// AVX2 path of [`update_pairs`] — same staging-array discipline as
/// [`dot_pairs`]: relaxed loads into `[u64; 4]`, vector math on the
/// reinterpreted lanes, vector store back into the staging array, relaxed
/// stores out. `mul` + `add`, lanewise identical to the scalar core.
///
/// # Safety
/// The CPU must support AVX2 (callers check [`avx2_available`] first),
/// and `src.len()` must be `2 * sample.len()` (the staged-row contract
/// of [`update_pairs`], asserted there).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn update_pairs_avx2(src: &mut [f32], sample: &[AtomicU64], score: f32) {
    use core::arch::x86_64::*;
    let groups = sample.len() / GROUP_PAIRS;
    let sv = _mm256_set1_ps(score);
    for g in 0..groups {
        let mut bits = [0u64; GROUP_PAIRS];
        for k in 0..GROUP_PAIRS {
            bits[k] = sample[GROUP_PAIRS * g + k].load(Ordering::Relaxed);
        }
        // SAFETY: `bits` is a local `[u64; 4]` = 32 bytes = one 8-lane
        // group, and `LANES * g + LANES <= 2 * sample.len() = src.len()`,
        // so the in-place pointer stays in bounds for the load and the
        // store below. No vector access touches the atomics directly —
        // only the staging array.
        let (us, xp, xs) = unsafe {
            let us = _mm256_loadu_ps(bits.as_ptr().cast::<f32>());
            let xp = src.as_mut_ptr().add(LANES * g);
            (us, xp, _mm256_loadu_ps(xp))
        };
        let new_u = _mm256_add_ps(us, _mm256_mul_ps(sv, xs));
        let new_x = _mm256_add_ps(xs, _mm256_mul_ps(sv, us));
        // SAFETY: same bounds as the loads above; `xp` was derived from
        // `src` inside this iteration, and `bits` is still 32 bytes.
        unsafe {
            _mm256_storeu_ps(bits.as_mut_ptr().cast::<f32>(), new_u);
            for k in 0..GROUP_PAIRS {
                sample[GROUP_PAIRS * g + k].store(bits[k], Ordering::Relaxed);
            }
            _mm256_storeu_ps(xp, new_x);
        }
    }
    let done = GROUP_PAIRS * groups;
    let xs = &mut src[LANES * groups..];
    for (i, w) in sample[done..].iter().enumerate() {
        let (u0, u1) = unpack_pair(w.load(Ordering::Relaxed));
        w.store(
            pack_pair(u0 + score * xs[2 * i], u1 + score * xs[2 * i + 1]),
            Ordering::Relaxed,
        );
        xs[2 * i] += score * u0;
        xs[2 * i + 1] += score * u1;
    }
}

/// Unpack an atomic pair row into a staged f32 row (`dst.len() == 2 *
/// pairs.len()`), four cells per iteration so the unpack compiles to
/// straight vector moves.
#[inline]
pub fn load_row_pairs(dst: &mut [f32], pairs: &[AtomicU64]) {
    debug_assert_eq!(dst.len(), 2 * pairs.len());
    let mut cd = dst.chunks_exact_mut(LANES);
    let mut cp = pairs.chunks_exact(GROUP_PAIRS);
    for (slot, ws) in (&mut cd).zip(&mut cp) {
        slot.copy_from_slice(&load_group(ws));
    }
    for (slot, w) in cd.into_remainder().chunks_exact_mut(2).zip(cp.remainder()) {
        let (a0, a1) = unpack_pair(w.load(Ordering::Relaxed));
        slot[0] = a0;
        slot[1] = a1;
    }
}

/// Pack a staged f32 row back into its atomic pair row.
#[inline]
pub fn store_row_pairs(pairs: &[AtomicU64], src: &[f32]) {
    debug_assert_eq!(src.len(), 2 * pairs.len());
    let mut cs = src.chunks_exact(LANES);
    let mut cp = pairs.chunks_exact(GROUP_PAIRS);
    for (slot, ws) in (&mut cs).zip(&mut cp) {
        for k in 0..GROUP_PAIRS {
            ws[k].store(pack_pair(slot[2 * k], slot[2 * k + 1]), Ordering::Relaxed);
        }
    }
    for (slot, w) in cs.remainder().chunks_exact(2).zip(cp.remainder()) {
        w.store(pack_pair(slot[0], slot[1]), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::fast_sigmoid;
    use gosh_graph::rng::Xorshift128Plus;

    fn random_vec(rng: &mut Xorshift128Plus, d: usize) -> Vec<f32> {
        (0..d).map(|_| rng.next_f32() - 0.5).collect()
    }

    fn pairs_from(row: &[f32]) -> Vec<AtomicU64> {
        row.chunks(2)
            .map(|c| AtomicU64::new(pack_pair(c[0], *c.get(1).unwrap_or(&0.0))))
            .collect()
    }

    fn pairs_to_vec(pairs: &[AtomicU64]) -> Vec<f32> {
        let mut out = Vec::with_capacity(2 * pairs.len());
        for p in pairs {
            let (a, b) = unpack_pair(p.load(Ordering::Relaxed));
            out.push(a);
            out.push(b);
        }
        out
    }

    #[test]
    fn dot8_intrinsic_matches_scalar_bitwise() {
        let mut rng = Xorshift128Plus::new(7);
        for d in [1usize, 2, 3, 7, 8, 9, 15, 16, 17, 31, 64, 127, 128] {
            let a = random_vec(&mut rng, d);
            let b = random_vec(&mut rng, d);
            assert_eq!(
                dot8(&a, &b).to_bits(),
                dot8_scalar(&a, &b).to_bits(),
                "d={d}"
            );
        }
    }

    #[test]
    fn dot8_is_padding_invariant() {
        // Zero-padding to the paired-lane width must not change the bits:
        // this is what lets the staged (padded) source row and the plain
        // reference row produce identical dots.
        let mut rng = Xorshift128Plus::new(8);
        for d in 1usize..=33 {
            let a = random_vec(&mut rng, d);
            let b = random_vec(&mut rng, d);
            let mut ap = a.clone();
            let mut bp = b.clone();
            ap.resize(2 * d.div_ceil(2), 0.0);
            bp.resize(2 * d.div_ceil(2), 0.0);
            assert_eq!(
                dot8_scalar(&a, &b).to_bits(),
                dot8_scalar(&ap, &bp).to_bits(),
                "d={d}"
            );
        }
    }

    #[test]
    fn dot_pairs_matches_dot8_on_unpacked_row() {
        let mut rng = Xorshift128Plus::new(9);
        for d in [1usize, 2, 5, 7, 8, 9, 16, 23, 31, 32, 128] {
            let padded = 2 * d.div_ceil(2);
            let mut src = random_vec(&mut rng, d);
            src.resize(padded, 0.0);
            let mut smp = random_vec(&mut rng, d);
            smp.resize(padded, 0.0);
            let cells = pairs_from(&smp);
            let expect = dot8_scalar(&src, &smp);
            assert_eq!(dot_pairs(&src, &cells).to_bits(), expect.to_bits(), "d={d}");
            assert_eq!(
                dot_pairs_scalar(&src, &cells).to_bits(),
                expect.to_bits(),
                "d={d} scalar"
            );
        }
    }

    #[test]
    fn update_pairs_intrinsic_matches_scalar_bitwise() {
        let mut rng = Xorshift128Plus::new(10);
        for d in [1usize, 2, 5, 8, 9, 16, 31, 32, 100, 128] {
            let padded = 2 * d.div_ceil(2);
            let mut src_a = random_vec(&mut rng, padded);
            let mut src_b = src_a.clone();
            let smp = random_vec(&mut rng, padded);
            let cells_a = pairs_from(&smp);
            let cells_b = pairs_from(&smp);
            update_pairs(&mut src_a, &cells_a, 0.017);
            update_pairs_scalar(&mut src_b, &cells_b, 0.017);
            assert_eq!(src_a, src_b, "d={d} src");
            assert_eq!(pairs_to_vec(&cells_a), pairs_to_vec(&cells_b), "d={d} smp");
        }
    }

    #[test]
    fn fused_axpy8_matches_elementwise_reference() {
        let mut rng = Xorshift128Plus::new(11);
        for d in [1usize, 7, 8, 9, 40] {
            let mut src = random_vec(&mut rng, d);
            let mut smp = random_vec(&mut rng, d);
            let mut src_ref = src.clone();
            let mut smp_ref = smp.clone();
            for k in 0..d {
                let s_old = src_ref[k];
                src_ref[k] += 0.03 * smp_ref[k];
                smp_ref[k] += 0.03 * s_old;
            }
            fused_axpy8(&mut src, &mut smp, 0.03);
            assert_eq!(src, src_ref, "d={d}");
            assert_eq!(smp, smp_ref, "d={d}");
        }
    }

    #[test]
    fn fast_sigmoid8_matches_scalar_including_specials() {
        let mut x = -12.0f32;
        while x <= 12.0 {
            let mut lanes = [0.0f32; LANES];
            for (k, slot) in lanes.iter_mut().enumerate() {
                *slot = x + 0.001 * k as f32;
            }
            let got = fast_sigmoid8(&lanes);
            for k in 0..LANES {
                assert_eq!(
                    got[k].to_bits(),
                    fast_sigmoid(lanes[k]).to_bits(),
                    "x={}",
                    lanes[k]
                );
            }
            x += 0.37;
        }
        let specials = [
            SIGMOID_BOUND,
            -SIGMOID_BOUND,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MAX,
            f32::MIN,
            0.0,
            -0.0,
        ];
        let got = fast_sigmoid8(&specials);
        for k in 0..LANES {
            assert_eq!(got[k].to_bits(), fast_sigmoid(specials[k]).to_bits());
        }
        let nans = [f32::NAN; LANES];
        assert!(fast_sigmoid8(&nans).iter().all(|y| y.is_nan()));
    }

    #[test]
    fn row_pairs_round_trip_preserves_bits() {
        let mut rng = Xorshift128Plus::new(12);
        for pairs_len in [1usize, 3, 4, 5, 8, 64] {
            let row = random_vec(&mut rng, 2 * pairs_len);
            let cells = pairs_from(&row);
            let mut staged = vec![0.0f32; 2 * pairs_len];
            load_row_pairs(&mut staged, &cells);
            assert_eq!(staged, row);
            let zero: Vec<AtomicU64> = (0..pairs_len).map(|_| AtomicU64::new(0)).collect();
            store_row_pairs(&zero, &staged);
            assert_eq!(pairs_to_vec(&zero), row);
        }
    }
}
