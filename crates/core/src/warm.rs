//! Warm-start retraining for streaming deltas.
//!
//! After a delta lands ([`gosh_graph::stream::apply_delta`]) and the
//! hierarchy is repaired ([`gosh_coarsen::repair_hierarchy`]), a full
//! retrain would throw away every row the delta never touched. Instead
//! [`warm_embed`] re-runs the per-level epoch schedule **only over the
//! dirty region**:
//!
//! 1. the fine init matrix is the old embedding — old vertices keep
//!    their rows, new vertices start from the mean of their already-
//!    embedded neighbours (deterministic random when isolated);
//! 2. the init is aggregated up the repaired hierarchy (coarse row =
//!    mean of member rows), so every level starts from the old
//!    solution's projection instead of noise;
//! 3. each level trains with [`crate::train_cpu::train_cpu_sources`],
//!    drawing positive samples only from that level's dirty set
//!    (`RepairStats::dirty_per_level`) under a scaled
//!    [`crate::schedule::epoch_distribution`] — clean rows still adapt
//!    as sample targets, but no epoch budget is spent walking them;
//! 4. expansion between levels overwrites **only dirty fine rows** with
//!    their cluster's trained row; clean rows keep their init values.
//!
//! The warm path is CPU/f32-only: it exists to make small deltas cheap,
//! and the Hogwild CPU engine is the only backend whose sampling can be
//! restricted to a vertex subset without re-deriving the GPU schedule.

use std::time::Instant;

use gosh_coarsen::hierarchy::{CoarsenConfig, Hierarchy};
use gosh_coarsen::mapping::Mapping;
use gosh_coarsen::repair::{repair_hierarchy, RepairConfig};
use gosh_graph::csr::Csr;

use crate::backend::{Similarity, TrainParams};
use crate::config::GoshConfig;
use crate::model::Embedding;
use crate::quant::Precision;
use crate::schedule::epoch_distribution;
use crate::train_cpu::train_cpu_sources;

/// Knobs for one warm-start update.
#[derive(Clone, Debug)]
pub struct WarmConfig {
    /// The base pipeline configuration (dim must match the old matrix;
    /// `epochs`, `smoothing`, `threads`, `lr`, `negative_samples` and
    /// `seed` are honoured; backend/precision knobs are ignored — the
    /// warm path is CPU f32).
    pub cfg: GoshConfig,
    /// Dirty fraction above which a level abandons localized repair and
    /// recoarsens from scratch (see [`RepairConfig::fallback_fraction`]).
    pub fallback_fraction: f64,
    /// Multiplier on `cfg.epochs` for the warm schedule. Deltas touch a
    /// small region, so a fraction of the full budget usually suffices;
    /// the scaled total is clamped to at least 1.
    pub epoch_scale: f64,
}

impl Default for WarmConfig {
    fn default() -> Self {
        Self {
            cfg: GoshConfig::default(),
            fallback_fraction: 0.25,
            epoch_scale: 0.5,
        }
    }
}

/// What one [`warm_embed`] run did.
#[derive(Clone, Debug)]
pub struct WarmReport {
    /// Depth of the repaired hierarchy.
    pub depth: usize,
    /// Levels repaired locally (vs. rebuilt) — see [`RepairStats`].
    pub repaired_levels: usize,
    /// True if repair fell back to full recoarsening at some level.
    pub fell_back: bool,
    /// Dirty fraction per level (level-indexed, finest first).
    pub dirty_fractions: Vec<f64>,
    /// Positive-sample sources trained per level (level-indexed).
    pub trained_sources: Vec<usize>,
    /// Epochs spent per level (level-indexed).
    pub epochs_per_level: Vec<u32>,
    /// Wall-clock seconds spent repairing the hierarchy.
    pub repair_seconds: f64,
    /// Wall-clock seconds spent training.
    pub training_seconds: f64,
    /// End-to-end wall-clock seconds.
    pub total_seconds: f64,
}

/// Warm-start update: retrain `old` onto `g_new` given the level-0 dirty
/// set (delta endpoints plus appended vertices).
///
/// `g_new` must extend the old graph's vertex set (ids `< old` n keep
/// their identity). Returns the updated embedding over `g_new`, the
/// repaired hierarchy (reusable for the next delta), and a report.
///
/// # Panics
/// Panics if the old embedding does not match the old hierarchy's fine
/// graph, or if `wcfg.cfg.dim` differs from the old matrix dimension.
pub fn warm_embed(
    g_new: &Csr,
    old_hierarchy: &Hierarchy,
    old: &Embedding,
    dirty0: &[u32],
    wcfg: &WarmConfig,
) -> (Embedding, Hierarchy, WarmReport) {
    let t0 = Instant::now();
    let cfg = &wcfg.cfg;
    let old_n = old_hierarchy.graphs[0].num_vertices();
    assert_eq!(
        old.num_vertices(),
        old_n,
        "old embedding does not match the old hierarchy"
    );
    assert_eq!(cfg.dim, old.dim(), "dim mismatch with the old embedding");

    // Stage 1: repair the hierarchy around the dirty region.
    let (hierarchy, rstats) = repair_hierarchy(
        old_hierarchy,
        g_new.clone(),
        dirty0,
        &RepairConfig {
            fallback_fraction: wcfg.fallback_fraction,
            coarsen: CoarsenConfig {
                threshold: cfg.coarsen_threshold,
                threads: cfg.threads,
                ..Default::default()
            },
        },
    );
    let depth = hierarchy.depth();
    debug_assert_eq!(rstats.dirty_per_level.len(), depth);

    // Stage 2: initialization — old rows at level 0, means up the tree.
    let m0 = init_fine(g_new, old, cfg.dim, cfg.seed);
    let mut inits: Vec<Embedding> = Vec::with_capacity(depth);
    inits.push(m0);
    for i in 0..depth - 1 {
        let coarse = aggregate_up(&inits[i], &hierarchy.maps[i]);
        inits.push(coarse);
    }
    let repair_seconds = rstats.seconds;

    // Stage 3: the scaled per-level schedule over dirty sources only.
    let t_train = Instant::now();
    let p = cfg.smoothing.unwrap_or(1.0);
    let e_total = ((cfg.epochs as f64 * wcfg.epoch_scale).round() as u32).max(1);
    let dist = epoch_distribution(e_total, p, depth);
    let mut params = TrainParams {
        dim: cfg.dim,
        negative_samples: cfg.negative_samples,
        lr: cfg.lr,
        epochs: 0,
        similarity: Similarity::Adjacency,
        threads: cfg.threads,
        seed: cfg.seed,
        precision: Precision::F32,
    };

    let mut matrix = inits.pop().expect("depth >= 1");
    let mut trained_sources = vec![0usize; depth];
    for i in (0..depth).rev() {
        let sources = &rstats.dirty_per_level[i];
        trained_sources[i] = sources.len();
        params.epochs = dist[i];
        params.seed = cfg.seed ^ i as u64;
        train_cpu_sources(&hierarchy.graphs[i], &mut matrix, &params, sources);
        if i > 0 {
            // Partial expansion: dirty fine rows inherit their cluster's
            // trained row; clean rows keep their (old-solution) init.
            let map = &hierarchy.maps[i - 1];
            let mut next = inits.pop().expect("one init per level");
            for &v in &rstats.dirty_per_level[i - 1] {
                next.row_mut(v)
                    .copy_from_slice(matrix.row(map.cluster_of(v)));
            }
            matrix = next;
        }
    }
    let training_seconds = t_train.elapsed().as_secs_f64();

    let report = WarmReport {
        depth,
        repaired_levels: rstats.repaired_levels,
        fell_back: rstats.fell_back,
        dirty_fractions: rstats.dirty_fractions.clone(),
        trained_sources,
        epochs_per_level: dist,
        repair_seconds,
        training_seconds,
        total_seconds: t0.elapsed().as_secs_f64(),
    };
    (matrix, hierarchy, report)
}

/// Fine-level init over the new vertex set: old vertices keep their rows,
/// new vertices start from the mean of their already-embedded neighbours
/// (the deterministic random base when every neighbour is also new).
fn init_fine(g_new: &Csr, old: &Embedding, dim: usize, seed: u64) -> Embedding {
    let n_new = g_new.num_vertices();
    let old_n = old.num_vertices();
    let mut m = Embedding::random(n_new, dim, seed);
    m.as_mut_slice()[..old_n * dim].copy_from_slice(old.as_slice());
    for v in old_n..n_new {
        let mut acc = vec![0.0f32; dim];
        let mut count = 0u32;
        for &u in g_new.neighbors(v as u32) {
            if (u as usize) < old_n {
                for (a, &x) in acc.iter_mut().zip(old.row(u)) {
                    *a += x;
                }
                count += 1;
            }
        }
        if count > 0 {
            let inv = 1.0 / count as f32;
            for (dst, a) in m.row_mut(v as u32).iter_mut().zip(&acc) {
                *dst = a * inv;
            }
        }
    }
    m
}

/// Coarse init: each cluster row is the mean of its member rows. Every
/// cluster has at least one member (mappings are surjective), so the
/// division is always defined.
fn aggregate_up(fine: &Embedding, map: &Mapping) -> Embedding {
    let d = fine.dim();
    let k = map.num_clusters();
    let mut m = Embedding::zeros(k, d);
    let mut counts = vec![0u32; k];
    for v in 0..fine.num_vertices() {
        let c = map.cluster_of(v as u32);
        counts[c as usize] += 1;
        for (a, &x) in m.row_mut(c).iter_mut().zip(fine.row(v as u32)) {
            *a += x;
        }
    }
    for (c, &count) in counts.iter().enumerate() {
        debug_assert!(count > 0, "empty cluster {c}");
        let inv = 1.0 / count as f32;
        for x in m.row_mut(c as u32) {
            *x *= inv;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosh_coarsen::hierarchy::coarsen_hierarchy;
    use gosh_graph::gen::{community_graph, CommunityConfig};
    use gosh_graph::stream::{apply_delta, EdgeDelta};

    fn base_graph() -> Csr {
        community_graph(&CommunityConfig::new(400, 4), 9)
    }

    fn small_warm(threads: usize) -> WarmConfig {
        WarmConfig {
            cfg: GoshConfig::default()
                .with_dim(16)
                .with_epochs(40)
                .with_threads(threads),
            ..Default::default()
        }
    }

    fn old_state(g: &Csr, wcfg: &WarmConfig) -> (Hierarchy, Embedding) {
        let h = coarsen_hierarchy(
            g.clone(),
            &CoarsenConfig {
                threshold: wcfg.cfg.coarsen_threshold,
                threads: wcfg.cfg.threads,
                ..Default::default()
            },
        );
        let m = Embedding::random(g.num_vertices(), wcfg.cfg.dim, 123);
        (h, m)
    }

    #[test]
    fn empty_delta_is_an_identity_update() {
        let g = base_graph();
        let wcfg = small_warm(4);
        let (h, m) = old_state(&g, &wcfg);
        let (m2, h2, rep) = warm_embed(&g, &h, &m, &[], &wcfg);
        // No dirty vertices anywhere: training is a no-op at every level
        // and expansion overwrites nothing, so the rows survive exactly.
        assert_eq!(m2.as_slice(), m.as_slice());
        assert_eq!(h2.depth(), h.depth());
        assert!(!rep.fell_back);
        assert!(rep.trained_sources.iter().all(|&s| s == 0));
    }

    #[test]
    fn delta_update_trains_dirty_region_and_keeps_shape() {
        let g = base_graph();
        let wcfg = small_warm(4);
        let (h, m) = old_state(&g, &wcfg);
        let mut delta = EdgeDelta::new();
        for i in 0..10u32 {
            delta.insert(i, 200 + i);
            delta.delete(i, i + 1);
        }
        let g_new = apply_delta(&g, &delta);
        let dirty = delta.dirty_vertices(g.num_vertices());
        let (m2, h2, rep) = warm_embed(&g_new, &h, &m, &dirty, &wcfg);
        assert_eq!(m2.num_vertices(), g_new.num_vertices());
        assert_eq!(m2.dim(), 16);
        assert!(m2.as_slice().iter().all(|x| x.is_finite()));
        assert_eq!(h2.graphs[0].num_edges(), g_new.num_edges());
        assert_eq!(rep.depth, h2.depth());
        assert!(rep.trained_sources[0] >= dirty.len());
        assert_eq!(rep.epochs_per_level.len(), rep.depth);
    }

    #[test]
    fn warm_update_is_deterministic_single_threaded() {
        let g = base_graph();
        let wcfg = small_warm(1);
        let (h, m) = old_state(&g, &wcfg);
        let mut delta = EdgeDelta::new();
        delta.insert(0, 399);
        delta.insert(5, 301);
        delta.delete(1, 2);
        let g_new = apply_delta(&g, &delta);
        let dirty = delta.dirty_vertices(g.num_vertices());
        let (a, _, _) = warm_embed(&g_new, &h, &m, &dirty, &wcfg);
        let (b, _, _) = warm_embed(&g_new, &h, &m, &dirty, &wcfg);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn new_vertices_get_neighbor_mean_init() {
        let g = base_graph();
        let n = g.num_vertices();
        let old = Embedding::random(n, 8, 7);
        let mut delta = EdgeDelta::new();
        // One appended vertex wired to two old ones, one isolated-ish
        // appended vertex wired only to the other new vertex.
        let a = n as u32;
        let b = n as u32 + 1;
        delta.insert(a, 3);
        delta.insert(a, 4);
        delta.insert(a, b);
        let g_new = apply_delta(&g, &delta);
        let m = init_fine(&g_new, &old, 8, 42);
        let expect: Vec<f32> = old
            .row(3)
            .iter()
            .zip(old.row(4))
            .map(|(x, y)| (x + y) / 2.0)
            .collect();
        assert_eq!(m.row(a), &expect[..]);
        // `b` has no embedded neighbour: it keeps the random base row.
        let base = Embedding::random(g_new.num_vertices(), 8, 42);
        assert_eq!(m.row(b), base.row(b));
        // Old vertices keep their rows bit-for-bit.
        assert_eq!(&m.as_slice()[..n * 8], old.as_slice());
    }

    #[test]
    fn aggregate_up_is_the_member_mean() {
        let fine = Embedding::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let map = Mapping::new(vec![0, 1, 0], 2);
        let coarse = aggregate_up(&fine, &map);
        assert_eq!(coarse.row(0), &[3.0, 4.0]);
        assert_eq!(coarse.row(1), &[3.0, 4.0]);
    }
}
