//! Top-k query serving over an [`EmbeddingStore`] — ROADMAP item 1's
//! query layer, built from the pieces the trainer already has.
//!
//! Three layers:
//!
//! * **Execution** — [`search_exact`] (brute force over every row) and
//!   [`IvfIndex`] (an inverted-file coarse quantizer: ~√n Lloyd-iterated
//!   centroids, rows bucketed by nearest centroid, queries probing only
//!   the `nprobe` most promising lists). Both score rows straight off
//!   the mapped store bytes via [`EmbeddingStore::dot`] — an i8 store is
//!   never decoded to f32.
//! * **Batching** — [`search_batch`] runs a batch across the worker team
//!   with the trainer's discipline: each job *stages* its query row into
//!   a private buffer (the way `train_cpu` stages source rows), executes
//!   a pure function of `(store, index, row)`, and `map_jobs` restores
//!   job order — so batched results are bit-identical to one-at-a-time
//!   at any thread count.
//! * **Wire** — a tagged request/response protocol over the transport
//!   mesh's frame format, carried on one
//!   [`gosh_runtime::transport::FramedConn`] per client. [`Server`]
//!   answers queries until a shutdown frame; a client dying mid-request
//!   is a logged [`gosh_runtime::transport::TransportError`], never a
//!   server crash.
//!
//! Determinism is the same contract as everywhere else in the
//! workspace: all selection runs under a *total* order — score by
//! `total_cmp`, ties to the smaller vertex id — so the top-k of a set
//! of hits does not depend on scan order, thread count, or which probe
//! list produced a hit first.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::io;
use std::net::{TcpListener, ToSocketAddrs};

use gosh_runtime::transport::{FramedConn, TransportError};

use crate::store::EmbeddingStore;

/// Frame tag: a top-k query batch, client → server.
pub const TAG_QUERY: u32 = 0x51;
/// Frame tag: the per-query hit lists, server → client.
pub const TAG_HITS: u32 = 0x48;
/// Frame tag: a rejected request (payload = UTF-8 reason).
pub const TAG_ERROR: u32 = 0x45;
/// Frame tag: shutdown request, client → server.
pub const TAG_SHUTDOWN: u32 = 0x5D;
/// Frame tag: shutdown acknowledged, server → client.
pub const TAG_OK: u32 = 0x4F;

/// One scored result row.
#[derive(Clone, Copy, Debug)]
pub struct Hit {
    /// Vertex id of the stored row.
    pub id: u32,
    /// Inner product with the query.
    pub score: f32,
}

impl PartialEq for Hit {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.score.to_bits() == other.score.to_bits()
    }
}
impl Eq for Hit {}

/// The total order all selection runs under: higher score first,
/// score ties to the smaller id (`Less` = better). Total because
/// `total_cmp` is — NaN scores cannot poison a heap.
pub fn cmp_best(a: &Hit, b: &Hit) -> Ordering {
    b.score.total_cmp(&a.score).then(a.id.cmp(&b.id))
}

/// Wrapper whose max-heap maximum is the *worst* retained hit.
struct WorstFirst(Hit);
impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        cmp_best(&self.0, &other.0) == Ordering::Equal
    }
}
impl Eq for WorstFirst {}
impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_best(&self.0, &other.0)
    }
}

/// A bounded best-k accumulator under [`cmp_best`]. Insertion order
/// never changes the result: the retained set is the k smallest
/// elements of a total order.
struct TopK {
    k: usize,
    heap: BinaryHeap<WorstFirst>,
}

impl TopK {
    fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    fn push(&mut self, h: Hit) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(h));
        } else if cmp_best(&h, &self.heap.peek().expect("nonempty").0) == Ordering::Less {
            self.heap.pop();
            self.heap.push(WorstFirst(h));
        }
    }

    /// Best-first.
    fn finish(self) -> Vec<Hit> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|w| w.0)
            .collect()
    }
}

/// Exact top-k: brute-force score of every stored row.
pub fn search_exact(store: &EmbeddingStore, q: &[f32], k: usize) -> Vec<Hit> {
    assert_eq!(q.len(), store.dim(), "query dimension mismatch");
    let q_sum: f32 = q.iter().sum();
    let mut top = TopK::new(k.min(store.num_vertices()));
    for v in 0..store.num_vertices() as u32 {
        top.push(Hit {
            id: v,
            score: store.dot(v, q, q_sum),
        });
    }
    top.finish()
}

/// An inverted-file (IVF) coarse quantizer over a store: ~√n centroids
/// refined by a few Lloyd iterations, each row filed under its nearest
/// centroid. A query scores all centroids, probes the `nprobe` best
/// lists, and runs exact scoring only inside them.
///
/// The build is deterministic at every thread count: assignment is a
/// pure per-row function (fanned out in contiguous shards), centroid
/// accumulation walks rows in id order on one thread (float addition
/// order is part of the result), and member lists are a counting-sort
/// CSR in ascending id — the same discipline as the graph builders.
pub struct IvfIndex {
    dim: usize,
    /// `nlist × dim` centroid rows.
    centroids: Vec<f32>,
    /// CSR offsets into `members`, length `nlist + 1`.
    offsets: Vec<usize>,
    /// Row ids, grouped by list, ascending inside each list.
    members: Vec<u32>,
}

impl IvfIndex {
    /// Number of inverted lists for `n` rows.
    pub fn default_nlist(n: usize) -> usize {
        (n as f64).sqrt().ceil() as usize
    }

    /// Build over every row of `store` using `threads` workers.
    pub fn build(store: &EmbeddingStore, threads: usize) -> Self {
        let n = store.num_vertices();
        let dim = store.dim();
        let nlist = Self::default_nlist(n).min(n);
        if n == 0 || nlist == 0 {
            return Self {
                dim,
                centroids: Vec::new(),
                offsets: vec![0],
                members: Vec::new(),
            };
        }

        // Evenly spaced rows seed the centroids: deterministic, spread
        // across the id range, and already on the data manifold.
        let mut centroids = vec![0.0f32; nlist * dim];
        for c in 0..nlist {
            let v = (c * n / nlist) as u32;
            store.decode_row(v, &mut centroids[c * dim..(c + 1) * dim]);
        }

        let mut assign = vec![0u32; n];
        const LLOYD_ITERS: usize = 4;
        for _ in 0..LLOYD_ITERS {
            assign_rows(store, &centroids, nlist, threads, &mut assign);
            // Accumulate sequentially in row id order: cheap next to the
            // parallel assignment, and it keeps float addition order —
            // hence the centroids — independent of the thread count.
            let mut sums = vec![0.0f64; nlist * dim];
            let mut counts = vec![0usize; nlist];
            let mut row = vec![0.0f32; dim];
            for v in 0..n as u32 {
                let c = assign[v as usize] as usize;
                store.decode_row(v, &mut row);
                let s = &mut sums[c * dim..(c + 1) * dim];
                for (acc, &x) in s.iter_mut().zip(&row) {
                    *acc += x as f64;
                }
                counts[c] += 1;
            }
            for c in 0..nlist {
                if counts[c] == 0 {
                    continue; // empty list keeps its previous centroid
                }
                let inv = 1.0f64 / counts[c] as f64;
                for (out, &s) in centroids[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(&sums[c * dim..])
                {
                    *out = (s * inv) as f32;
                }
            }
        }
        assign_rows(store, &centroids, nlist, threads, &mut assign);

        // Counting-sort CSR: ascending row id inside each list because
        // the scatter walks ids in order.
        let mut offsets = vec![0usize; nlist + 1];
        for &c in &assign {
            offsets[c as usize + 1] += 1;
        }
        for c in 0..nlist {
            offsets[c + 1] += offsets[c];
        }
        let mut cursor = offsets.clone();
        let mut members = vec![0u32; n];
        for (v, &c) in assign.iter().enumerate() {
            members[cursor[c as usize]] = v as u32;
            cursor[c as usize] += 1;
        }

        Self {
            dim,
            centroids,
            offsets,
            members,
        }
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Top-k via the `nprobe` most promising lists. `nprobe >= nlist`
    /// degenerates to exact search (every row is in some list).
    pub fn search(&self, store: &EmbeddingStore, q: &[f32], k: usize, nprobe: usize) -> Vec<Hit> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let nlist = self.nlist();
        if nlist == 0 {
            return Vec::new();
        }
        // Rank lists by centroid inner product under the same total
        // order as row selection (centroid id standing in for row id).
        let mut ranked = TopK::new(nprobe.clamp(1, nlist));
        for c in 0..nlist {
            let score = crate::simd::dot8(&self.centroids[c * self.dim..(c + 1) * self.dim], q);
            ranked.push(Hit {
                id: c as u32,
                score,
            });
        }
        let q_sum: f32 = q.iter().sum();
        let mut top = TopK::new(k);
        for probe in ranked.finish() {
            let c = probe.id as usize;
            for &v in &self.members[self.offsets[c]..self.offsets[c + 1]] {
                top.push(Hit {
                    id: v,
                    score: store.dot(v, q, q_sum),
                });
            }
        }
        top.finish()
    }
}

/// Parallel nearest-centroid assignment (squared L2, ties to the
/// smaller centroid id). Pure per row, sharded contiguously — the
/// result is independent of `threads`.
fn assign_rows(
    store: &EmbeddingStore,
    centroids: &[f32],
    nlist: usize,
    threads: usize,
    assign: &mut [u32],
) {
    let n = store.num_vertices();
    let dim = store.dim();
    let shards = gosh_runtime::shard_ranges(n, threads.max(1));
    let parts = gosh_runtime::map_jobs(threads.max(1), shards.len(), |t| {
        let span = shards[t].clone();
        let mut out = Vec::with_capacity(span.len());
        let mut row = vec![0.0f32; dim];
        for v in span {
            store.decode_row(v as u32, &mut row);
            let mut best = 0u32;
            let mut best_d2 = f32::INFINITY;
            for c in 0..nlist {
                let cen = &centroids[c * dim..(c + 1) * dim];
                let mut d2 = 0.0f32;
                for (&x, &y) in row.iter().zip(cen) {
                    let d = x - y;
                    d2 += d * d;
                }
                if d2 < best_d2 {
                    best_d2 = d2;
                    best = c as u32;
                }
            }
            out.push(best);
        }
        out
    });
    let mut w = 0usize;
    for part in parts {
        assign[w..w + part.len()].copy_from_slice(&part);
        w += part.len();
    }
}

/// Run a query batch across the worker team. `queries` is `nq` rows of
/// `store.dim()` packed densely; `nprobe == 0` means exact search,
/// otherwise `index` must be `Some`. Each job stages its query row into
/// a private buffer and computes a pure function of it, and `map_jobs`
/// restores job order — results are bit-identical to calling
/// [`search_exact`]/[`IvfIndex::search`] per query, at any `threads`.
pub fn search_batch(
    store: &EmbeddingStore,
    index: Option<&IvfIndex>,
    queries: &[f32],
    k: usize,
    nprobe: usize,
    threads: usize,
) -> Vec<Vec<Hit>> {
    // Store validation pins dim >= 1, so the division is well-defined.
    let dim = store.dim();
    assert_eq!(queries.len() % dim, 0, "ragged query batch");
    let nq = queries.len() / dim;
    gosh_runtime::map_jobs(threads.max(1), nq, |i| {
        // Stage: private copy of the query row, the way the trainer
        // stages source rows before the update loop.
        let q: Vec<f32> = queries[i * dim..(i + 1) * dim].to_vec();
        match (nprobe, index) {
            (0, _) => search_exact(store, &q, k),
            (np, Some(ivf)) => ivf.search(store, &q, k, np),
            (_, None) => search_exact(store, &q, k),
        }
    })
}

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

/// A decoded [`TAG_QUERY`] payload.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    /// Results per query.
    pub k: u32,
    /// Probed IVF lists; 0 = exact brute force.
    pub nprobe: u32,
    /// Query row width (must equal the served store's dim).
    pub dim: u32,
    /// `nq × dim` packed query rows.
    pub queries: Vec<f32>,
}

impl QueryRequest {
    pub fn num_queries(&self) -> usize {
        if self.dim == 0 {
            0
        } else {
            self.queries.len() / self.dim as usize
        }
    }

    /// Encode as a [`TAG_QUERY`] payload:
    /// `[k u32][nprobe u32][nq u32][dim u32][nq·dim × f32]`, all LE.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 4 * self.queries.len());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.nprobe.to_le_bytes());
        out.extend_from_slice(&(self.num_queries() as u32).to_le_bytes());
        out.extend_from_slice(&self.dim.to_le_bytes());
        for &x in &self.queries {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }

    /// Decode an untrusted payload: every length cross-checked before
    /// use, errors instead of panics.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        if payload.len() < 16 {
            return Err(format!("query header is {} bytes, need 16", payload.len()));
        }
        let k = u32::from_le_bytes(payload[0..4].try_into().unwrap());
        let nprobe = u32::from_le_bytes(payload[4..8].try_into().unwrap());
        let nq = u32::from_le_bytes(payload[8..12].try_into().unwrap());
        let dim = u32::from_le_bytes(payload[12..16].try_into().unwrap());
        let want = (nq as u64)
            .checked_mul(dim as u64)
            .and_then(|x| x.checked_mul(4))
            .ok_or("query size overflows")?;
        let have = payload.len() as u64 - 16;
        if want != have {
            return Err(format!(
                "query claims {nq} x {dim} rows ({want} bytes) but carries {have}"
            ));
        }
        let queries: Vec<f32> = payload[16..]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Self {
            k,
            nprobe,
            dim,
            queries,
        })
    }
}

/// Encode hit lists as a [`TAG_HITS`] payload:
/// `[nq u32]` then per query `[cnt u32]` + `cnt × ([id u32][score f32])`.
pub fn encode_hits(results: &[Vec<Hit>]) -> Vec<u8> {
    let total: usize = results.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(4 + 4 * results.len() + 8 * total);
    out.extend_from_slice(&(results.len() as u32).to_le_bytes());
    for hits in results {
        out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
        for h in hits {
            out.extend_from_slice(&h.id.to_le_bytes());
            out.extend_from_slice(&h.score.to_le_bytes());
        }
    }
    out
}

/// Decode a [`TAG_HITS`] payload (untrusted: the server is a peer too).
pub fn decode_hits(payload: &[u8]) -> Result<Vec<Vec<Hit>>, String> {
    let take4 = |off: usize| -> Result<u32, String> {
        payload
            .get(off..off + 4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
            .ok_or_else(|| format!("hits payload truncated at byte {off}"))
    };
    let nq = take4(0)? as usize;
    let mut off = 4usize;
    let mut out = Vec::new();
    for _ in 0..nq {
        let cnt = take4(off)? as usize;
        off += 4;
        let mut hits = Vec::with_capacity(cnt.min(1 << 16));
        for _ in 0..cnt {
            let id = take4(off)?;
            let score = f32::from_le_bytes(
                payload
                    .get(off + 4..off + 8)
                    .ok_or_else(|| format!("hits payload truncated at byte {off}"))?
                    .try_into()
                    .unwrap(),
            );
            off += 8;
            hits.push(Hit { id, score });
        }
        out.push(hits);
    }
    if off != payload.len() {
        return Err(format!(
            "hits payload has {} trailing bytes",
            payload.len() - off
        ));
    }
    Ok(out)
}

/// Server-side knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker team for batched query execution and the IVF build.
    pub threads: usize,
    /// Build the IVF index at startup (exact search always works).
    pub build_ivf: bool,
    /// Print per-connection lifecycle to stderr.
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            build_ivf: true,
            verbose: false,
        }
    }
}

/// A serving endpoint: one listener, one store, an optional IVF index.
/// Connections are handled in accept order; parallelism lives inside
/// each batch (the worker team), not across sockets — matching the
/// paper's serving scenario of few hot publishers, many small readers.
pub struct Server {
    listener: TcpListener,
    store: EmbeddingStore,
    index: Option<IvfIndex>,
    cfg: ServeConfig,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and build indexes.
    pub fn bind<A: ToSocketAddrs>(
        store: EmbeddingStore,
        addr: A,
        cfg: ServeConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let index = cfg.build_ivf.then(|| IvfIndex::build(&store, cfg.threads));
        Ok(Self {
            listener,
            store,
            index,
            cfg,
        })
    }

    /// The bound address (where clients should connect).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    pub fn index(&self) -> Option<&IvfIndex> {
        self.index.as_ref()
    }

    /// Serve until a client sends [`TAG_SHUTDOWN`]. A client dying
    /// mid-conversation drops that connection (reported on stderr when
    /// verbose) and the server keeps accepting — a dead peer is an
    /// error, not a crash.
    pub fn run(self) -> io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            let mut conn = match FramedConn::from_stream(stream) {
                Ok(c) => c,
                Err(e) => {
                    if self.cfg.verbose {
                        eprintln!("serve: rejected connection: {e}");
                    }
                    continue;
                }
            };
            match self.handle_conn(&mut conn) {
                Ok(true) => return Ok(()),
                Ok(false) => {}
                Err(e) => {
                    if self.cfg.verbose {
                        eprintln!("serve: client {} dropped: {e}", conn.peer());
                    }
                }
            }
        }
    }

    /// Handle one connection to completion. Returns `Ok(true)` when the
    /// client requested shutdown.
    fn handle_conn(&self, conn: &mut FramedConn) -> Result<bool, TransportError> {
        while let Some((tag, payload)) = conn.recv_opt()? {
            match tag {
                TAG_QUERY => match self.answer(&payload) {
                    Ok(body) => conn.send(TAG_HITS, &body)?,
                    Err(reason) => conn.send(TAG_ERROR, reason.as_bytes())?,
                },
                TAG_SHUTDOWN => {
                    conn.send(TAG_OK, &[])?;
                    return Ok(true);
                }
                other => {
                    conn.send(
                        TAG_ERROR,
                        format!("unknown frame tag {other:#x}").as_bytes(),
                    )?;
                }
            }
        }
        Ok(false)
    }

    /// Validate and execute one query payload.
    fn answer(&self, payload: &[u8]) -> Result<Vec<u8>, String> {
        let req = QueryRequest::decode(payload)?;
        if req.dim as usize != self.store.dim() {
            return Err(format!(
                "query dim {} does not match the served store's dim {}",
                req.dim,
                self.store.dim()
            ));
        }
        if req.nprobe > 0 && self.index.is_none() {
            return Err("server has no IVF index; use nprobe 0 (exact)".into());
        }
        let results = search_batch(
            &self.store,
            self.index.as_ref(),
            &req.queries,
            req.k as usize,
            req.nprobe as usize,
            self.cfg.threads,
        );
        Ok(encode_hits(&results))
    }
}

/// Client side of the protocol: one framed connection, synchronous
/// request/response.
pub struct ServeClient {
    conn: FramedConn,
}

impl ServeClient {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Ok(Self {
            conn: FramedConn::connect(addr)?,
        })
    }

    /// Run one query batch. `queries` is `nq` packed rows of `dim`.
    pub fn query(
        &mut self,
        queries: &[f32],
        dim: usize,
        k: usize,
        nprobe: usize,
    ) -> Result<Vec<Vec<Hit>>, TransportError> {
        let req = QueryRequest {
            k: k as u32,
            nprobe: nprobe as u32,
            dim: dim as u32,
            queries: queries.to_vec(),
        };
        self.conn.send(TAG_QUERY, &req.encode())?;
        let (tag, body) = self.conn.recv()?;
        match tag {
            TAG_HITS => decode_hits(&body).map_err(|detail| TransportError {
                op: "recv",
                peer: self.conn.peer().to_string(),
                tag: Some(TAG_HITS),
                detail,
            }),
            TAG_ERROR => Err(TransportError {
                op: "recv",
                peer: self.conn.peer().to_string(),
                tag: Some(TAG_ERROR),
                detail: String::from_utf8_lossy(&body).into_owned(),
            }),
            other => Err(TransportError {
                op: "recv",
                peer: self.conn.peer().to_string(),
                tag: Some(other),
                detail: "unexpected response tag".into(),
            }),
        }
    }

    /// Ask the server to exit; resolves once it acknowledges.
    pub fn shutdown(&mut self) -> Result<(), TransportError> {
        self.conn.send(TAG_SHUTDOWN, &[])?;
        let (tag, _) = self.conn.recv()?;
        if tag == TAG_OK {
            Ok(())
        } else {
            Err(TransportError {
                op: "recv",
                peer: self.conn.peer().to_string(),
                tag: Some(tag),
                detail: "unexpected shutdown response".into(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Embedding;
    use crate::quant::Precision;
    use crate::store::write_store;

    fn store_from(m: &Embedding, precision: Precision, name: &str) -> EmbeddingStore {
        let dir = std::env::temp_dir().join("gosh-serve-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-{name}.embin", std::process::id()));
        write_store(&path, m, precision).unwrap();
        EmbeddingStore::open(&path).unwrap()
    }

    fn naive_topk(m: &Embedding, q: &[f32], k: usize) -> Vec<u32> {
        let mut scored: Vec<Hit> = (0..m.num_vertices() as u32)
            .map(|v| Hit {
                id: v,
                score: m.row(v).iter().zip(q).map(|(a, b)| a * b).sum(),
            })
            .collect();
        scored.sort_by(cmp_best);
        scored.truncate(k);
        scored.into_iter().map(|h| h.id).collect()
    }

    #[test]
    fn exact_search_matches_a_naive_scan() {
        let m = Embedding::random(200, 16, 7);
        let store = store_from(&m, Precision::F32, "exact");
        let q: Vec<f32> = m.row(13).to_vec();
        let hits = search_exact(&store, &q, 10);
        assert_eq!(hits.len(), 10);
        // Row 13 scores itself highest on this data.
        assert_eq!(hits[0].id, naive_topk(&m, &q, 1)[0]);
        let ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, naive_topk(&m, &q, 10));
        // Best-first order under the total order.
        for w in hits.windows(2) {
            assert_eq!(cmp_best(&w[0], &w[1]), Ordering::Less);
        }
    }

    #[test]
    fn topk_ties_break_toward_the_smaller_id() {
        // Identical rows → identical scores; the order must be by id.
        let m = Embedding::from_vec(vec![1.0; 5 * 4], 5, 4);
        let store = store_from(&m, Precision::F32, "ties");
        let hits = search_exact(&store, &[1.0, 1.0, 1.0, 1.0], 3);
        let ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn ivf_with_full_probe_is_exact() {
        let m = Embedding::random(300, 12, 9);
        let store = store_from(&m, Precision::F32, "fullprobe");
        let ivf = IvfIndex::build(&store, 2);
        let q: Vec<f32> = m.row(42).to_vec();
        let exact = search_exact(&store, &q, 10);
        let probed = ivf.search(&store, &q, 10, ivf.nlist());
        assert_eq!(exact, probed);
    }

    #[test]
    fn ivf_lists_partition_the_rows() {
        let m = Embedding::random(257, 8, 3);
        let store = store_from(&m, Precision::F32, "partition");
        let ivf = IvfIndex::build(&store, 3);
        let mut seen: Vec<u32> = ivf.members.clone();
        seen.sort_unstable();
        let want: Vec<u32> = (0..257).collect();
        assert_eq!(seen, want);
        assert_eq!(*ivf.offsets.last().unwrap(), 257);
    }

    #[test]
    fn ivf_build_is_thread_count_invariant() {
        let m = Embedding::random(400, 8, 21);
        let store = store_from(&m, Precision::F32, "ivf-threads");
        let a = IvfIndex::build(&store, 1);
        let b = IvfIndex::build(&store, 4);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.members, b.members);
    }

    #[test]
    fn request_and_hits_survive_the_wire_encoding() {
        let req = QueryRequest {
            k: 5,
            nprobe: 3,
            dim: 4,
            queries: vec![0.5, -1.0, 3.25, f32::MIN_POSITIVE, 0.0, 1.0, 2.0, 3.0],
        };
        assert_eq!(QueryRequest::decode(&req.encode()).unwrap(), req);

        let hits = vec![
            vec![Hit { id: 3, score: 0.75 }, Hit { id: 9, score: -0.5 }],
            vec![],
        ];
        assert_eq!(decode_hits(&encode_hits(&hits)).unwrap(), hits);
    }

    #[test]
    fn malformed_requests_error_instead_of_panicking() {
        assert!(QueryRequest::decode(&[]).is_err());
        assert!(QueryRequest::decode(&[0u8; 15]).is_err());
        // Header claims more rows than the payload carries.
        let mut bad = QueryRequest {
            k: 1,
            nprobe: 0,
            dim: 4,
            queries: vec![0.0; 8],
        }
        .encode();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(QueryRequest::decode(&bad).is_err());
        // Truncated hits payload.
        let body = encode_hits(&[vec![Hit { id: 1, score: 2.0 }]]);
        assert!(decode_hits(&body[..body.len() - 2]).is_err());
        assert!(decode_hits(&[9, 0, 0, 0]).is_err());
    }

    #[test]
    fn server_answers_queries_and_shuts_down_over_loopback() {
        let m = Embedding::random(120, 8, 5);
        let store = store_from(&m, Precision::F32, "server");
        let server = Server::bind(
            store,
            "127.0.0.1:0",
            ServeConfig {
                threads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());

        let mut client = ServeClient::connect(addr).unwrap();
        let q: Vec<f32> = m.row(7).to_vec();
        let exact = client.query(&q, 8, 5, 0).unwrap();
        assert_eq!(exact.len(), 1);
        assert_eq!(exact[0][0].id, 7);
        let ivf = client.query(&q, 8, 5, 4).unwrap();
        assert_eq!(ivf.len(), 1);
        assert!(!ivf[0].is_empty());

        // A wrong-dim query is a protocol error, not a dropped server.
        let err = client.query(&[1.0, 2.0], 2, 3, 0).unwrap_err();
        assert!(err.detail.contains("dim"), "{err}");
        // The connection survives the error.
        assert_eq!(client.query(&q, 8, 1, 0).unwrap()[0][0].id, 7);

        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn server_survives_a_client_that_vanishes_mid_conversation() {
        let m = Embedding::random(60, 8, 1);
        let store = store_from(&m, Precision::F32, "vanish");
        let server = Server::bind(store, "127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());

        // First client connects and dies without a word.
        drop(ServeClient::connect(addr).unwrap());
        // Second client must still get service.
        let mut client = ServeClient::connect(addr).unwrap();
        let q = vec![0.25f32; 8];
        assert_eq!(client.query(&q, 8, 3, 0).unwrap()[0].len(), 3);
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn i8_store_serves_without_decoding() {
        let m = Embedding::random(150, 16, 77);
        let store = store_from(&m, Precision::I8, "i8serve");
        assert_eq!(store.precision(), Precision::I8);
        let q: Vec<f32> = m.row(31).to_vec();
        let hits = search_exact(&store, &q, 5);
        assert_eq!(hits.len(), 5);
        // Quantization moves scores a little; the query's own row must
        // still land in the top 5.
        assert!(hits.iter().any(|h| h.id == 31), "{hits:?}");
    }
}
