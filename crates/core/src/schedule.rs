//! Epoch distribution across coarsening levels and learning-rate decay.
//!
//! GOSH splits the total epoch budget `e` with a *smoothing ratio* `p`
//! (§3): a share `p·e` is spread uniformly over the `D` levels, and the
//! remaining `(1−p)·e` geometrically, each level receiving half of the
//! next coarser one (`e'_i = e'_{i+1} / 2`), so the cheap coarse graphs
//! absorb most of the training. The learning rate within a level decays
//! linearly per epoch with a floor: `lr_j = lr · max(1 − j/e_i, 1e-4)`.

/// Epochs for level `i` out of `levels` (level 0 = the original graph),
/// given total budget `e` and smoothing ratio `p` (Algorithm 2's
/// `calculateEpochs`). Every level receives at least one epoch.
pub fn epochs_for_level(e: u32, p: f64, level: usize, levels: usize) -> u32 {
    assert!(levels >= 1, "need at least one level");
    assert!((0.0..=1.0).contains(&p), "smoothing ratio must be in [0,1]");
    assert!(level < levels, "level out of range");
    let uniform = p * e as f64 / levels as f64;
    // Geometric weights 2^i normalized over levels; coarser i gets more.
    let denom = (2f64.powi(levels as i32) - 1.0).max(1.0);
    let geometric = (1.0 - p) * e as f64 * 2f64.powi(level as i32) / denom;
    (uniform + geometric).round().max(1.0) as u32
}

/// Epoch counts for all levels. Each level gets at least one epoch, and
/// the total never exceeds the budget `e` — per-level rounding plus the
/// `≥ 1` floor can overspend (small `e`, deep hierarchies), so the raw
/// counts are renormalized by trimming the finest level holding the
/// current maximum until the budget holds. When `e < levels` the floor
/// wins: the total is `levels`, the minimum that trains every graph.
pub fn epoch_distribution(e: u32, p: f64, levels: usize) -> Vec<u32> {
    let mut dist: Vec<u32> = (0..levels)
        .map(|i| epochs_for_level(e, p, i, levels))
        .collect();
    let mut total: u32 = dist.iter().sum();
    while total > e {
        let max = *dist.iter().max().expect("levels >= 1");
        if max <= 1 {
            break; // the >= 1 floor: nothing left to trim
        }
        // First (finest) level at the maximum: trimming it preserves the
        // coarser-gets-more ordering.
        let i = dist.iter().position(|&x| x == max).unwrap();
        dist[i] -= 1;
        total -= 1;
    }
    dist
}

/// Learning rate for epoch `j` (0-based) of a level with `e_i` epochs.
pub fn decayed_lr(lr: f32, j: u32, e_i: u32) -> f32 {
    let frac = 1.0 - j as f64 / e_i.max(1) as f64;
    lr * frac.max(1e-4) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_sums_close_to_budget() {
        for (e, p, levels) in [(1000u32, 0.3, 6usize), (600, 0.1, 8), (1400, 0.5, 4)] {
            let dist = epoch_distribution(e, p, levels);
            let total: u32 = dist.iter().sum();
            let err = (total as f64 - e as f64).abs() / e as f64;
            assert!(err < 0.02, "total {total} vs budget {e}");
        }
    }

    #[test]
    fn coarser_levels_get_more_epochs() {
        let dist = epoch_distribution(1000, 0.3, 6);
        for w in dist.windows(2) {
            assert!(w[1] > w[0], "distribution not increasing: {dist:?}");
        }
    }

    #[test]
    fn geometric_halving_when_p_zero() {
        let dist = epoch_distribution(1024, 0.0, 4);
        // Weights 1:2:4:8 over 15 → ≈ 68, 137, 273, 546.
        assert!(dist[3] as f64 / dist[2] as f64 > 1.9);
        assert!(dist[2] as f64 / dist[1] as f64 > 1.9);
    }

    #[test]
    fn uniform_when_p_one() {
        let dist = epoch_distribution(900, 1.0, 3);
        assert_eq!(dist, vec![300, 300, 300]);
    }

    #[test]
    fn single_level_takes_everything() {
        assert_eq!(epoch_distribution(700, 0.3, 1), vec![700]);
    }

    #[test]
    fn every_level_gets_at_least_one_epoch() {
        let dist = epoch_distribution(8, 0.0, 8);
        assert!(dist.iter().all(|&e| e >= 1), "{dist:?}");
    }

    #[test]
    fn tight_budgets_never_overspend() {
        // Small budgets with deep hierarchies used to overshoot `e` via
        // rounding and the >= 1 floor. The renormalized total must stay
        // within max(e, levels), every level keeping at least one epoch
        // and the coarser-gets-more ordering intact.
        for (e, p, levels) in [
            (8u32, 0.0, 8usize),
            (10, 0.3, 8),
            (12, 0.5, 10),
            (3, 0.0, 8), // budget below the floor: total == levels
            (20, 1.0, 16),
            (100, 0.1, 12),
        ] {
            let dist = epoch_distribution(e, p, levels);
            let total: u32 = dist.iter().sum();
            assert!(
                total <= e.max(levels as u32),
                "e={e} p={p} levels={levels}: total {total} ({dist:?})"
            );
            assert!(dist.iter().all(|&x| x >= 1), "{dist:?}");
            for w in dist.windows(2) {
                assert!(w[0] <= w[1], "ordering broken: {dist:?}");
            }
        }
    }

    #[test]
    fn lr_decays_linearly_with_floor() {
        let lr = 0.05;
        assert_eq!(decayed_lr(lr, 0, 100), lr);
        let half = decayed_lr(lr, 50, 100);
        assert!((half - lr * 0.5).abs() < 1e-7);
        let last = decayed_lr(lr, 100, 100);
        assert!((last - lr * 1e-4).abs() < 1e-9);
        // Floor also guards overshoot.
        assert!(decayed_lr(lr, 1000, 100) > 0.0);
    }

    #[test]
    #[should_panic(expected = "smoothing ratio")]
    fn invalid_p_panics() {
        epochs_for_level(100, 1.5, 0, 2);
    }
}
