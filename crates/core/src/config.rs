//! GOSH configuration and the Table 3 presets.

use gosh_gpu::DeviceConfig;

use crate::backend::BackendChoice;
use crate::quant::Precision;

/// The named configurations of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// p = 0.1, lr = 0.050, e = 600 (medium) / 100 (large).
    Fast,
    /// p = 0.3, lr = 0.035, e = 1000 / 200.
    Normal,
    /// p = 0.5, lr = 0.025, e = 1400 / 300.
    Slow,
    /// No coarsening; lr = 0.045, e = 1000 / 200.
    NoCoarsening,
}

/// Per-level precision plan (`--precision-schedule coarse:fine[:cutoff]`).
///
/// The multilevel structure makes mixed precision natural: coarse levels
/// are tiny but steer the whole embedding (quantization noise there is
/// amplified by every projection), while fine levels dominate memory and
/// bandwidth but only refine locally. So the schedule keeps levels under
/// `cutoff` vertices at `coarse` precision (typically f32) and trains
/// levels at or above it in `fine` (f16/i8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrecisionSchedule {
    /// Row storage for levels with fewer than `cutoff` vertices.
    pub coarse: Precision,
    /// Row storage for levels with at least `cutoff` vertices.
    pub fine: Precision,
    /// Vertex-count boundary between the two regimes.
    pub cutoff: usize,
}

impl PrecisionSchedule {
    /// Default boundary: levels of 4096+ vertices count as fine.
    pub const DEFAULT_CUTOFF: usize = 4096;

    /// The precision a level of `num_vertices` trains at.
    pub fn level_precision(&self, num_vertices: usize) -> Precision {
        if num_vertices >= self.cutoff {
            self.fine
        } else {
            self.coarse
        }
    }
}

/// Full configuration for [`crate::pipeline::embed`].
#[derive(Clone, Copy, Debug)]
pub struct GoshConfig {
    /// Embedding dimension `d`.
    pub dim: usize,
    /// Negative samples per positive (`ns`).
    pub negative_samples: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Total epoch budget `e` (one epoch = |E| positive samples, §4.3).
    pub epochs: u32,
    /// Smoothing ratio `p`; `None` disables coarsening entirely.
    pub smoothing: Option<f64>,
    /// Coarsening stops below this many vertices (paper default 100).
    pub coarsen_threshold: usize,
    /// CPU threads for coarsening and sampling (the paper's τ).
    pub threads: usize,
    /// Use the packed small-dimension kernel when `d ≤ 16` (§3.1.1).
    pub small_dim_kernel: bool,
    /// Embedding sub-matrices kept on the GPU in the large path (P_GPU).
    pub p_gpu: usize,
    /// Sample pools kept on the GPU in the large path (S_GPU).
    pub s_gpu: usize,
    /// Positive samples per vertex per pool in the large path (B).
    pub batch_b: usize,
    /// RNG seed for initialization.
    pub seed: u64,
    /// Which training-backend chain the pipeline uses per level.
    pub backend: BackendChoice,
    /// Embedding row storage width (`--precision f32|f16|i8`).
    pub precision: Precision,
    /// Per-level precision overrides (`--precision-schedule`); `None`
    /// trains every level at [`GoshConfig::precision`].
    pub precision_schedule: Option<PrecisionSchedule>,
}

impl Default for GoshConfig {
    fn default() -> Self {
        Self::preset(Preset::Normal, false)
    }
}

impl GoshConfig {
    /// A Table 3 preset; `large` selects the large-graph epoch budget.
    pub fn preset(preset: Preset, large: bool) -> Self {
        let (p, lr, e_normal, e_large) = match preset {
            Preset::Fast => (Some(0.1), 0.050, 600, 100),
            Preset::Normal => (Some(0.3), 0.035, 1000, 200),
            Preset::Slow => (Some(0.5), 0.025, 1400, 300),
            Preset::NoCoarsening => (None, 0.045, 1000, 200),
        };
        Self {
            dim: 128,
            negative_samples: 3,
            lr,
            epochs: if large { e_large } else { e_normal },
            smoothing: p,
            coarsen_threshold: 100,
            threads: 16,
            small_dim_kernel: true,
            p_gpu: 3,
            s_gpu: 4,
            batch_b: 5,
            seed: 0x905E,
            backend: BackendChoice::Auto,
            precision: Precision::F32,
            precision_schedule: None,
        }
    }

    /// Override the epoch budget (used by the benches to scale runs down;
    /// documented in EXPERIMENTS.md).
    pub fn with_epochs(mut self, epochs: u32) -> Self {
        self.epochs = epochs;
        self
    }

    /// Override the embedding dimension.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Override the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Override the training-backend chain.
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Override the row storage precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Override the per-level precision schedule.
    pub fn with_precision_schedule(mut self, schedule: PrecisionSchedule) -> Self {
        self.precision_schedule = Some(schedule);
        self
    }

    /// Bytes needed to train graph+matrix resident on the device
    /// (Algorithm 2, line 5), with the matrix priced at the configured
    /// precision's true byte width. Delegates to
    /// [`crate::backend::device_bytes_needed_prec`], the check behind
    /// `GpuInMemory::fits`.
    pub fn device_bytes_needed(&self, num_vertices: usize, num_arcs: usize) -> usize {
        crate::backend::device_bytes_needed_prec(self.dim, num_vertices, num_arcs, self.precision)
    }
}

/// Convenience: the device the paper used.
pub fn paper_device() -> DeviceConfig {
    DeviceConfig::titan_x()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table3() {
        let fast = GoshConfig::preset(Preset::Fast, false);
        assert_eq!(fast.epochs, 600);
        assert_eq!(fast.lr, 0.050);
        assert_eq!(fast.smoothing, Some(0.1));

        let slow_large = GoshConfig::preset(Preset::Slow, true);
        assert_eq!(slow_large.epochs, 300);
        assert_eq!(slow_large.smoothing, Some(0.5));

        let nc = GoshConfig::preset(Preset::NoCoarsening, false);
        assert_eq!(nc.smoothing, None);
        assert_eq!(nc.lr, 0.045);
    }

    #[test]
    fn defaults_match_paper_constants() {
        let c = GoshConfig::default();
        assert_eq!(c.coarsen_threshold, 100);
        assert_eq!(c.p_gpu, 3);
        assert_eq!(c.s_gpu, 4);
        assert_eq!(c.batch_b, 5);
    }

    #[test]
    fn device_bytes_formula() {
        let c = GoshConfig::default().with_dim(8);
        // 10 vertices, 20 arcs: 10*8*4 + 11*8 + 20*4 + 20*4 = 320+88+160 = 568.
        assert_eq!(c.device_bytes_needed(10, 20), 568);
    }

    #[test]
    fn quantized_precision_shrinks_only_the_matrix_term() {
        let c = GoshConfig::default().with_dim(8);
        let full = c.device_bytes_needed(10, 20);
        let f16 = c.with_precision(Precision::F16).device_bytes_needed(10, 20);
        let i8 = c.with_precision(Precision::I8).device_bytes_needed(10, 20);
        // Matrix terms: f32 10*8*4=320, f16 10*8*2=160, i8 10*(8+8)=160;
        // the graph arrays (248 bytes) are precision-independent.
        assert_eq!(full - f16, 160);
        assert_eq!(full - i8, 160);
    }

    #[test]
    fn builder_overrides() {
        let c = GoshConfig::default()
            .with_epochs(5)
            .with_dim(16)
            .with_threads(2);
        assert_eq!(c.epochs, 5);
        assert_eq!(c.dim, 16);
        assert_eq!(c.threads, 2);
    }
}
