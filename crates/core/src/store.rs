//! The `.embin` exact embedding store: the artifact `write_embedding`'s
//! text format cannot be.
//!
//! Text output truncates every coordinate to six decimals — fine for
//! eyeballing, fatal for round-tripping (subnormals vanish, values that
//! differ only past 1e-6 collapse). `.embin` stores the bits training
//! produced: f32 rows verbatim, f16/i8 rows in their canonical quantized
//! encoding, so `open(write(m)).to_embedding()` is bit-identical to the
//! precision's canonical decode ([`crate::quant::quantize_roundtrip`]).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic "GOSHEMB1"
//!      8     4  version (= 1)
//!     12     1  precision (0 = f32, 1 = f16, 2 = i8)
//!     13     3  reserved, must be zero
//!     16     8  num_vertices (u64)
//!     24     8  dim (u64)
//!     32     8  FNV-1a-64 checksum of the payload
//!     40     —  payload: num_vertices rows of `precision.row_bytes(dim)`
//! ```
//!
//! Row encodings match the trainer's in-memory quantized layout:
//! f32 → `dim × f32`; f16 → `dim × u16` ([`crate::quant::f32_to_f16_bits`]);
//! i8 → `scale f32, zero f32, dim × u8` ([`crate::quant::quantize_row_i8`]).
//! The 40-byte header is 8-byte aligned, so with an aligned base (mmap
//! returns page-aligned; the heap fallback allocates `u64`s) every f32/f16
//! row is naturally aligned and [`EmbeddingStore`] hands out zero-copy
//! typed row views. An i8 store is read *directly* — rows are scored
//! without decoding to f32, so serving holds 4x the vectors in RAM.
//!
//! The reader treats the file as untrusted, with the same discipline as
//! `gosh_graph::io::read_binary`: checked header arithmetic, exact
//! length-vs-payload consistency before any allocation, checksum
//! verification, and finite-scale validation for every i8 row. Corrupt
//! input is an [`io::ErrorKind::InvalidData`] error, never a panic.

use std::fs::File;
use std::io::{self, BufWriter, ErrorKind, Read, Write};
use std::path::Path;

use crate::model::Embedding;
use crate::quant::{
    dequantize_row_i8, f16_bits_to_f32, f32_to_f16_bits, quantize_row_i8, Precision, RowScale,
};

/// Magic bytes opening every `.embin` file (sibling of `GOSHCSR1`).
pub const EMBIN_MAGIC: &[u8; 8] = b"GOSHEMB1";
/// Current format version.
pub const EMBIN_VERSION: u32 = 1;
/// Header size in bytes; the payload starts here, 8-byte aligned.
pub const EMBIN_HEADER_BYTES: usize = 40;

/// Derive the `.embin` sibling path for a text embedding output:
/// `x.emb → x.embin`, anything else gets `.embin` appended.
pub fn embin_path_for(out: &str) -> String {
    match out.strip_suffix(".emb") {
        Some(stem) => format!("{stem}.embin"),
        None => format!("{out}.embin"),
    }
}

/// FNV-1a 64 over `bytes` — cheap, streaming, and good enough to catch
/// the truncation/bit-rot this header field exists for.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn precision_code(p: Precision) -> u8 {
    match p {
        Precision::F32 => 0,
        Precision::F16 => 1,
        Precision::I8 => 2,
    }
}

fn precision_from_code(code: u8) -> Option<Precision> {
    match code {
        0 => Some(Precision::F32),
        1 => Some(Precision::F16),
        2 => Some(Precision::I8),
        _ => None,
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg.into())
}

/// Encode `m` as an `.embin` payload at `precision` (header excluded).
fn encode_payload(m: &Embedding, precision: Precision) -> Vec<u8> {
    let n = m.num_vertices();
    let dim = m.dim();
    let mut payload = Vec::with_capacity(n * precision.row_bytes(dim));
    let mut codes = vec![0u8; dim];
    for v in 0..n as u32 {
        let row = m.row(v);
        match precision {
            Precision::F32 => {
                for &x in row {
                    payload.extend_from_slice(&x.to_le_bytes());
                }
            }
            Precision::F16 => {
                for &x in row {
                    payload.extend_from_slice(&f32_to_f16_bits(x).to_le_bytes());
                }
            }
            Precision::I8 => {
                let rs = quantize_row_i8(row, &mut codes);
                payload.extend_from_slice(&rs.scale.to_le_bytes());
                payload.extend_from_slice(&rs.zero.to_le_bytes());
                payload.extend_from_slice(&codes);
            }
        }
    }
    payload
}

/// Write `m` to `path` as a versioned, checksummed `.embin` store.
pub fn write_store(path: impl AsRef<Path>, m: &Embedding, precision: Precision) -> io::Result<()> {
    let payload = encode_payload(m, precision);
    let mut header = [0u8; EMBIN_HEADER_BYTES];
    header[..8].copy_from_slice(EMBIN_MAGIC);
    header[8..12].copy_from_slice(&EMBIN_VERSION.to_le_bytes());
    header[12] = precision_code(precision);
    // bytes 13..16 reserved, zero
    header[16..24].copy_from_slice(&(m.num_vertices() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(m.dim() as u64).to_le_bytes());
    header[32..40].copy_from_slice(&fnv1a64(&payload).to_le_bytes());

    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&header)?;
    w.write_all(&payload)?;
    w.flush()
}

/// The bytes backing an open store: a read-only private mmap when the
/// platform provides one, a heap copy otherwise. Both keep the file's
/// byte 0 at an 8-aligned base so the 40-byte header leaves the payload
/// aligned for zero-copy f32/f16 row views.
///
/// Under Miri the raw `mmap`/`munmap` FFI is uninterpretable, so the
/// whole mapping arm is compiled out (`not(miri)`) and the store runs
/// on the heap copy — same bytes, same alignment, checkable by Miri.
enum Backing {
    #[cfg(all(unix, not(miri)))]
    Mmap {
        ptr: *mut u8,
        len: usize,
    },
    Heap(Vec<u64>, usize),
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE over a file this
// process opened — immutable shared bytes, safe to read from any thread.
unsafe impl Send for Backing {}
// SAFETY: as for `Send` — the backing bytes are immutable for the life
// of the mapping, so shared cross-thread reads cannot race.
unsafe impl Sync for Backing {}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, not(miri)))]
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; unmapped only in Drop.
            Backing::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap(words, len) => {
                // SAFETY: u64 storage reinterpreted as bytes; `len` never
                // exceeds `words.len() * 8` by construction.
                let all = unsafe {
                    std::slice::from_raw_parts(words.as_ptr() as *const u8, words.len() * 8)
                };
                &all[..*len]
            }
        }
    }
}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(all(unix, not(miri)))]
        if let Backing::Mmap { ptr, len } = self {
            // SAFETY: exactly the region mmap returned; dropped once.
            unsafe { sys::munmap(*ptr as *mut core::ffi::c_void, *len) };
        }
    }
}

#[cfg(all(unix, not(miri)))]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// Map (or read) a whole file. Returns the backing and its length.
fn map_file(file: &File, len: usize) -> io::Result<Backing> {
    #[cfg(all(unix, not(miri)))]
    {
        use std::os::unix::io::AsRawFd;
        if len > 0 {
            // SAFETY: read-only private mapping of `len` bytes of an open
            // fd; the result is checked against MAP_FAILED before use.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 {
                return Ok(Backing::Mmap {
                    ptr: ptr as *mut u8,
                    len,
                });
            }
            // mmap refused (odd filesystem, exhausted maps): fall through
            // to the heap copy rather than failing the open.
        }
    }
    let mut words = vec![0u64; len.div_ceil(8)];
    // SAFETY: the u64 buffer viewed as bytes; we read at most `len` of
    // the `words.len() * 8` available.
    let dst =
        unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 8) };
    let mut r = io::BufReader::new(file);
    r.read_exact(&mut dst[..len])?;
    Ok(Backing::Heap(words, len))
}

/// A read-only, mmap-backed `.embin` store with zero-copy row access.
///
/// Opening validates the whole file (header arithmetic, payload length,
/// checksum, i8 scale finiteness), so every accessor after a successful
/// [`EmbeddingStore::open`] is infallible. Rows are served straight from
/// the mapping — an i8 store never materializes f32 rows.
pub struct EmbeddingStore {
    backing: Backing,
    num_vertices: usize,
    dim: usize,
    precision: Precision,
    row_bytes: usize,
}

impl std::fmt::Debug for EmbeddingStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingStore")
            .field("num_vertices", &self.num_vertices)
            .field("dim", &self.dim)
            .field("precision", &self.precision)
            .finish_non_exhaustive()
    }
}

impl EmbeddingStore {
    /// Open and fully validate `path`. The file is untrusted: any
    /// inconsistency is [`io::ErrorKind::InvalidData`], never a panic.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < EMBIN_HEADER_BYTES as u64 {
            return Err(bad(format!(
                "embin file is {file_len} bytes, smaller than the {EMBIN_HEADER_BYTES}-byte header"
            )));
        }
        // The header bounds how much a lying length field can cost us:
        // we map exactly the real file, never an attacker-claimed size.
        if file_len > usize::MAX as u64 {
            return Err(bad("embin file larger than the address space"));
        }
        let backing = map_file(&file, file_len as usize)?;
        let store = Self::validate(backing, file_len as usize)?;
        Ok(store)
    }

    fn validate(backing: Backing, file_len: usize) -> io::Result<Self> {
        let bytes = backing.bytes();
        let header = &bytes[..EMBIN_HEADER_BYTES];
        if &header[..8] != EMBIN_MAGIC {
            return Err(bad("not an embin file (bad magic)"));
        }
        // audit:allow(unwrap): fixed 4-byte slice into a 4-byte array
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != EMBIN_VERSION {
            return Err(bad(format!(
                "unsupported embin version {version} (expected {EMBIN_VERSION})"
            )));
        }
        let precision = precision_from_code(header[12])
            .ok_or_else(|| bad(format!("unknown precision code {}", header[12])))?;
        if header[13..16] != [0, 0, 0] {
            return Err(bad("reserved header bytes are not zero"));
        }
        let num_vertices = u64::from_le_bytes(header[16..24].try_into().unwrap()); // audit:allow(unwrap): fixed 8-byte slice
        let dim = u64::from_le_bytes(header[24..32].try_into().unwrap()); // audit:allow(unwrap): fixed 8-byte slice
        let checksum = u64::from_le_bytes(header[32..40].try_into().unwrap()); // audit:allow(unwrap): fixed 8-byte slice

        // Row ids are u32 everywhere else in the codebase; a header
        // claiming more vertices is corrupt, not ambitious.
        if num_vertices > u32::MAX as u64 {
            return Err(bad(format!(
                "num_vertices {num_vertices} exceeds u32 range"
            )));
        }
        if dim == 0 || dim > (1u64 << 24) {
            return Err(bad(format!("dim {dim} out of range (1..=2^24)")));
        }
        // All size arithmetic checked: a forged header must not be able
        // to overflow its way past the length comparison.
        let row_bytes = dim
            .checked_mul(precision.bytes_per_element() as u64)
            .and_then(|b| b.checked_add(precision.row_overhead_bytes() as u64))
            .ok_or_else(|| bad("row size overflows"))?;
        let payload_len = num_vertices
            .checked_mul(row_bytes)
            .and_then(|p| p.checked_add(EMBIN_HEADER_BYTES as u64))
            .ok_or_else(|| bad("payload size overflows"))?;
        if payload_len != file_len as u64 {
            return Err(bad(format!(
                "file is {file_len} bytes but header implies {payload_len}"
            )));
        }

        let payload = &bytes[EMBIN_HEADER_BYTES..];
        let actual = fnv1a64(payload);
        if actual != checksum {
            return Err(bad(format!(
                "payload checksum mismatch: header says {checksum:#018x}, payload hashes to {actual:#018x}"
            )));
        }

        let store = Self {
            num_vertices: num_vertices as usize,
            dim: dim as usize,
            precision,
            row_bytes: row_bytes as usize,
            backing,
        };

        // i8 rows carry decode parameters in-band; reject non-finite
        // scales now so scoring never has to re-validate.
        if store.precision == Precision::I8 {
            for v in 0..store.num_vertices as u32 {
                let (rs, _) = store.row_i8(v);
                if !rs.scale.is_finite() || !rs.zero.is_finite() {
                    return Err(bad(format!("row {v} has a non-finite i8 scale/zero")));
                }
            }
        }
        Ok(store)
    }

    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Bytes of the store's whole payload (excludes the header).
    pub fn payload_bytes(&self) -> usize {
        self.num_vertices * self.row_bytes
    }

    fn row_raw(&self, v: u32) -> &[u8] {
        let o = EMBIN_HEADER_BYTES + v as usize * self.row_bytes;
        &self.backing.bytes()[o..o + self.row_bytes]
    }

    /// Zero-copy f32 row view. Panics if the store is not f32 — callers
    /// branch on [`EmbeddingStore::precision`] first.
    pub fn row_f32(&self, v: u32) -> &[f32] {
        assert_eq!(self.precision, Precision::F32, "row_f32 on a non-f32 store");
        // SAFETY: payload base is 8-aligned (mmap page / u64 heap) and
        // f32 rows start at multiples of 4 bytes from it, so the
        // reinterpretation is aligned; any f32 bit pattern is valid.
        let (pre, mid, post) = unsafe { self.row_raw(v).align_to::<f32>() };
        debug_assert!(pre.is_empty() && post.is_empty());
        mid
    }

    /// Zero-copy f16 row view (raw binary16 bits).
    pub fn row_f16(&self, v: u32) -> &[u16] {
        assert_eq!(self.precision, Precision::F16, "row_f16 on a non-f16 store");
        // SAFETY: as in `row_f32` — u16 rows start 2-aligned from an
        // 8-aligned base; any u16 bit pattern is valid.
        let (pre, mid, post) = unsafe { self.row_raw(v).align_to::<u16>() };
        debug_assert!(pre.is_empty() && post.is_empty());
        mid
    }

    /// Zero-copy i8 row view: decode parameters plus the byte codes.
    pub fn row_i8(&self, v: u32) -> (RowScale, &[u8]) {
        assert_eq!(self.precision, Precision::I8, "row_i8 on a non-i8 store");
        let raw = self.row_raw(v);
        let rs = RowScale {
            scale: f32::from_le_bytes(raw[..4].try_into().unwrap()), // audit:allow(unwrap): fixed 4-byte slice
            zero: f32::from_le_bytes(raw[4..8].try_into().unwrap()), // audit:allow(unwrap): fixed 4-byte slice
        };
        (rs, &raw[8..])
    }

    /// Decode row `v` into `out` (any precision).
    pub fn decode_row(&self, v: u32, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "decode_row buffer shape mismatch");
        match self.precision {
            Precision::F32 => out.copy_from_slice(self.row_f32(v)),
            Precision::F16 => {
                for (o, &h) in out.iter_mut().zip(self.row_f16(v)) {
                    *o = f16_bits_to_f32(h);
                }
            }
            Precision::I8 => {
                let (rs, codes) = self.row_i8(v);
                dequantize_row_i8(codes, rs, out);
            }
        }
    }

    /// Inner product of row `v` with query `q`, straight off the mapped
    /// bytes. `q_sum` must be `q.iter().sum()` — precomputed once per
    /// query so the i8 path can use the affine identity
    /// `dot(q, zero + scale·c) = zero·Σq + scale·Σ q_j·c_j`
    /// and never materialize an f32 row. Accumulation order is a pure
    /// function of `(store, v, q)`, so scores are bit-identical no
    /// matter which thread or batch evaluates them.
    pub fn dot(&self, v: u32, q: &[f32], q_sum: f32) -> f32 {
        debug_assert_eq!(q.len(), self.dim);
        match self.precision {
            Precision::F32 => crate::simd::dot8(self.row_f32(v), q),
            Precision::F16 => {
                let mut acc = 0.0f32;
                for (&h, &x) in self.row_f16(v).iter().zip(q) {
                    acc += f16_bits_to_f32(h) * x;
                }
                acc
            }
            Precision::I8 => {
                let (rs, codes) = self.row_i8(v);
                let mut acc = 0.0f32;
                for (&c, &x) in codes.iter().zip(q) {
                    acc += c as f32 * x;
                }
                rs.zero * q_sum + rs.scale * acc
            }
        }
    }

    /// Decode the whole store into an [`Embedding`] (the canonical
    /// quantized decode for f16/i8 stores, the original bits for f32).
    pub fn to_embedding(&self) -> Embedding {
        let mut data = vec![0.0f32; self.num_vertices * self.dim];
        for (v, chunk) in data.chunks_exact_mut(self.dim.max(1)).enumerate() {
            self.decode_row(v as u32, chunk);
        }
        Embedding::from_vec(data, self.num_vertices, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::quantize_roundtrip;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gosh-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    /// Adversarial rows for the precision-loss regression: subnormals,
    /// values separated only past the 6th decimal, huge magnitudes text
    /// rounds identically.
    fn adversarial() -> Embedding {
        let rows = vec![
            1.0e-40f32, // subnormal — prints as 0.000000
            f32::MIN_POSITIVE,
            1.000_000_1,
            1.000_000_2, // differs from the previous only past 1e-6
            -0.000_000_4,
            123_456_791.0, // consecutive f32s this large collide at 6 decimals
            123_456_792.0,
            0.1 + 0.2, // classic not-representable sum
        ];
        let dim = rows.len();
        Embedding::from_vec(rows, 1, dim)
    }

    #[test]
    fn f32_roundtrip_is_bitwise_exact() {
        let m = adversarial();
        let path = tmp("f32.embin");
        write_store(&path, &m, Precision::F32).unwrap();
        let store = EmbeddingStore::open(&path).unwrap();
        assert_eq!(store.precision(), Precision::F32);
        let bits_in: Vec<u32> = m.as_slice().iter().map(|x| x.to_bits()).collect();
        let bits_out: Vec<u32> = store
            .to_embedding()
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(bits_in, bits_out);
    }

    #[test]
    fn quantized_roundtrip_matches_canonical_decode_bitwise() {
        for precision in [Precision::F16, Precision::I8] {
            let m = Embedding::random(37, 12, 99);
            let path = tmp(&format!("{precision}.embin"));
            write_store(&path, &m, precision).unwrap();
            let store = EmbeddingStore::open(&path).unwrap();
            let mut canonical = m.as_slice().to_vec();
            quantize_roundtrip(&mut canonical, 12, precision);
            let decoded = store.to_embedding();
            let a: Vec<u32> = canonical.iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = decoded.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "{precision} decode diverged from quantize_roundtrip");
        }
    }

    /// The ISSUE regression: the text format loses the adversarial rows,
    /// the binary store does not.
    #[test]
    fn text_roundtrip_loses_what_the_binary_store_keeps() {
        let m = adversarial();
        // The text path, exactly as `write_embedding` formats it.
        let text_roundtrip: Vec<f32> = m
            .as_slice()
            .iter()
            .map(|x| format!("{x:.6}").parse::<f32>().unwrap())
            .collect();
        assert_ne!(
            text_roundtrip,
            m.as_slice(),
            "adversarial rows survived text formatting — pick harder ones"
        );

        let path = tmp("adversarial.embin");
        write_store(&path, &m, Precision::F32).unwrap();
        let binary_roundtrip = EmbeddingStore::open(&path).unwrap().to_embedding();
        assert_eq!(binary_roundtrip.as_slice(), m.as_slice());
    }

    #[test]
    fn i8_store_is_4x_smaller_and_scores_without_decoding() {
        let dim = 32;
        let m = Embedding::random(64, dim, 5);
        let p32 = tmp("size32.embin");
        let p8 = tmp("size8.embin");
        write_store(&p32, &m, Precision::F32).unwrap();
        write_store(&p8, &m, Precision::I8).unwrap();
        let s32 = EmbeddingStore::open(&p32).unwrap();
        let s8 = EmbeddingStore::open(&p8).unwrap();
        let ratio = s32.payload_bytes() as f64 / s8.payload_bytes() as f64;
        assert!(ratio > 3.0, "i8 payload only {ratio:.2}x smaller");

        // Direct i8 scoring equals dot(decoded_row, q) exactly: the
        // affine identity is algebra, but accumulation differs, so allow
        // only tiny float slack.
        let q: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let q_sum: f32 = q.iter().sum();
        let mut row = vec![0.0f32; dim];
        for v in 0..64u32 {
            let direct = s8.dot(v, &q, q_sum);
            s8.decode_row(v, &mut row);
            let via_decode: f32 = row.iter().zip(&q).map(|(a, b)| a * b).sum();
            assert!(
                (direct - via_decode).abs() <= 1e-3 * (1.0 + via_decode.abs()),
                "v{v}: direct {direct} vs decoded {via_decode}"
            );
        }
    }

    #[test]
    fn truncated_and_corrupted_files_error_cleanly() {
        let m = Embedding::random(10, 8, 3);
        let path = tmp("corrupt.embin");
        write_store(&path, &m, Precision::F32).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncations at every interesting boundary.
        for cut in [0, 7, 39, 40, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(EmbeddingStore::open(&path).is_err(), "cut at {cut} opened");
        }
        // A flipped payload bit must trip the checksum.
        let mut flipped = good.clone();
        *flipped.last_mut().unwrap() ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let err = EmbeddingStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // A header lying about num_vertices must fail the length check
        // (and must not allocate toward the forged size).
        let mut lying = good.clone();
        lying[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &lying).unwrap();
        assert!(EmbeddingStore::open(&path).is_err());
    }

    #[test]
    fn i8_store_rejects_non_finite_scales() {
        let m = Embedding::random(4, 4, 11);
        let path = tmp("nan-scale.embin");
        write_store(&path, &m, Precision::I8).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Poison row 2's scale with NaN, then re-stamp the checksum so
        // only the finiteness check can catch it.
        let row_off = EMBIN_HEADER_BYTES + 2 * Precision::I8.row_bytes(4);
        bytes[row_off..row_off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        let sum = fnv1a64(&bytes[EMBIN_HEADER_BYTES..]);
        bytes[32..40].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = EmbeddingStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn embin_path_derivation() {
        assert_eq!(embin_path_for("out.emb"), "out.embin");
        assert_eq!(embin_path_for("dir/x.emb"), "dir/x.embin");
        assert_eq!(embin_path_for("plain"), "plain.embin");
    }
}
