//! The GOSH pipeline — Algorithm 2.
//!
//! Coarsen, initialize the coarsest matrix randomly, then walk the
//! hierarchy from `G_{D-1}` down to `G_0`: train each level through the
//! [`TrainBackend`] chain selected by [`crate::backend::BackendChoice`]
//! (the device-fit check of line 5 is backend selection — the first
//! backend whose `fits` accepts the level trains it) and project the
//! result to the next finer level.

use std::time::Instant;

use gosh_coarsen::hierarchy::{coarsen_hierarchy, CoarsenConfig, Hierarchy};
use gosh_gpu::{CostSnapshot, Device};
use gosh_graph::csr::Csr;

use crate::backend::{
    backends_for, BackendKind, LevelSchedule, PartitionedOpts, TrainBackend, TrainParams,
};
use crate::config::GoshConfig;
use crate::expand::expand_embedding_parallel;
use crate::model::Embedding;
use crate::schedule::epoch_distribution;
use crate::train_gpu::KernelVariant;

/// Per-level training record.
#[derive(Clone, Copy, Debug)]
pub struct LevelReport {
    /// Level index (0 = original graph).
    pub level: usize,
    /// Vertices at this level.
    pub vertices: usize,
    /// Directed arcs at this level.
    pub arcs: usize,
    /// Epochs spent here (`e_i`).
    pub epochs: u32,
    /// Wall-clock training seconds for this level.
    pub seconds: f64,
    /// The engine that trained this level.
    pub backend: BackendKind,
    /// True if the Algorithm 5 partitioned path was used.
    pub used_large_path: bool,
}

/// Summary of one [`embed`] run.
#[derive(Clone, Debug)]
pub struct GoshReport {
    /// Number of levels D (1 when coarsening is disabled).
    pub depth: usize,
    /// Wall-clock seconds spent coarsening.
    pub coarsening_seconds: f64,
    /// Wall-clock seconds spent training (all levels).
    pub training_seconds: f64,
    /// End-to-end wall-clock seconds.
    pub total_seconds: f64,
    /// Per-level details, coarsest first (training order).
    pub levels: Vec<LevelReport>,
    /// Device cost counters accumulated by this run (for modeled time).
    pub device_cost: CostSnapshot,
}

/// Embed `g0` with GOSH. Returns `M_0` and the run report.
pub fn embed(g0: &Csr, cfg: &GoshConfig, device: &Device) -> (Embedding, GoshReport) {
    let t0 = Instant::now();
    let cost0 = device.snapshot();

    // Stage 1: coarsening (Algorithm 4) — or a single-level "hierarchy"
    // for the no-coarsening configuration.
    let hierarchy = match cfg.smoothing {
        Some(_) => coarsen_hierarchy(
            g0.clone(),
            &CoarsenConfig {
                threshold: cfg.coarsen_threshold,
                threads: cfg.threads,
                ..Default::default()
            },
        ),
        None => Hierarchy {
            graphs: vec![g0.clone()],
            maps: Vec::new(),
            stats: Vec::new(),
        },
    };
    let coarsening_seconds = t0.elapsed().as_secs_f64();

    let depth = hierarchy.depth();
    let p = cfg.smoothing.unwrap_or(1.0);
    let dist = epoch_distribution(cfg.epochs, p, depth);

    // Stage 2: train coarsest-to-finest with projection in between, each
    // level dispatched through the backend chain.
    let t_train = Instant::now();
    let coarsest = hierarchy.coarsest();
    let mut matrix = Embedding::random(coarsest.num_vertices(), cfg.dim, cfg.seed);
    let variant = if cfg.small_dim_kernel {
        KernelVariant::Auto
    } else {
        KernelVariant::Optimized
    };
    let params = TrainParams {
        dim: cfg.dim,
        negative_samples: cfg.negative_samples,
        lr: cfg.lr,
        epochs: cfg.epochs,
        similarity: crate::backend::Similarity::Adjacency,
        threads: cfg.threads,
        seed: cfg.seed,
        precision: cfg.precision,
    };
    let opts = PartitionedOpts {
        p_gpu: cfg.p_gpu,
        s_gpu: cfg.s_gpu,
        batch_b: cfg.batch_b,
    };
    let backends = backends_for(cfg.backend, device, params, variant, opts);
    let mut levels = Vec::with_capacity(depth);

    for i in (0..depth).rev() {
        let g = &hierarchy.graphs[i];
        let e_i = dist[i];
        let backend: &dyn TrainBackend = backends
            .iter()
            .find(|b| b.fits(g))
            .expect("no backend in the chain accepts this level")
            .as_ref();
        let stats = backend.train_level(
            g,
            &mut matrix,
            LevelSchedule {
                level: i,
                epochs: e_i,
                seed: cfg.seed ^ i as u64,
                precision: cfg
                    .precision_schedule
                    .map(|ps| ps.level_precision(g.num_vertices())),
            },
        );
        levels.push(LevelReport {
            level: i,
            vertices: g.num_vertices(),
            arcs: g.num_edges(),
            epochs: e_i,
            seconds: stats.seconds,
            backend: stats.backend,
            used_large_path: stats.backend == BackendKind::GpuPartitioned,
        });
        if i > 0 {
            // Sharded projection: the between-level copy rides the same
            // worker budget as training instead of stalling on one core.
            matrix = expand_embedding_parallel(&matrix, &hierarchy.maps[i - 1], cfg.threads);
        }
    }

    let training_seconds = t_train.elapsed().as_secs_f64();
    let report = GoshReport {
        depth,
        coarsening_seconds,
        training_seconds,
        total_seconds: t0.elapsed().as_secs_f64(),
        levels,
        device_cost: device.snapshot().since(&cost0),
    };
    (matrix, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendChoice;
    use crate::config::Preset;
    use gosh_gpu::DeviceConfig;
    use gosh_graph::builder::csr_from_edges;
    use gosh_graph::compact::remove_isolated;
    use gosh_graph::gen::{rmat, RmatConfig};

    fn small_cfg() -> GoshConfig {
        GoshConfig::preset(Preset::Normal, false)
            .with_dim(16)
            .with_epochs(60)
            .with_threads(4)
    }

    fn test_graph() -> Csr {
        remove_isolated(&rmat(&RmatConfig::graph500(9, 8.0), 77)).graph
    }

    #[test]
    fn full_pipeline_produces_finite_embedding() {
        let g = test_graph();
        let device = Device::new(DeviceConfig::titan_x());
        let (m, report) = embed(&g, &small_cfg(), &device);
        assert_eq!(m.num_vertices(), g.num_vertices());
        assert_eq!(m.dim(), 16);
        assert!(m.as_slice().iter().all(|x| x.is_finite()));
        assert!(
            report.depth >= 2,
            "expected multilevel, got {}",
            report.depth
        );
        assert_eq!(report.levels.len(), report.depth);
        // Training order is coarsest first.
        assert_eq!(report.levels.last().unwrap().level, 0);
        assert!(report.total_seconds >= report.training_seconds);
        assert!(report.device_cost.kernels > 0);
    }

    #[test]
    fn no_coarsening_config_has_one_level() {
        let g = test_graph();
        let device = Device::new(DeviceConfig::titan_x());
        let cfg = GoshConfig::preset(Preset::NoCoarsening, false)
            .with_dim(8)
            .with_epochs(10)
            .with_threads(2);
        let (_, report) = embed(&g, &cfg, &device);
        assert_eq!(report.depth, 1);
        assert_eq!(report.levels[0].epochs, 10);
        assert!(report.coarsening_seconds < 0.05);
    }

    #[test]
    fn epochs_concentrate_on_coarse_levels() {
        let g = test_graph();
        let device = Device::new(DeviceConfig::titan_x());
        let (_, report) = embed(&g, &small_cfg(), &device);
        if report.depth >= 3 {
            let coarsest = report.levels.first().unwrap();
            let finest = report.levels.last().unwrap();
            assert!(coarsest.epochs > finest.epochs);
        }
    }

    #[test]
    fn tiny_device_routes_through_large_path() {
        let g = test_graph();
        // Matrix for the full graph will not fit: force Algorithm 5 at the
        // fine levels while coarse levels still fit.
        let bytes = g.num_vertices() * 16 * 4 / 4;
        let device = Device::new(DeviceConfig::tiny(bytes));
        let (m, report) = embed(&g, &small_cfg(), &device);
        assert!(m.as_slice().iter().all(|x| x.is_finite()));
        assert!(
            report.levels.iter().any(|l| l.used_large_path),
            "no level used the partitioned path"
        );
        assert!(report
            .levels
            .iter()
            .all(|l| l.used_large_path == (l.backend == BackendKind::GpuPartitioned)));
        assert_eq!(device.allocated_bytes(), 0);
    }

    #[test]
    fn cpu_backend_trains_every_level_off_device() {
        let g = test_graph();
        let device = Device::new(DeviceConfig::titan_x());
        let cfg = small_cfg().with_backend(BackendChoice::Cpu);
        let (m, report) = embed(&g, &cfg, &device);
        assert!(m.as_slice().iter().all(|x| x.is_finite()));
        assert!(report
            .levels
            .iter()
            .all(|l| l.backend == BackendKind::CpuHogwild));
        // The device was never touched.
        assert_eq!(report.device_cost.kernels, 0);
        assert_eq!(device.allocated_bytes(), 0);
    }

    #[test]
    fn gpu_and_auto_choices_agree_on_backend_sequence() {
        let g = test_graph();
        let kinds = |choice: BackendChoice| -> Vec<BackendKind> {
            let device = Device::new(DeviceConfig::titan_x());
            let (_, report) = embed(&g, &small_cfg().with_backend(choice), &device);
            report.levels.iter().map(|l| l.backend).collect()
        };
        assert_eq!(kinds(BackendChoice::Gpu), kinds(BackendChoice::Auto));
    }

    #[test]
    fn precision_schedule_splits_levels_and_degenerate_schedule_is_f32() {
        use crate::config::PrecisionSchedule;
        use crate::quant::Precision;
        let g = test_graph();
        // One thread: Hogwild races make multi-threaded runs
        // non-repeatable, and this test compares runs bitwise.
        let cfg = small_cfg().with_backend(BackendChoice::Cpu).with_threads(1);

        // A schedule whose cutoff excludes every level is plain f32.
        let all_coarse = cfg.with_precision_schedule(PrecisionSchedule {
            coarse: Precision::F32,
            fine: Precision::I8,
            cutoff: usize::MAX,
        });
        let device = Device::new(DeviceConfig::titan_x());
        let (m_ref, _) = embed(&g, &cfg, &device);
        let (m_coarse, _) = embed(&g, &all_coarse, &device);
        assert_eq!(m_ref.as_slice(), m_coarse.as_slice());

        // A cutoff inside the hierarchy quantizes the fine levels: the
        // result must differ from pure f32 but still embed the graph.
        let mixed = cfg.with_precision_schedule(PrecisionSchedule {
            coarse: Precision::F32,
            fine: Precision::I8,
            cutoff: 64,
        });
        let (m_mixed, _) = embed(&g, &mixed, &device);
        assert!(m_mixed.as_slice().iter().all(|x| x.is_finite()));
        assert_ne!(m_ref.as_slice(), m_mixed.as_slice());
    }

    #[test]
    fn embedding_reflects_structure_end_to_end() {
        // Two dense clusters bridged by one edge; after the full pipeline
        // the intra-cluster cosine must dominate.
        let mut edges = vec![];
        for x in 0..10u32 {
            for y in 0..x {
                edges.push((x, y));
                edges.push((x + 10, y + 10));
            }
        }
        edges.push((0, 10));
        let g = csr_from_edges(20, &edges);
        let device = Device::new(DeviceConfig::titan_x());
        let cfg = small_cfg().with_epochs(300);
        let (m, _) = embed(&g, &cfg, &device);
        let intra = (m.cosine(1, 2) + m.cosine(11, 12)) / 2.0;
        let inter = (m.cosine(1, 12) + m.cosine(2, 11)) / 2.0;
        assert!(intra > inter, "intra {intra} vs inter {inter}");
    }
}
