//! # gosh-core
//!
//! The GOSH embedding pipeline (Algorithms 1–3 and 5 of the paper):
//!
//! * [`backend`] — the [`backend::TrainBackend`] abstraction: the one
//!   shared [`backend::TrainParams`] plus the `CpuHogwild`,
//!   `GpuInMemory` and `GpuPartitioned` engines the pipeline selects
//!   between per level.
//! * [`model`] — embedding matrices, host- and shared-(atomic-)side.
//! * [`simd`] — the explicit 8-wide f32 lane operations of the hot path:
//!   autovectorization-shaped scalar cores with runtime-detected AVX2
//!   intrinsic twins, bit-identical by construction.
//! * [`quant`] — reduced-precision row storage (f16, per-row-scaled i8)
//!   behind the `--precision` knob, with the quantized Hogwild engine's
//!   row codecs.
//! * [`store`] — the `.embin` exact binary embedding store: versioned,
//!   checksummed, mmap-backed with zero-copy row access.
//! * [`serve`] — top-k query serving over a store: brute-force exact,
//!   IVF coarse-quantizer ANN, and the TCP request/response protocol
//!   behind `gosh serve`.
//! * [`update`] — the single positive/negative update (Algorithm 1).
//! * [`schedule`] — the smoothing-ratio epoch distribution across levels
//!   and the per-epoch learning-rate decay.
//! * [`expand`] — projecting `M_i` to `M_{i-1}` through a coarsening map.
//! * [`train_gpu`] — `TrainInGPU` (Algorithm 3) on the simulated device,
//!   in naive, optimized and packed small-dimension variants.
//! * [`train_cpu`] — the multi-threaded Hogwild CPU trainer used as the
//!   §4.8 speedup reference.
//! * [`large`] — the out-of-memory path (Algorithm 5): embedding-matrix
//!   partitioning, inside-out rotations, host-side sample pools with
//!   `SampleManager`/`PoolManager` threads, and copy/compute overlap.
//! * [`multi_gpu`] — synchronous data-parallel replica training.
//! * [`distrib`] — the replica scheme stretched across a [`gosh_runtime::transport::Transport`]
//!   mesh: `gosh train --nodes N` with replicated coarse levels and
//!   delta-exchanged sharded fine levels.
//! * [`pipeline`] — Algorithm 2 tying everything together, dispatching
//!   every level through the backend chain.
//! * [`config`] — the fast/normal/slow/no-coarsening presets of Table 3.

// This crate contains audited `unsafe` (see docs/SAFETY.md and the
// `gosh audit` gate): every unsafe operation must sit in an explicit
// block with its own `// SAFETY:` invariant, even inside `unsafe fn`.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod backend;
pub mod config;
pub mod distrib;
pub mod expand;
pub mod large;
pub mod model;
pub mod multi_gpu;
pub mod pipeline;
pub mod quant;
pub mod schedule;
pub mod serve;
pub mod simd;
pub mod store;
pub mod train_cpu;
pub mod train_gpu;
pub mod update;
pub mod warm;

pub use backend::{
    backends_for, BackendChoice, BackendKind, CpuHogwild, GpuInMemory, GpuPartitioned,
    LevelSchedule, LevelStats, PartitionedOpts, Similarity, TrainBackend, TrainParams,
};
pub use config::{GoshConfig, PrecisionSchedule, Preset};
pub use distrib::{embed_distributed, DistribConfig, DistribReport, TransportKind};
pub use model::Embedding;
pub use pipeline::{embed, GoshReport};
pub use quant::Precision;
pub use store::{write_store, EmbeddingStore};
pub use train_gpu::KernelVariant;
pub use warm::{warm_embed, WarmConfig, WarmReport};
