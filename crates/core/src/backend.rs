//! The `TrainBackend` abstraction: one interface over the three training
//! engines.
//!
//! The pipeline (Algorithm 2) does not care *how* a level is trained —
//! only that an engine takes a graph and a matrix, spends the level's
//! epoch budget, and leaves the updated matrix behind. Three engines
//! implement that contract:
//!
//! * [`CpuHogwild`] — the multi-threaded lock-free CPU trainer of §3.1
//!   (also the engine under the VERSE baseline);
//! * [`GpuInMemory`] — `TrainInGPU` (Algorithm 3), graph + matrix
//!   resident on the device;
//! * [`GpuPartitioned`] — `LargeGraphGPU` (Algorithm 5), the partitioned
//!   out-of-memory path.
//!
//! [`crate::pipeline::embed`] selects a backend per level by walking a
//! policy chain (see [`backends_for`]): the first backend whose
//! [`TrainBackend::fits`] accepts the level trains it. The device-fit
//! check of Algorithm 2 line 5 is exactly `GpuInMemory::fits`; adding a
//! new engine (multi-GPU sharding, an async pipeline) means implementing
//! the trait and inserting it into the chain — the pipeline itself does
//! not change.
//!
//! This module also owns the *shared* hyper-parameter vocabulary: the
//! one [`TrainParams`] struct every engine consumes (the per-level epoch
//! budget and LR-decay live in [`crate::schedule`]) and the
//! [`Similarity`] measure `Q` of §2.

use std::time::Instant;

use gosh_gpu::Device;
use gosh_graph::csr::Csr;

use crate::large::run::{train_large, LargeReport};
use crate::model::Embedding;
use crate::quant::Precision;
use crate::train_cpu::train_cpu;
use crate::train_gpu::{train_level_on_device, KernelVariant};

/// Positive-sample distribution (the similarity measure `Q` of §2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Similarity {
    /// Uniform over Γ(src): the adjacency measure GOSH uses.
    Adjacency,
    /// Personalized PageRank: endpoint of a restart-terminated random walk
    /// from the source (VERSE's recommended setting, α = 0.85).
    Ppr {
        /// Continuation probability.
        alpha: f32,
    },
}

/// Training hyper-parameters shared by **every** backend.
///
/// This is the single parameter struct of `gosh-core`; the former
/// `CpuTrainParams` / GPU-path `TrainParams` / `LargeParams` triplet
/// collapsed into it. Per-backend knobs that are not hyper-parameters of
/// the embedding problem (kernel variant, partitioning shape) live on the
/// backend structs instead.
#[derive(Clone, Copy, Debug)]
pub struct TrainParams {
    /// Embedding dimension `d`.
    pub dim: usize,
    /// Negative samples per source processing (`ns`).
    pub negative_samples: usize,
    /// Initial learning rate; decays per epoch (see
    /// [`crate::schedule::decayed_lr`]).
    pub lr: f32,
    /// Epochs (one epoch = |E| source processings, §4.3).
    pub epochs: u32,
    /// Positive-sample distribution.
    pub similarity: Similarity,
    /// Host worker threads (CPU Hogwild team / SampleManager team; the
    /// paper's τ). Ignored by engines with no host-side workers.
    pub threads: usize,
    /// RNG seed for host-side sampling.
    pub seed: u64,
    /// Embedding row storage width ([`crate::quant`]). `F32` is the
    /// bit-exact reference path; `F16`/`I8` train through
    /// dequantize-on-load/requantize-on-store rows and let the capacity
    /// math fit 2–4x larger graphs per device.
    pub precision: Precision,
}

impl Default for TrainParams {
    fn default() -> Self {
        Self {
            dim: 128,
            negative_samples: 3,
            lr: 0.025,
            epochs: 100,
            similarity: Similarity::Adjacency,
            threads: 16,
            seed: 0xCEC5,
            precision: Precision::F32,
        }
    }
}

impl TrainParams {
    /// Adjacency-similarity parameters (the paper's setting).
    pub fn adjacency(dim: usize, negative_samples: usize, lr: f32, epochs: u32) -> Self {
        Self {
            dim,
            negative_samples,
            lr,
            epochs,
            ..Self::default()
        }
    }

    /// Override the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the similarity measure.
    pub fn with_similarity(mut self, similarity: Similarity) -> Self {
        self.similarity = similarity;
        self
    }

    /// Override the row storage precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

/// Partitioning shape of the Algorithm 5 path — [`GpuPartitioned`]'s
/// backend options, not embedding hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct PartitionedOpts {
    /// Embedding sub-matrix bins resident on the device (P_GPU).
    pub p_gpu: usize,
    /// Sample pools in flight (S_GPU).
    pub s_gpu: usize,
    /// Positive samples per vertex per pool (B).
    pub batch_b: usize,
}

impl Default for PartitionedOpts {
    fn default() -> Self {
        // The paper's defaults (§4.2): P_GPU = 3, S_GPU = 4, B = 5.
        Self {
            p_gpu: 3,
            s_gpu: 4,
            batch_b: 5,
        }
    }
}

/// One level's slice of the training schedule, as handed to a backend.
#[derive(Clone, Copy, Debug)]
pub struct LevelSchedule {
    /// Level index (0 = the original graph).
    pub level: usize,
    /// Epoch budget `e_i` for this level (from
    /// [`crate::schedule::epoch_distribution`]).
    pub epochs: u32,
    /// Per-level RNG seed (already mixed with the level index).
    pub seed: u64,
    /// Per-level row-storage override (`--precision-schedule`): `None`
    /// trains at the backend's configured precision; `Some` forces this
    /// level's width — coarse levels can stay f32 while huge fine levels
    /// drop to f16/i8 where the memory actually matters.
    pub precision: Option<Precision>,
}

impl LevelSchedule {
    /// A single-level schedule — the whole budget on one graph, as the
    /// baselines and no-coarsening runs use.
    pub fn single(epochs: u32, seed: u64) -> Self {
        Self {
            level: 0,
            epochs,
            seed,
            precision: None,
        }
    }
}

/// Which engine trained a level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Lock-free multi-threaded CPU training.
    CpuHogwild,
    /// One-shot device training (graph + matrix resident).
    GpuInMemory,
    /// Partitioned device training (Algorithm 5).
    GpuPartitioned,
}

/// What a backend reports back for one trained level.
#[derive(Clone, Copy, Debug)]
pub struct LevelStats {
    /// The engine that ran.
    pub backend: BackendKind,
    /// Wall-clock seconds spent training the level.
    pub seconds: f64,
    /// Partitioned-path details when [`BackendKind::GpuPartitioned`] ran.
    pub large: Option<LargeReport>,
}

/// A training engine for one hierarchy level.
///
/// Implementations own their device handle and hyper-parameters; the
/// pipeline only supplies what varies per level. `emb` is updated in
/// place and must stay row-compatible with `g`.
pub trait TrainBackend {
    /// Which engine this is (drives reporting).
    fn kind(&self) -> BackendKind;

    /// Can this backend train `g` at the configured dimension? The
    /// pipeline walks its backend chain and uses the first that fits —
    /// this is the device-fit check of Algorithm 2, line 5, generalized.
    fn fits(&self, g: &Csr) -> bool;

    /// Train `emb` on `g` for the level's epoch budget.
    fn train_level(&self, g: &Csr, emb: &mut Embedding, lvl: LevelSchedule) -> LevelStats;
}

/// Device bytes needed to train graph + matrix resident on the device
/// (Algorithm 2, line 5): the matrix, xadj, adj, and the arc-source
/// schedule used by the edge-frequency epoch definition. Prices the
/// matrix at full f32 width; see [`device_bytes_needed_prec`].
pub fn device_bytes_needed(dim: usize, num_vertices: usize, num_arcs: usize) -> usize {
    device_bytes_needed_prec(dim, num_vertices, num_arcs, Precision::F32)
}

/// [`device_bytes_needed`] with the embedding matrix priced at its true
/// storage width: quantized rows shrink only the matrix term (the graph
/// arrays stay full width), which is exactly what lets `--precision i8`
/// keep a 4x-larger matrix resident.
pub fn device_bytes_needed_prec(
    dim: usize,
    num_vertices: usize,
    num_arcs: usize,
    precision: Precision,
) -> usize {
    let matrix = num_vertices * precision.row_bytes(dim);
    let xadj = (num_vertices + 1) * 8;
    let adj = num_arcs * 4;
    let arc_src = num_arcs * 4;
    matrix + xadj + adj + arc_src
}

/// The multi-threaded Hogwild CPU engine (§3.1's CPU reference).
#[derive(Clone, Debug)]
pub struct CpuHogwild {
    /// Shared hyper-parameters.
    pub params: TrainParams,
}

impl CpuHogwild {
    /// Build the backend.
    pub fn new(params: TrainParams) -> Self {
        Self { params }
    }
}

impl TrainBackend for CpuHogwild {
    fn kind(&self) -> BackendKind {
        BackendKind::CpuHogwild
    }

    fn fits(&self, _g: &Csr) -> bool {
        true
    }

    fn train_level(&self, g: &Csr, emb: &mut Embedding, lvl: LevelSchedule) -> LevelStats {
        let t0 = Instant::now();
        let params = TrainParams {
            epochs: lvl.epochs,
            seed: lvl.seed,
            precision: lvl.precision.unwrap_or(self.params.precision),
            ..self.params
        };
        train_cpu(g, emb, &params);
        LevelStats {
            backend: BackendKind::CpuHogwild,
            seconds: t0.elapsed().as_secs_f64(),
            large: None,
        }
    }
}

/// The one-shot device engine: upload, run `TrainInGPU`, download.
#[derive(Clone)]
pub struct GpuInMemory {
    /// Device to train on.
    pub device: Device,
    /// Shared hyper-parameters.
    pub params: TrainParams,
    /// Kernel variant (§3.1 / §3.1.1).
    pub variant: KernelVariant,
}

impl GpuInMemory {
    /// Build the backend with the given kernel variant.
    pub fn new(device: Device, params: TrainParams, variant: KernelVariant) -> Self {
        Self {
            device,
            params,
            variant,
        }
    }
}

impl TrainBackend for GpuInMemory {
    fn kind(&self) -> BackendKind {
        BackendKind::GpuInMemory
    }

    fn fits(&self, g: &Csr) -> bool {
        device_bytes_needed_prec(
            self.params.dim,
            g.num_vertices(),
            g.num_edges(),
            self.params.precision,
        ) <= self.device.available_bytes()
    }

    fn train_level(&self, g: &Csr, emb: &mut Embedding, lvl: LevelSchedule) -> LevelStats {
        let t0 = Instant::now();
        let params = TrainParams {
            epochs: lvl.epochs,
            seed: lvl.seed,
            precision: lvl.precision.unwrap_or(self.params.precision),
            ..self.params
        };
        train_level_on_device(&self.device, g, emb, &params, self.variant)
            .expect("in-memory training failed to allocate on a level that fits");
        LevelStats {
            backend: BackendKind::GpuInMemory,
            seconds: t0.elapsed().as_secs_f64(),
            large: None,
        }
    }
}

/// The partitioned out-of-memory engine (Algorithm 5).
#[derive(Clone)]
pub struct GpuPartitioned {
    /// Device to train on.
    pub device: Device,
    /// Shared hyper-parameters.
    pub params: TrainParams,
    /// Partitioning shape (P_GPU, S_GPU, B).
    pub opts: PartitionedOpts,
}

impl GpuPartitioned {
    /// Build the backend.
    pub fn new(device: Device, params: TrainParams, opts: PartitionedOpts) -> Self {
        Self {
            device,
            params,
            opts,
        }
    }
}

impl TrainBackend for GpuPartitioned {
    fn kind(&self) -> BackendKind {
        BackendKind::GpuPartitioned
    }

    fn fits(&self, _g: &Csr) -> bool {
        // Partitioning exists precisely for levels nothing else fits;
        // the part count adapts to whatever memory the device has.
        true
    }

    fn train_level(&self, g: &Csr, emb: &mut Embedding, lvl: LevelSchedule) -> LevelStats {
        let t0 = Instant::now();
        let params = TrainParams {
            epochs: lvl.epochs,
            seed: lvl.seed,
            precision: lvl.precision.unwrap_or(self.params.precision),
            ..self.params
        };
        let report = train_large(&self.device, g, emb, &params, &self.opts)
            .expect("partitioned training failed to allocate");
        LevelStats {
            backend: BackendKind::GpuPartitioned,
            seconds: t0.elapsed().as_secs_f64(),
            large: Some(report),
        }
    }
}

/// Which backend chain the pipeline should use (`--backend` in the CLI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Force CPU Hogwild on every level.
    Cpu,
    /// Device only: in-memory when the level fits, Algorithm 5 otherwise.
    Gpu,
    /// The default policy: prefer the device (in-memory, then
    /// partitioned), with CPU as a last-resort fallback should a future
    /// device backend decline a level.
    #[default]
    Auto,
}

impl std::str::FromStr for BackendChoice {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "cpu" => Ok(Self::Cpu),
            "gpu" => Ok(Self::Gpu),
            "auto" => Ok(Self::Auto),
            other => Err(format!("unknown backend `{other}` (cpu|gpu|auto)")),
        }
    }
}

/// Build the backend chain for a pipeline run: the ordered candidates
/// [`crate::pipeline::embed`] walks per level (first fit wins).
pub fn backends_for(
    choice: BackendChoice,
    device: &Device,
    params: TrainParams,
    variant: KernelVariant,
    opts: PartitionedOpts,
) -> Vec<Box<dyn TrainBackend>> {
    let cpu = || Box::new(CpuHogwild::new(params)) as Box<dyn TrainBackend>;
    let in_memory =
        || Box::new(GpuInMemory::new(device.clone(), params, variant)) as Box<dyn TrainBackend>;
    let partitioned =
        || Box::new(GpuPartitioned::new(device.clone(), params, opts)) as Box<dyn TrainBackend>;
    match choice {
        BackendChoice::Cpu => vec![cpu()],
        BackendChoice::Gpu => vec![in_memory(), partitioned()],
        BackendChoice::Auto => vec![in_memory(), partitioned(), cpu()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosh_gpu::DeviceConfig;
    use gosh_graph::builder::csr_from_edges;
    use gosh_graph::gen::{community_graph, CommunityConfig};

    fn clique_graph() -> Csr {
        let mut edges = vec![];
        for a in 0..8u32 {
            for b in 0..a {
                edges.push((a, b));
                edges.push((a + 8, b + 8));
            }
        }
        edges.push((0, 8));
        csr_from_edges(16, &edges)
    }

    fn params() -> TrainParams {
        TrainParams::adjacency(16, 3, 0.05, 150).with_threads(4)
    }

    fn learned_structure(m: &Embedding) -> bool {
        let intra = (m.cosine(0, 1) + m.cosine(8, 9)) / 2.0;
        let inter = (m.cosine(0, 9) + m.cosine(1, 10)) / 2.0;
        intra > inter + 0.25
    }

    #[test]
    fn every_backend_trains_through_the_trait() {
        let g = clique_graph();
        let device = Device::new(DeviceConfig::titan_x());
        let tiny = Device::new(DeviceConfig::tiny(4096));
        let backends: Vec<Box<dyn TrainBackend>> = vec![
            Box::new(CpuHogwild::new(params())),
            Box::new(GpuInMemory::new(device, params(), KernelVariant::Auto)),
            Box::new(GpuPartitioned::new(
                tiny,
                params().with_threads(2),
                PartitionedOpts::default(),
            )),
        ];
        for be in &backends {
            let mut m = Embedding::random(16, 16, 7);
            let lvl = LevelSchedule::single(
                if be.kind() == BackendKind::GpuPartitioned {
                    400
                } else {
                    150
                },
                3,
            );
            let stats = be.train_level(&g, &mut m, lvl);
            assert_eq!(stats.backend, be.kind());
            assert!(stats.seconds >= 0.0);
            assert!(
                m.as_slice().iter().all(|x| x.is_finite()),
                "{:?}",
                be.kind()
            );
            assert!(learned_structure(&m), "{:?} failed to learn", be.kind());
            assert_eq!(
                stats.large.is_some(),
                be.kind() == BackendKind::GpuPartitioned
            );
        }
    }

    #[test]
    fn in_memory_fit_check_matches_byte_formula() {
        let g = community_graph(&CommunityConfig::new(256, 6), 1);
        let needed = device_bytes_needed(16, g.num_vertices(), g.num_edges());
        let big = GpuInMemory::new(
            Device::new(DeviceConfig::tiny(needed)),
            TrainParams::adjacency(16, 3, 0.05, 1),
            KernelVariant::Auto,
        );
        assert!(big.fits(&g));
        let small = GpuInMemory::new(
            Device::new(DeviceConfig::tiny(needed - 1)),
            TrainParams::adjacency(16, 3, 0.05, 1),
            KernelVariant::Auto,
        );
        assert!(!small.fits(&g));
    }

    #[test]
    fn device_bytes_formula_counts_all_arrays() {
        // 10 vertices, 20 arcs, d=8: 10*8*4 + 11*8 + 20*4 + 20*4 = 568.
        assert_eq!(device_bytes_needed(8, 10, 20), 568);
    }

    #[test]
    fn backend_chains_match_choice() {
        let device = Device::new(DeviceConfig::titan_x());
        let p = params();
        let kinds = |c: BackendChoice| -> Vec<BackendKind> {
            backends_for(
                c,
                &device,
                p,
                KernelVariant::Auto,
                PartitionedOpts::default(),
            )
            .iter()
            .map(|b| b.kind())
            .collect()
        };
        assert_eq!(kinds(BackendChoice::Cpu), vec![BackendKind::CpuHogwild]);
        assert_eq!(
            kinds(BackendChoice::Gpu),
            vec![BackendKind::GpuInMemory, BackendKind::GpuPartitioned]
        );
        assert_eq!(
            kinds(BackendChoice::Auto),
            vec![
                BackendKind::GpuInMemory,
                BackendKind::GpuPartitioned,
                BackendKind::CpuHogwild
            ]
        );
    }

    #[test]
    fn backend_choice_parses_from_cli_strings() {
        assert_eq!("cpu".parse::<BackendChoice>().unwrap(), BackendChoice::Cpu);
        assert_eq!("gpu".parse::<BackendChoice>().unwrap(), BackendChoice::Gpu);
        assert_eq!(
            "auto".parse::<BackendChoice>().unwrap(),
            BackendChoice::Auto
        );
        assert!("tpu".parse::<BackendChoice>().is_err());
    }
}
