//! The embedding update — Algorithm 1.
//!
//! `score = (b − σ(M[v] · M[sample])) · lr`, then both rows move along each
//! other scaled by `score`. As printed, the paper's line 3 would update the
//! sample with the *already updated* source row; the released GOSH CUDA
//! code (and VERSE before it) uses the pre-update rows for both sides, and
//! we follow the code (see DESIGN.md §6). [`update_embedding_literal`]
//! implements the printed order for comparison.

use gosh_gpu::warp::sigmoid;

/// One logistic update between a source row and a sample row, using
/// pre-update values on both sides (the reference-code semantics).
///
/// `b` is 1.0 for a positive sample (drawn from the similarity
/// distribution Q) and 0.0 for a negative one (drawn from the noise
/// distribution), `lr` the current learning rate.
#[inline]
pub fn update_embedding(src: &mut [f32], sample: &mut [f32], b: f32, lr: f32) {
    debug_assert_eq!(src.len(), sample.len());
    let dot: f32 = src.iter().zip(sample.iter()).map(|(x, y)| x * y).sum();
    let score = (b - sigmoid(dot)) * lr;
    for (s, m) in src.iter_mut().zip(sample.iter_mut()) {
        let s_old = *s;
        *s += score * *m;
        *m += score * s_old;
    }
}

/// Algorithm 1 exactly as printed: the sample update reads the already
/// updated source row. Kept for the ablation test below and for anyone
/// comparing against the paper text.
#[inline]
pub fn update_embedding_literal(src: &mut [f32], sample: &mut [f32], b: f32, lr: f32) {
    debug_assert_eq!(src.len(), sample.len());
    let dot: f32 = src.iter().zip(sample.iter()).map(|(x, y)| x * y).sum();
    let score = (b - sigmoid(dot)) * lr;
    for (s, m) in src.iter_mut().zip(sample.iter_mut()) {
        *s += score * *m;
        *m += score * *s; // note: *s is the new value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn positive_update_pulls_rows_together() {
        let mut src = vec![0.1, -0.2, 0.3];
        let mut sam = vec![-0.1, 0.2, 0.1];
        let before = dot(&src, &sam);
        update_embedding(&mut src, &mut sam, 1.0, 0.1);
        let after = dot(&src, &sam);
        assert!(after > before, "{after} <= {before}");
    }

    #[test]
    fn negative_update_pushes_rows_apart() {
        let mut src = vec![0.1, 0.2, 0.3];
        let mut sam = vec![0.1, 0.2, 0.1];
        let before = dot(&src, &sam);
        update_embedding(&mut src, &mut sam, 0.0, 0.1);
        let after = dot(&src, &sam);
        assert!(after < before, "{after} >= {before}");
    }

    #[test]
    fn zero_lr_is_identity() {
        let mut src = vec![0.5, -0.5];
        let mut sam = vec![0.25, 0.75];
        let (s0, m0) = (src.clone(), sam.clone());
        update_embedding(&mut src, &mut sam, 1.0, 0.0);
        assert_eq!(src, s0);
        assert_eq!(sam, m0);
    }

    #[test]
    fn update_is_symmetric_in_magnitude() {
        // With equal rows, both sides must receive the same delta.
        let mut src = vec![0.3, 0.3];
        let mut sam = vec![0.3, 0.3];
        update_embedding(&mut src, &mut sam, 1.0, 0.05);
        assert_eq!(src, sam);
    }

    #[test]
    fn saturated_positive_barely_moves() {
        // σ(dot) ≈ 1 ⇒ score ≈ 0 for b = 1.
        let mut src = vec![10.0, 10.0];
        let mut sam = vec![10.0, 10.0];
        let before = src.clone();
        update_embedding(&mut src, &mut sam, 1.0, 0.1);
        for (a, b) in src.iter().zip(&before) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn literal_variant_differs_second_order() {
        let mut s1 = vec![0.1, 0.2];
        let mut m1 = vec![0.3, 0.4];
        let mut s2 = s1.clone();
        let mut m2 = m1.clone();
        update_embedding(&mut s1, &mut m1, 1.0, 0.5);
        update_embedding_literal(&mut s2, &mut m2, 1.0, 0.5);
        // Source rows agree exactly; sample rows differ by O(score²).
        assert_eq!(s1, s2);
        assert_ne!(m1, m2);
        for (a, b) in m1.iter().zip(&m2) {
            assert!((a - b).abs() < 0.1);
        }
    }

    #[test]
    fn repeated_positive_updates_converge_to_agreement() {
        let mut src = vec![0.01, -0.02, 0.005, 0.01];
        let mut sam = vec![-0.01, 0.03, -0.02, 0.0];
        for _ in 0..2000 {
            update_embedding(&mut src, &mut sam, 1.0, 0.05);
        }
        let d = dot(&src, &sam);
        assert!(
            gosh_gpu::warp::sigmoid(d) > 0.9,
            "σ(dot) = {}",
            gosh_gpu::warp::sigmoid(d)
        );
    }
}
