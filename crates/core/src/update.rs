//! The embedding update — Algorithm 1.
//!
//! `score = (b − σ(M[v] · M[sample])) · lr`, then both rows move along each
//! other scaled by `score`. As printed, the paper's line 3 would update the
//! sample with the *already updated* source row; the released GOSH CUDA
//! code (and VERSE before it) uses the pre-update rows for both sides, and
//! we follow the code (see DESIGN.md §6). [`update_embedding_literal`]
//! implements the printed order for comparison.

use std::sync::OnceLock;

/// Table resolution for [`fast_sigmoid`] (513 knots over `[-8, 8]`).
pub(crate) const SIGMOID_TABLE: usize = 512;
/// Saturation bound: `σ(±8)` is within `3.4e-4` of `1`/`0`.
pub(crate) const SIGMOID_BOUND: f32 = 8.0;

pub(crate) fn sigmoid_table() -> &'static [f32; SIGMOID_TABLE + 1] {
    static TABLE: OnceLock<[f32; SIGMOID_TABLE + 1]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0f32; SIGMOID_TABLE + 1];
        for (i, slot) in t.iter_mut().enumerate() {
            let x = -SIGMOID_BOUND + 2.0 * SIGMOID_BOUND * i as f32 / SIGMOID_TABLE as f32;
            *slot = gosh_gpu::warp::sigmoid(x);
        }
        t
    })
}

/// Sigmoid via a 2 KB interpolated lookup table — the word2vec/VERSE
/// trick the paper's CPU lineage uses. `exp` costs ~20 ns per call and
/// sits on the critical path of *every* update; the table with linear
/// interpolation is a few cycles at ~1e-5 absolute error inside the
/// bound (3.4e-4 worst case at the ±8 clamp), far below Hogwild race
/// noise. This is the sigmoid of the CPU trainer;
/// device kernels keep the exact [`gosh_gpu::warp::sigmoid`].
#[inline]
pub fn fast_sigmoid(x: f32) -> f32 {
    if x >= SIGMOID_BOUND {
        return 1.0;
    }
    if x <= -SIGMOID_BOUND {
        return 0.0;
    }
    let t = (x + SIGMOID_BOUND) * (SIGMOID_TABLE as f32 / (2.0 * SIGMOID_BOUND));
    // Clamp the knot index: for x just below the bound, `x + 8.0` can
    // round up to exactly 16.0, which would index one past the table.
    let i = (t as usize).min(SIGMOID_TABLE - 1);
    let frac = t - i as f32;
    let tab = sigmoid_table();
    tab[i] + (tab[i + 1] - tab[i]) * frac
}

/// Dot product with eight independent accumulator lanes.
///
/// A sequentially-summed dot is latency-bound: `d` chained FMAs at 4–5
/// cycles each dominate the whole Algorithm 1 update once `d ≥ 32`. Eight
/// lanes break the dependency chain and fill a full AVX2 register. This
/// is **the** dot-product accumulation order of the CPU trainer —
/// [`update_embedding`] and the in-place Hogwild engine
/// ([`crate::train_cpu::fused_update`]) both use it, which keeps them
/// bit-identical. The implementation (scalar chunked core, runtime-
/// detected AVX2 path, shared horizontal-sum tree) lives in
/// [`crate::simd`]; remainder elements land in lanes `0..r`, equivalent
/// to zero-padding the vectors — exactly what the paired-lane layout of
/// `SharedMatrix` produces.
#[inline]
pub fn dot8(a: &[f32], b: &[f32]) -> f32 {
    crate::simd::dot8(a, b)
}

/// One logistic update between a source row and a sample row, using
/// pre-update values on both sides (the reference-code semantics).
///
/// `b` is 1.0 for a positive sample (drawn from the similarity
/// distribution Q) and 0.0 for a negative one (drawn from the noise
/// distribution), `lr` the current learning rate.
#[inline]
pub fn update_embedding(src: &mut [f32], sample: &mut [f32], b: f32, lr: f32) {
    debug_assert_eq!(src.len(), sample.len());
    let dot = dot8(src, sample);
    let score = (b - fast_sigmoid(dot)) * lr;
    crate::simd::fused_axpy8(src, sample, score);
}

/// Algorithm 1 exactly as printed: the sample update reads the already
/// updated source row. Kept for the ablation test below and for anyone
/// comparing against the paper text.
#[inline]
pub fn update_embedding_literal(src: &mut [f32], sample: &mut [f32], b: f32, lr: f32) {
    debug_assert_eq!(src.len(), sample.len());
    let dot = dot8(src, sample);
    let score = (b - fast_sigmoid(dot)) * lr;
    for (s, m) in src.iter_mut().zip(sample.iter_mut()) {
        *s += score * *m;
        *m += score * *s; // note: *s is the new value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn fast_sigmoid_tracks_exact_sigmoid() {
        let mut x = -12.0f32;
        while x <= 12.0 {
            let exact = gosh_gpu::warp::sigmoid(x);
            let fast = fast_sigmoid(x);
            assert!(
                (exact - fast).abs() < 3.5e-4,
                "x={x}: exact {exact} vs fast {fast}"
            );
            x += 0.013;
        }
        assert_eq!(fast_sigmoid(100.0), 1.0);
        assert_eq!(fast_sigmoid(-100.0), 0.0);
        // Regression: the largest f32 below the bound rounds `x + 8.0`
        // up to exactly 16.0 — must not index past the table.
        let just_below = f32::from_bits(8.0f32.to_bits() - 1);
        assert!(just_below < 8.0);
        let y = fast_sigmoid(just_below);
        assert!((y - 1.0).abs() < 1e-3, "{y}");
        let just_above_neg = f32::from_bits((-8.0f32).to_bits() - 1);
        assert!(fast_sigmoid(just_above_neg) < 1e-3);
    }

    #[test]
    fn fast_sigmoid_clamp_boundaries_are_pinned() {
        // The clamp must fire *inclusively* at the bound: σ is monotone, so
        // any future lanewise rewrite that turned `>=` into `>` (or routed
        // the bound through the table) would show up here.
        assert_eq!(fast_sigmoid(SIGMOID_BOUND), 1.0);
        assert_eq!(fast_sigmoid(-SIGMOID_BOUND), 0.0);
        // Beyond the bound: hard saturation, no table access.
        assert_eq!(fast_sigmoid(SIGMOID_BOUND + 1.0), 1.0);
        assert_eq!(fast_sigmoid(-SIGMOID_BOUND - 1.0), 0.0);
        assert_eq!(fast_sigmoid(f32::MAX), 1.0);
        assert_eq!(fast_sigmoid(f32::MIN), 0.0);
        assert_eq!(fast_sigmoid(f32::INFINITY), 1.0);
        assert_eq!(fast_sigmoid(f32::NEG_INFINITY), 0.0);
        // NaN fails both clamp comparisons and falls through to the table
        // path, where the interpolation propagates it. That propagation is
        // load-bearing: a poisoned dot must not silently become a valid
        // probability.
        assert!(fast_sigmoid(f32::NAN).is_nan());
        // Just inside the bound the table path must stay saturated and
        // in-range (the `min` clamp on the knot index).
        let just_below = f32::from_bits(SIGMOID_BOUND.to_bits() - 1);
        let y = fast_sigmoid(just_below);
        assert!(y > 0.999 && y <= 1.0, "{y}");
        let just_above = f32::from_bits((-SIGMOID_BOUND).to_bits() - 1);
        let z = fast_sigmoid(just_above);
        assert!((0.0..1e-3).contains(&z), "{z}");
    }

    #[test]
    fn dot8_matches_naive_dot_for_all_remainders() {
        for d in 1..=18usize {
            let a: Vec<f32> = (0..d).map(|i| 0.1 * i as f32 - 0.4).collect();
            let b: Vec<f32> = (0..d).map(|i| 0.03 * i as f32 + 0.2).collect();
            let naive = dot(&a, &b);
            let lanes = dot8(&a, &b);
            assert!((naive - lanes).abs() < 1e-5, "d={d}: {naive} vs {lanes}");
        }
    }

    #[test]
    fn positive_update_pulls_rows_together() {
        let mut src = vec![0.1, -0.2, 0.3];
        let mut sam = vec![-0.1, 0.2, 0.1];
        let before = dot(&src, &sam);
        update_embedding(&mut src, &mut sam, 1.0, 0.1);
        let after = dot(&src, &sam);
        assert!(after > before, "{after} <= {before}");
    }

    #[test]
    fn negative_update_pushes_rows_apart() {
        let mut src = vec![0.1, 0.2, 0.3];
        let mut sam = vec![0.1, 0.2, 0.1];
        let before = dot(&src, &sam);
        update_embedding(&mut src, &mut sam, 0.0, 0.1);
        let after = dot(&src, &sam);
        assert!(after < before, "{after} >= {before}");
    }

    #[test]
    fn zero_lr_is_identity() {
        let mut src = vec![0.5, -0.5];
        let mut sam = vec![0.25, 0.75];
        let (s0, m0) = (src.clone(), sam.clone());
        update_embedding(&mut src, &mut sam, 1.0, 0.0);
        assert_eq!(src, s0);
        assert_eq!(sam, m0);
    }

    #[test]
    fn update_is_symmetric_in_magnitude() {
        // With equal rows, both sides must receive the same delta.
        let mut src = vec![0.3, 0.3];
        let mut sam = vec![0.3, 0.3];
        update_embedding(&mut src, &mut sam, 1.0, 0.05);
        assert_eq!(src, sam);
    }

    #[test]
    fn saturated_positive_barely_moves() {
        // σ(dot) ≈ 1 ⇒ score ≈ 0 for b = 1.
        let mut src = vec![10.0, 10.0];
        let mut sam = vec![10.0, 10.0];
        let before = src.clone();
        update_embedding(&mut src, &mut sam, 1.0, 0.1);
        for (a, b) in src.iter().zip(&before) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn literal_variant_differs_second_order() {
        let mut s1 = vec![0.1, 0.2];
        let mut m1 = vec![0.3, 0.4];
        let mut s2 = s1.clone();
        let mut m2 = m1.clone();
        update_embedding(&mut s1, &mut m1, 1.0, 0.5);
        update_embedding_literal(&mut s2, &mut m2, 1.0, 0.5);
        // Source rows agree exactly; sample rows differ by O(score²).
        assert_eq!(s1, s2);
        assert_ne!(m1, m2);
        for (a, b) in m1.iter().zip(&m2) {
            assert!((a - b).abs() < 0.1);
        }
    }

    #[test]
    fn repeated_positive_updates_converge_to_agreement() {
        let mut src = vec![0.01, -0.02, 0.005, 0.01];
        let mut sam = vec![-0.01, 0.03, -0.02, 0.0];
        for _ in 0..2000 {
            update_embedding(&mut src, &mut sam, 1.0, 0.05);
        }
        let d = dot(&src, &sam);
        assert!(
            gosh_gpu::warp::sigmoid(d) > 0.9,
            "σ(dot) = {}",
            gosh_gpu::warp::sigmoid(d)
        );
    }
}
