//! Multi-core CPU trainer (Hogwild), copy-free and sharded.
//!
//! The 16-thread CPU implementation that Figure 4 uses as its speedup
//! baseline, and the engine behind the VERSE comparator in
//! `gosh-baselines`. Threads share the matrix through relaxed atomics and
//! update without locks — the HOGWILD! regime (Niu et al., NIPS'11) the
//! paper cites for CPUs (§3.1). Epoch accounting matches the GPU path:
//! one epoch = |E| source processings drawn from the arc list.
//!
//! Three design decisions keep the hot path at memory speed:
//!
//! * **Copy-free sample updates.** Sample rows are updated through
//!   [`SharedMatrix::row_atomics`] views, in place: [`fused_update`]
//!   accumulates the dot and applies both sides' axpy in one fused pass
//!   over the view. The former engine's `one_update` copied every sample
//!   row into a `tmp` scratch, re-read it for the axpy, and bounced the
//!   source through a second scratch per update — that per-sample copy
//!   discipline is gone, halving atomic traffic per update.
//! * **Register-staged source row.** Mirroring the GPU kernel (§3.1
//!   stages the source row in shared memory), each source's row is read
//!   once, updated locally across its `1 + ns` samples — where it
//!   vectorizes, since it is plain `f32` — and written back once.
//! * **Sharded work distribution.** Each epoch's source space is split
//!   into one contiguous shard per thread ([`shard_ranges`]); the
//!   persistent [`gosh_runtime`] worker team holds at a poisonable epoch
//!   barrier ([`gosh_runtime::WorkerCtx::barrier`]), so threads never
//!   touch a shared cursor, never pay a per-epoch spawn — and a worker
//!   panic unwinds the team instead of deadlocking it. The former engine
//!   handed out batches from a global `AtomicUsize`, serializing every
//!   thread through one contended cache line. Sample rows are prefetched
//!   as soon as their ids are drawn.
//!
//! The engine is range-parametrized through [`HogwildPlan`]: the
//! single-node [`train_cpu`] trains every epoch of every source, while
//! the distributed trainer (`crate::distrib`) gives each node a source
//! span and an epoch window, with globally-indexed learning-rate decay
//! and RNG streams — full ranges on node 0 reproduce the single-node
//! engine bit-for-bit at one thread.

use std::ops::Range;
use std::sync::atomic::AtomicU64;

use gosh_graph::csr::Csr;
use gosh_graph::rng::{mix64, Xorshift128Plus};
use gosh_runtime::Runtime;

use crate::backend::{Similarity, TrainParams};
use crate::model::{Embedding, SharedMatrix};
use crate::quant::{Precision, QuantizedMatrix};
use crate::schedule::decayed_lr;
use crate::simd;
use crate::update::fast_sigmoid;

/// Deterministic contiguous shard assignment (one shard per thread) —
/// the runtime's, re-exported at its historical home.
pub use gosh_runtime::shard_ranges;

/// Train `m` on `g` in place with Hogwild threads.
///
/// `params.dim` is ignored — the dimension comes from `m` itself.
pub fn train_cpu(g: &Csr, m: &mut Embedding, params: &TrainParams) {
    assert_eq!(g.num_vertices(), m.num_vertices(), "graph/matrix mismatch");
    assert!(params.threads >= 1);
    if g.num_edges() == 0 || params.epochs == 0 {
        return;
    }
    if params.precision != Precision::F32 {
        return train_cpu_quantized(g, m, params);
    }
    let shared = SharedMatrix::from_embedding(m);
    let plan = HogwildPlan::new(g);
    plan.run_range(
        gosh_runtime::global(),
        g,
        &shared,
        params,
        0..params.epochs,
        params.epochs,
        0..plan.sources(),
        0,
    );
    *m = shared.to_embedding();
}

/// Train `m` on `g` with Hogwild threads, drawing sources only from
/// `sources` — the warm-start engine behind [`crate::warm`]: dirty-region
/// vertices are re-trained in place while the rest of the matrix serves
/// as (slowly adapting) sample targets. f32 only; epoch accounting is
/// relative to the restricted arc list.
pub fn train_cpu_sources(g: &Csr, m: &mut Embedding, params: &TrainParams, sources: &[u32]) {
    assert_eq!(g.num_vertices(), m.num_vertices(), "graph/matrix mismatch");
    assert!(params.threads >= 1);
    assert_eq!(
        params.precision,
        Precision::F32,
        "warm-start training is f32-only"
    );
    if g.num_edges() == 0 || params.epochs == 0 || sources.is_empty() {
        return;
    }
    let plan = HogwildPlan::new_for_sources(g, sources);
    if plan.num_arcs == 0 {
        return; // every listed source is isolated
    }
    let shared = SharedMatrix::from_embedding(m);
    plan.run_range(
        gosh_runtime::global(),
        g,
        &shared,
        params,
        0..params.epochs,
        params.epochs,
        0..plan.sources(),
        0,
    );
    *m = shared.to_embedding();
}

/// Precomputed training plan for one level: the arc list positive
/// sampling walks (`Q` of Algorithm 1) and the per-epoch source count.
/// Built once per level, reusable across epoch windows — the distributed
/// trainer calls [`HogwildPlan::run_range`] once per exchange round
/// without re-deriving the arc list.
pub struct HogwildPlan {
    arc_src: Vec<u32>,
    num_arcs: usize,
    sources: usize,
}

impl HogwildPlan {
    pub fn new(g: &Csr) -> Self {
        let n = g.num_vertices() as u32;
        let mut arc_src: Vec<u32> = Vec::with_capacity(g.num_edges());
        for v in 0..n {
            arc_src.extend(std::iter::repeat_n(v, g.degree(v)));
        }
        let num_arcs = arc_src.len();
        Self {
            arc_src,
            num_arcs,
            sources: (num_arcs / 2).max(1),
        }
    }

    /// A plan whose arc list covers only `sources` (each repeated by its
    /// degree, in the given order) — the warm-start trainer's hook: one
    /// epoch costs `Σ deg(v) for v ∈ sources` processings instead of
    /// `|E|`, and only the listed vertices are ever drawn as sources
    /// (sample targets still range over the whole matrix). An empty or
    /// all-isolated source set yields a plan whose `run_range` is a
    /// no-op.
    pub fn new_for_sources(g: &Csr, sources: &[u32]) -> Self {
        let mut arc_src: Vec<u32> = Vec::new();
        for &v in sources {
            arc_src.extend(std::iter::repeat_n(v, g.degree(v)));
        }
        let num_arcs = arc_src.len();
        Self {
            arc_src,
            num_arcs,
            sources: (num_arcs / 2).max(usize::from(num_arcs > 0)),
        }
    }

    /// Source processings per epoch (half the arc count, minimum one).
    pub fn sources(&self) -> usize {
        self.sources
    }

    /// Train epochs `epochs` (global indices: learning-rate decay and
    /// RNG seeds use them against `total_epochs`) over source span
    /// `span`, sharded across `params.threads` workers of `rt`.
    ///
    /// `rng_salt` keys this caller's per-thread RNG streams; distributed
    /// nodes pass `node << 32` so no two nodes share a stream. With the
    /// full ranges and salt 0 this **is** [`train_cpu`]'s engine.
    #[allow(clippy::too_many_arguments)]
    pub fn run_range(
        &self,
        rt: &Runtime,
        g: &Csr,
        shared: &SharedMatrix,
        params: &TrainParams,
        epochs: Range<u32>,
        total_epochs: u32,
        span: Range<usize>,
        rng_salt: u64,
    ) {
        if span.is_empty() || epochs.is_empty() || self.num_arcs == 0 {
            return;
        }
        let n = g.num_vertices() as u32;
        let arc_src = &self.arc_src;
        let num_arcs = self.num_arcs;
        // No thread should sit on an empty shard *and* a barrier slot.
        let threads = params.threads.min(span.len());
        let shards = shard_ranges(span.len(), threads);
        rt.run(threads, |ctx| {
            let t = ctx.index();
            let shard = (shards[t].start + span.start)..(shards[t].end + span.start);
            // One allocation per worker lifetime: the staged source
            // row (the CPU analogue of the kernel's shared memory),
            // padded to the paired-lane width.
            let mut src_row = vec![0f32; 2 * shared.pairs_per_row()];
            for epoch in epochs.clone() {
                let lr_now = decayed_lr(params.lr, epoch, total_epochs);
                let mut rng = Xorshift128Plus::new(mix64(
                    params.seed ^ ((epoch as u64) << 20) ^ (rng_salt + t as u64),
                ));
                // `(2s + epoch) % num_arcs` with the division hoisted:
                // 2s < num_arcs and offset < num_arcs, so one
                // conditional subtract replaces a per-source div.
                let offset = epoch as usize % num_arcs;
                let arc_at = |s: usize| {
                    let mut idx = 2 * s + offset;
                    if idx >= num_arcs {
                        idx -= num_arcs;
                    }
                    arc_src[idx]
                };
                let mut src_next = if shard.is_empty() {
                    0
                } else {
                    arc_at(shard.start)
                };
                for s in shard.clone() {
                    let src = src_next;
                    // Warm the next source's row while this one trains.
                    if s + 1 < shard.end {
                        src_next = arc_at(s + 1);
                        prefetch_row(shared.row_atomics(src_next));
                    }
                    process_source(g, shared, src, n, params, lr_now, &mut rng, &mut src_row);
                }
                // Epoch synchronization (§3.1): the next epoch's
                // learning rate applies only once every shard is done.
                ctx.barrier();
            }
        });
    }
}

/// Negative draws batched ahead per source (bounds the id scratchpad;
/// the row data itself is never staged).
const PREFETCH_AHEAD: usize = 8;

/// Hint the cache that `row` is about to be read. The trainer is
/// memory-latency-bound: sample rows are random, so without the hint
/// every update eats the full L2/L3 miss before its dot product can
/// start.
#[inline(always)]
fn prefetch_row(row: &[AtomicU64]) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `_mm_prefetch` is an architectural hint; it performs no
        // memory access and is valid for any pointer.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let p = row.as_ptr() as *const i8;
            for off in (0..row.len() * 8).step_by(64) {
                _mm_prefetch(p.add(off), _MM_HINT_T0);
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Portable fallback: a relaxed load warms the first line.
        if let Some(c) = row.first() {
            std::hint::black_box(c.load(std::sync::atomic::Ordering::Relaxed));
        }
    }
}

/// One source processing: a positive draw from `Q` plus `ns` negatives.
/// The source row is staged in `src_row` across its samples (written
/// back once); sample rows are updated fully in place.
///
/// Sample ids are drawn *before* any update — positive first, then the
/// negatives, preserving the per-thread RNG stream order — so every
/// sample row can be prefetched while earlier updates compute.
#[allow(clippy::too_many_arguments)]
#[inline]
fn process_source(
    g: &Csr,
    shared: &SharedMatrix,
    src: u32,
    n: u32,
    params: &TrainParams,
    lr: f32,
    rng: &mut Xorshift128Plus,
    src_row: &mut [f32],
) {
    let pos = positive_sample(g, src, params.similarity, rng);
    let ns = params.negative_samples;
    let ahead = ns.min(PREFETCH_AHEAD);
    let mut negs = [0u32; PREFETCH_AHEAD];
    for slot in negs.iter_mut().take(ahead) {
        *slot = rng.below(n);
    }
    if let Some(u) = pos {
        prefetch_row(shared.row_atomics(u));
    }
    for &u in negs.iter().take(ahead) {
        prefetch_row(shared.row_atomics(u));
    }
    let src_pairs = shared.row_atomics(src);
    simd::load_row_pairs(src_row, src_pairs);
    if let Some(u) = pos {
        fused_update(src_row, shared.row_atomics(u), 1.0, lr);
    }
    for &u in negs.iter().take(ahead) {
        fused_update(src_row, shared.row_atomics(u), 0.0, lr);
    }
    for _ in ahead..ns {
        let u = rng.below(n);
        fused_update(src_row, shared.row_atomics(u), 0.0, lr);
    }
    simd::store_row_pairs(src_pairs, src_row);
}

/// Draw a positive sample for `src` under the chosen similarity.
#[inline]
pub fn positive_sample(
    g: &Csr,
    src: u32,
    similarity: Similarity,
    rng: &mut Xorshift128Plus,
) -> Option<u32> {
    let deg = g.degree(src);
    if deg == 0 {
        return None;
    }
    match similarity {
        Similarity::Adjacency => Some(g.neighbor_at(src, rng.below(deg as u32) as usize)),
        Similarity::Ppr { alpha } => {
            let mut u = src;
            loop {
                let du = g.degree(u);
                if du == 0 {
                    // Dead end: restart at the source's own neighbourhood.
                    u = g.neighbor_at(src, rng.below(deg as u32) as usize);
                } else {
                    u = g.neighbor_at(u, rng.below(du as u32) as usize);
                }
                if rng.next_f32() >= alpha {
                    return Some(u);
                }
            }
        }
    }
}

/// The fused Algorithm 1 update between a staged source row (padded to
/// the paired-lane width, pads zero) and an in-place atomic sample-row
/// view: one pass accumulates the dot product, a second applies both
/// sides' axpy with pre-update values — the reference-code semantics of
/// [`crate::update::update_embedding`], same 8-lane dot accumulation
/// order ([`crate::simd::dot_pairs`]), same sigmoid, so the two stay
/// bit-identical whether the runtime dispatch lands on the AVX2 or the
/// scalar path. Each sample pair is loaded twice and stored once, two
/// lanes per atomic op, with no scratch copy and no per-element
/// indexing. Zero pad lanes update to exactly zero (`0 + score·0`),
/// preserving the padding invariant.
#[inline]
pub fn fused_update(src: &mut [f32], sample: &[AtomicU64], b: f32, lr: f32) {
    debug_assert_eq!(src.len(), 2 * sample.len());
    let dot = simd::dot_pairs(src, sample);
    let score = (b - fast_sigmoid(dot)) * lr;
    simd::update_pairs(src, sample, score);
}

/// The reduced-precision Hogwild engine: identical schedule, sharding,
/// RNG streams and update math as the f32 engine, but the shared matrix
/// is a [`QuantizedMatrix`] — every touched row **dequantizes on load**
/// into f32 lanes, updates there through the same [`simd`] kernels, and
/// **requantizes on store**. Each sample update is whole-row (an i8 row's
/// scale pair depends on its min/max), so the engine stages both sides
/// instead of updating the sample in place; the extra quantize work is
/// the price of rows that are 2–4x narrower than f32 — the trade
/// `updates_per_sec_per_byte` in the hotpath bench measures.
fn train_cpu_quantized(g: &Csr, m: &mut Embedding, params: &TrainParams) {
    let n = g.num_vertices() as u32;
    let dim = m.dim();
    let shared = QuantizedMatrix::from_embedding(m, params.precision);
    let plan = HogwildPlan::new(g);
    let arc_src = &plan.arc_src;
    let num_arcs = plan.num_arcs;
    let threads = params.threads.min(plan.sources);
    let shards = shard_ranges(plan.sources, threads);
    let shared_ref = &shared;

    gosh_runtime::global().run(threads, |ctx| {
        let shard = shards[ctx.index()].clone();
        let t = ctx.index();
        let mut src_row = vec![0f32; dim];
        let mut smp_row = vec![0f32; dim];
        let mut codes = vec![0u8; dim];
        for epoch in 0..params.epochs {
            let lr_now = decayed_lr(params.lr, epoch, params.epochs);
            let mut rng =
                Xorshift128Plus::new(mix64(params.seed ^ ((epoch as u64) << 20) ^ t as u64));
            let offset = epoch as usize % num_arcs;
            let arc_at = |s: usize| {
                let mut idx = 2 * s + offset;
                if idx >= num_arcs {
                    idx -= num_arcs;
                }
                arc_src[idx]
            };
            let mut src_next = if shard.is_empty() {
                0
            } else {
                arc_at(shard.start)
            };
            for s in shard.clone() {
                let src = src_next;
                if s + 1 < shard.end {
                    src_next = arc_at(s + 1);
                    prefetch_row(shared_ref.row_cells(src_next));
                }
                process_source_quantized(
                    g,
                    shared_ref,
                    src,
                    n,
                    params,
                    lr_now,
                    &mut rng,
                    &mut src_row,
                    &mut smp_row,
                    &mut codes,
                );
            }
            ctx.barrier();
        }
    });
    *m = shared.to_embedding();
}

/// One source processing of the quantized engine — the same draw order
/// and sample schedule as [`process_source`], staged through dequantized
/// f32 rows on both sides.
#[allow(clippy::too_many_arguments)]
#[inline]
fn process_source_quantized(
    g: &Csr,
    shared: &QuantizedMatrix,
    src: u32,
    n: u32,
    params: &TrainParams,
    lr: f32,
    rng: &mut Xorshift128Plus,
    src_row: &mut [f32],
    smp_row: &mut [f32],
    codes: &mut [u8],
) {
    let pos = positive_sample(g, src, params.similarity, rng);
    let ns = params.negative_samples;
    let ahead = ns.min(PREFETCH_AHEAD);
    let mut negs = [0u32; PREFETCH_AHEAD];
    for slot in negs.iter_mut().take(ahead) {
        *slot = rng.below(n);
    }
    if let Some(u) = pos {
        prefetch_row(shared.row_cells(u));
    }
    for &u in negs.iter().take(ahead) {
        prefetch_row(shared.row_cells(u));
    }
    shared.load_row(src, src_row);
    let mut one = |u: u32, b: f32| {
        shared.load_row(u, smp_row);
        let dot = simd::dot8(src_row, smp_row);
        let score = (b - fast_sigmoid(dot)) * lr;
        simd::fused_axpy8(src_row, smp_row, score);
        shared.store_row_scratch(u, smp_row, codes);
    };
    if let Some(u) = pos {
        one(u, 1.0);
    }
    for &u in negs.iter().take(ahead) {
        one(u, 0.0);
    }
    for _ in ahead..ns {
        let u = rng.below(n);
        one(u, 0.0);
    }
    shared.store_row_scratch(src, src_row, codes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::update_embedding;
    use gosh_graph::builder::csr_from_edges;

    type CliquePairs = (Csr, Vec<(u32, u32)>, Vec<(u32, u32)>);

    fn two_cliques() -> CliquePairs {
        let mut edges = vec![];
        for a in 0..8u32 {
            for b in 0..a {
                edges.push((a, b));
                edges.push((a + 8, b + 8));
            }
        }
        edges.push((0, 8));
        let g = csr_from_edges(16, &edges);
        let intra = vec![(0, 1), (2, 3), (8, 9), (10, 11)];
        let inter = vec![(0, 9), (1, 10), (2, 12), (3, 13)];
        (g, intra, inter)
    }

    fn mean_cos(m: &Embedding, pairs: &[(u32, u32)]) -> f32 {
        pairs.iter().map(|&(a, b)| m.cosine(a, b)).sum::<f32>() / pairs.len() as f32
    }

    #[test]
    fn single_thread_learns_structure() {
        let (g, intra, inter) = two_cliques();
        let mut m = Embedding::random(16, 16, 3);
        let p = TrainParams {
            threads: 1,
            epochs: 150,
            lr: 0.05,
            ..Default::default()
        };
        train_cpu(&g, &mut m, &p);
        assert!(mean_cos(&m, &intra) > mean_cos(&m, &inter) + 0.3);
    }

    #[test]
    fn hogwild_threads_learn_structure() {
        let (g, intra, inter) = two_cliques();
        let mut m = Embedding::random(16, 16, 4);
        let p = TrainParams {
            threads: 8,
            epochs: 150,
            lr: 0.05,
            ..Default::default()
        };
        train_cpu(&g, &mut m, &p);
        assert!(mean_cos(&m, &intra) > mean_cos(&m, &inter) + 0.3);
    }

    #[test]
    fn ppr_similarity_also_learns() {
        let (g, intra, inter) = two_cliques();
        let mut m = Embedding::random(16, 16, 5);
        let p = TrainParams {
            threads: 4,
            epochs: 150,
            lr: 0.05,
            similarity: Similarity::Ppr { alpha: 0.85 },
            ..Default::default()
        };
        train_cpu(&g, &mut m, &p);
        assert!(mean_cos(&m, &intra) > mean_cos(&m, &inter) + 0.2);
    }

    #[test]
    fn quantized_engines_learn_structure() {
        for precision in [Precision::F16, Precision::I8] {
            let (g, intra, inter) = two_cliques();
            let mut m = Embedding::random(16, 16, 3);
            let p = TrainParams {
                threads: 4,
                epochs: 150,
                lr: 0.05,
                precision,
                ..Default::default()
            };
            train_cpu(&g, &mut m, &p);
            assert!(
                m.as_slice().iter().all(|x| x.is_finite()),
                "{precision}: non-finite values"
            );
            assert!(
                mean_cos(&m, &intra) > mean_cos(&m, &inter) + 0.25,
                "{precision} failed to learn"
            );
        }
    }

    #[test]
    fn empty_graph_is_noop() {
        let g = Csr::empty(4);
        let mut m = Embedding::random(4, 8, 6);
        let before = m.clone();
        train_cpu(&g, &mut m, &TrainParams::default());
        assert_eq!(m, before);
    }

    #[test]
    fn values_stay_finite_under_contention() {
        let (g, _, _) = two_cliques();
        let mut m = Embedding::random(16, 8, 7);
        let p = TrainParams {
            threads: 8,
            epochs: 50,
            lr: 0.2,
            ..Default::default()
        };
        train_cpu(&g, &mut m, &p);
        assert!(m.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn positive_sample_respects_adjacency() {
        let g = csr_from_edges(4, &[(0, 1), (0, 2)]);
        let mut rng = Xorshift128Plus::new(1);
        for _ in 0..50 {
            let u = positive_sample(&g, 0, Similarity::Adjacency, &mut rng).unwrap();
            assert!(u == 1 || u == 2);
        }
        assert!(positive_sample(&g, 3, Similarity::Adjacency, &mut rng).is_none());
    }

    #[test]
    fn ppr_walk_reaches_two_hops() {
        // Path 0-1-2: PPR from 0 must sometimes land on 2.
        let g = csr_from_edges(3, &[(0, 1), (1, 2)]);
        let mut rng = Xorshift128Plus::new(2);
        let mut saw_two = false;
        for _ in 0..200 {
            if positive_sample(&g, 0, Similarity::Ppr { alpha: 0.85 }, &mut rng) == Some(2) {
                saw_two = true;
                break;
            }
        }
        assert!(saw_two);
    }

    // ---- restricted-source plans ----------------------------------------

    #[test]
    fn full_source_list_matches_unrestricted_engine_bit_exactly() {
        // `new_for_sources` over every vertex in id order builds the same
        // arc list as `new`, so the warm engine with a full source list
        // must reproduce `train_cpu` bit-for-bit.
        let (g, _, _) = two_cliques();
        let p = TrainParams {
            threads: 2,
            epochs: 5,
            lr: 0.05,
            seed: 0x77,
            ..Default::default()
        };
        let mut a = Embedding::random(16, 8, 13);
        let mut b = a.clone();
        train_cpu(&g, &mut a, &p);
        let all: Vec<u32> = (0..16).collect();
        train_cpu_sources(&g, &mut b, &p, &all);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn empty_and_isolated_source_lists_are_noops() {
        let g = csr_from_edges(5, &[(0, 1), (1, 2)]); // 3, 4 isolated
        let mut m = Embedding::random(5, 8, 17);
        let before = m.clone();
        let p = TrainParams {
            threads: 2,
            epochs: 10,
            ..Default::default()
        };
        train_cpu_sources(&g, &mut m, &p, &[]);
        assert_eq!(m, before);
        train_cpu_sources(&g, &mut m, &p, &[3, 4]);
        assert_eq!(m, before);
    }

    #[test]
    fn restricted_sources_still_learn_their_region() {
        let (g, intra, _) = two_cliques();
        let mut m = Embedding::random(16, 16, 19);
        let p = TrainParams {
            threads: 2,
            epochs: 200,
            lr: 0.05,
            ..Default::default()
        };
        // Train only the first clique's vertices as sources.
        let sources: Vec<u32> = (0..8).collect();
        train_cpu_sources(&g, &mut m, &p, &sources);
        let first: Vec<(u32, u32)> = intra.iter().copied().filter(|&(a, _)| a < 8).collect();
        let cross = vec![(0u32, 9u32), (1, 10), (2, 12)];
        assert!(mean_cos(&m, &first) > mean_cos(&m, &cross) + 0.2);
    }

    // ---- shard coverage -------------------------------------------------

    #[test]
    fn shards_cover_every_source_exactly_once() {
        for (sources, threads) in [(1usize, 1usize), (7, 3), (100, 8), (8, 8), (5, 16)] {
            let shards = shard_ranges(sources, threads);
            assert_eq!(shards.len(), threads);
            let mut seen = vec![0usize; sources];
            for r in &shards {
                for s in r.clone() {
                    seen[s] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "sources {sources} threads {threads}: {seen:?}"
            );
            // Contiguous, ordered, balanced within one.
            for w in shards.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let lens: Vec<usize> = shards.iter().map(|r| r.len()).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(max - min <= 1, "{lens:?}");
        }
    }

    #[test]
    fn every_shard_is_visited_each_epoch() {
        // Instrumented run: a graph whose arc list maps shard positions to
        // distinct sources, trained with as many threads as shards. Every
        // source must move away from its initial row in a single epoch,
        // proving no shard was dropped by the work distribution.
        let (g, _, _) = two_cliques();
        let mut m = Embedding::random(16, 8, 9);
        let before = m.clone();
        let p = TrainParams {
            threads: 4,
            epochs: 1,
            lr: 0.1,
            negative_samples: 3,
            ..Default::default()
        };
        train_cpu(&g, &mut m, &p);
        let shards = shard_ranges((g.num_edges() / 2).max(1), 4);
        let mut arc_src: Vec<u32> = Vec::new();
        for v in 0..16u32 {
            arc_src.extend(std::iter::repeat_n(v, g.degree(v)));
        }
        for (t, r) in shards.iter().enumerate() {
            let touched = r
                .clone()
                .map(|s| arc_src[2 * s % arc_src.len()])
                .any(|src| m.row(src) != before.row(src));
            assert!(touched, "shard {t} ({r:?}) left every source untouched");
        }
    }

    // ---- seed-semantics equivalence -------------------------------------

    /// The seed engine's semantics, re-expressed through the Algorithm 1
    /// reference update: stage the source row, update against each
    /// sample with pre-update values (the sample row read from the
    /// matrix, so a self-pair sees the pre-stage source), write the
    /// source back. With one thread this is bit-identical to the new
    /// engine — the only change of representation is atomics vs plain
    /// floats.
    fn reference_train(g: &Csr, m: &mut Embedding, params: &TrainParams) {
        let n = g.num_vertices() as u32;
        let mut arc_src: Vec<u32> = Vec::new();
        for v in 0..n {
            arc_src.extend(std::iter::repeat_n(v, g.degree(v)));
        }
        let num_arcs = arc_src.len();
        let sources = (num_arcs / 2).max(1);
        for epoch in 0..params.epochs {
            let lr = decayed_lr(params.lr, epoch, params.epochs);
            let mut rng = Xorshift128Plus::new(mix64(params.seed ^ ((epoch as u64) << 20)));
            for s in 0..sources {
                let src = arc_src[(2 * s + epoch as usize) % num_arcs];
                let mut src_row = m.row(src).to_vec();
                // RNG draw order matches the engine: positive first, then
                // every negative, then the updates.
                let pos = positive_sample(g, src, params.similarity, &mut rng);
                let negs: Vec<u32> = (0..params.negative_samples).map(|_| rng.below(n)).collect();
                if let Some(u) = pos {
                    update_embedding(&mut src_row, m.row_mut(u), 1.0, lr);
                }
                for &u in &negs {
                    update_embedding(&mut src_row, m.row_mut(u), 0.0, lr);
                }
                m.row_mut(src).copy_from_slice(&src_row);
            }
        }
    }

    #[test]
    fn single_thread_matches_seed_update_semantics_bit_exactly() {
        let (g, _, _) = two_cliques();
        let p = TrainParams {
            threads: 1,
            epochs: 7,
            lr: 0.05,
            negative_samples: 3,
            seed: 0xBEEF,
            ..Default::default()
        };
        let mut m_new = Embedding::random(16, 16, 11);
        let mut m_ref = m_new.clone();
        train_cpu(&g, &mut m_new, &p);
        reference_train(&g, &mut m_ref, &p);
        assert_eq!(
            m_new.as_slice(),
            m_ref.as_slice(),
            "in-place engine diverged from the scratch-discipline reference"
        );
    }

    #[test]
    fn fused_update_matches_reference_update_bitwise() {
        let mut rng = Xorshift128Plus::new(21);
        for d in [1usize, 2, 5, 7, 8, 31, 32, 128] {
            for b in [0.0f32, 1.0] {
                let src: Vec<f32> = (0..d).map(|_| rng.next_f32() - 0.5).collect();
                let smp: Vec<f32> = (0..d).map(|_| rng.next_f32() - 0.5).collect();
                let mut src_ref = src.clone();
                let mut smp_ref = smp.clone();
                update_embedding(&mut src_ref, &mut smp_ref, b, 0.025);

                // Staged source padded to the paired-lane width.
                let mut src_new = src.clone();
                src_new.resize(2 * d.div_ceil(2), 0.0);
                let m = Embedding::from_vec(smp, 1, d);
                let s = SharedMatrix::from_embedding(&m);
                fused_update(&mut src_new, s.row_atomics(0), b, 0.025);
                assert_eq!(&src_new[..d], &src_ref[..], "d={d} b={b} src");
                assert_eq!(s.to_embedding().row(0), &smp_ref[..], "d={d} b={b} sample");
                // Padding invariant: pad lanes stay exactly zero.
                assert!(src_new[d..].iter().all(|&x| x == 0.0));
            }
        }
    }

    use gosh_graph::csr::Csr;
}
