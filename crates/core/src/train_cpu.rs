//! Multi-core CPU trainer (Hogwild).
//!
//! The 16-thread CPU implementation that Figure 4 uses as its speedup
//! baseline, and the engine behind the VERSE comparator in
//! `gosh-baselines`. Threads share the matrix through relaxed atomics and
//! update without locks — the HOGWILD! regime (Niu et al., NIPS'11) the
//! paper cites for CPUs (§3.1). Epoch accounting matches the GPU path:
//! one epoch = |E| source processings drawn from the arc list.

use std::sync::atomic::{AtomicUsize, Ordering};

use gosh_gpu::warp::sigmoid;
use gosh_graph::csr::Csr;
use gosh_graph::rng::{mix64, Xorshift128Plus};

use crate::backend::{Similarity, TrainParams};
use crate::model::{Embedding, SharedMatrix};
use crate::schedule::decayed_lr;

/// Sources per dynamic batch.
const BATCH: usize = 512;

/// Train `m` on `g` in place with Hogwild threads.
///
/// `params.dim` is ignored — the dimension comes from `m` itself.
pub fn train_cpu(g: &Csr, m: &mut Embedding, params: &TrainParams) {
    assert_eq!(g.num_vertices(), m.num_vertices(), "graph/matrix mismatch");
    assert!(params.threads >= 1);
    if g.num_edges() == 0 {
        return;
    }
    let d = m.dim();
    let n = g.num_vertices() as u32;
    let shared = SharedMatrix::from_embedding(m);
    let mut arc_src: Vec<u32> = Vec::with_capacity(g.num_edges());
    for v in 0..n {
        arc_src.extend(std::iter::repeat_n(v, g.degree(v)));
    }
    let num_arcs = arc_src.len();
    let sources = (num_arcs / 2).max(1);

    for epoch in 0..params.epochs {
        let lr_now = decayed_lr(params.lr, epoch, params.epochs);
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..params.threads {
                let arc_src = &arc_src;
                let shared = &shared;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut rng = Xorshift128Plus::new(mix64(
                        params.seed ^ ((epoch as u64) << 20) ^ t as u64,
                    ));
                    let mut src_row = vec![0f32; d];
                    let mut tmp = vec![0f32; d];
                    loop {
                        let start = cursor.fetch_add(BATCH, Ordering::Relaxed);
                        if start >= sources {
                            break;
                        }
                        let end = (start + BATCH).min(sources);
                        for s in start..end {
                            let src = arc_src[(2 * s + epoch as usize) % num_arcs];
                            process_source(
                                g,
                                shared,
                                src,
                                n,
                                params,
                                lr_now,
                                &mut rng,
                                &mut src_row,
                                &mut tmp,
                            );
                        }
                    }
                });
            }
        });
    }
    *m = shared.to_embedding();
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn process_source(
    g: &Csr,
    shared: &SharedMatrix,
    src: u32,
    n: u32,
    params: &TrainParams,
    lr: f32,
    rng: &mut Xorshift128Plus,
    src_row: &mut [f32],
    tmp: &mut [f32],
) {
    shared.read_row(src, src_row);
    if let Some(u) = positive_sample(g, src, params.similarity, rng) {
        one_update(shared, u, src_row, tmp, 1.0, lr);
    }
    for _ in 0..params.negative_samples {
        let u = rng.below(n);
        one_update(shared, u, src_row, tmp, 0.0, lr);
    }
    shared.write_row(src, src_row);
}

/// Draw a positive sample for `src` under the chosen similarity.
#[inline]
pub fn positive_sample(
    g: &Csr,
    src: u32,
    similarity: Similarity,
    rng: &mut Xorshift128Plus,
) -> Option<u32> {
    let deg = g.degree(src);
    if deg == 0 {
        return None;
    }
    match similarity {
        Similarity::Adjacency => Some(g.neighbor_at(src, rng.below(deg as u32) as usize)),
        Similarity::Ppr { alpha } => {
            let mut u = src;
            loop {
                let du = g.degree(u);
                if du == 0 {
                    // Dead end: restart at the source's own neighbourhood.
                    u = g.neighbor_at(src, rng.below(deg as u32) as usize);
                } else {
                    u = g.neighbor_at(u, rng.below(du as u32) as usize);
                }
                if rng.next_f32() >= alpha {
                    return Some(u);
                }
            }
        }
    }
}

#[inline]
fn one_update(
    shared: &SharedMatrix,
    u: u32,
    src_row: &mut [f32],
    tmp: &mut [f32],
    b: f32,
    lr: f32,
) {
    shared.read_row(u, tmp);
    let dot: f32 = src_row.iter().zip(tmp.iter()).map(|(x, y)| x * y).sum();
    let score = (b - sigmoid(dot)) * lr;
    shared.axpy_row(u, score, src_row);
    for (s, &t) in src_row.iter_mut().zip(tmp.iter()) {
        *s += score * t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosh_graph::builder::csr_from_edges;

    type CliquePairs = (Csr, Vec<(u32, u32)>, Vec<(u32, u32)>);

    fn two_cliques() -> CliquePairs {
        let mut edges = vec![];
        for a in 0..8u32 {
            for b in 0..a {
                edges.push((a, b));
                edges.push((a + 8, b + 8));
            }
        }
        edges.push((0, 8));
        let g = csr_from_edges(16, &edges);
        let intra = vec![(0, 1), (2, 3), (8, 9), (10, 11)];
        let inter = vec![(0, 9), (1, 10), (2, 12), (3, 13)];
        (g, intra, inter)
    }

    fn mean_cos(m: &Embedding, pairs: &[(u32, u32)]) -> f32 {
        pairs.iter().map(|&(a, b)| m.cosine(a, b)).sum::<f32>() / pairs.len() as f32
    }

    #[test]
    fn single_thread_learns_structure() {
        let (g, intra, inter) = two_cliques();
        let mut m = Embedding::random(16, 16, 3);
        let p = TrainParams {
            threads: 1,
            epochs: 150,
            lr: 0.05,
            ..Default::default()
        };
        train_cpu(&g, &mut m, &p);
        assert!(mean_cos(&m, &intra) > mean_cos(&m, &inter) + 0.3);
    }

    #[test]
    fn hogwild_threads_learn_structure() {
        let (g, intra, inter) = two_cliques();
        let mut m = Embedding::random(16, 16, 4);
        let p = TrainParams {
            threads: 8,
            epochs: 150,
            lr: 0.05,
            ..Default::default()
        };
        train_cpu(&g, &mut m, &p);
        assert!(mean_cos(&m, &intra) > mean_cos(&m, &inter) + 0.3);
    }

    #[test]
    fn ppr_similarity_also_learns() {
        let (g, intra, inter) = two_cliques();
        let mut m = Embedding::random(16, 16, 5);
        let p = TrainParams {
            threads: 4,
            epochs: 150,
            lr: 0.05,
            similarity: Similarity::Ppr { alpha: 0.85 },
            ..Default::default()
        };
        train_cpu(&g, &mut m, &p);
        assert!(mean_cos(&m, &intra) > mean_cos(&m, &inter) + 0.2);
    }

    #[test]
    fn empty_graph_is_noop() {
        let g = Csr::empty(4);
        let mut m = Embedding::random(4, 8, 6);
        let before = m.clone();
        train_cpu(&g, &mut m, &TrainParams::default());
        assert_eq!(m, before);
    }

    #[test]
    fn values_stay_finite_under_contention() {
        let (g, _, _) = two_cliques();
        let mut m = Embedding::random(16, 8, 7);
        let p = TrainParams {
            threads: 8,
            epochs: 50,
            lr: 0.2,
            ..Default::default()
        };
        train_cpu(&g, &mut m, &p);
        assert!(m.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn positive_sample_respects_adjacency() {
        let g = csr_from_edges(4, &[(0, 1), (0, 2)]);
        let mut rng = Xorshift128Plus::new(1);
        for _ in 0..50 {
            let u = positive_sample(&g, 0, Similarity::Adjacency, &mut rng).unwrap();
            assert!(u == 1 || u == 2);
        }
        assert!(positive_sample(&g, 3, Similarity::Adjacency, &mut rng).is_none());
    }

    #[test]
    fn ppr_walk_reaches_two_hops() {
        // Path 0-1-2: PPR from 0 must sometimes land on 2.
        let g = csr_from_edges(3, &[(0, 1), (1, 2)]);
        let mut rng = Xorshift128Plus::new(2);
        let mut saw_two = false;
        for _ in 0..200 {
            if positive_sample(&g, 0, Similarity::Ppr { alpha: 0.85 }, &mut rng) == Some(2) {
                saw_two = true;
                break;
            }
        }
        assert!(saw_two);
    }

    use gosh_graph::csr::Csr;
}
