//! Embedding matrices.
//!
//! [`Embedding`] is the host-side `|V| × d` matrix `M_i`. [`SharedMatrix`]
//! is the same data behind relaxed atomics, used whenever multiple threads
//! update rows concurrently (the Hogwild CPU trainer, and the host copy of
//! a partitioned matrix during Algorithm 5): lost updates are permitted,
//! torn floats are not.
//!
//! Threads work on [`SharedMatrix::row_atomics`] views *in place*:
//! sample rows are never staged through scratch buffers. Storage packs
//! **two `f32` lanes per `AtomicU64`** — one relaxed load or store moves
//! two matrix elements, halving the atomic-operation count of the
//! per-element `AtomicU32` discipline it replaced. A 64-bit relaxed
//! access is single-instruction on every 64-bit target, so individual
//! lanes still never tear; racing writers can lose a neighbouring
//! lane's update within the same pair, which is just the HOGWILD!
//! lost-update contract at pair granularity. Odd dimensions pad the
//! final pair's high lane with `0.0`; the trainer preserves the padding
//! invariant (zero source lane ⇒ zero update) so pads stay exactly zero.

use std::sync::atomic::{AtomicU64, Ordering};

use gosh_graph::rng::Xorshift128Plus;

/// A host-side embedding matrix in row-major order.
#[derive(Clone, Debug, PartialEq)]
pub struct Embedding {
    data: Vec<f32>,
    num_vertices: usize,
    dim: usize,
}

impl Embedding {
    /// A zero matrix.
    pub fn zeros(num_vertices: usize, dim: usize) -> Self {
        Self {
            data: vec![0.0; num_vertices * dim],
            num_vertices,
            dim,
        }
    }

    /// Random initialization, uniform in `[-0.5/d, 0.5/d)` — the VERSE
    /// convention GOSH inherits (small values keep early sigmoids in the
    /// responsive region).
    pub fn random(num_vertices: usize, dim: usize, seed: u64) -> Self {
        let mut rng = Xorshift128Plus::new(seed);
        let scale = 1.0 / dim as f32;
        let data = (0..num_vertices * dim)
            .map(|_| (rng.next_f32() - 0.5) * scale)
            .collect();
        Self {
            data,
            num_vertices,
            dim,
        }
    }

    /// Wrap an existing row-major buffer.
    pub fn from_vec(data: Vec<f32>, num_vertices: usize, dim: usize) -> Self {
        assert_eq!(data.len(), num_vertices * dim, "shape mismatch");
        Self {
            data,
            num_vertices,
            dim,
        }
    }

    /// Number of rows (vertices).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of features per vertex (the paper's `d`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `v` as a slice.
    #[inline]
    pub fn row(&self, v: u32) -> &[f32] {
        let o = v as usize * self.dim;
        &self.data[o..o + self.dim]
    }

    /// Row `v` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, v: u32) -> &mut [f32] {
        let o = v as usize * self.dim;
        &mut self.data[o..o + self.dim]
    }

    /// Two distinct rows mutably at once (for Algorithm 1 on the host).
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn two_rows_mut(&mut self, a: u32, b: u32) -> (&mut [f32], &mut [f32]) {
        assert_ne!(a, b, "rows must be distinct");
        let d = self.dim;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (first, second) = self.data.split_at_mut(hi as usize * d);
        let row_lo = &mut first[lo as usize * d..lo as usize * d + d];
        let row_hi = &mut second[..d];
        if a < b {
            (row_lo, row_hi)
        } else {
            (row_hi, row_lo)
        }
    }

    /// Whole matrix as a flat slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Whole matrix as a flat mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix bytes (`4·|V|·d`), the quantity budgeted against device
    /// memory in §3.3.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// Cosine similarity between two rows (used by tests and examples).
    pub fn cosine(&self, a: u32, b: u32) -> f32 {
        let (ra, rb) = (self.row(a), self.row(b));
        let dot: f32 = ra.iter().zip(rb).map(|(x, y)| x * y).sum();
        let na: f32 = ra.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = rb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

/// Pack two `f32` lanes into the `u64` cell layout (`lo` is lane `2k`,
/// `hi` lane `2k + 1`).
#[inline]
pub fn pack_pair(lo: f32, hi: f32) -> u64 {
    lo.to_bits() as u64 | ((hi.to_bits() as u64) << 32)
}

/// Unpack an atomic cell into its two `f32` lanes.
#[inline]
pub fn unpack_pair(w: u64) -> (f32, f32) {
    (f32::from_bits(w as u32), f32::from_bits((w >> 32) as u32))
}

/// An embedding matrix behind relaxed atomics for Hogwild-style updates.
pub struct SharedMatrix {
    data: Box<[AtomicU64]>,
    num_vertices: usize,
    dim: usize,
    /// `AtomicU64` cells per row: `ceil(dim / 2)`.
    pairs: usize,
}

impl SharedMatrix {
    /// Copy a host matrix into shared paired-lane form.
    pub fn from_embedding(m: &Embedding) -> Self {
        let dim = m.dim();
        let pairs = dim.div_ceil(2);
        let mut data = Vec::with_capacity(m.num_vertices() * pairs);
        for v in 0..m.num_vertices() as u32 {
            let row = m.row(v);
            for p in 0..pairs {
                let lo = row[2 * p];
                let hi = if 2 * p + 1 < dim { row[2 * p + 1] } else { 0.0 };
                data.push(AtomicU64::new(pack_pair(lo, hi)));
            }
        }
        Self {
            data: data.into_boxed_slice(),
            num_vertices: m.num_vertices(),
            dim,
            pairs,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Features per row.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `AtomicU64` cells per row (`ceil(dim / 2)`).
    #[inline]
    pub fn pairs_per_row(&self) -> usize {
        self.pairs
    }

    /// Row `v` as a shared atomic pair slice: the in-place view the
    /// Hogwild trainer updates through. One bounds check per row, none
    /// per element; no scratch copy in or out.
    #[inline]
    pub fn row_atomics(&self, v: u32) -> &[AtomicU64] {
        let o = v as usize * self.pairs;
        &self.data[o..o + self.pairs]
    }

    /// Relaxed load of element `j` of an atomic row view.
    #[inline]
    pub fn get(row: &[AtomicU64], j: usize) -> f32 {
        let (lo, hi) = unpack_pair(row[j / 2].load(Ordering::Relaxed));
        if j.is_multiple_of(2) {
            lo
        } else {
            hi
        }
    }

    /// Relaxed store of element `j` of an atomic row view. (A racy
    /// read-modify-write of the enclosing pair — fine for tooling and
    /// tests; the trainer writes whole pairs.)
    #[inline]
    pub fn set(row: &[AtomicU64], j: usize, x: f32) {
        let cell = &row[j / 2];
        let (lo, hi) = unpack_pair(cell.load(Ordering::Relaxed));
        let w = if j.is_multiple_of(2) {
            pack_pair(x, hi)
        } else {
            pack_pair(lo, x)
        };
        cell.store(w, Ordering::Relaxed);
    }

    /// Copy back out to a host matrix (padding lanes dropped).
    pub fn to_embedding(&self) -> Embedding {
        let mut data = Vec::with_capacity(self.num_vertices * self.dim);
        for v in 0..self.num_vertices {
            let row = &self.data[v * self.pairs..(v + 1) * self.pairs];
            for (p, cell) in row.iter().enumerate() {
                let (lo, hi) = unpack_pair(cell.load(Ordering::Relaxed));
                data.push(lo);
                if 2 * p + 1 < self.dim {
                    data.push(hi);
                }
            }
        }
        Embedding::from_vec(data, self.num_vertices, self.dim)
    }
}

impl std::fmt::Debug for SharedMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedMatrix({}x{})", self.num_vertices, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_init_is_small_and_deterministic() {
        let m1 = Embedding::random(10, 16, 5);
        let m2 = Embedding::random(10, 16, 5);
        assert_eq!(m1, m2);
        let bound = 0.5 / 16.0;
        assert!(m1.as_slice().iter().all(|&x| x.abs() <= bound));
        assert!(m1.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn row_accessors() {
        let mut m = Embedding::zeros(3, 4);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(0), &[0.0; 4]);
        assert_eq!(m.memory_bytes(), 48);
    }

    #[test]
    fn two_rows_mut_both_orders() {
        let mut m = Embedding::zeros(4, 2);
        {
            let (a, b) = m.two_rows_mut(1, 3);
            a[0] = 1.0;
            b[0] = 3.0;
        }
        {
            let (a, b) = m.two_rows_mut(2, 0);
            a[0] = 2.0;
            b[0] = 0.5;
        }
        assert_eq!(m.row(0)[0], 0.5);
        assert_eq!(m.row(1)[0], 1.0);
        assert_eq!(m.row(2)[0], 2.0);
        assert_eq!(m.row(3)[0], 3.0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn two_rows_mut_same_row_panics() {
        let mut m = Embedding::zeros(2, 2);
        let _ = m.two_rows_mut(1, 1);
    }

    #[test]
    fn cosine_of_identical_rows_is_one() {
        let mut m = Embedding::zeros(2, 3);
        m.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        m.row_mut(1).copy_from_slice(&[2.0, 4.0, 6.0]);
        assert!((m.cosine(0, 1) - 1.0).abs() < 1e-6);
        let z = Embedding::zeros(2, 3);
        assert_eq!(z.cosine(0, 1), 0.0);
    }

    #[test]
    fn shared_matrix_round_trip_even_and_odd_dims() {
        for dim in [1usize, 2, 3, 7, 8, 31] {
            let m = Embedding::random(5, dim, 9);
            let s = SharedMatrix::from_embedding(&m);
            assert_eq!(s.pairs_per_row(), dim.div_ceil(2));
            assert_eq!(s.to_embedding(), m, "dim {dim}");
        }
    }

    #[test]
    fn pack_unpack_is_lossless() {
        for (lo, hi) in [(0.0f32, -0.0f32), (1.5, -3.25), (f32::MIN, f32::MAX)] {
            let (l2, h2) = unpack_pair(pack_pair(lo, hi));
            assert_eq!(lo.to_bits(), l2.to_bits());
            assert_eq!(hi.to_bits(), h2.to_bits());
        }
    }

    #[test]
    fn row_atomics_views_update_in_place() {
        let m = Embedding::zeros(2, 3);
        let s = SharedMatrix::from_embedding(&m);
        let row = s.row_atomics(1);
        assert_eq!(row.len(), 2); // ceil(3 / 2) pairs
        for j in 0..3 {
            SharedMatrix::set(row, j, 1.0 + j as f32);
        }
        assert_eq!(SharedMatrix::get(s.row_atomics(1), 2), 3.0);
        // Two views of the same row alias the same cells.
        let alias = s.row_atomics(1);
        SharedMatrix::set(alias, 0, 9.0);
        assert_eq!(SharedMatrix::get(row, 0), 9.0);
        let back = s.to_embedding();
        assert_eq!(back.row(1), &[9.0, 2.0, 3.0]);
        assert_eq!(back.row(0), &[0.0; 3]);
    }

    #[test]
    fn concurrent_in_place_updates_keep_lanes_untorn() {
        let s = SharedMatrix::from_embedding(&Embedding::zeros(1, 16));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let row = s.row_atomics(0);
                    for _ in 0..1000 {
                        for cell in row {
                            let (lo, hi) = unpack_pair(cell.load(Ordering::Relaxed));
                            cell.store(pack_pair(lo + 1.0, hi + 1.0), Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // Lost updates are allowed; torn/NaN lanes are not.
        let back = s.to_embedding();
        for &x in back.row(0) {
            assert!(x.is_finite());
            assert!(x > 0.0 && x <= 4000.0);
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_validates_shape() {
        Embedding::from_vec(vec![0.0; 5], 2, 3);
    }
}
