//! Embedding matrices.
//!
//! [`Embedding`] is the host-side `|V| × d` matrix `M_i`. [`SharedMatrix`]
//! is the same data behind relaxed atomics, used whenever multiple threads
//! update rows concurrently (the Hogwild CPU trainer, and the host copy of
//! a partitioned matrix during Algorithm 5): lost updates are permitted,
//! torn floats are not.

use std::sync::atomic::{AtomicU32, Ordering};

use gosh_graph::rng::Xorshift128Plus;

/// A host-side embedding matrix in row-major order.
#[derive(Clone, Debug, PartialEq)]
pub struct Embedding {
    data: Vec<f32>,
    num_vertices: usize,
    dim: usize,
}

impl Embedding {
    /// A zero matrix.
    pub fn zeros(num_vertices: usize, dim: usize) -> Self {
        Self {
            data: vec![0.0; num_vertices * dim],
            num_vertices,
            dim,
        }
    }

    /// Random initialization, uniform in `[-0.5/d, 0.5/d)` — the VERSE
    /// convention GOSH inherits (small values keep early sigmoids in the
    /// responsive region).
    pub fn random(num_vertices: usize, dim: usize, seed: u64) -> Self {
        let mut rng = Xorshift128Plus::new(seed);
        let scale = 1.0 / dim as f32;
        let data = (0..num_vertices * dim)
            .map(|_| (rng.next_f32() - 0.5) * scale)
            .collect();
        Self {
            data,
            num_vertices,
            dim,
        }
    }

    /// Wrap an existing row-major buffer.
    pub fn from_vec(data: Vec<f32>, num_vertices: usize, dim: usize) -> Self {
        assert_eq!(data.len(), num_vertices * dim, "shape mismatch");
        Self {
            data,
            num_vertices,
            dim,
        }
    }

    /// Number of rows (vertices).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of features per vertex (the paper's `d`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `v` as a slice.
    #[inline]
    pub fn row(&self, v: u32) -> &[f32] {
        let o = v as usize * self.dim;
        &self.data[o..o + self.dim]
    }

    /// Row `v` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, v: u32) -> &mut [f32] {
        let o = v as usize * self.dim;
        &mut self.data[o..o + self.dim]
    }

    /// Two distinct rows mutably at once (for Algorithm 1 on the host).
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn two_rows_mut(&mut self, a: u32, b: u32) -> (&mut [f32], &mut [f32]) {
        assert_ne!(a, b, "rows must be distinct");
        let d = self.dim;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (first, second) = self.data.split_at_mut(hi as usize * d);
        let row_lo = &mut first[lo as usize * d..lo as usize * d + d];
        let row_hi = &mut second[..d];
        if a < b {
            (row_lo, row_hi)
        } else {
            (row_hi, row_lo)
        }
    }

    /// Whole matrix as a flat slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Whole matrix as a flat mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix bytes (`4·|V|·d`), the quantity budgeted against device
    /// memory in §3.3.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// Cosine similarity between two rows (used by tests and examples).
    pub fn cosine(&self, a: u32, b: u32) -> f32 {
        let (ra, rb) = (self.row(a), self.row(b));
        let dot: f32 = ra.iter().zip(rb).map(|(x, y)| x * y).sum();
        let na: f32 = ra.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = rb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

/// An embedding matrix behind relaxed atomics for Hogwild-style updates.
pub struct SharedMatrix {
    data: Box<[AtomicU32]>,
    num_vertices: usize,
    dim: usize,
}

impl SharedMatrix {
    /// Copy a host matrix into shared form.
    pub fn from_embedding(m: &Embedding) -> Self {
        let data = m
            .as_slice()
            .iter()
            .map(|&x| AtomicU32::new(x.to_bits()))
            .collect();
        Self {
            data,
            num_vertices: m.num_vertices(),
            dim: m.dim(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Features per row.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Relaxed load of element `(v, j)`.
    #[inline]
    pub fn load(&self, v: u32, j: usize) -> f32 {
        f32::from_bits(self.data[v as usize * self.dim + j].load(Ordering::Relaxed))
    }

    /// Relaxed store of element `(v, j)`.
    #[inline]
    pub fn store(&self, v: u32, j: usize, x: f32) {
        self.data[v as usize * self.dim + j].store(x.to_bits(), Ordering::Relaxed);
    }

    /// Copy row `v` into `out`.
    #[inline]
    pub fn read_row(&self, v: u32, out: &mut [f32]) {
        let o = v as usize * self.dim;
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = f32::from_bits(self.data[o + k].load(Ordering::Relaxed));
        }
    }

    /// Overwrite row `v` from `src`.
    #[inline]
    pub fn write_row(&self, v: u32, src: &[f32]) {
        let o = v as usize * self.dim;
        for (k, &x) in src.iter().enumerate() {
            self.data[o + k].store(x.to_bits(), Ordering::Relaxed);
        }
    }

    /// Racy `row[v] += a · xs` (Hogwild).
    #[inline]
    pub fn axpy_row(&self, v: u32, a: f32, xs: &[f32]) {
        let o = v as usize * self.dim;
        for (k, &x) in xs.iter().enumerate() {
            let cell = &self.data[o + k];
            let cur = f32::from_bits(cell.load(Ordering::Relaxed));
            cell.store((cur + a * x).to_bits(), Ordering::Relaxed);
        }
    }

    /// Copy back out to a host matrix.
    pub fn to_embedding(&self) -> Embedding {
        let data = self
            .data
            .iter()
            .map(|c| f32::from_bits(c.load(Ordering::Relaxed)))
            .collect();
        Embedding::from_vec(data, self.num_vertices, self.dim)
    }
}

impl std::fmt::Debug for SharedMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedMatrix({}x{})", self.num_vertices, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_init_is_small_and_deterministic() {
        let m1 = Embedding::random(10, 16, 5);
        let m2 = Embedding::random(10, 16, 5);
        assert_eq!(m1, m2);
        let bound = 0.5 / 16.0;
        assert!(m1.as_slice().iter().all(|&x| x.abs() <= bound));
        assert!(m1.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn row_accessors() {
        let mut m = Embedding::zeros(3, 4);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(0), &[0.0; 4]);
        assert_eq!(m.memory_bytes(), 48);
    }

    #[test]
    fn two_rows_mut_both_orders() {
        let mut m = Embedding::zeros(4, 2);
        {
            let (a, b) = m.two_rows_mut(1, 3);
            a[0] = 1.0;
            b[0] = 3.0;
        }
        {
            let (a, b) = m.two_rows_mut(2, 0);
            a[0] = 2.0;
            b[0] = 0.5;
        }
        assert_eq!(m.row(0)[0], 0.5);
        assert_eq!(m.row(1)[0], 1.0);
        assert_eq!(m.row(2)[0], 2.0);
        assert_eq!(m.row(3)[0], 3.0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn two_rows_mut_same_row_panics() {
        let mut m = Embedding::zeros(2, 2);
        let _ = m.two_rows_mut(1, 1);
    }

    #[test]
    fn cosine_of_identical_rows_is_one() {
        let mut m = Embedding::zeros(2, 3);
        m.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        m.row_mut(1).copy_from_slice(&[2.0, 4.0, 6.0]);
        assert!((m.cosine(0, 1) - 1.0).abs() < 1e-6);
        let z = Embedding::zeros(2, 3);
        assert_eq!(z.cosine(0, 1), 0.0);
    }

    #[test]
    fn shared_matrix_round_trip() {
        let m = Embedding::random(5, 8, 9);
        let s = SharedMatrix::from_embedding(&m);
        assert_eq!(s.to_embedding(), m);
    }

    #[test]
    fn shared_matrix_axpy() {
        let m = Embedding::zeros(2, 3);
        let s = SharedMatrix::from_embedding(&m);
        s.write_row(1, &[1.0, 1.0, 1.0]);
        s.axpy_row(1, 2.0, &[1.0, 2.0, 3.0]);
        let mut out = [0f32; 3];
        s.read_row(1, &mut out);
        assert_eq!(out, [3.0, 5.0, 7.0]);
        assert_eq!(s.load(1, 2), 7.0);
        s.store(0, 0, 9.0);
        assert_eq!(s.load(0, 0), 9.0);
    }

    #[test]
    fn concurrent_axpy_keeps_floats_untorn() {
        let s = SharedMatrix::from_embedding(&Embedding::zeros(1, 16));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        s.axpy_row(0, 1.0, &[1.0; 16]);
                    }
                });
            }
        });
        // Lost updates are allowed; torn/NaN values are not.
        let mut out = [0f32; 16];
        s.read_row(0, &mut out);
        for &x in &out {
            assert!(x.is_finite());
            assert!(x > 0.0 && x <= 4000.0);
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_validates_shape() {
        Embedding::from_vec(vec![0.0; 5], 2, 3);
    }
}
