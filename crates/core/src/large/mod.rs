//! The large-graph path — Algorithm 5 (`LargeGraphGPU`).
//!
//! When `G_i` plus `M_i` exceed device memory, the embedding matrix is
//! partitioned into `K_i` sub-matrices; `P_GPU` of them are resident on
//! the device at a time, processed in the inside-out pair rotation of
//! §3.3.1. Positive samples are drawn **on the host** into pools (the
//! graph never goes to the device), with up to `S_GPU` pools in flight;
//! negatives are drawn on the device from the counterpart sub-matrix.

pub mod partition;
pub mod pools;
pub mod residency;
pub mod rotation;
pub mod run;

pub use partition::{choose_num_parts, Partition};
pub use pools::{generate_pool, SamplePool};
pub use residency::{farthest_future_victim, place, Placement};
pub use rotation::inside_out_pairs;
pub use run::{train_large, LargeReport};
