//! Host-side positive-sample pools (§3.3.3, Figure 2).
//!
//! The graph is *not* stored on the device in the large path; instead, for
//! each part pair `(a, b)` a pool of `B` positive targets per vertex is
//! sampled on the host by the `SampleManager` thread team and shipped to
//! the device. Because parts are contiguous id ranges and neighbour lists
//! are sorted, `Γ(v) ∩ V_b` is a binary-searched subrange — each draw is
//! O(log deg).

use std::sync::atomic::{AtomicUsize, Ordering};

use gosh_graph::csr::Csr;
use gosh_graph::rng::{mix64, Xorshift128Plus};

use super::partition::Partition;

/// Sentinel: no neighbour in the counterpart (the paper's "almost" in
/// "almost equivalent to B × K_i epochs" — such vertices skip positives).
pub const NO_SAMPLE: u32 = u32::MAX;

/// Positive samples for one part pair.
#[derive(Clone, Debug)]
pub struct SamplePool {
    /// The pair (a, b) with `a >= b`.
    pub pair: (usize, usize),
    /// `fwd[v_local · B + i]`: i-th target (global id, in part b) for the
    /// v-th vertex of part a.
    pub fwd: Vec<u32>,
    /// Targets in part a for vertices of part b; empty when `a == b`
    /// (the diagonal pool samples within the part via `fwd`).
    pub rev: Vec<u32>,
}

/// Draw `B` positive targets in `V_target` for every vertex of `V_source`.
#[allow(clippy::too_many_arguments)]
fn fill_side(
    g: &Csr,
    partition: &Partition,
    source: usize,
    target: usize,
    b: usize,
    threads: usize,
    seed: u64,
    out: &mut Vec<u32>,
) {
    let src_range = partition.range(source);
    let tgt_range = partition.range(target);
    let n_src = (src_range.end - src_range.start) as usize;
    out.clear();
    out.resize(n_src * b, NO_SAMPLE);

    const CHUNK: usize = 1024;
    let cursor = AtomicUsize::new(0);
    let out_chunks: Vec<&mut [u32]> = out.chunks_mut(CHUNK * b).collect();
    let num_chunks = out_chunks.len();
    let out_slots: Vec<parking_lot::Mutex<&mut [u32]>> = out_chunks
        .into_iter()
        .map(parking_lot::Mutex::new)
        .collect();

    let workers = threads.max(1).min(num_chunks.max(1));
    let src_start = src_range.start;
    let tgt = tgt_range.clone();
    gosh_runtime::global().run(workers, |_ctx| loop {
        let c = cursor.fetch_add(1, Ordering::Relaxed);
        if c >= num_chunks {
            break;
        }
        // Seed per chunk, not per thread: the pool is identical
        // no matter which worker claims which chunk.
        let mut rng = Xorshift128Plus::new(mix64(seed ^ (c as u64) << 24));
        let mut slot = out_slots[c].lock();
        let base = c * CHUNK;
        for (i, row) in slot.chunks_mut(b).enumerate() {
            let v = src_start + (base + i) as u32;
            let nbrs = g.neighbors(v);
            // Γ(v) ∩ V_target via binary search on sorted list.
            let lo = nbrs.partition_point(|&u| u < tgt.start);
            let hi = nbrs.partition_point(|&u| u < tgt.end);
            if lo == hi {
                continue; // row stays NO_SAMPLE
            }
            let span = (hi - lo) as u32;
            for s in row.iter_mut() {
                *s = nbrs[lo + rng.below(span) as usize];
            }
        }
    });
}

/// Generate the pool for `pair` (with `pair.0 >= pair.1`).
pub fn generate_pool(
    g: &Csr,
    partition: &Partition,
    pair: (usize, usize),
    b: usize,
    threads: usize,
    seed: u64,
) -> SamplePool {
    let (a, bb) = pair;
    assert!(a >= bb, "pair must be ordered (a >= b)");
    let mut fwd = Vec::new();
    fill_side(
        g,
        partition,
        a,
        bb,
        b,
        threads,
        mix64(seed ^ 0xF0),
        &mut fwd,
    );
    let mut rev = Vec::new();
    if a != bb {
        fill_side(
            g,
            partition,
            bb,
            a,
            b,
            threads,
            mix64(seed ^ 0x0F),
            &mut rev,
        );
    }
    SamplePool { pair, fwd, rev }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosh_graph::gen::erdos_renyi;

    #[test]
    fn targets_live_in_the_right_part() {
        let g = erdos_renyi(200, 2000, 7);
        let p = Partition::new(200, 4);
        let pool = generate_pool(&g, &p, (2, 1), 5, 4, 11);
        let range_a = p.range(2);
        let range_b = p.range(1);
        assert_eq!(pool.fwd.len(), p.len(2) * 5);
        assert_eq!(pool.rev.len(), p.len(1) * 5);
        for &t in &pool.fwd {
            if t != NO_SAMPLE {
                assert!(range_b.contains(&t));
            }
        }
        for &t in &pool.rev {
            if t != NO_SAMPLE {
                assert!(range_a.contains(&t));
            }
        }
    }

    #[test]
    fn targets_are_actual_neighbors() {
        let g = erdos_renyi(120, 800, 9);
        let p = Partition::new(120, 3);
        let pool = generate_pool(&g, &p, (1, 0), 4, 2, 13);
        let range = p.range(1);
        for (i, chunk) in pool.fwd.chunks(4).enumerate() {
            let v = range.start + i as u32;
            for &t in chunk {
                if t != NO_SAMPLE {
                    assert!(g.has_edge(v, t), "({v},{t}) not an edge");
                }
            }
        }
    }

    #[test]
    fn diagonal_pool_has_no_rev() {
        let g = erdos_renyi(100, 600, 3);
        let p = Partition::new(100, 2);
        let pool = generate_pool(&g, &p, (1, 1), 5, 2, 17);
        assert!(pool.rev.is_empty());
        assert_eq!(pool.fwd.len(), p.len(1) * 5);
    }

    #[test]
    fn vertices_without_cross_neighbors_get_sentinel() {
        // Path 0-1 | 2-3 with parts {0,1}, {2,3}: no cross edges at all.
        let g = gosh_graph::builder::csr_from_edges(4, &[(0, 1), (2, 3)]);
        let p = Partition::new(4, 2);
        let pool = generate_pool(&g, &p, (1, 0), 3, 1, 19);
        assert!(pool.fwd.iter().all(|&t| t == NO_SAMPLE));
        assert!(pool.rev.iter().all(|&t| t == NO_SAMPLE));
    }

    #[test]
    fn pool_generation_is_deterministic_across_thread_counts() {
        let g = erdos_renyi(150, 900, 21);
        let p = Partition::new(150, 3);
        let a = generate_pool(&g, &p, (2, 0), 5, 1, 23);
        let b = generate_pool(&g, &p, (2, 0), 5, 4, 23);
        assert_eq!(a.fwd, b.fwd);
        assert_eq!(a.rev, b.rev);
    }
}
