//! Vertex partitioning for the large-graph path (§3.3).
//!
//! `V_i` is split into `K_i` contiguous, nearly equal ranges. Contiguity
//! matters twice: sub-matrix copies are single memcpy spans, and since
//! neighbour lists are sorted, `Γ(v) ∩ V_k` is a subrange found by binary
//! search — which makes host-side positive sampling O(log deg) per draw.

use std::ops::Range;

/// A partition of `0..n` into contiguous parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    boundaries: Vec<u32>,
}

impl Partition {
    /// Split `n` vertices into `k` nearly equal contiguous parts.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 1, "need at least one part");
        assert!(n >= k, "more parts than vertices");
        let mut boundaries = Vec::with_capacity(k + 1);
        for j in 0..=k {
            boundaries.push((j * n / k) as u32);
        }
        Self { boundaries }
    }

    /// Number of parts `K`.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Vertex range of part `j`.
    #[inline]
    pub fn range(&self, j: usize) -> Range<u32> {
        self.boundaries[j]..self.boundaries[j + 1]
    }

    /// Size of part `j`.
    #[inline]
    pub fn len(&self, j: usize) -> usize {
        (self.boundaries[j + 1] - self.boundaries[j]) as usize
    }

    /// True if the partition covers no vertices.
    pub fn is_empty(&self) -> bool {
        *self.boundaries.last().unwrap() == 0
    }

    /// Largest part size (sizes the device bins).
    pub fn max_part_len(&self) -> usize {
        (0..self.num_parts())
            .map(|j| self.len(j))
            .max()
            .unwrap_or(0)
    }

    /// Which part vertex `v` belongs to.
    #[inline]
    pub fn part_of(&self, v: u32) -> usize {
        debug_assert!(v < *self.boundaries.last().unwrap());
        match self.boundaries.binary_search(&v) {
            Ok(j) => j.min(self.num_parts() - 1),
            Err(j) => j - 1,
        }
    }
}

/// Pick `K_i`: the smallest part count such that `P_GPU` sub-matrix bins
/// plus `S_GPU` sample-pool slots fit in `available_bytes` (§3.3.2's
/// trade-off — more parts always fit, but every extra part lengthens the
/// rotation, so we take the minimum that fits, and never fewer than 2).
///
/// Bins are sized by the *ceiling* part length `max_part_len() =
/// ceil(n/K)`, so the fit is verified against that, not against the
/// average `n/K` — deriving K from `n · per_vertex / available` alone can
/// overshoot device memory by one vertex's worth of rounding per part.
pub fn choose_num_parts(
    n: usize,
    dim: usize,
    available_bytes: usize,
    p_gpu: usize,
    s_gpu: usize,
    batch_b: usize,
) -> usize {
    choose_num_parts_prec(
        n,
        dim,
        available_bytes,
        p_gpu,
        s_gpu,
        batch_b,
        crate::quant::Precision::F32,
    )
}

/// [`choose_num_parts`] with the sub-matrix bins priced at `precision`'s
/// true row byte width (`Precision::row_bytes`): quantized bins hold 2-4x
/// more vertices per device byte, so fewer parts — and shorter rotations —
/// fit the same budget. The sample-pool term is `u32` indices and does not
/// shrink with the embedding precision.
pub fn choose_num_parts_prec(
    n: usize,
    dim: usize,
    available_bytes: usize,
    p_gpu: usize,
    s_gpu: usize,
    batch_b: usize,
    precision: crate::quant::Precision,
) -> usize {
    assert!(n >= 2, "graph too small to partition");
    // Per-part bytes: a sub-matrix bin is part_len rows at the storage
    // width; a pool slot holds B targets for both sides of a pair
    // (2·part_len·B u32).
    let per_vertex = (p_gpu * precision.row_bytes(dim) + s_gpu * batch_b * 2 * 4).max(1);
    // Largest part length whose bins fit; K = ceil(n / max_len) then
    // guarantees ceil(n/K) <= max_len. With max_len == 0 nothing fits —
    // fall through to K = n (one vertex per part) and let the device
    // allocation surface the failure.
    let max_len = available_bytes / per_vertex;
    let k = if max_len == 0 { n } else { n.div_ceil(max_len) };
    k.clamp(2, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_everything_without_overlap() {
        let p = Partition::new(103, 7);
        assert_eq!(p.num_parts(), 7);
        let total: usize = (0..7).map(|j| p.len(j)).sum();
        assert_eq!(total, 103);
        for j in 0..6 {
            assert_eq!(p.range(j).end, p.range(j + 1).start);
        }
        assert_eq!(p.range(0).start, 0);
        assert_eq!(p.range(6).end, 103);
    }

    #[test]
    fn parts_are_balanced() {
        let p = Partition::new(1000, 6);
        let min = (0..6).map(|j| p.len(j)).min().unwrap();
        let max = p.max_part_len();
        assert!(max - min <= 1);
    }

    #[test]
    fn part_of_agrees_with_ranges() {
        let p = Partition::new(50, 4);
        for j in 0..4 {
            for v in p.range(j) {
                assert_eq!(p.part_of(v), j, "vertex {v}");
            }
        }
    }

    #[test]
    fn single_part_is_identity() {
        let p = Partition::new(10, 1);
        assert_eq!(p.num_parts(), 1);
        assert_eq!(p.range(0), 0..10);
        assert_eq!(p.part_of(9), 0);
    }

    #[test]
    fn choose_parts_scales_with_memory() {
        // 1M vertices, d = 32: matrix is 128 MB. With ~16 MB available the
        // partitioner must cut it into enough pieces.
        let k_small = choose_num_parts(1_000_000, 32, 16 << 20, 3, 4, 5);
        let k_large = choose_num_parts(1_000_000, 32, 256 << 20, 3, 4, 5);
        assert!(k_small > k_large);
        assert!(k_large >= 2);
        // The chosen K must actually fit.
        let part = 1_000_000usize.div_ceil(k_small);
        let bytes = 3 * part * 32 * 4 + 4 * 5 * 2 * part * 4;
        assert!(bytes <= 16 << 20, "bins {bytes}");
    }

    #[test]
    fn choose_parts_minimum_two() {
        assert_eq!(choose_num_parts(100, 8, usize::MAX / 2, 3, 4, 5), 2);
    }

    #[test]
    fn chosen_parts_fit_with_ceiling_part_size() {
        // Adversarial n: with per_vertex = 256 (dim 8, P=3, S=4, B=5) and
        // 511 bytes available, the average-based K was 2 — but
        // ceil(3/2) = 2 vertices per bin needs 512 bytes. The fit must be
        // verified against the ceiling part size.
        let per_vertex = 3 * 8 * 4 + 4 * 5 * 2 * 4;
        assert_eq!(per_vertex, 256);
        let k = choose_num_parts(3, 8, 2 * per_vertex - 1, 3, 4, 5);
        assert_eq!(k, 3, "rounding overshoot not corrected");
        // Property over a sweep: whenever anything fits at all, the
        // ceiling-sized bins of the chosen K fit in the budget.
        for n in [3usize, 7, 100, 1001, 65_537] {
            for avail in [per_vertex, 2 * per_vertex - 1, 10_000, 1 << 20] {
                let k = choose_num_parts(n, 8, avail, 3, 4, 5);
                let bytes = n.div_ceil(k) * per_vertex;
                if avail >= per_vertex {
                    assert!(bytes <= avail, "n={n} avail={avail}: K={k} needs {bytes}");
                }
            }
        }
    }

    #[test]
    fn quantized_bins_need_fewer_parts() {
        use crate::quant::Precision;
        // Large dim so the matrix term dominates the pool term: narrower
        // rows must never need more parts, and strictly fewer here.
        let budget = 8 << 20;
        let k = |p| choose_num_parts_prec(1_000_000, 128, budget, 3, 4, 5, p);
        let (kf32, kf16, ki8) = (k(Precision::F32), k(Precision::F16), k(Precision::I8));
        assert!(kf16 < kf32, "f16 {kf16} vs f32 {kf32}");
        assert!(ki8 < kf16, "i8 {ki8} vs f16 {kf16}");
        // F32 delegation is exact.
        assert_eq!(kf32, choose_num_parts(1_000_000, 128, budget, 3, 4, 5));
        // The chosen K still fits at the quantized width.
        let part = 1_000_000usize.div_ceil(ki8);
        let bytes = 3 * part * Precision::I8.row_bytes(128) + 4 * 5 * 2 * part * 4;
        assert!(bytes <= budget, "i8 bins {bytes}");
    }

    #[test]
    #[should_panic(expected = "more parts than vertices")]
    fn too_many_parts_panics() {
        Partition::new(3, 4);
    }
}
