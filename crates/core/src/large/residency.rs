//! Bin residency planning for the large-graph path (§3.3.2).
//!
//! Pure decisions, no I/O: given which part each device bin currently
//! holds, which parts the in-flight kernels pin, and the future pair
//! sequence, decide where a part should live. The actual transfers are
//! driven by [`crate::large::run`]; keeping the policy side-effect-free
//! is what makes it testable against a brute-force oracle.
//!
//! The eviction policy is Belady's: among the unpinned bins, evict the
//! one whose held part is next used farthest in the future (never, if it
//! does not appear again). This is the role `P_GPU > 2` plays in the
//! paper — the spare bin keeps the soon-needed sub-matrix resident
//! instead of bouncing it over PCIe.

/// What [`place`] decided for a part.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// The part is already resident in this bin; no transfer needed.
    Resident(usize),
    /// Load into this currently empty bin.
    Fill(usize),
    /// Evict `old_part` from `bin`, then load into it.
    Evict {
        /// The bin to reuse.
        bin: usize,
        /// The part currently held there (must be written back).
        old_part: usize,
    },
    /// Every candidate bin is pinned; the part cannot be placed now.
    /// Only reachable from prefetch (a demand load always has an
    /// unpinned candidate — at most two parts are pinned and they are
    /// never both resident when a demand load happens).
    Blocked,
}

/// Steps until `part` is next used in `future`, `usize::MAX` if never.
#[inline]
fn next_use(part: usize, future: &[(usize, usize)]) -> usize {
    future
        .iter()
        .position(|&(x, y)| x == part || y == part)
        .unwrap_or(usize::MAX)
}

/// The bin whose held part is used farthest in the future, skipping
/// pinned parts. Ties break toward the lowest bin index. `None` when
/// every bin holds a pinned part.
pub fn farthest_future_victim(
    holds: &[Option<usize>],
    pinned: &[usize],
    future: &[(usize, usize)],
) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (bin, distance)
    for (bin, hold) in holds.iter().enumerate() {
        let held = hold.expect("victim search requires all bins full");
        if pinned.contains(&held) {
            continue;
        }
        let dist = next_use(held, future);
        if best.is_none_or(|(_, d)| dist > d) {
            best = Some((bin, dist));
        }
    }
    best.map(|(bin, _)| bin)
}

/// Decide where `part` should live. `pinned` lists the parts that may
/// not be displaced (the pair a kernel is about to touch, plus — during
/// prefetch — the pair being fetched); `future` is the remaining pair
/// sequence the Belady distance is measured against.
pub fn place(
    holds: &[Option<usize>],
    part: usize,
    pinned: &[usize],
    future: &[(usize, usize)],
) -> Placement {
    if let Some(bin) = holds.iter().position(|h| *h == Some(part)) {
        return Placement::Resident(bin);
    }
    if let Some(bin) = holds.iter().position(|h| h.is_none()) {
        return Placement::Fill(bin);
    }
    match farthest_future_victim(holds, pinned, future) {
        Some(bin) => Placement::Evict {
            bin,
            old_part: holds[bin].expect("full bin"),
        },
        None => Placement::Blocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_part_is_found() {
        let holds = [Some(3), Some(1), None];
        assert_eq!(place(&holds, 1, &[1, 3], &[]), Placement::Resident(1));
    }

    #[test]
    fn free_bin_preferred_over_eviction() {
        let holds = [Some(3), None, Some(1)];
        assert_eq!(place(&holds, 2, &[2, 3], &[(1, 0)]), Placement::Fill(1));
    }

    #[test]
    fn belady_evicts_the_farthest_part() {
        // Bins hold 0, 1, 2; loading 3 with 2 pinned. Future uses 0 then
        // 1 — part 1 is farther, so bin 1 is the victim.
        let holds = [Some(0), Some(1), Some(2)];
        let future = [(0, 3), (1, 3)];
        assert_eq!(
            place(&holds, 3, &[3, 2], &future),
            Placement::Evict {
                bin: 1,
                old_part: 1
            }
        );
    }

    #[test]
    fn never_used_again_beats_any_distance() {
        let holds = [Some(0), Some(1), Some(2)];
        let future = [(1, 0), (2, 0), (2, 1)];
        // Part 4 pinned with nothing; 0, 1, 2 all reappear — 0 first, so
        // not the victim; distances are 0, 0(!)... pick via oracle below.
        let v = farthest_future_victim(&holds, &[], &future).unwrap();
        // next_use: 0 → 0, 1 → 0, 2 → 1. Farthest is part 2 in bin 2.
        assert_eq!(v, 2);
        // Now make part 1 vanish from the future entirely.
        let future = [(2, 0), (2, 0)];
        let v = farthest_future_victim(&holds, &[], &future).unwrap();
        assert_eq!(v, 1, "a part never used again is the ideal victim");
    }

    #[test]
    fn pinned_parts_are_never_victims() {
        let holds = [Some(0), Some(1)];
        let v = farthest_future_victim(&holds, &[0], &[(0, 1)]).unwrap();
        assert_eq!(v, 1);
        assert_eq!(farthest_future_victim(&holds, &[0, 1], &[]), None);
    }

    #[test]
    fn fully_pinned_prefetch_is_blocked() {
        let holds = [Some(0), Some(1)];
        assert_eq!(place(&holds, 2, &[0, 1], &[]), Placement::Blocked);
    }

    #[test]
    fn ties_break_to_the_lowest_bin() {
        // Parts 5 and 6 both never reappear: bin 0 wins the tie, keeping
        // the decision deterministic across runs.
        let holds = [Some(5), Some(6)];
        assert_eq!(farthest_future_victim(&holds, &[], &[(1, 0)]), Some(0));
    }
}
