//! The orchestrated large-graph training loop — Algorithm 5 and Figure 2.
//!
//! Four actors cooperate, as in §3.3.2–§3.3.3:
//!
//! * the **SampleManager** thread walks the (rotation, pair) sequence and
//!   fills positive-sample pools on the host with a team of worker
//!   threads, keeping at most `S_GPU` pools in flight;
//! * the **PoolManager** thread ships ready pools to the device;
//! * the **transfer stream** carries every sub-matrix movement: bin
//!   loads are asynchronous host→device copies, evictions are
//!   asynchronous device→host readbacks, both enqueued FIFO on one
//!   dedicated [`Stream`] so they overlap with kernel execution;
//! * the **main thread** keeps `P_GPU` embedding sub-matrices resident in
//!   device bins, prefetches the *next* pair's parts while the current
//!   kernel runs (the copy/compute overlap of Figure 2), and dispatches
//!   the embedding kernel for each pair, fencing only on the transfer
//!   events of the two bins that kernel touches — never on the whole
//!   device.
//!
//! Residency decisions (which bin, which victim) are the pure functions
//! of [`super::residency`]; this module adds the I/O: staging host spans
//! into owned buffers for async upload, and parking eviction readbacks
//! per part until the part is next needed (or training ends), at which
//! point they are applied to the host matrix.
//!
//! A full rotation applies `B` positive (and `B·ns` negative) updates per
//! vertex per counterpart part, so rotations are counted to match the
//! epoch budget: `e' = round(e_i · |E| / (B · K_i · |V_i|))` — the same
//! total positive-sample budget as `e_i` epochs of the in-memory path.

use std::time::{Duration, Instant};

use crossbeam::channel::bounded;
use gosh_gpu::{
    Access, Device, DeviceError, Event, FloatBuffer, LaunchConfig, PlainBuffer, Readback, Stream,
};
use gosh_graph::csr::Csr;

use super::partition::{choose_num_parts_prec, Partition};
use super::pools::{generate_pool, SamplePool, NO_SAMPLE};
use super::residency::{place, Placement};
use super::rotation::inside_out_pairs;
use crate::backend::{PartitionedOpts, TrainParams};
use crate::model::Embedding;
use crate::quant::{quantize_roundtrip, Precision};
use crate::schedule::decayed_lr;

/// What happened during a [`train_large`] run.
#[derive(Clone, Copy, Debug)]
pub struct LargeReport {
    /// Parts the matrix was cut into (K_i).
    pub num_parts: usize,
    /// Device bins actually used (P_GPU clamped to [2, K_i]).
    pub bins: usize,
    /// Rotations executed (e').
    pub rotations: u32,
    /// Embedding kernels dispatched.
    pub kernels: u64,
    /// Sub-matrix loads into bins.
    pub loads: u64,
    /// Loads issued ahead of need by the one-pair-lookahead prefetcher
    /// (a subset of `loads`).
    pub prefetches: u64,
    /// Sub-matrix evictions (device → host write-backs).
    pub evictions: u64,
    /// Seconds the main thread spent blocked on transfer events — the
    /// portion of sub-matrix traffic the pipeline failed to hide behind
    /// kernels. 0 means perfect overlap.
    pub transfer_stall_seconds: f64,
    /// Seconds the main thread spent waiting for sample pools.
    pub pool_stall_seconds: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// A pool resident on the device.
struct DevicePool {
    pair: (usize, usize),
    fwd: PlainBuffer<u32>,
    rev: Option<PlainBuffer<u32>>,
}

/// The bins, their transfer state, and the parked eviction readbacks —
/// everything the main thread mutates while planning residency.
struct BinManager<'a> {
    partition: &'a Partition,
    dim: usize,
    /// Storage width the bins are modeled at; quantized runs stage spans
    /// through a quantize→dequantize round trip at the load and
    /// write-back boundaries (the same mixed-precision model as
    /// `train_level_on_device`).
    precision: Precision,
    bins: Vec<FloatBuffer>,
    stream: Stream,
    /// Part held by each bin (post any in-flight load).
    holds: Vec<Option<usize>>,
    /// Completion event of the last load targeting each bin; a kernel
    /// touching the bin fences on this (and nothing else).
    pending: Vec<Option<Event>>,
    /// In-flight eviction readback per part, applied to the host matrix
    /// lazily — right before the part is reloaded, or at the end.
    readbacks: Vec<Option<Readback>>,
    loads: u64,
    prefetches: u64,
    evictions: u64,
    transfer_stall: Duration,
}

impl<'a> BinManager<'a> {
    fn new(
        device: &Device,
        partition: &'a Partition,
        dim: usize,
        num_bins: usize,
        precision: Precision,
    ) -> Result<Self, DeviceError> {
        let max_part = partition.max_part_len();
        // Bins are charged at the storage width's bytes per element (the
        // i8 per-row scale metadata is priced by `choose_num_parts_prec`,
        // so the fit check is the conservative side of this charge).
        let bins: Vec<FloatBuffer> = (0..num_bins)
            .map(|_| device.alloc_floats_prec(max_part * dim, precision.bytes_per_element()))
            .collect::<Result<_, _>>()?;
        Ok(Self {
            partition,
            dim,
            precision,
            bins,
            stream: device.create_stream(),
            holds: vec![None; num_bins],
            pending: vec![None; num_bins],
            readbacks: (0..partition.num_parts()).map(|_| None).collect(),
            loads: 0,
            prefetches: 0,
            evictions: 0,
            transfer_stall: Duration::ZERO,
        })
    }

    /// Host-matrix element span of `part`.
    fn span(&self, part: usize) -> std::ops::Range<usize> {
        let r = self.partition.range(part);
        (r.start as usize * self.dim)..(r.end as usize * self.dim)
    }

    /// Apply a parked eviction readback of `part` to the host matrix, if
    /// one is in flight. Must run before `m`'s span for the part is read
    /// (reload staging) and before the final report.
    fn settle_readback(&mut self, m: &mut Embedding, part: usize) {
        if let Some(rb) = self.readbacks[part].take() {
            let t0 = Instant::now();
            let span = self.span(part);
            rb.wait_into(&mut m.as_mut_slice()[span.clone()]);
            if self.precision != Precision::F32 {
                quantize_roundtrip(&mut m.as_mut_slice()[span], self.dim, self.precision);
            }
            self.transfer_stall += t0.elapsed();
        }
    }

    /// Enqueue the transfers that make `part` resident in `bin`,
    /// evicting `old_part` first if the bin is occupied. FIFO order on
    /// the single transfer stream guarantees the eviction readback sees
    /// the bin before the load overwrites it.
    fn issue_load(&mut self, m: &mut Embedding, part: usize, bin: usize, old_part: Option<usize>) {
        if let Some(old) = old_part {
            let len = self.partition.len(old) * self.dim;
            let rb = self.bins[bin].copy_to_host_at_async(&self.stream, 0, len);
            self.readbacks[old] = Some(rb);
            self.evictions += 1;
        }
        // The staging copy must carry the part's freshest values.
        self.settle_readback(m, part);
        let span = self.span(part);
        let mut staged = m.as_slice()[span].to_vec();
        if self.precision != Precision::F32 {
            quantize_roundtrip(&mut staged, self.dim, self.precision);
        }
        let event = self.bins[bin].copy_from_host_at_async(&self.stream, 0, staged);
        self.pending[bin] = Some(event);
        self.holds[bin] = Some(part);
        self.loads += 1;
    }

    /// Make `part` resident and return its bin, planning with
    /// [`place`]. A demand load always finds a bin (see
    /// [`Placement::Blocked`]).
    fn ensure_resident(
        &mut self,
        m: &mut Embedding,
        part: usize,
        pinned: &[usize],
        future: &[(usize, usize)],
    ) -> usize {
        match place(&self.holds, part, pinned, future) {
            Placement::Resident(bin) => bin,
            Placement::Fill(bin) => {
                self.issue_load(m, part, bin, None);
                bin
            }
            Placement::Evict { bin, old_part } => {
                self.issue_load(m, part, bin, Some(old_part));
                bin
            }
            Placement::Blocked => unreachable!("demand load with every bin pinned"),
        }
    }

    /// Best-effort early load of `part` (the lookahead of Figure 2): like
    /// [`Self::ensure_resident`] but quietly does nothing when every bin
    /// is pinned (P_GPU = 2 with a disjoint next pair).
    fn prefetch(
        &mut self,
        m: &mut Embedding,
        part: usize,
        pinned: &[usize],
        future: &[(usize, usize)],
    ) {
        match place(&self.holds, part, pinned, future) {
            Placement::Resident(_) | Placement::Blocked => {}
            Placement::Fill(bin) => {
                self.issue_load(m, part, bin, None);
                self.prefetches += 1;
            }
            Placement::Evict { bin, old_part } => {
                self.issue_load(m, part, bin, Some(old_part));
                self.prefetches += 1;
            }
        }
    }

    /// Block until the last transfer targeting `bin` retires — the
    /// per-bin fence a kernel takes instead of a device-wide barrier.
    fn fence(&mut self, bin: usize) {
        if let Some(event) = self.pending[bin].take() {
            let t0 = Instant::now();
            event.wait();
            self.transfer_stall += t0.elapsed();
        }
    }

    /// Drain the stream and put every part back in the host matrix:
    /// parked readbacks first, then the still-resident bins.
    fn flush(mut self, m: &mut Embedding) -> (u64, u64, u64, Duration) {
        self.stream.synchronize();
        for part in 0..self.partition.num_parts() {
            self.settle_readback(m, part);
        }
        for (bin, hold) in self.holds.iter().enumerate() {
            if let Some(part) = *hold {
                let r = self.partition.range(part);
                let span = (r.start as usize * self.dim)..(r.end as usize * self.dim);
                self.bins[bin].copy_to_host_at(0, &mut m.as_mut_slice()[span.clone()]);
                if self.precision != Precision::F32 {
                    quantize_roundtrip(&mut m.as_mut_slice()[span], self.dim, self.precision);
                }
                self.evictions += 1;
            }
        }
        (
            self.loads,
            self.prefetches,
            self.evictions,
            self.transfer_stall,
        )
    }
}

/// The next pair to visit plus the Belady horizon beyond it.
type Lookahead<'p> = ((usize, usize), &'p [(usize, usize)]);

/// The pair the rotation visits after position `step`, plus the pair
/// sequence beyond it (the Belady horizon for the prefetch's victim
/// choice), looking across the rotation boundary. `None` only at the
/// very end of training.
fn lookahead(
    pairs: &[(usize, usize)],
    step: usize,
    rotation: u32,
    rotations: u32,
) -> Option<Lookahead<'_>> {
    if step + 1 < pairs.len() {
        Some((pairs[step + 1], &pairs[step + 2..]))
    } else if rotation + 1 < rotations {
        Some((pairs[0], &pairs[1..]))
    } else {
        None
    }
}

/// Train `m` on `g` with the partitioned pipeline. The caller has already
/// determined that the one-shot path does not fit (Algorithm 2, line 8).
/// `opts` shapes the partitioning (P_GPU bins, S_GPU pools, batch B).
pub fn train_large(
    device: &Device,
    g: &Csr,
    m: &mut Embedding,
    params: &TrainParams,
    opts: &PartitionedOpts,
) -> Result<LargeReport, DeviceError> {
    let start = Instant::now();
    let n = g.num_vertices();
    let d = params.dim;
    assert_eq!(m.num_vertices(), n, "graph/matrix mismatch");
    assert_eq!(m.dim(), d, "dimension mismatch");

    // Budget 90% of free device memory for bins + pools, with sub-matrix
    // rows priced at the configured precision's true byte width.
    let avail = device.available_bytes() / 10 * 9;
    let k = choose_num_parts_prec(
        n,
        d,
        avail,
        opts.p_gpu,
        opts.s_gpu,
        opts.batch_b,
        params.precision,
    );
    let partition = Partition::new(n, k);
    let pairs = inside_out_pairs(k);
    let e_und = g.num_undirected_edges().max(1);
    let rotations = ((params.epochs as f64 * e_und as f64)
        / (opts.batch_b as f64 * k as f64 * n as f64))
        .round()
        .max(1.0) as u32;

    let num_bins = opts.p_gpu.clamp(2, k);
    let mut kernels = 0u64;
    let mut pool_stall = Duration::ZERO;
    let mut bin_mgr = BinManager::new(device, &partition, d, num_bins, params.precision)?;

    std::thread::scope(|scope| -> Result<(), DeviceError> {
        // SampleManager: host-side pool generation, S_GPU pools buffered.
        let (host_tx, host_rx) = bounded::<SamplePool>(opts.s_gpu);
        let sm_pairs = pairs.clone();
        let sm_partition = partition.clone();
        let sm = scope.spawn(move || {
            'outer: for r in 0..rotations {
                for &pair in &sm_pairs {
                    let seed =
                        params.seed ^ ((r as u64) << 40) ^ ((pair.0 as u64) << 20) ^ pair.1 as u64;
                    let pool =
                        generate_pool(g, &sm_partition, pair, opts.batch_b, params.threads, seed);
                    if host_tx.send(pool).is_err() {
                        break 'outer; // consumer gone (error path)
                    }
                }
            }
        });

        // PoolManager: ship ready pools to the device. At most S_GPU pools
        // are device-resident at once: the channel buffer, plus one in the
        // PoolManager's hand and one in the main thread's.
        let dev_channel_cap = opts.s_gpu.saturating_sub(2).max(1);
        let (dev_tx, dev_rx) = bounded::<DevicePool>(dev_channel_cap);
        let pm_device = device.clone();
        let pm = scope.spawn(move || -> Result<(), DeviceError> {
            for pool in host_rx {
                let fwd = pm_device.upload_plain(&pool.fwd)?;
                let rev = if pool.rev.is_empty() {
                    None
                } else {
                    Some(pm_device.upload_plain(&pool.rev)?)
                };
                if dev_tx
                    .send(DevicePool {
                        pair: pool.pair,
                        fwd,
                        rev,
                    })
                    .is_err()
                {
                    break;
                }
            }
            Ok(())
        });

        // Main thread: residency planning + kernel dispatch.
        'rotations: for r in 0..rotations {
            let lr_now = decayed_lr(params.lr, r, rotations);
            for (step, &(a, b)) in pairs.iter().enumerate() {
                // Demand loads for the current pair — usually already
                // resident thanks to the prefetch issued last step.
                let future = &pairs[step + 1..];
                let bin_a = bin_mgr.ensure_resident(m, a, &[a, b], future);
                let bin_b = if a == b {
                    bin_a
                } else {
                    bin_mgr.ensure_resident(m, b, &[a, b], future)
                };

                // Prefetch the next pair on the transfer stream *before*
                // dispatching this kernel: the copies run while the
                // kernel computes (Figure 2). The next pair's parts are
                // pinned alongside the current pair's so the prefetch
                // never displaces what the imminent kernels need.
                if let Some(((na, nb), far)) = lookahead(&pairs, step, r, rotations) {
                    let pinned = [a, b, na, nb];
                    bin_mgr.prefetch(m, na, &pinned, far);
                    if nb != na {
                        bin_mgr.prefetch(m, nb, &pinned, far);
                    }
                }

                let t0 = Instant::now();
                let Ok(pool) = dev_rx.recv() else {
                    // PoolManager hit a device error; surface it below.
                    break 'rotations;
                };
                pool_stall += t0.elapsed();
                debug_assert_eq!(pool.pair, (a, b));

                // Fence on exactly the bins this kernel touches.
                bin_mgr.fence(bin_a);
                if bin_b != bin_a {
                    bin_mgr.fence(bin_b);
                }
                kernel_pair(
                    device,
                    &bin_mgr.bins[bin_a],
                    &bin_mgr.bins[bin_b],
                    &partition,
                    (a, b),
                    &pool,
                    lr_now,
                    params,
                    opts.batch_b,
                );
                kernels += 1;
            }
        }
        drop(dev_rx); // unblock PoolManager if it is still sending
        sm.join().expect("SampleManager panicked");
        pm.join().expect("PoolManager panicked")?;
        Ok(())
    })?;

    let (loads, prefetches, evictions, transfer_stall) = bin_mgr.flush(m);
    Ok(LargeReport {
        num_parts: k,
        bins: num_bins,
        rotations,
        kernels,
        loads,
        prefetches,
        evictions,
        transfer_stall_seconds: transfer_stall.as_secs_f64(),
        pool_stall_seconds: pool_stall.as_secs_f64(),
        seconds: start.elapsed().as_secs_f64(),
    })
}

/// The embedding kernel for one part pair (the `EmbeddingKernel` of
/// Algorithm 5): every vertex of each side is a source; positives come
/// from the pool, negatives are drawn on the device uniformly from the
/// counterpart part.
#[allow(clippy::too_many_arguments)]
fn kernel_pair(
    device: &Device,
    bin_a: &FloatBuffer,
    bin_b: &FloatBuffer,
    partition: &Partition,
    (a, b): (usize, usize),
    pool: &DevicePool,
    lr: f32,
    params: &TrainParams,
    batch_b: usize,
) {
    let d = params.dim;
    let ns = params.negative_samples;
    let bb = batch_b;
    let range_a = partition.range(a);
    let range_b = partition.range(b);
    let len_a = (range_a.end - range_a.start) as usize;
    let len_b = (range_b.end - range_b.start) as usize;
    let diagonal = a == b;
    let warps = if diagonal { len_a } else { len_a + len_b };
    let fwd = pool.fwd.as_slice();
    let rev = pool.rev.as_ref().map(|r| r.as_slice()).unwrap_or(&[]);

    device.launch(LaunchConfig::new(warps, 2 * d), |w, scratch| {
        let (src_row, tmp) = scratch.split_at_mut(d);
        // Which side is this warp's source on?
        let (src_local, src_bin, other_bin, other_len, other_start, samples) = if w.id() < len_a {
            (w.id(), bin_a, bin_b, len_b, range_b.start, fwd)
        } else {
            (w.id() - len_a, bin_b, bin_a, len_a, range_a.start, rev)
        };
        w.global_read_row(src_bin, src_local * d, src_row, Access::Coalesced);
        w.shared_store(d);
        for i in 0..bb {
            let t = samples[src_local * bb + i];
            if t != NO_SAMPLE {
                let t_local = (t - other_start) as usize;
                one_update(w, other_bin, t_local, d, src_row, tmp, 1.0, lr);
            }
            for _ in 0..ns {
                let u = w.rand_below(other_len as u32) as usize;
                one_update(w, other_bin, u, d, src_row, tmp, 0.0, lr);
            }
        }
        w.global_write_row(src_bin, src_local * d, src_row, Access::Coalesced);
    });
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn one_update(
    w: &gosh_gpu::Warp,
    buf: &FloatBuffer,
    local: usize,
    d: usize,
    src_row: &mut [f32],
    tmp: &mut [f32],
    b: f32,
    lr: f32,
) {
    w.global_read_row(buf, local * d, tmp, Access::Coalesced);
    let dot = w.dot(src_row, tmp);
    let score = (b - w.sigmoid(dot)) * lr;
    w.global_axpy_row(buf, local * d, score, src_row, Access::Coalesced);
    w.shared_axpy(score, tmp, src_row);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::large::partition::choose_num_parts;
    use gosh_gpu::DeviceConfig;
    use gosh_graph::builder::csr_from_edges;
    use gosh_graph::gen::erdos_renyi;

    fn params(d: usize, epochs: u32) -> TrainParams {
        TrainParams::adjacency(d, 3, 0.05, epochs)
            .with_threads(2)
            .with_seed(0xA5)
    }

    fn opts() -> PartitionedOpts {
        PartitionedOpts::default()
    }

    #[test]
    fn partitioned_training_learns_two_cliques() {
        // Device that cannot hold the whole matrix: 16 vertices × 16 dims
        // × 4B = 1 KB matrix; give it ~0.7 KB of bin space.
        let mut edges = vec![];
        for x in 0..8u32 {
            for y in 0..x {
                edges.push((x, y));
                edges.push((x + 8, y + 8));
            }
        }
        edges.push((0, 8));
        let g = csr_from_edges(16, &edges);
        let device = Device::new(DeviceConfig::tiny(4096));
        let mut m = Embedding::random(16, 16, 1);
        let report = train_large(&device, &g, &mut m, &params(16, 400), &opts()).unwrap();
        assert!(report.num_parts >= 2);
        assert!(report.rotations >= 1);
        let intra = (m.cosine(0, 1) + m.cosine(8, 9)) / 2.0;
        let inter = (m.cosine(0, 9) + m.cosine(1, 10)) / 2.0;
        assert!(intra > inter + 0.25, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn all_updates_written_back() {
        // After training, the host matrix must differ from the initial one
        // in every part (all parts received updates).
        let g = erdos_renyi(64, 512, 3);
        let device = Device::new(DeviceConfig::tiny(8192));
        let mut m = Embedding::random(64, 8, 2);
        let before = m.clone();
        train_large(&device, &g, &mut m, &params(8, 50), &opts()).unwrap();
        let k = choose_num_parts(64, 8, 8192 / 10 * 9, 3, 4, 5);
        let p = Partition::new(64, k);
        for j in 0..p.num_parts() {
            let r = p.range(j);
            let changed = (r.start..r.end).any(|v| m.row(v) != before.row(v));
            assert!(changed, "part {j} never updated");
        }
    }

    #[test]
    fn device_memory_is_respected_and_restored() {
        let g = erdos_renyi(128, 1024, 5);
        let device = Device::new(DeviceConfig::tiny(16 * 1024));
        let mut m = Embedding::random(128, 16, 4);
        train_large(&device, &g, &mut m, &params(16, 20), &opts()).unwrap();
        assert_eq!(device.allocated_bytes(), 0, "leak after training");
    }

    #[test]
    fn rotation_count_tracks_epoch_budget() {
        let g = erdos_renyi(100, 1000, 7);
        let device = Device::new(DeviceConfig::tiny(8 * 1024));
        let mut m = Embedding::random(100, 8, 5);
        let r1 = train_large(&device, &g, &mut m, &params(8, 20), &opts()).unwrap();
        let r2 = train_large(&device, &g, &mut m, &params(8, 40), &opts()).unwrap();
        assert!(
            r2.rotations >= 2 * r1.rotations.max(1) - 1,
            "{} vs {}",
            r1.rotations,
            r2.rotations
        );
    }

    #[test]
    fn bigger_b_means_fewer_rotations() {
        let g = erdos_renyi(100, 2000, 9);
        let device = Device::new(DeviceConfig::tiny(8 * 1024));
        let mut m = Embedding::random(100, 8, 6);
        let small_b = train_large(
            &device,
            &g,
            &mut m,
            &params(8, 30),
            &PartitionedOpts {
                batch_b: 1,
                ..opts()
            },
        )
        .unwrap();
        let large_b = train_large(
            &device,
            &g,
            &mut m,
            &params(8, 30),
            &PartitionedOpts {
                batch_b: 8,
                ..opts()
            },
        )
        .unwrap();
        assert!(large_b.rotations < small_b.rotations);
    }

    #[test]
    fn more_bins_means_fewer_evictions() {
        let g = erdos_renyi(256, 2048, 11);
        let mut m = Embedding::random(256, 16, 7);
        // Same epochs; P_GPU = 2 vs 3.
        let dev2 = Device::new(DeviceConfig::tiny(24 * 1024));
        let r2 = train_large(
            &dev2,
            &g,
            &mut m,
            &params(16, 20),
            &PartitionedOpts { p_gpu: 2, ..opts() },
        )
        .unwrap();
        let dev3 = Device::new(DeviceConfig::tiny(24 * 1024));
        let r3 = train_large(
            &dev3,
            &g,
            &mut m,
            &params(16, 20),
            &PartitionedOpts { p_gpu: 3, ..opts() },
        )
        .unwrap();
        if r2.num_parts == r3.num_parts && r2.num_parts > 2 {
            assert!(
                r3.evictions <= r2.evictions,
                "P_GPU=3 evictions {} > P_GPU=2 {}",
                r3.evictions,
                r2.evictions
            );
        }
    }

    #[test]
    fn prefetcher_issues_ahead_with_spare_bins() {
        // With P_GPU = 3 and several parts, most loads should be issued
        // by the lookahead, not by demand misses.
        let g = erdos_renyi(256, 2048, 13);
        let device = Device::new(DeviceConfig::tiny(24 * 1024));
        let mut m = Embedding::random(256, 16, 8);
        let r = train_large(&device, &g, &mut m, &params(16, 40), &opts()).unwrap();
        if r.num_parts > r.bins {
            assert!(r.prefetches > 0, "lookahead never fired: {r:?}");
            assert!(r.prefetches <= r.loads);
        }
    }

    #[test]
    fn quantized_large_path_cuts_parts_and_still_learns() {
        let mut edges = vec![];
        for x in 0..8u32 {
            for y in 0..x {
                edges.push((x, y));
                edges.push((x + 8, y + 8));
            }
        }
        edges.push((0, 8));
        let g = csr_from_edges(16, &edges);
        let run = |precision| {
            let device = Device::new(DeviceConfig::tiny(4096));
            let mut m = Embedding::random(16, 16, 1);
            let p = TrainParams {
                precision,
                ..params(16, 400)
            };
            let report = train_large(&device, &g, &mut m, &p, &opts()).unwrap();
            assert_eq!(device.allocated_bytes(), 0);
            let intra = (m.cosine(0, 1) + m.cosine(8, 9)) / 2.0;
            let inter = (m.cosine(0, 9) + m.cosine(1, 10)) / 2.0;
            assert!(
                intra > inter + 0.2,
                "{precision}: intra {intra} vs inter {inter}"
            );
            report.num_parts
        };
        let k_f32 = run(Precision::F32);
        let k_i8 = run(Precision::I8);
        assert!(k_i8 <= k_f32, "i8 {k_i8} parts vs f32 {k_f32}");
    }

    #[test]
    fn stall_accounting_is_sane() {
        let g = erdos_renyi(128, 1024, 15);
        let device = Device::new(DeviceConfig::tiny(16 * 1024));
        let mut m = Embedding::random(128, 16, 9);
        let r = train_large(&device, &g, &mut m, &params(16, 20), &opts()).unwrap();
        assert!(r.transfer_stall_seconds >= 0.0);
        assert!(r.pool_stall_seconds >= 0.0);
        assert!(r.transfer_stall_seconds + r.pool_stall_seconds <= r.seconds * 1.5);
    }
}
