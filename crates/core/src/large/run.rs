//! The orchestrated large-graph training loop — Algorithm 5 and Figure 2.
//!
//! Three actors cooperate, as in §3.3.3:
//!
//! * the **SampleManager** thread walks the (rotation, pair) sequence and
//!   fills positive-sample pools on the host with a team of worker
//!   threads, keeping at most `S_GPU` pools in flight;
//! * the **PoolManager** thread ships ready pools to the device;
//! * the **main thread** keeps `P_GPU` embedding sub-matrices resident in
//!   device bins, swaps them in the inside-out pair order (evicting the
//!   bin whose part is needed farthest in the future), and dispatches the
//!   embedding kernel for each pair.
//!
//! A full rotation applies `B` positive (and `B·ns` negative) updates per
//! vertex per counterpart part, so rotations are counted to match the
//! epoch budget: `e' = round(e_i · |E| / (B · K_i · |V_i|))` — the same
//! total positive-sample budget as `e_i` epochs of the in-memory path.

use std::time::Instant;

use crossbeam::channel::bounded;
use gosh_gpu::{Access, Device, DeviceError, FloatBuffer, LaunchConfig, PlainBuffer};
use gosh_graph::csr::Csr;

use super::partition::{choose_num_parts, Partition};
use super::pools::{generate_pool, SamplePool, NO_SAMPLE};
use super::rotation::inside_out_pairs;
use crate::backend::{PartitionedOpts, TrainParams};
use crate::model::Embedding;
use crate::schedule::decayed_lr;

/// What happened during a [`train_large`] run.
#[derive(Clone, Copy, Debug)]
pub struct LargeReport {
    /// Parts the matrix was cut into (K_i).
    pub num_parts: usize,
    /// Rotations executed (e').
    pub rotations: u32,
    /// Embedding kernels dispatched.
    pub kernels: u64,
    /// Sub-matrix loads into bins.
    pub loads: u64,
    /// Sub-matrix evictions (device → host write-backs).
    pub evictions: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// A pool resident on the device.
struct DevicePool {
    pair: (usize, usize),
    fwd: PlainBuffer<u32>,
    rev: Option<PlainBuffer<u32>>,
}

/// Train `m` on `g` with the partitioned pipeline. The caller has already
/// determined that the one-shot path does not fit (Algorithm 2, line 8).
/// `opts` shapes the partitioning (P_GPU bins, S_GPU pools, batch B).
pub fn train_large(
    device: &Device,
    g: &Csr,
    m: &mut Embedding,
    params: &TrainParams,
    opts: &PartitionedOpts,
) -> Result<LargeReport, DeviceError> {
    let start = Instant::now();
    let n = g.num_vertices();
    let d = params.dim;
    assert_eq!(m.num_vertices(), n, "graph/matrix mismatch");
    assert_eq!(m.dim(), d, "dimension mismatch");

    // Budget 90% of free device memory for bins + pools.
    let avail = device.available_bytes() / 10 * 9;
    let k = choose_num_parts(n, d, avail, opts.p_gpu, opts.s_gpu, opts.batch_b);
    let partition = Partition::new(n, k);
    let pairs = inside_out_pairs(k);
    let e_und = g.num_undirected_edges().max(1);
    let rotations = ((params.epochs as f64 * e_und as f64)
        / (opts.batch_b as f64 * k as f64 * n as f64))
        .round()
        .max(1.0) as u32;

    let num_bins = opts.p_gpu.clamp(2, k);
    let max_part = partition.max_part_len();
    let bins: Vec<FloatBuffer> = (0..num_bins)
        .map(|_| device.alloc_floats(max_part * d))
        .collect::<Result<_, _>>()?;

    let mut loads = 0u64;
    let mut evictions = 0u64;
    let mut kernels = 0u64;

    std::thread::scope(|scope| -> Result<(), DeviceError> {
        // SampleManager: host-side pool generation, S_GPU pools buffered.
        let (host_tx, host_rx) = bounded::<SamplePool>(opts.s_gpu);
        let sm_pairs = pairs.clone();
        let sm_partition = partition.clone();
        let sm = scope.spawn(move || {
            'outer: for r in 0..rotations {
                for &pair in &sm_pairs {
                    let seed =
                        params.seed ^ ((r as u64) << 40) ^ ((pair.0 as u64) << 20) ^ pair.1 as u64;
                    let pool =
                        generate_pool(g, &sm_partition, pair, opts.batch_b, params.threads, seed);
                    if host_tx.send(pool).is_err() {
                        break 'outer; // consumer gone (error path)
                    }
                }
            }
        });

        // PoolManager: ship ready pools to the device. At most S_GPU pools
        // are device-resident at once: the channel buffer, plus one in the
        // PoolManager's hand and one in the main thread's.
        let dev_channel_cap = opts.s_gpu.saturating_sub(2).max(1);
        let (dev_tx, dev_rx) = bounded::<DevicePool>(dev_channel_cap);
        let pm_device = device.clone();
        let pm = scope.spawn(move || -> Result<(), DeviceError> {
            for pool in host_rx {
                let fwd = pm_device.upload_plain(&pool.fwd)?;
                let rev = if pool.rev.is_empty() {
                    None
                } else {
                    Some(pm_device.upload_plain(&pool.rev)?)
                };
                if dev_tx
                    .send(DevicePool {
                        pair: pool.pair,
                        fwd,
                        rev,
                    })
                    .is_err()
                {
                    break;
                }
            }
            Ok(())
        });

        // Main thread: bin management + kernel dispatch.
        let mut holds: Vec<Option<usize>> = vec![None; num_bins];
        'rotations: for r in 0..rotations {
            let lr_now = decayed_lr(params.lr, r, rotations);
            for (step, &(a, b)) in pairs.iter().enumerate() {
                let Ok(pool) = dev_rx.recv() else {
                    // PoolManager hit a device error; surface it below.
                    break 'rotations;
                };
                debug_assert_eq!(pool.pair, (a, b));
                let bin_a = ensure_resident(
                    device,
                    m,
                    &partition,
                    &bins,
                    &mut holds,
                    a,
                    (a, b),
                    &pairs[step + 1..],
                    &mut loads,
                    &mut evictions,
                );
                let bin_b = if a == b {
                    bin_a
                } else {
                    ensure_resident(
                        device,
                        m,
                        &partition,
                        &bins,
                        &mut holds,
                        b,
                        (a, b),
                        &pairs[step + 1..],
                        &mut loads,
                        &mut evictions,
                    )
                };
                kernel_pair(
                    device,
                    &bins[bin_a],
                    &bins[bin_b],
                    &partition,
                    (a, b),
                    &pool,
                    lr_now,
                    params,
                    opts.batch_b,
                );
                kernels += 1;
            }
        }
        drop(dev_rx); // unblock PoolManager if it is still sending
        sm.join().expect("SampleManager panicked");
        pm.join().expect("PoolManager panicked")?;

        // Flush every resident part back to the host matrix.
        for (bin, hold) in holds.iter().enumerate() {
            if let Some(part) = hold {
                write_back(m, &partition, &bins[bin], *part);
                evictions += 1;
            }
        }
        Ok(())
    })?;

    Ok(LargeReport {
        num_parts: k,
        rotations,
        kernels,
        loads,
        evictions,
        seconds: start.elapsed().as_secs_f64(),
    })
}

/// Make `part` resident; returns its bin. Evicts, if needed, the
/// unpinned bin whose held part is used farthest in the future (the
/// role P_GPU > 2 plays in §3.3.2: the extra bin keeps the soon-needed
/// sub-matrix on the device instead of bouncing it).
#[allow(clippy::too_many_arguments)]
fn ensure_resident(
    _device: &Device,
    m: &mut Embedding,
    partition: &Partition,
    bins: &[FloatBuffer],
    holds: &mut [Option<usize>],
    part: usize,
    pinned: (usize, usize),
    future: &[(usize, usize)],
    loads: &mut u64,
    evictions: &mut u64,
) -> usize {
    if let Some(bin) = holds.iter().position(|h| *h == Some(part)) {
        return bin;
    }
    // Free bin if any; otherwise Belady: evict the unpinned part whose next
    // use is farthest away.
    let victim = holds.iter().position(|h| h.is_none()).unwrap_or_else(|| {
        let mut best = usize::MAX;
        let mut best_dist = 0usize;
        for (bin, hold) in holds.iter().enumerate() {
            let held = hold.expect("no free bin means all hold parts");
            if held == pinned.0 || held == pinned.1 {
                continue;
            }
            let dist = future
                .iter()
                .position(|&(x, y)| x == held || y == held)
                .unwrap_or(usize::MAX);
            if best == usize::MAX || dist > best_dist {
                best = bin;
                best_dist = dist;
            }
        }
        best
    });
    if let Some(old) = holds[victim] {
        write_back(m, partition, &bins[victim], old);
        *evictions += 1;
    }
    // Load the new part (host → device).
    let range = partition.range(part);
    let d = m.dim();
    let span = (range.start as usize * d)..(range.end as usize * d);
    bins[victim].copy_from_host_at(0, &m.as_slice()[span]);
    holds[victim] = Some(part);
    *loads += 1;
    victim
}

/// Copy a bin's sub-matrix back into the host matrix (device → host).
fn write_back(m: &mut Embedding, partition: &Partition, bin: &FloatBuffer, part: usize) {
    let range = partition.range(part);
    let d = m.dim();
    let span = (range.start as usize * d)..(range.end as usize * d);
    bin.copy_to_host_at(0, &mut m.as_mut_slice()[span]);
}

/// The embedding kernel for one part pair (the `EmbeddingKernel` of
/// Algorithm 5): every vertex of each side is a source; positives come
/// from the pool, negatives are drawn on the device uniformly from the
/// counterpart part.
#[allow(clippy::too_many_arguments)]
fn kernel_pair(
    device: &Device,
    bin_a: &FloatBuffer,
    bin_b: &FloatBuffer,
    partition: &Partition,
    (a, b): (usize, usize),
    pool: &DevicePool,
    lr: f32,
    params: &TrainParams,
    batch_b: usize,
) {
    let d = params.dim;
    let ns = params.negative_samples;
    let bb = batch_b;
    let range_a = partition.range(a);
    let range_b = partition.range(b);
    let len_a = (range_a.end - range_a.start) as usize;
    let len_b = (range_b.end - range_b.start) as usize;
    let diagonal = a == b;
    let warps = if diagonal { len_a } else { len_a + len_b };
    let fwd = pool.fwd.as_slice();
    let rev = pool.rev.as_ref().map(|r| r.as_slice()).unwrap_or(&[]);

    device.launch(LaunchConfig::new(warps, 2 * d), |w, scratch| {
        let (src_row, tmp) = scratch.split_at_mut(d);
        // Which side is this warp's source on?
        let (src_local, src_bin, other_bin, other_len, other_start, samples) = if w.id() < len_a {
            (w.id(), bin_a, bin_b, len_b, range_b.start, fwd)
        } else {
            (w.id() - len_a, bin_b, bin_a, len_a, range_a.start, rev)
        };
        w.global_read_row(src_bin, src_local * d, src_row, Access::Coalesced);
        w.shared_store(d);
        for i in 0..bb {
            let t = samples[src_local * bb + i];
            if t != NO_SAMPLE {
                let t_local = (t - other_start) as usize;
                one_update(w, other_bin, t_local, d, src_row, tmp, 1.0, lr);
            }
            for _ in 0..ns {
                let u = w.rand_below(other_len as u32) as usize;
                one_update(w, other_bin, u, d, src_row, tmp, 0.0, lr);
            }
        }
        w.global_write_row(src_bin, src_local * d, src_row, Access::Coalesced);
    });
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn one_update(
    w: &gosh_gpu::Warp,
    buf: &FloatBuffer,
    local: usize,
    d: usize,
    src_row: &mut [f32],
    tmp: &mut [f32],
    b: f32,
    lr: f32,
) {
    w.global_read_row(buf, local * d, tmp, Access::Coalesced);
    let dot = w.dot(src_row, tmp);
    let score = (b - w.sigmoid(dot)) * lr;
    w.global_axpy_row(buf, local * d, score, src_row, Access::Coalesced);
    w.shared_axpy(score, tmp, src_row);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosh_gpu::DeviceConfig;
    use gosh_graph::builder::csr_from_edges;
    use gosh_graph::gen::erdos_renyi;

    fn params(d: usize, epochs: u32) -> TrainParams {
        TrainParams::adjacency(d, 3, 0.05, epochs)
            .with_threads(2)
            .with_seed(0xA5)
    }

    fn opts() -> PartitionedOpts {
        PartitionedOpts::default()
    }

    #[test]
    fn partitioned_training_learns_two_cliques() {
        // Device that cannot hold the whole matrix: 16 vertices × 16 dims
        // × 4B = 1 KB matrix; give it ~0.7 KB of bin space.
        let mut edges = vec![];
        for x in 0..8u32 {
            for y in 0..x {
                edges.push((x, y));
                edges.push((x + 8, y + 8));
            }
        }
        edges.push((0, 8));
        let g = csr_from_edges(16, &edges);
        let device = Device::new(DeviceConfig::tiny(4096));
        let mut m = Embedding::random(16, 16, 1);
        let report = train_large(&device, &g, &mut m, &params(16, 400), &opts()).unwrap();
        assert!(report.num_parts >= 2);
        assert!(report.rotations >= 1);
        let intra = (m.cosine(0, 1) + m.cosine(8, 9)) / 2.0;
        let inter = (m.cosine(0, 9) + m.cosine(1, 10)) / 2.0;
        assert!(intra > inter + 0.25, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn all_updates_written_back() {
        // After training, the host matrix must differ from the initial one
        // in every part (all parts received updates).
        let g = erdos_renyi(64, 512, 3);
        let device = Device::new(DeviceConfig::tiny(8192));
        let mut m = Embedding::random(64, 8, 2);
        let before = m.clone();
        train_large(&device, &g, &mut m, &params(8, 50), &opts()).unwrap();
        let k = choose_num_parts(64, 8, 8192 / 10 * 9, 3, 4, 5);
        let p = Partition::new(64, k);
        for j in 0..p.num_parts() {
            let r = p.range(j);
            let changed = (r.start..r.end).any(|v| m.row(v) != before.row(v));
            assert!(changed, "part {j} never updated");
        }
    }

    #[test]
    fn device_memory_is_respected_and_restored() {
        let g = erdos_renyi(128, 1024, 5);
        let device = Device::new(DeviceConfig::tiny(16 * 1024));
        let mut m = Embedding::random(128, 16, 4);
        train_large(&device, &g, &mut m, &params(16, 20), &opts()).unwrap();
        assert_eq!(device.allocated_bytes(), 0, "leak after training");
    }

    #[test]
    fn rotation_count_tracks_epoch_budget() {
        let g = erdos_renyi(100, 1000, 7);
        let device = Device::new(DeviceConfig::tiny(8 * 1024));
        let mut m = Embedding::random(100, 8, 5);
        let r1 = train_large(&device, &g, &mut m, &params(8, 20), &opts()).unwrap();
        let r2 = train_large(&device, &g, &mut m, &params(8, 40), &opts()).unwrap();
        assert!(
            r2.rotations >= 2 * r1.rotations.max(1) - 1,
            "{} vs {}",
            r1.rotations,
            r2.rotations
        );
    }

    #[test]
    fn bigger_b_means_fewer_rotations() {
        let g = erdos_renyi(100, 2000, 9);
        let device = Device::new(DeviceConfig::tiny(8 * 1024));
        let mut m = Embedding::random(100, 8, 6);
        let small_b = train_large(
            &device,
            &g,
            &mut m,
            &params(8, 30),
            &PartitionedOpts {
                batch_b: 1,
                ..opts()
            },
        )
        .unwrap();
        let large_b = train_large(
            &device,
            &g,
            &mut m,
            &params(8, 30),
            &PartitionedOpts {
                batch_b: 8,
                ..opts()
            },
        )
        .unwrap();
        assert!(large_b.rotations < small_b.rotations);
    }

    #[test]
    fn more_bins_means_fewer_evictions() {
        let g = erdos_renyi(256, 2048, 11);
        let mut m = Embedding::random(256, 16, 7);
        // Same epochs; P_GPU = 2 vs 3.
        let dev2 = Device::new(DeviceConfig::tiny(24 * 1024));
        let r2 = train_large(
            &dev2,
            &g,
            &mut m,
            &params(16, 20),
            &PartitionedOpts { p_gpu: 2, ..opts() },
        )
        .unwrap();
        let dev3 = Device::new(DeviceConfig::tiny(24 * 1024));
        let r3 = train_large(
            &dev3,
            &g,
            &mut m,
            &params(16, 20),
            &PartitionedOpts { p_gpu: 3, ..opts() },
        )
        .unwrap();
        if r2.num_parts == r3.num_parts && r2.num_parts > 2 {
            assert!(
                r3.evictions <= r2.evictions,
                "P_GPU=3 evictions {} > P_GPU=2 {}",
                r3.evictions,
                r2.evictions
            );
        }
    }
}
