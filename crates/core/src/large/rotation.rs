//! The inside-out pair order (§3.3.1).
//!
//! Every unordered pair of parts must meet once per rotation so all
//! `V_i × V_i` negative pairs are reachable. The inside-out order visits
//! pairs so that consecutive kernels share one sub-matrix, minimizing
//! sub-matrix switches:
//!
//! `(0,0), (1,0), (1,1), (2,0), (2,1), (2,2), (3,0), …`

/// The sequence of part pairs for one rotation over `k` parts, following
/// the paper's recurrence: after `(a, b)` comes `(a, b+1)` while `a > b`,
/// and `(a+1, 0)` once `a == b`.
pub fn inside_out_pairs(k: usize) -> Vec<(usize, usize)> {
    assert!(k >= 1);
    let mut pairs = Vec::with_capacity(k * (k + 1) / 2);
    let (mut a, mut b) = (0usize, 0usize);
    loop {
        pairs.push((a, b));
        if a == b {
            a += 1;
            b = 0;
            if a == k {
                break;
            }
        } else {
            b += 1;
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_prefix() {
        assert_eq!(
            inside_out_pairs(4),
            vec![
                (0, 0),
                (1, 0),
                (1, 1),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 0),
                (3, 1),
                (3, 2),
                (3, 3)
            ]
        );
    }

    #[test]
    fn counts_all_unordered_pairs_exhaustively() {
        // Exhaustive over every part count the path will realistically
        // see: each unordered pair (a, b) with a >= b appears exactly
        // once — no pair missed (a vertex pair whose negatives are
        // never sampled), none repeated (a double epoch share).
        for k in 1..=16 {
            let pairs = inside_out_pairs(k);
            assert_eq!(pairs.len(), k * (k + 1) / 2, "k = {k}");
            let mut seen = std::collections::HashSet::new();
            for (a, b) in pairs {
                assert!(a >= b, "k = {k}: ({a},{b}) not ordered");
                assert!(a < k, "k = {k}: part {a} out of range");
                assert!(seen.insert((a, b)), "k = {k}: ({a},{b}) repeated");
            }
            for a in 0..k {
                for b in 0..=a {
                    assert!(seen.contains(&(a, b)), "k = {k}: ({a},{b}) missing");
                }
            }
        }
    }

    #[test]
    fn most_consecutive_pairs_share_a_part() {
        // The property the order exists for: consecutive kernels almost
        // always share a sub-matrix. The only exceptions are the diagonal
        // crossings (a,a) → (a+1, 0) for a ≥ 1 — that is k−2 transitions
        // out of k(k+1)/2 − 1.
        let k = 6;
        let pairs = inside_out_pairs(k);
        let mut no_share = 0;
        for w in pairs.windows(2) {
            let (a1, b1) = w[0];
            let (a2, b2) = w[1];
            if ![a2, b2].iter().any(|&x| x == a1 || x == b1) {
                no_share += 1;
            }
        }
        assert_eq!(no_share, k - 2);
    }

    #[test]
    fn single_part() {
        assert_eq!(inside_out_pairs(1), vec![(0, 0)]);
    }
}
