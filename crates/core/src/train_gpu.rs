//! `TrainInGPU` — Algorithm 3 on the simulated device.
//!
//! One source vertex is assigned per warp (per sub-warp in the packed
//! small-dimension variant). Sources are drawn from the arc list so that
//! one epoch performs |E| positive samples — the epoch definition of §4.3
//! — weighting hubs by degree exactly as edge sampling does. Three kernel
//! variants reproduce the §4.8 speedup-breakdown stages:
//!
//! * [`KernelVariant::Naive`] — no shared-memory staging, strided global
//!   accesses; the "Naive GPU" bar of Figure 4.
//! * [`KernelVariant::Optimized`] — the §3.1 kernel: source row staged in
//!   shared memory once per source, coalesced round-robin access to sample
//!   rows.
//! * The packed small-dimension kernel (§3.1.1) — selected automatically
//!   by [`KernelVariant::Auto`] when `d ≤ 16`: 8 or 16 lanes per source,
//!   so 4 or 2 sources share each warp's instruction stream.
//!
//! Epochs are synchronized: each is one blocking kernel launch, so no two
//! epochs overlap (§3.1), while updates within an epoch stay lock-free.

use gosh_gpu::{Access, Device, DeviceError, FloatBuffer, LaunchConfig, PlainBuffer};
use gosh_graph::csr::Csr;

use crate::backend::{Similarity, TrainParams};
use crate::model::Embedding;
use crate::quant::{quantize_roundtrip, Precision};
use crate::schedule::decayed_lr;

/// Which embedding kernel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelVariant {
    /// Unoptimized accesses (Figure 4's "Naive GPU").
    Naive,
    /// Shared-memory staging + coalesced accesses (§3.1).
    Optimized,
    /// `Optimized`, but switch to the packed small-`d` kernel when `d ≤ 16`.
    Auto,
}

/// Draw a positive sample for `src` on the device: uniform neighbour for
/// adjacency, restart-terminated random walk for PPR. Returns `None` for
/// sources with no outgoing edges.
#[inline]
pub(crate) fn device_positive_sample(
    w: &gosh_gpu::Warp,
    xadj: &[u64],
    adj: &[u32],
    src: usize,
    similarity: Similarity,
) -> Option<usize> {
    let (lo, hi) = (xadj[src] as usize, xadj[src + 1] as usize);
    let deg = (hi - lo) as u32;
    if deg == 0 {
        return None;
    }
    match similarity {
        Similarity::Adjacency => Some(adj[lo + w.rand_below(deg) as usize] as usize),
        Similarity::Ppr { alpha } => {
            let mut u = adj[lo + w.rand_below(deg) as usize] as usize;
            // Each hop is one strided lookup into the CSR arrays.
            w.alu(2);
            while w.rand_f32() < alpha {
                let (ulo, uhi) = (xadj[u] as usize, xadj[u + 1] as usize);
                let udeg = (uhi - ulo) as u32;
                if udeg == 0 {
                    // Dead end: restart from the source neighbourhood.
                    u = adj[lo + w.rand_below(deg) as usize] as usize;
                } else {
                    u = adj[ulo + w.rand_below(udeg) as usize] as usize;
                }
                w.alu(2);
            }
            Some(u)
        }
    }
}

/// A graph resident in device memory: CSR plus the arc-source schedule.
pub struct DeviceGraph {
    xadj: PlainBuffer<u64>,
    adj: PlainBuffer<u32>,
    arc_src: PlainBuffer<u32>,
    num_vertices: usize,
}

impl DeviceGraph {
    /// Upload `g` (H2D copies are counted).
    pub fn upload(device: &Device, g: &Csr) -> Result<Self, DeviceError> {
        let xadj: Vec<u64> = g.xadj().iter().map(|&x| x as u64).collect();
        let mut arc_src = Vec::with_capacity(g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            arc_src.extend(std::iter::repeat_n(v, g.degree(v)));
        }
        Ok(Self {
            xadj: device.upload_plain(&xadj)?,
            adj: device.upload_plain(g.adj())?,
            arc_src: device.upload_plain(&arc_src)?,
            num_vertices: g.num_vertices(),
        })
    }

    /// Vertices in the graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Directed arcs in the graph.
    pub fn num_arcs(&self) -> usize {
        self.adj.len()
    }

    /// Source processings per epoch (= undirected edge count, §4.3).
    pub fn sources_per_epoch(&self) -> usize {
        (self.num_arcs() / 2).max(1)
    }

    /// Device-side view of the offsets array.
    pub fn xadj_slice(&self) -> &[u64] {
        self.xadj.as_slice()
    }

    /// Device-side view of the adjacency array.
    pub fn adj_slice(&self) -> &[u32] {
        self.adj.as_slice()
    }

    /// Device-side view of the arc-source schedule.
    pub fn arc_src_slice(&self) -> &[u32] {
        self.arc_src.as_slice()
    }
}

/// Sub-warp lanes for a given dimension (§3.1.1: the smallest multiple of
/// 8 that covers `d`), full warp for `d > 16`.
pub fn lanes_for_dim(d: usize) -> usize {
    if d <= 8 {
        8
    } else if d <= 16 {
        16
    } else {
        32
    }
}

/// Train `matrix` on `graph` for `params.epochs` epochs.
///
/// The matrix stays on the device; callers download it when the level is
/// done. Panics if `matrix.len() != |V| · d`.
pub fn train_in_gpu(
    device: &Device,
    graph: &DeviceGraph,
    matrix: &FloatBuffer,
    params: &TrainParams,
    variant: KernelVariant,
) {
    assert_eq!(
        matrix.len(),
        graph.num_vertices() * params.dim,
        "matrix shape mismatch"
    );
    if graph.num_arcs() == 0 {
        return;
    }
    for epoch in 0..params.epochs {
        let lr_now = decayed_lr(params.lr, epoch, params.epochs);
        match variant {
            KernelVariant::Naive => {
                epoch_naive(device, graph, matrix, params, lr_now, epoch);
            }
            KernelVariant::Optimized => {
                epoch_optimized(device, graph, matrix, params, lr_now, epoch);
            }
            KernelVariant::Auto => {
                if lanes_for_dim(params.dim) < 32 {
                    epoch_packed(device, graph, matrix, params, lr_now, epoch);
                } else {
                    epoch_optimized(device, graph, matrix, params, lr_now, epoch);
                }
            }
        }
    }
}

/// Arc index for warp `w` of `epoch` — every other arc, rotated per epoch
/// so both orientations of each edge serve as source over time.
#[inline]
fn arc_for(w: usize, epoch: u32, num_arcs: usize) -> usize {
    (2 * w + epoch as usize) % num_arcs
}

fn epoch_optimized(
    device: &Device,
    graph: &DeviceGraph,
    matrix: &FloatBuffer,
    params: &TrainParams,
    lr: f32,
    epoch: u32,
) {
    let d = params.dim;
    let ns = params.negative_samples;
    let n = graph.num_vertices() as u32;
    let num_arcs = graph.num_arcs();
    let sources = graph.sources_per_epoch();
    let xadj = graph.xadj.as_slice();
    let adj = graph.adj.as_slice();
    let arc_src = graph.arc_src.as_slice();

    device.launch(LaunchConfig::new(sources, 2 * d), |w, scratch| {
        let (src_row, tmp) = scratch.split_at_mut(d);
        let src = arc_src[arc_for(w.id(), epoch, num_arcs)] as usize;
        // Stage M[src] in shared memory (§3.1).
        w.global_read_row(matrix, src * d, src_row, Access::Coalesced);
        w.shared_store(d);

        // Positive sample from the similarity distribution Q.
        if let Some(u) = device_positive_sample(w, xadj, adj, src, params.similarity) {
            sample_update(w, matrix, u, d, src_row, tmp, 1.0, lr);
        }
        // ns negatives, uniform over V (the noise distribution).
        for _ in 0..ns {
            let u = w.rand_below(n) as usize;
            sample_update(w, matrix, u, d, src_row, tmp, 0.0, lr);
        }
        // Write the staged source row back once.
        w.global_write_row(matrix, src * d, src_row, Access::Coalesced);
    });
}

/// One positive/negative update with the source row staged on chip
/// (Algorithm 1 with pre-update semantics; see `update.rs`).
#[inline]
#[allow(clippy::too_many_arguments)]
fn sample_update(
    w: &gosh_gpu::Warp,
    matrix: &FloatBuffer,
    u: usize,
    d: usize,
    src_row: &mut [f32],
    tmp: &mut [f32],
    b: f32,
    lr: f32,
) {
    w.global_read_row(matrix, u * d, tmp, Access::Coalesced);
    let dot = w.dot(src_row, tmp);
    let score = (b - w.sigmoid(dot)) * lr;
    // Sample row first (uses the pre-update source), then the source.
    w.global_axpy_row(matrix, u * d, score, src_row, Access::Coalesced);
    w.shared_axpy(score, tmp, src_row);
}

fn epoch_naive(
    device: &Device,
    graph: &DeviceGraph,
    matrix: &FloatBuffer,
    params: &TrainParams,
    lr: f32,
    epoch: u32,
) {
    let d = params.dim;
    let ns = params.negative_samples;
    let n = graph.num_vertices() as u32;
    let num_arcs = graph.num_arcs();
    let sources = graph.sources_per_epoch();
    let xadj = graph.xadj.as_slice();
    let adj = graph.adj.as_slice();
    let arc_src = graph.arc_src.as_slice();

    device.launch(LaunchConfig::new(sources, 2 * d), |w, scratch| {
        let (src_row, tmp) = scratch.split_at_mut(d);
        let src = arc_src[arc_for(w.id(), epoch, num_arcs)] as usize;
        let mut one = |u: usize, b: f32| {
            // Re-read the source row from global memory for every sample,
            // all accesses strided: the pre-optimization kernel of §4.8.
            w.global_read_row(matrix, src * d, src_row, Access::Strided);
            w.global_read_row(matrix, u * d, tmp, Access::Strided);
            let dot = w.dot(src_row, tmp);
            let score = (b - w.sigmoid(dot)) * lr;
            w.global_axpy_row(matrix, u * d, score, src_row, Access::Strided);
            w.global_axpy_row(matrix, src * d, score, tmp, Access::Strided);
        };
        if let Some(u) = device_positive_sample(w, xadj, adj, src, params.similarity) {
            one(u, 1.0);
        }
        for _ in 0..ns {
            one(w.rand_below(n) as usize, 0.0);
        }
    });
}

fn epoch_packed(
    device: &Device,
    graph: &DeviceGraph,
    matrix: &FloatBuffer,
    params: &TrainParams,
    lr: f32,
    epoch: u32,
) {
    let d = params.dim;
    let ns = params.negative_samples;
    let n = graph.num_vertices() as u32;
    let num_arcs = graph.num_arcs();
    let sources = graph.sources_per_epoch();
    let lanes = lanes_for_dim(d);
    let pack = 32 / lanes; // sources per warp: 4 (d ≤ 8) or 2 (d ≤ 16)
    let num_warps = sources.div_ceil(pack);
    let xadj = graph.xadj.as_slice();
    let adj = graph.adj.as_slice();
    let arc_src = graph.arc_src.as_slice();

    // Scratch: k source rows + k sample rows.
    device.launch(LaunchConfig::new(num_warps, 2 * pack * d), |w, scratch| {
        let first = w.id() * pack;
        let k = pack.min(sources - first);
        let (src_rows, tmp) = scratch.split_at_mut(pack * d);
        let src_rows = &mut src_rows[..k * d];
        let tmp = &mut tmp[..k * d];

        let mut srcs = [0usize; 4];
        let mut src_offsets = [0usize; 4];
        for i in 0..k {
            let s = arc_src[arc_for(first + i, epoch, num_arcs)] as usize;
            srcs[i] = s;
            src_offsets[i] = s * d;
        }
        w.global_read_rows(matrix, &src_offsets[..k], d, src_rows, Access::Coalesced);
        w.shared_store(k * d);

        let mut sample_offsets = [0usize; 4];
        let mut scores = [0f32; 4];
        let mut dots = [0f32; 4];

        // Positive pass: each sub-warp samples its own neighbour. Sources
        // with no neighbours keep a zero score (self-target, no-op update).
        let mut do_pass = |w: &gosh_gpu::Warp, tmp: &mut [f32], src_rows: &mut [f32], b: f32| {
            for i in 0..k {
                let u = if b == 1.0 {
                    match device_positive_sample(w, xadj, adj, srcs[i], params.similarity) {
                        Some(u) => u,
                        None => {
                            sample_offsets[i] = srcs[i] * d; // inert slot
                            scores[i] = 0.0;
                            continue;
                        }
                    }
                } else {
                    w.rand_below(n) as usize
                };
                sample_offsets[i] = u * d;
                scores[i] = 1.0; // mark active; filled after the dot pass
            }
            w.global_read_rows(matrix, &sample_offsets[..k], d, tmp, Access::Coalesced);
            w.dot_rows(src_rows, tmp, d, &mut dots[..k]);
            w.alu(8); // one warp-wide sigmoid burst serves all sub-warps
            for i in 0..k {
                if scores[i] != 0.0 {
                    scores[i] = (b - gosh_gpu::warp::sigmoid(dots[i])) * lr;
                }
            }
            w.global_axpy_rows(
                matrix,
                &sample_offsets[..k],
                d,
                &scores[..k],
                src_rows,
                Access::Coalesced,
            );
            w.shared_axpy_rows(&scores[..k], tmp, src_rows, d);
        };

        do_pass(w, tmp, src_rows, 1.0);
        for _ in 0..ns {
            do_pass(w, tmp, src_rows, 0.0);
        }
        w.global_write_rows(matrix, &src_offsets[..k], d, src_rows, Access::Coalesced);
    });
}

/// Upload, train, download: the small-graph path of Algorithm 2 (lines
/// 6–7) for one level.
///
/// With a quantized `params.precision` the matrix buffer is allocated and
/// transferred at the format's true byte width, and the rows pass through
/// a quantize→dequantize round trip at the upload and write-back
/// boundaries — the storage error the quantized format would impose,
/// while kernel arithmetic stays f32 (mixed-precision style; the CPU
/// engine requantizes per store and is the stricter model).
pub fn train_level_on_device(
    device: &Device,
    g: &Csr,
    host: &mut Embedding,
    params: &TrainParams,
    variant: KernelVariant,
) -> Result<(), DeviceError> {
    let graph = DeviceGraph::upload(device, g)?;
    let matrix = if params.precision == Precision::F32 {
        device.upload_floats(host.as_slice())?
    } else {
        let mut staged = host.as_slice().to_vec();
        quantize_roundtrip(&mut staged, params.dim, params.precision);
        device.upload_floats_prec(&staged, params.precision.bytes_per_element())?
    };
    train_in_gpu(device, &graph, &matrix, params, variant);
    let mut out = matrix.to_host_vec();
    if params.precision != Precision::F32 {
        quantize_roundtrip(&mut out, params.dim, params.precision);
    }
    host.as_mut_slice().copy_from_slice(&out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosh_gpu::DeviceConfig;
    use gosh_graph::builder::csr_from_edges;
    use gosh_graph::gen::erdos_renyi;

    fn params(d: usize, epochs: u32) -> TrainParams {
        TrainParams::adjacency(d, 3, 0.05, epochs)
    }

    fn mean_cos(m: &Embedding, pairs: &[(u32, u32)]) -> f32 {
        pairs.iter().map(|&(a, b)| m.cosine(a, b)).sum::<f32>() / pairs.len() as f32
    }

    /// Two cliques joined by one edge: intra-clique similarity should beat
    /// inter-clique after training.
    type CliquePairs = (Csr, Vec<(u32, u32)>, Vec<(u32, u32)>);

    fn two_cliques() -> CliquePairs {
        let mut edges = vec![];
        for a in 0..8u32 {
            for b in 0..a {
                edges.push((a, b));
                edges.push((a + 8, b + 8));
            }
        }
        edges.push((0, 8));
        let g = csr_from_edges(16, &edges);
        let intra = vec![(0, 1), (2, 3), (8, 9), (10, 11), (4, 5), (12, 13)];
        let inter = vec![(0, 9), (1, 10), (2, 12), (3, 13), (4, 14), (5, 15)];
        (g, intra, inter)
    }

    fn train_variant(variant: KernelVariant, d: usize) -> (f32, f32) {
        let (g, intra, inter) = two_cliques();
        let device = Device::new(DeviceConfig::titan_x());
        let mut m = Embedding::random(16, d, 42);
        train_level_on_device(&device, &g, &mut m, &params(d, 150), variant).unwrap();
        (mean_cos(&m, &intra), mean_cos(&m, &inter))
    }

    #[test]
    fn optimized_kernel_separates_cliques() {
        let (intra, inter) = train_variant(KernelVariant::Optimized, 32);
        assert!(intra > inter + 0.3, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn naive_kernel_learns_the_same_embedding_shape() {
        let (intra, inter) = train_variant(KernelVariant::Naive, 32);
        assert!(intra > inter + 0.3, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn packed_kernel_learns_small_dims() {
        for d in [8, 16] {
            let (intra, inter) = train_variant(KernelVariant::Auto, d);
            assert!(
                intra > inter + 0.25,
                "d={d}: intra {intra} vs inter {inter}"
            );
        }
    }

    #[test]
    fn auto_on_large_d_equals_optimized_cost_shape() {
        // For d = 32, Auto must take the optimized path: same warp count.
        let g = erdos_renyi(64, 256, 3);
        let device = Device::new(DeviceConfig::titan_x());
        let graph = DeviceGraph::upload(&device, &g).unwrap();
        let matrix = device.upload_floats(&vec![0.01; 64 * 32]).unwrap();
        device.reset_counters();
        train_in_gpu(
            &device,
            &graph,
            &matrix,
            &params(32, 1),
            KernelVariant::Auto,
        );
        let auto_warps = device.snapshot().warps;
        device.reset_counters();
        train_in_gpu(
            &device,
            &graph,
            &matrix,
            &params(32, 1),
            KernelVariant::Optimized,
        );
        let opt_warps = device.snapshot().warps;
        assert_eq!(auto_warps, opt_warps);
    }

    #[test]
    fn packed_kernel_launches_fewer_warps() {
        let g = erdos_renyi(64, 256, 4);
        let device = Device::new(DeviceConfig::titan_x());
        let graph = DeviceGraph::upload(&device, &g).unwrap();
        let matrix = device.upload_floats(&vec![0.01; 64 * 8]).unwrap();
        device.reset_counters();
        train_in_gpu(&device, &graph, &matrix, &params(8, 1), KernelVariant::Auto);
        let packed = device.snapshot().warps;
        device.reset_counters();
        train_in_gpu(
            &device,
            &graph,
            &matrix,
            &params(8, 1),
            KernelVariant::Optimized,
        );
        let unpacked = device.snapshot().warps;
        assert_eq!(
            packed,
            unpacked.div_ceil(4),
            "packed {packed} vs unpacked {unpacked}"
        );
    }

    #[test]
    fn naive_kernel_costs_more_transactions() {
        let g = erdos_renyi(64, 256, 5);
        let device = Device::new(DeviceConfig::titan_x());
        let graph = DeviceGraph::upload(&device, &g).unwrap();
        let matrix = device.upload_floats(&vec![0.01; 64 * 32]).unwrap();
        device.reset_counters();
        train_in_gpu(
            &device,
            &graph,
            &matrix,
            &params(32, 1),
            KernelVariant::Optimized,
        );
        let opt = device.snapshot().transactions;
        device.reset_counters();
        train_in_gpu(
            &device,
            &graph,
            &matrix,
            &params(32, 1),
            KernelVariant::Naive,
        );
        let naive = device.snapshot().transactions;
        assert!(naive > 3 * opt, "naive {naive} vs optimized {opt}");
    }

    #[test]
    fn lanes_for_dim_matches_paper() {
        assert_eq!(lanes_for_dim(4), 8);
        assert_eq!(lanes_for_dim(8), 8);
        assert_eq!(lanes_for_dim(9), 16);
        assert_eq!(lanes_for_dim(16), 16);
        assert_eq!(lanes_for_dim(17), 32);
        assert_eq!(lanes_for_dim(128), 32);
    }

    #[test]
    fn ppr_similarity_learns_on_device() {
        let (g, intra, inter) = two_cliques();
        let device = Device::new(DeviceConfig::titan_x());
        let mut m = Embedding::random(16, 32, 42);
        let p = TrainParams {
            similarity: crate::backend::Similarity::Ppr { alpha: 0.85 },
            ..params(32, 150)
        };
        train_level_on_device(&device, &g, &mut m, &p, KernelVariant::Optimized).unwrap();
        let (i, o) = (mean_cos(&m, &intra), mean_cos(&m, &inter));
        assert!(i > o + 0.25, "intra {i} vs inter {o}");
    }

    #[test]
    fn device_ppr_walk_reaches_two_hops() {
        // Path 0-1-2: PPR positives from 0 must sometimes land on 2.
        let g = csr_from_edges(3, &[(0, 1), (1, 2)]);
        let device = Device::new(DeviceConfig::titan_x());
        let graph = DeviceGraph::upload(&device, &g).unwrap();
        let hits = std::sync::atomic::AtomicUsize::new(0);
        device.launch(gosh_gpu::LaunchConfig::new(256, 0), |w, _| {
            if device_positive_sample(
                w,
                graph.xadj_slice(),
                graph.adj_slice(),
                0,
                crate::backend::Similarity::Ppr { alpha: 0.85 },
            ) == Some(2)
            {
                hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
        assert!(hits.load(std::sync::atomic::Ordering::Relaxed) > 10);
    }

    #[test]
    fn sources_per_epoch_is_edge_count() {
        let g = csr_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let device = Device::new(DeviceConfig::titan_x());
        let graph = DeviceGraph::upload(&device, &g).unwrap();
        assert_eq!(graph.sources_per_epoch(), 3);
        assert_eq!(graph.num_arcs(), 6);
    }

    #[test]
    fn quantized_device_path_prices_and_learns() {
        let (g, intra, inter) = two_cliques();
        for precision in [crate::quant::Precision::F16, crate::quant::Precision::I8] {
            let device = Device::new(DeviceConfig::titan_x());
            let mut m = Embedding::random(16, 32, 42);
            let p = TrainParams {
                precision,
                ..params(32, 150)
            };
            device.reset_counters();
            train_level_on_device(&device, &g, &mut m, &p, KernelVariant::Optimized).unwrap();
            // Matrix upload + download move 16*32 elements at the narrow
            // width; the f32-priced copy would be 2048 bytes.
            let narrow = 16 * 32 * precision.bytes_per_element() as u64;
            let s = device.snapshot();
            assert!(s.h2d_bytes >= narrow, "matrix upload missing");
            assert!(
                s.d2h_bytes == narrow,
                "{precision}: d2h {} != {narrow}",
                s.d2h_bytes
            );
            assert!(m.as_slice().iter().all(|x| x.is_finite()));
            let (i, o) = (mean_cos(&m, &intra), mean_cos(&m, &inter));
            assert!(i > o + 0.25, "{precision}: intra {i} vs inter {o}");
            assert_eq!(device.allocated_bytes(), 0);
        }
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = Csr::empty(4);
        let device = Device::new(DeviceConfig::titan_x());
        let mut m = Embedding::random(4, 8, 1);
        let before = m.clone();
        train_level_on_device(&device, &g, &mut m, &params(8, 3), KernelVariant::Auto).unwrap();
        assert_eq!(m, before);
    }

    use gosh_graph::csr::Csr;
}
