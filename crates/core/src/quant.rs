//! Reduced-precision embedding storage: f16 and per-row-scaled 8-bit rows.
//!
//! f32 rows cap how many vertices fit on a device: `choose_num_parts`
//! prices the Algorithm 5 bins in bytes, so halving (f16) or quartering
//! (i8) the element width fits 2–4x larger graphs per device — the same
//! capacity argument GraphVite makes for its CPU–GPU split. The knob is
//! [`Precision`], selected by `--precision f32|f16|i8` on the CLI and
//! carried by `TrainParams`/`GoshConfig`.
//!
//! * **f16** — IEEE binary16 stored as `u16` bit patterns (the toolchain
//!   is stable, so there is no hardware `f16` type; the conversions here
//!   are software, round-to-nearest-even).
//! * **i8** — 8-bit integer codes with a **per-row** affine decode
//!   `x = zero + scale · q`, `q ∈ 0..=255`: [`quantize_row_i8`] maps the
//!   row's min to code 0 and its max to code 255, so the two scale
//!   parameters adapt to each vertex's dynamic range (embedding row
//!   norms vary by orders of magnitude between hubs and leaves).
//!
//! Training at reduced precision keeps all arithmetic in f32 lanes:
//! rows **dequantize on load** into the f32 registers of
//! [`crate::simd`], update there, and **requantize on store**
//! ([`QuantizedMatrix`]). f32 stays the bit-exact reference path; the
//! quantized engines are accuracy-checked end to end against it by the
//! AUC-parity test (`tests/precision_parity.rs`).

use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::model::{pack_pair, unpack_pair, Embedding};

/// Storage width of embedding rows. `F32` is the reference path (plain
/// IEEE single, bit-exact against `update_embedding`); the other two
/// trade precision for capacity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 4 bytes/element — the reference path.
    #[default]
    F32,
    /// 2 bytes/element, IEEE binary16 via `u16` bits.
    F16,
    /// 1 byte/element plus an 8-byte per-row scale/zero-point pair.
    I8,
}

impl Precision {
    /// True storage width of one embedding element.
    pub fn bytes_per_element(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F16 => 2,
            Precision::I8 => 1,
        }
    }

    /// True storage bytes of one `dim`-wide row, including the per-row
    /// scale/zero-point metadata the i8 format carries.
    pub fn row_bytes(self, dim: usize) -> usize {
        dim * self.bytes_per_element() + self.row_overhead_bytes()
    }

    /// Per-row metadata bytes (scale + zero-point for i8, none otherwise).
    pub fn row_overhead_bytes(self) -> usize {
        match self {
            Precision::I8 => 8,
            _ => 0,
        }
    }
}

impl FromStr for Precision {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(Precision::F32),
            "f16" => Ok(Precision::F16),
            "i8" => Ok(Precision::I8),
            other => Err(format!("unknown precision '{other}' (expected f32|f16|i8)")),
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::I8 => "i8",
        })
    }
}

// ---------------------------------------------------------------------------
// Software IEEE binary16
// ---------------------------------------------------------------------------

/// Convert an f32 to IEEE binary16 bits, round-to-nearest-even,
/// overflowing to infinity and flushing sub-2⁻²⁵ magnitudes to zero
/// through the subnormal range.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7fff_ffff;
    if abs >= 0x7f80_0000 {
        // Inf stays Inf; NaN keeps (truncated) payload, forced nonzero.
        if abs == 0x7f80_0000 {
            return sign | 0x7c00;
        }
        let mut payload = ((abs >> 13) & 0x3ff) as u16;
        if payload == 0 {
            payload = 0x200;
        }
        return sign | 0x7c00 | payload;
    }
    let half_exp = (abs >> 23) as i32 - 127 + 15;
    if half_exp >= 0x1f {
        return sign | 0x7c00; // overflow → ±inf
    }
    if half_exp <= 0 {
        if half_exp < -10 {
            return sign; // below half the smallest subnormal → ±0
        }
        // Subnormal: restore the implicit bit, shift out 14..24 bits
        // with round-to-nearest-even (round bit set AND (sticky OR lsb)).
        let man = (abs & 0x007f_ffff) | 0x0080_0000;
        let shift = (14 - half_exp) as u32;
        let round_bit = 1u32 << (shift - 1);
        let mut half_man = man >> shift;
        if man & round_bit != 0 && man & (3 * round_bit - 1) != 0 {
            half_man += 1;
        }
        return sign | half_man as u16;
    }
    // Normal: drop 13 mantissa bits with RNE; a mantissa carry bumps the
    // exponent field, which is exactly the correct rounding to the next
    // binade (or to infinity at the top).
    let man = abs & 0x007f_ffff;
    let mut h = sign | ((half_exp as u16) << 10) | (man >> 13) as u16;
    let round_bit = 0x1000u32;
    if man & round_bit != 0 && man & (3 * round_bit - 1) != 0 {
        h += 1;
    }
    h
}

/// Convert IEEE binary16 bits back to f32 (exact — every f16 value is
/// representable in f32).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x3ff) as u32;
    if exp == 0x1f {
        return f32::from_bits(sign | 0x7f80_0000 | (man << 13));
    }
    if exp == 0 {
        if man == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: normalize the 10-bit mantissa into f32's field.
        let p = 31 - man.leading_zeros(); // leading-one position, 0..=9
        let exp32 = p + 103; // (p - 24) + 127
        let man32 = (man << (23 - p)) & 0x007f_ffff;
        return f32::from_bits(sign | (exp32 << 23) | man32);
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (man << 13))
}

// ---------------------------------------------------------------------------
// Vector conversion kernels (x86_64)
// ---------------------------------------------------------------------------

/// AVX2 / F16C batch paths for the conversion loops above — the scalar
/// converters are the semantic reference, and every kernel here is
/// bit-compatible with them for finite (and infinite) inputs:
///
/// * f16 uses `vcvtps2ph`/`vcvtph2ps` with static round-to-nearest-even,
///   the same rounding as [`f32_to_f16_bits`] (NaN payloads may differ in
///   hardware quieting — training matrices are asserted finite);
/// * the i8 encode computes `floor(t + 0.5)`, which equals the scalar
///   `t.round()` (half away from zero) exactly for `t ∈ [0, 256)` where
///   `t + 0.5` is exactly representable;
/// * decodes are the same widen→mul→add sequence as the scalar loop
///   (separate `mul`/`add`, no fma contraction).
///
/// Rows containing non-finite values bail out to the scalar path, which
/// owns the degenerate collapse. Callers verify feature presence through
/// [`crate::simd::avx2_available`] / [`crate::simd::f16c_available`].
#[cfg(target_arch = "x86_64")]
mod vecq {
    use core::arch::x86_64::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::RowScale;
    use crate::model::pack_pair;

    /// In-place f32→f16→f32 round trip, eight lanes per conversion.
    ///
    /// # Safety
    /// The CPU must support F16C (callers check
    /// [`crate::simd::f16c_available`] first).
    #[target_feature(enable = "f16c")]
    pub unsafe fn f16_roundtrip_f16c(data: &mut [f32]) {
        let chunks = data.len() / 8;
        for g in 0..chunks {
            // SAFETY: `8 * g + 8 <= data.len()`, so the in-place 8-lane
            // load/convert/store stays inside the slice.
            unsafe {
                let p = data.as_mut_ptr().add(8 * g);
                let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(_mm256_loadu_ps(p));
                _mm256_storeu_ps(p, _mm256_cvtph_ps(h));
            }
        }
        for x in &mut data[8 * chunks..] {
            *x = super::f16_bits_to_f32(super::f32_to_f16_bits(*x));
        }
    }

    /// Dequantize an f16 cell row (4 codes per cell) into f32 lanes, two
    /// cells per conversion. The `[u64; 2]` staging keeps every atomic
    /// access a plain `load`, like the pair kernels in `crate::simd`.
    ///
    /// # Safety
    /// The CPU must support F16C (callers check
    /// [`crate::simd::f16c_available`] first), and `cells` must hold at
    /// least `ceil(out.len() / 4)` cells (the [`super::QuantizedMatrix`]
    /// row layout).
    #[target_feature(enable = "f16c")]
    pub unsafe fn load_f16_cells(cells: &[AtomicU64], out: &mut [f32]) {
        let groups = out.len() / 8;
        for g in 0..groups {
            let bits = [
                cells[2 * g].load(Ordering::Relaxed),
                cells[2 * g + 1].load(Ordering::Relaxed),
            ];
            // SAFETY: `bits` is a local `[u64; 2]` = one 128-bit load,
            // and `8 * g + 8 <= out.len()` bounds the 8-lane store.
            unsafe {
                let h = _mm_loadu_si128(bits.as_ptr().cast());
                _mm256_storeu_ps(out.as_mut_ptr().add(8 * g), _mm256_cvtph_ps(h));
            }
        }
        for (k, y) in out[8 * groups..].iter_mut().enumerate() {
            let idx = 8 * groups + k;
            let w = cells[idx / 4].load(Ordering::Relaxed);
            *y = super::f16_bits_to_f32((w >> (16 * (idx % 4))) as u16);
        }
    }

    /// Requantize f32 lanes into f16 cells.
    ///
    /// # Safety
    /// The CPU must support F16C (callers check
    /// [`crate::simd::f16c_available`] first), and `cells` must hold at
    /// least `ceil(row.len() / 4)` cells (the [`super::QuantizedMatrix`]
    /// row layout).
    #[target_feature(enable = "f16c")]
    pub unsafe fn store_f16_cells(cells: &[AtomicU64], row: &[f32]) {
        let groups = row.len() / 8;
        for g in 0..groups {
            let mut bits = [0u64; 2];
            // SAFETY: `8 * g + 8 <= row.len()` bounds the 8-lane load,
            // and `bits` is a local `[u64; 2]` = one 128-bit store.
            unsafe {
                let v = _mm256_loadu_ps(row.as_ptr().add(8 * g));
                let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(v);
                _mm_storeu_si128(bits.as_mut_ptr().cast(), h);
            }
            cells[2 * g].store(bits[0], Ordering::Relaxed);
            cells[2 * g + 1].store(bits[1], Ordering::Relaxed);
        }
        for (ci, chunk) in row[8 * groups..].chunks(4).enumerate() {
            let mut bits = 0u64;
            for (k, &x) in chunk.iter().enumerate() {
                bits |= (super::f32_to_f16_bits(x) as u64) << (16 * k);
            }
            cells[2 * groups + ci].store(bits, Ordering::Relaxed);
        }
    }

    /// Lanewise min/max with a finiteness check fused into the same pass.
    /// Returns `None` if any element is non-finite; otherwise the exact
    /// `(lo, hi)` (selection is order-independent for finite values).
    ///
    /// Safe `#[target_feature]` fn: callable without `unsafe` only from
    /// the AVX2-enabled fns below, which is exactly its call set.
    #[target_feature(enable = "avx2")]
    fn minmax_finite(row: &[f32]) -> Option<(f32, f32)> {
        let chunks = row.len() / 8;
        let mut vlo = _mm256_set1_ps(f32::INFINITY);
        let mut vhi = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut vok = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
        let zero = _mm256_setzero_ps();
        for g in 0..chunks {
            // SAFETY: `8 * g + 8 <= row.len()` bounds the 8-lane load.
            let x = unsafe { _mm256_loadu_ps(row.as_ptr().add(8 * g)) };
            vlo = _mm256_min_ps(vlo, x);
            vhi = _mm256_max_ps(vhi, x);
            // x − x == 0 exactly iff x is finite (∞−∞ and NaN are NaN).
            vok = _mm256_and_ps(vok, _mm256_cmp_ps::<_CMP_EQ_OQ>(_mm256_sub_ps(x, x), zero));
        }
        if _mm256_movemask_ps(vok) != 0xff {
            return None;
        }
        let mut los = [0f32; 8];
        let mut his = [0f32; 8];
        // SAFETY: `los`/`his` are exactly 8 f32s — one vector store each.
        unsafe {
            _mm256_storeu_ps(los.as_mut_ptr(), vlo);
            _mm256_storeu_ps(his.as_mut_ptr(), vhi);
        }
        let mut lo = los.iter().copied().fold(f32::INFINITY, f32::min);
        let mut hi = his.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for &x in &row[8 * chunks..] {
            if !x.is_finite() {
                return None;
            }
            lo = lo.min(x);
            hi = hi.max(x);
        }
        Some((lo, hi))
    }

    /// Eight codes from eight lanes: `clamp(floor(t + 0.5), 0, 255)`
    /// packed into one little-endian code word.
    ///
    /// Safe `#[target_feature]` fn — register-only, no memory operands.
    #[target_feature(enable = "avx2")]
    fn encode8(x: __m256, vlo: __m256, vinv: __m256) -> u64 {
        let t = _mm256_mul_ps(_mm256_sub_ps(x, vlo), vinv);
        let r = _mm256_round_ps::<{ _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC }>(_mm256_add_ps(
            t,
            _mm256_set1_ps(0.5),
        ));
        let c = _mm256_min_ps(_mm256_max_ps(r, _mm256_setzero_ps()), _mm256_set1_ps(255.0));
        let i = _mm256_cvtps_epi32(c);
        let p16 = _mm_packus_epi32(_mm256_castsi256_si128(i), _mm256_extracti128_si256::<1>(i));
        let p8 = _mm_packus_epi16(p16, p16);
        _mm_cvtsi128_si64(p8) as u64
    }

    /// Eight affine decodes from one packed code word.
    ///
    /// Safe `#[target_feature]` fn — register-only, no memory operands.
    #[target_feature(enable = "avx2")]
    fn decode8(w: u64, vs: __m256, vz: __m256) -> __m256 {
        let q = _mm_cvtsi64_si128(w as i64);
        let f = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(q));
        _mm256_add_ps(vz, _mm256_mul_ps(vs, f))
    }

    /// Vector [`super::quantize_row_i8`] writing into a byte scratch.
    /// `None` when the row is degenerate or contains non-finite values.
    ///
    /// # Safety
    /// The CPU must support AVX2 (callers check
    /// [`crate::simd::avx2_available`] first); `codes.len()` must be at
    /// least `row.len()` (asserted by [`super::quantize_row_i8`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn quantize_row_i8_avx2(row: &[f32], codes: &mut [u8]) -> Option<RowScale> {
        let (lo, hi) = minmax_finite(row)?;
        // Finiteness is already established, so `>=` is a total order here.
        if lo >= hi {
            return None;
        }
        let inv = 255.0 / (hi - lo);
        let vlo = _mm256_set1_ps(lo);
        let vinv = _mm256_set1_ps(inv);
        let chunks = row.len() / 8;
        for g in 0..chunks {
            // SAFETY: `8 * g + 8 <= row.len()` bounds the 8-lane load.
            let x = unsafe { _mm256_loadu_ps(row.as_ptr().add(8 * g)) };
            let w = encode8(x, vlo, vinv);
            codes[8 * g..8 * g + 8].copy_from_slice(&w.to_le_bytes());
        }
        for (c, &x) in codes[8 * chunks..].iter_mut().zip(&row[8 * chunks..]) {
            *c = (((x - lo) * inv).round()).clamp(0.0, 255.0) as u8;
        }
        Some(RowScale {
            scale: (hi - lo) / 255.0,
            zero: lo,
        })
    }

    /// Vector [`super::dequantize_row_i8`] from a byte slice.
    ///
    /// # Safety
    /// The CPU must support AVX2 (callers check
    /// [`crate::simd::avx2_available`] first); `codes.len()` must be at
    /// least `out.len()` (asserted by [`super::dequantize_row_i8`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn decode_i8_avx2(codes: &[u8], rs: RowScale, out: &mut [f32]) {
        let vs = _mm256_set1_ps(rs.scale);
        let vz = _mm256_set1_ps(rs.zero);
        let chunks = out.len() / 8;
        for g in 0..chunks {
            let w = u64::from_le_bytes(codes[8 * g..8 * g + 8].try_into().unwrap());
            // SAFETY: `8 * g + 8 <= out.len()` bounds the 8-lane store.
            unsafe { _mm256_storeu_ps(out.as_mut_ptr().add(8 * g), decode8(w, vs, vz)) };
        }
        for (y, &c) in out[8 * chunks..].iter_mut().zip(&codes[8 * chunks..]) {
            *y = rs.zero + rs.scale * c as f32;
        }
    }

    /// Dequantize an i8 cell row (8 codes per cell), one decode per cell.
    ///
    /// # Safety
    /// The CPU must support AVX2 (callers check
    /// [`crate::simd::avx2_available`] first), and `cells` must hold at
    /// least `ceil(out.len() / 8)` cells (the [`super::QuantizedMatrix`]
    /// row layout).
    #[target_feature(enable = "avx2")]
    pub unsafe fn decode_i8_cells(cells: &[AtomicU64], rs: RowScale, out: &mut [f32]) {
        let vs = _mm256_set1_ps(rs.scale);
        let vz = _mm256_set1_ps(rs.zero);
        let full = out.len() / 8;
        for (g, cell) in cells.iter().enumerate().take(full) {
            let w = cell.load(Ordering::Relaxed);
            // SAFETY: `8 * g + 8 <= out.len()` bounds the 8-lane store.
            unsafe { _mm256_storeu_ps(out.as_mut_ptr().add(8 * g), decode8(w, vs, vz)) };
        }
        let tail = &mut out[8 * full..];
        if !tail.is_empty() {
            let bytes = cells[full].load(Ordering::Relaxed).to_le_bytes();
            for (k, y) in tail.iter_mut().enumerate() {
                *y = rs.zero + rs.scale * bytes[k] as f32;
            }
        }
    }

    /// The whole i8 row store: min/max pass, scale publish (before the
    /// codes, so racing readers decode against the fresh range), then one
    /// cell store per eight codes. `false` when the row needs the scalar
    /// degenerate path.
    ///
    /// # Safety
    /// The CPU must support AVX2 (callers check
    /// [`crate::simd::avx2_available`] first), and `cells` must hold at
    /// least `ceil(row.len() / 8)` cells (the [`super::QuantizedMatrix`]
    /// row layout).
    #[target_feature(enable = "avx2")]
    pub unsafe fn store_i8_cells(cells: &[AtomicU64], meta: &AtomicU64, row: &[f32]) -> bool {
        let Some((lo, hi)) = minmax_finite(row) else {
            return false;
        };
        if lo >= hi {
            return false;
        }
        let inv = 255.0 / (hi - lo);
        meta.store(pack_pair((hi - lo) / 255.0, lo), Ordering::Relaxed);
        let vlo = _mm256_set1_ps(lo);
        let vinv = _mm256_set1_ps(inv);
        let full = row.len() / 8;
        for (g, cell) in cells.iter().enumerate().take(full) {
            // SAFETY: `8 * g + 8 <= row.len()` bounds the 8-lane load.
            let x = unsafe { _mm256_loadu_ps(row.as_ptr().add(8 * g)) };
            cell.store(encode8(x, vlo, vinv), Ordering::Relaxed);
        }
        let tail = &row[8 * full..];
        if !tail.is_empty() {
            let mut bytes = [0u8; 8];
            for (k, &x) in tail.iter().enumerate() {
                bytes[k] = (((x - lo) * inv).round()).clamp(0.0, 255.0) as u8;
            }
            cells[full].store(u64::from_le_bytes(bytes), Ordering::Relaxed);
        }
        true
    }
}

// ---------------------------------------------------------------------------
// Per-row affine 8-bit codes
// ---------------------------------------------------------------------------

/// Decode parameters of one i8 row: `x = zero + scale · q`. Code 0
/// decodes to the row's minimum exactly; code 255 to its maximum (up to
/// one f32 rounding).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RowScale {
    /// Step between adjacent codes, `(max − min) / 255`.
    pub scale: f32,
    /// Value of code 0 — the row minimum (the zero-point in affine form).
    pub zero: f32,
}

/// Quantize one row to byte codes, returning its decode parameters.
/// Quantization is monotone (`x_i ≤ x_j ⇒ q_i ≤ q_j`) and never emits
/// non-finite decode parameters: a degenerate row (constant, empty, or
/// containing non-finite values) collapses to `scale = 0` with every
/// element at code 0.
pub fn quantize_row_i8(row: &[f32], codes: &mut [u8]) -> RowScale {
    debug_assert_eq!(row.len(), codes.len());
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_available() {
        // SAFETY: AVX2 presence was just verified at runtime.
        if let Some(rs) = unsafe { vecq::quantize_row_i8_avx2(row, codes) } {
            return rs;
        }
        // Degenerate or non-finite row: the scalar path owns the collapse.
    }
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in row {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if !(lo.is_finite() && hi.is_finite() && lo < hi) {
        codes.fill(0);
        let zero = if lo.is_finite() { lo } else { 0.0 };
        return RowScale { scale: 0.0, zero };
    }
    let scale = (hi - lo) / 255.0;
    let inv = 255.0 / (hi - lo);
    for (c, &x) in codes.iter_mut().zip(row) {
        *c = (((x - lo) * inv).round()).clamp(0.0, 255.0) as u8;
    }
    RowScale { scale, zero: lo }
}

/// Decode byte codes back to f32 lanes.
pub fn dequantize_row_i8(codes: &[u8], rs: RowScale, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_available() {
        // SAFETY: AVX2 presence was just verified at runtime.
        unsafe { vecq::decode_i8_avx2(codes, rs, out) };
        return;
    }
    for (y, &c) in out.iter_mut().zip(codes) {
        *y = rs.zero + rs.scale * c as f32;
    }
}

/// Pass `data` (row-major, `dim`-wide rows) through one
/// quantize→dequantize round trip in place. This is how the simulated
/// GPU paths model quantized *storage*: transfers and allocations are
/// priced at the true byte width, and the matrix values carry the
/// precision loss of the storage format, while the kernel arithmetic
/// stays f32 (mixed-precision style — f32 accumulate over narrow rows).
pub fn quantize_roundtrip(data: &mut [f32], dim: usize, precision: Precision) {
    match precision {
        Precision::F32 => {}
        Precision::F16 => {
            #[cfg(target_arch = "x86_64")]
            if crate::simd::f16c_available() {
                // SAFETY: F16C presence was just verified at runtime.
                unsafe { vecq::f16_roundtrip_f16c(data) };
                return;
            }
            for x in data.iter_mut() {
                *x = f16_bits_to_f32(f32_to_f16_bits(*x));
            }
        }
        Precision::I8 => {
            let d = dim.max(1);
            let mut codes = vec![0u8; d];
            for row in data.chunks_mut(d) {
                let cs = &mut codes[..row.len()];
                let rs = quantize_row_i8(row, cs);
                dequantize_row_i8(cs, rs, row);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared quantized matrix (the reduced-precision SharedMatrix)
// ---------------------------------------------------------------------------

/// Lock-free shared embedding matrix in a reduced-precision row format —
/// the quantized counterpart of [`crate::model::SharedMatrix`], behind
/// the same load-row/store-row seam the Hogwild engine stages through.
///
/// Codes pack into `AtomicU64` cells (four f16 or eight i8 codes per
/// cell); an i8 row additionally carries one atomic metadata cell holding
/// its `(scale, zero)` pair, so the two decode parameters are always
/// mutually consistent. Row stores are cell-granular and relaxed, exactly
/// the HOGWILD! discipline of the f32 engine: concurrent writers may
/// interleave cells (lost updates, bounded race noise — a code decoded
/// against a neighbor store's scale still lands inside that row's value
/// range) but no load ever observes a torn float.
pub struct QuantizedMatrix {
    precision: Precision,
    cells: Box<[AtomicU64]>,
    /// One `(scale, zero)` pair per row; empty for f16.
    meta: Box<[AtomicU64]>,
    num_vertices: usize,
    dim: usize,
    cells_per_row: usize,
}

/// f16 codes per atomic cell.
const F16_PER_CELL: usize = 4;
/// i8 codes per atomic cell.
const I8_PER_CELL: usize = 8;

impl QuantizedMatrix {
    /// Codes per cell for a precision.
    fn codes_per_cell(precision: Precision) -> usize {
        match precision {
            Precision::F16 => F16_PER_CELL,
            Precision::I8 => I8_PER_CELL,
            Precision::F32 => panic!("f32 rows live in SharedMatrix, not QuantizedMatrix"),
        }
    }

    /// Quantize `m` into shared storage. Panics on `Precision::F32` —
    /// the f32 engine stages through `SharedMatrix`.
    pub fn from_embedding(m: &Embedding, precision: Precision) -> Self {
        let per_cell = Self::codes_per_cell(precision);
        let dim = m.dim();
        let n = m.num_vertices();
        let cells_per_row = dim.div_ceil(per_cell).max(1);
        let cells: Box<[AtomicU64]> = (0..n * cells_per_row).map(|_| AtomicU64::new(0)).collect();
        let meta: Box<[AtomicU64]> = match precision {
            Precision::I8 => (0..n).map(|_| AtomicU64::new(0)).collect(),
            _ => Box::new([]),
        };
        let q = Self {
            precision,
            cells,
            meta,
            num_vertices: n,
            dim,
            cells_per_row,
        };
        for v in 0..n as u32 {
            q.store_row(v, m.row(v));
        }
        q
    }

    /// Number of rows.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Row width in f32 lanes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True storage footprint of the quantized representation (what the
    /// capacity math prices), not the atomic cells' in-simulation size.
    pub fn memory_bytes(&self) -> usize {
        self.num_vertices * self.precision.row_bytes(self.dim)
    }

    /// The atomic cells of one row — for cache prefetch hints.
    pub fn row_cells(&self, v: u32) -> &[AtomicU64] {
        let start = v as usize * self.cells_per_row;
        &self.cells[start..start + self.cells_per_row]
    }

    /// Dequantize row `v` into f32 lanes, one cell load per 4–8
    /// elements. `out.len()` must be `dim`.
    pub fn load_row(&self, v: u32, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.dim);
        let cells = self.row_cells(v);
        match self.precision {
            Precision::F16 => {
                #[cfg(target_arch = "x86_64")]
                if crate::simd::f16c_available() {
                    // SAFETY: F16C presence was just verified at runtime.
                    unsafe { vecq::load_f16_cells(cells, out) };
                    return;
                }
                for (c, chunk) in cells.iter().zip(out.chunks_mut(F16_PER_CELL)) {
                    let bits = c.load(Ordering::Relaxed);
                    for (k, y) in chunk.iter_mut().enumerate() {
                        *y = f16_bits_to_f32((bits >> (16 * k)) as u16);
                    }
                }
            }
            Precision::I8 => {
                let (scale, zero) = unpack_pair(self.meta[v as usize].load(Ordering::Relaxed));
                #[cfg(target_arch = "x86_64")]
                if crate::simd::avx2_available() {
                    // SAFETY: AVX2 presence was just verified at runtime.
                    unsafe { vecq::decode_i8_cells(cells, RowScale { scale, zero }, out) };
                    return;
                }
                for (c, chunk) in cells.iter().zip(out.chunks_mut(I8_PER_CELL)) {
                    let codes = c.load(Ordering::Relaxed).to_le_bytes();
                    // The affine decode is lanewise mul-add over the
                    // widened codes — autovectorizes like an axpy.
                    for (k, y) in chunk.iter_mut().enumerate() {
                        *y = zero + scale * codes[k] as f32;
                    }
                }
            }
            Precision::F32 => unreachable!(),
        }
    }

    /// [`Self::store_row`] with a caller-owned code scratch (`scratch.len()
    /// == dim`) so the Hogwild hot loop never allocates.
    pub fn store_row_scratch(&self, v: u32, row: &[f32], scratch: &mut [u8]) {
        debug_assert_eq!(row.len(), self.dim);
        let cells = self.row_cells(v);
        match self.precision {
            Precision::F16 => {
                #[cfg(target_arch = "x86_64")]
                if crate::simd::f16c_available() {
                    // SAFETY: F16C presence was just verified at runtime.
                    unsafe { vecq::store_f16_cells(cells, row) };
                    return;
                }
                for (c, chunk) in cells.iter().zip(row.chunks(F16_PER_CELL)) {
                    let mut bits = 0u64;
                    for (k, &x) in chunk.iter().enumerate() {
                        bits |= (f32_to_f16_bits(x) as u64) << (16 * k);
                    }
                    c.store(bits, Ordering::Relaxed);
                }
            }
            Precision::I8 => {
                debug_assert_eq!(scratch.len(), self.dim);
                #[cfg(target_arch = "x86_64")]
                if crate::simd::avx2_available()
                    // SAFETY: AVX2 presence was just verified at runtime.
                    && unsafe { vecq::store_i8_cells(cells, &self.meta[v as usize], row) }
                {
                    return;
                }
                let mut codes = [0u8; I8_PER_CELL];
                let rs = quantize_row_i8(row, scratch);
                // Publish the fresh scale pair first so racing readers
                // decode new codes against the new row range.
                self.meta[v as usize].store(pack_pair(rs.scale, rs.zero), Ordering::Relaxed);
                for (c, chunk) in cells.iter().zip(scratch.chunks(I8_PER_CELL)) {
                    codes.fill(0);
                    codes[..chunk.len()].copy_from_slice(chunk);
                    c.store(u64::from_le_bytes(codes), Ordering::Relaxed);
                }
            }
            Precision::F32 => unreachable!(),
        }
    }

    /// Requantize `row` into row `v`'s cells (and its scale metadata for
    /// i8). Cell stores are relaxed.
    pub fn store_row(&self, v: u32, row: &[f32]) {
        let mut scratch = vec![0u8; self.dim];
        self.store_row_scratch(v, row, &mut scratch);
    }

    /// Decode the whole matrix back to an f32 embedding.
    pub fn to_embedding(&self) -> Embedding {
        let mut out = vec![0.0f32; self.num_vertices * self.dim];
        for (v, row) in out.chunks_mut(self.dim.max(1)).enumerate() {
            if !row.is_empty() {
                self.load_row(v as u32, row);
            }
        }
        Embedding::from_vec(out, self.num_vertices, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_parses_and_prices() {
        assert_eq!("f32".parse::<Precision>().unwrap(), Precision::F32);
        assert_eq!("f16".parse::<Precision>().unwrap(), Precision::F16);
        assert_eq!("i8".parse::<Precision>().unwrap(), Precision::I8);
        assert!("fp8".parse::<Precision>().is_err());
        assert_eq!(Precision::F32.row_bytes(128), 512);
        assert_eq!(Precision::F16.row_bytes(128), 256);
        assert_eq!(Precision::I8.row_bytes(128), 136); // 128 codes + scale pair
        assert_eq!(Precision::I8.to_string(), "i8");
    }

    #[test]
    fn f16_round_trips_every_bit_pattern() {
        // f16 → f32 → f16 must be the identity for every one of the
        // 65536 bit patterns (NaN payloads included — the converter
        // preserves them in both directions).
        for h in 0..=u16::MAX {
            let back = f32_to_f16_bits(f16_bits_to_f32(h));
            assert_eq!(back, h, "h={h:#06x}");
        }
    }

    #[test]
    fn f16_conversion_rounds_to_nearest_even() {
        // 1 + 2^-11 sits exactly between 1.0 and the next f16 (1 + 2^-10):
        // ties go to the even mantissa, i.e. down to 1.0.
        assert_eq!(f32_to_f16_bits(1.0 + 0.000_488_281_25), 0x3c00);
        // 1 + 3·2^-11 ties between 1+2^-10 and 1+2^-9: even is 1+2^-9.
        assert_eq!(f32_to_f16_bits(1.0 + 3.0 * 0.000_488_281_25), 0x3c02);
        // Just above a tie rounds up.
        assert_eq!(f32_to_f16_bits(1.0 + 0.000_489), 0x3c01);
        // Overflow and specials.
        assert_eq!(f32_to_f16_bits(1e6), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Max finite f16 and first overflow.
        assert_eq!(f16_bits_to_f32(0x7bff), 65504.0);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff);
        assert_eq!(f32_to_f16_bits(65520.0), 0x7c00); // ties away? no: 65520 ties → even → inf
                                                      // Subnormals: smallest positive f16 is 2^-24.
        assert_eq!(f16_bits_to_f32(0x0001), 2.0f32.powi(-24));
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-24)), 0x0001);
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-26)), 0x0000);
    }

    #[test]
    fn i8_row_codes_hit_endpoints_exactly() {
        let row = [-0.3f32, 0.1, 0.7, 0.0];
        let mut codes = [0u8; 4];
        let rs = quantize_row_i8(&row, &mut codes);
        assert_eq!(codes[0], 0); // min → code 0
        assert_eq!(codes[2], 255); // max → code 255
        let mut out = [0f32; 4];
        dequantize_row_i8(&codes, rs, &mut out);
        assert_eq!(out[0], -0.3); // zero-point: min decodes exactly
        assert!((out[2] - 0.7).abs() < 1e-6);
        for (y, x) in out.iter().zip(&row) {
            assert!((y - x).abs() <= rs.scale * 0.5 + 1e-7, "{y} vs {x}");
        }
    }

    #[test]
    fn degenerate_rows_quantize_safely() {
        let mut codes = [0u8; 3];
        // Constant row.
        let rs = quantize_row_i8(&[0.25; 3], &mut codes);
        let mut out = [0f32; 3];
        dequantize_row_i8(&codes, rs, &mut out);
        assert_eq!(out, [0.25; 3]);
        // Non-finite contamination must not escape as NaN/Inf.
        let rs = quantize_row_i8(&[f32::NAN, 1.0, f32::INFINITY], &mut codes);
        dequantize_row_i8(&codes, rs, &mut out);
        assert!(out.iter().all(|y| y.is_finite()));
        assert!(rs.scale.is_finite() && rs.zero.is_finite());
    }

    #[test]
    fn quantized_matrix_round_trips_within_format_error() {
        let m = Embedding::random(17, 9, 42); // odd dim, not a cell multiple
        for precision in [Precision::F16, Precision::I8] {
            let q = QuantizedMatrix::from_embedding(&m, precision);
            let back = q.to_embedding();
            assert_eq!(back.num_vertices(), 17);
            assert_eq!(back.dim(), 9);
            for v in 0..17u32 {
                let (orig, got) = (m.row(v), back.row(v));
                // Row values are in [-0.5/d, 0.5/d); format error is far
                // below the value scale for both widths.
                for (a, b) in orig.iter().zip(got) {
                    assert!((a - b).abs() < 1e-3, "{precision}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn quantized_matrix_prices_true_bytes() {
        let m = Embedding::random(10, 8, 1);
        assert_eq!(
            QuantizedMatrix::from_embedding(&m, Precision::F16).memory_bytes(),
            10 * 8 * 2
        );
        assert_eq!(
            QuantizedMatrix::from_embedding(&m, Precision::I8).memory_bytes(),
            10 * (8 + 8)
        );
    }

    #[test]
    fn store_then_load_is_a_fixed_point() {
        // Requantizing an already-dequantized row must be lossless —
        // otherwise every Hogwild store would drift the matrix.
        let m = Embedding::random(4, 33, 7);
        for precision in [Precision::F16, Precision::I8] {
            let q = QuantizedMatrix::from_embedding(&m, precision);
            let mut once = vec![0f32; 33];
            q.load_row(2, &mut once);
            q.store_row(2, &once);
            let mut twice = vec![0f32; 33];
            q.load_row(2, &mut twice);
            assert_eq!(once, twice, "{precision}");
        }
    }
}
