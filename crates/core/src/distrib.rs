//! Multi-node training — the [`crate::multi_gpu`] replica scheme
//! generalized from devices on one PCIe bus to nodes on a network.
//!
//! `gosh train --nodes N` runs N node "processes" (threads with fully
//! private state — own worker [`Runtime`], own matrix replica, no shared
//! memory) connected only by a [`Transport`] mesh. The schedule follows
//! the multilevel structure:
//!
//! * **Coarse levels** (fewer than `shard_min` vertices) are
//!   *replicated*: every node trains the full level with identical seeds
//!   and zero communication — the levels are tiny, the work is cheaper
//!   than a broadcast, and determinism keeps every replica bit-identical.
//! * **Fine levels** are *sharded*: each node trains a contiguous span
//!   of the per-epoch source schedule (salted RNG streams so no two
//!   nodes duplicate samples), and every `exchange_every` epochs the
//!   replicas reconcile by **delta exchange**: each node sends
//!   `M_now − M_base` to node 0, node 0 sums the deltas onto the base
//!   and broadcasts the new matrix. Summing (not averaging) is the right
//!   combine here because shards partition the epoch's work — the sum of
//!   shard deltas is one whole epoch of updates, exactly what the
//!   single-node trainer would have applied.
//!
//! Every transfer is priced through [`Interconnect`] — the simulated
//! device's PCIe cost model pointed at the network link — and the stall
//! it causes is reported per run as `exchange_stall_seconds`.
//!
//! The gather order (node 0 adds its own delta, then peers in fixed id
//! order) and per-pair FIFO transports make the result independent of
//! the wire: channel and TCP meshes produce bit-identical embeddings,
//! and `--nodes 1` reproduces the single-node CPU pipeline exactly.

use std::time::Instant;

use gosh_coarsen::hierarchy::{coarsen_hierarchy, CoarsenConfig, Hierarchy};
use gosh_graph::csr::Csr;
use gosh_runtime::transport::{channel_mesh, tcp_mesh, Interconnect, Transport, TransportError};
use gosh_runtime::{shard_ranges, Runtime};

use crate::backend::{Similarity, TrainParams};
use crate::config::GoshConfig;
use crate::expand::expand_embedding_parallel;
use crate::model::{Embedding, SharedMatrix};
use crate::quant::Precision;
use crate::schedule::epoch_distribution;
use crate::train_cpu::HogwildPlan;

/// Frame tag: a `M_now − M_base` delta, peer → node 0.
const TAG_DELTA: u32 = 0xD1;
/// Frame tag: the reconciled matrix, node 0 → peers.
const TAG_BASE: u32 = 0xB0;

/// Which wire the node mesh runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process channels: zero serialization cost, perfectly
    /// deterministic — the reference wire.
    Channel,
    /// TCP over 127.0.0.1: exercises framing and the kernel network
    /// stack; bit-identical results to [`TransportKind::Channel`].
    Tcp,
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Channel => "channel",
            Self::Tcp => "tcp",
        })
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "channel" => Ok(Self::Channel),
            "tcp" => Ok(Self::Tcp),
            other => Err(format!("unknown transport `{other}` (channel|tcp)")),
        }
    }
}

/// Multi-node run parameters (`gosh train --nodes N ...`).
#[derive(Clone, Copy, Debug)]
pub struct DistribConfig {
    /// Node count (1 = plain single-node training).
    pub nodes: usize,
    /// Wire between nodes.
    pub transport: TransportKind,
    /// Modeled interconnect bandwidth in GB/s (charged per transfer like
    /// the device's PCIe model).
    pub net_gbps: f64,
    /// Epochs trained between delta exchanges on sharded levels.
    pub exchange_every: u32,
    /// Levels smaller than this many vertices are replicated instead of
    /// sharded (communication would dominate the level's work).
    pub shard_min: usize,
}

impl Default for DistribConfig {
    fn default() -> Self {
        Self {
            nodes: 1,
            transport: TransportKind::Channel,
            net_gbps: 12.0,
            exchange_every: 8,
            shard_min: 4096,
        }
    }
}

/// Summary of one [`embed_distributed`] run.
#[derive(Clone, Debug)]
pub struct DistribReport {
    /// Nodes in the mesh.
    pub nodes: usize,
    /// Hierarchy depth.
    pub depth: usize,
    /// Levels trained replicated (no communication).
    pub replicated_levels: usize,
    /// Levels trained sharded with delta exchange.
    pub sharded_levels: usize,
    /// Delta-exchange rounds (all sharded levels).
    pub exchanges: usize,
    /// Bytes put on the wire across all nodes.
    pub bytes_exchanged: usize,
    /// Seconds node 0 spent stalled on modeled interconnect transfers —
    /// the synchronization cost the single-node run does not pay.
    pub exchange_stall_seconds: f64,
    /// Source processings across all levels (the paper's update count).
    pub updates: u64,
    /// Wall-clock seconds spent coarsening (shared, done once).
    pub coarsening_seconds: f64,
    /// Wall-clock seconds from first level start to finest level end.
    pub training_seconds: f64,
    /// End-to-end wall-clock seconds.
    pub total_seconds: f64,
}

impl DistribReport {
    /// Positive-sample updates per training second.
    pub fn updates_per_sec(&self) -> f64 {
        if self.training_seconds > 0.0 {
            self.updates as f64 / self.training_seconds
        } else {
            0.0
        }
    }
}

/// What one node thread hands back at the end of the run.
struct NodeOutcome {
    matrix: Embedding,
    bytes_sent: usize,
    stall_seconds: f64,
    exchanges: usize,
}

/// Embed `g0` across `dcfg.nodes` simulated nodes. Returns node 0's
/// matrix (all replicas are identical after the final exchange) and the
/// run report. A node dying mid-run surfaces as [`TransportError`]
/// naming the dead peer — the caller's process survives to report it.
pub fn embed_distributed(
    g0: &Csr,
    cfg: &GoshConfig,
    dcfg: &DistribConfig,
) -> Result<(Embedding, DistribReport), TransportError> {
    assert!(dcfg.nodes >= 1, "a run needs at least one node");
    let t0 = Instant::now();

    // Coarsening happens once: the hierarchy is input data, identical on
    // every node of a real cluster (it is a function of the graph alone),
    // so recomputing it per node would only burn time.
    let hierarchy = match cfg.smoothing {
        Some(_) => coarsen_hierarchy(
            g0.clone(),
            &CoarsenConfig {
                threshold: cfg.coarsen_threshold,
                threads: cfg.threads,
                ..Default::default()
            },
        ),
        None => Hierarchy {
            graphs: vec![g0.clone()],
            maps: Vec::new(),
            stats: Vec::new(),
        },
    };
    let coarsening_seconds = t0.elapsed().as_secs_f64();

    let depth = hierarchy.depth();
    let p = cfg.smoothing.unwrap_or(1.0);
    let dist = epoch_distribution(cfg.epochs, p, depth);
    let link = Interconnect::new(dcfg.net_gbps);

    let mesh: Vec<Box<dyn Transport>> = match dcfg.transport {
        TransportKind::Channel => channel_mesh(dcfg.nodes)
            .into_iter()
            .map(|e| Box::new(e) as Box<dyn Transport>)
            .collect(),
        TransportKind::Tcp => tcp_mesh(dcfg.nodes)
            .map_err(|e| TransportError {
                op: "send",
                peer: "mesh".into(),
                tag: None,
                detail: format!("loopback mesh setup failed: {e}"),
            })?
            .into_iter()
            .map(|e| Box::new(e) as Box<dyn Transport>)
            .collect(),
    };

    let t_train = Instant::now();
    let results: Vec<Result<NodeOutcome, TransportError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|tp| {
                let hierarchy = &hierarchy;
                let dist = &dist;
                scope.spawn(move || run_node(tp, hierarchy, dist, cfg, dcfg, link))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    });
    let mut outcomes: Vec<NodeOutcome> = results.into_iter().collect::<Result<_, _>>()?;
    let training_seconds = t_train.elapsed().as_secs_f64();

    let mut replicated_levels = 0usize;
    let mut sharded_levels = 0usize;
    let mut updates = 0u64;
    for (g, &e_i) in hierarchy.graphs.iter().zip(&dist) {
        if e_i == 0 || g.num_edges() == 0 {
            continue;
        }
        if level_is_sharded(g, dcfg) {
            sharded_levels += 1;
        } else {
            replicated_levels += 1;
        }
        updates += e_i as u64 * (g.num_edges() as u64 / 2).max(1);
    }

    let bytes_exchanged = outcomes.iter().map(|o| o.bytes_sent).sum();
    let node0 = outcomes.remove(0);
    let report = DistribReport {
        nodes: dcfg.nodes,
        depth,
        replicated_levels,
        sharded_levels,
        exchanges: node0.exchanges,
        bytes_exchanged,
        exchange_stall_seconds: node0.stall_seconds,
        updates,
        coarsening_seconds,
        training_seconds,
        total_seconds: t0.elapsed().as_secs_f64(),
    };
    Ok((node0.matrix, report))
}

/// A level is sharded when the mesh has peers and the level is big
/// enough that its work dwarfs an exchange.
fn level_is_sharded(g: &Csr, dcfg: &DistribConfig) -> bool {
    dcfg.nodes > 1 && g.num_vertices() >= dcfg.shard_min
}

/// One node's whole run: walk the hierarchy coarsest→finest, train each
/// level replicated or sharded, expand between levels.
fn run_node(
    mut tp: Box<dyn Transport>,
    hierarchy: &Hierarchy,
    dist: &[u32],
    cfg: &GoshConfig,
    dcfg: &DistribConfig,
    link: Interconnect,
) -> Result<NodeOutcome, TransportError> {
    let node = tp.node();
    let nodes = tp.nodes();
    // A private runtime per node: nodes of a cluster do not share worker
    // pools, and a shared launch lock would serialize the very training
    // the mesh exists to parallelize.
    let rt = Runtime::new(cfg.threads);

    let coarsest = hierarchy.coarsest();
    let mut matrix = Embedding::random(coarsest.num_vertices(), cfg.dim, cfg.seed);
    let mut bytes_sent = 0usize;
    let mut stall_seconds = 0f64;
    let mut exchanges = 0usize;

    for i in (0..hierarchy.depth()).rev() {
        let g = &hierarchy.graphs[i];
        let e_i = dist[i];
        if e_i > 0 && g.num_edges() > 0 {
            // Distributed training always runs the f32 engine: deltas of
            // quantized rows do not sum losslessly across replicas.
            let params = TrainParams {
                dim: cfg.dim,
                negative_samples: cfg.negative_samples,
                lr: cfg.lr,
                epochs: e_i,
                similarity: Similarity::Adjacency,
                threads: cfg.threads,
                seed: cfg.seed ^ i as u64,
                precision: Precision::F32,
            };
            let plan = HogwildPlan::new(g);
            if !level_is_sharded(g, dcfg) {
                // Replicated: identical seeds + salt 0 → every node
                // computes the same matrix the single-node trainer would.
                let shared = SharedMatrix::from_embedding(&matrix);
                plan.run_range(&rt, g, &shared, &params, 0..e_i, e_i, 0..plan.sources(), 0);
                matrix = shared.to_embedding();
            } else {
                let span = shard_ranges(plan.sources(), nodes)[node].clone();
                let salt = (node as u64) << 32;
                let mut e0 = 0u32;
                while e0 < e_i {
                    let e1 = (e0 + dcfg.exchange_every.max(1)).min(e_i);
                    let shared = SharedMatrix::from_embedding(&matrix);
                    plan.run_range(&rt, g, &shared, &params, e0..e1, e_i, span.clone(), salt);
                    let current = shared.to_embedding();
                    matrix = exchange_deltas(
                        &mut *tp,
                        &link,
                        &matrix,
                        &current,
                        &mut bytes_sent,
                        &mut stall_seconds,
                    )?;
                    exchanges += 1;
                    e0 = e1;
                }
            }
        }
        if i > 0 {
            matrix = expand_embedding_parallel(&matrix, &hierarchy.maps[i - 1], cfg.threads);
        }
    }

    Ok(NodeOutcome {
        matrix,
        bytes_sent,
        stall_seconds,
        exchanges,
    })
}

/// One delta-exchange round. `base` is the replica state at the start of
/// the segment (identical on every node), `current` this node's state
/// after training its shard. Returns the reconciled matrix
/// `base + Σ_nodes (current_k − base)` — identical on every node.
fn exchange_deltas(
    tp: &mut dyn Transport,
    link: &Interconnect,
    base: &Embedding,
    current: &Embedding,
    bytes_sent: &mut usize,
    stall_seconds: &mut f64,
) -> Result<Embedding, TransportError> {
    let nodes = tp.nodes();
    let n = base.num_vertices();
    let d = base.dim();
    let mut delta: Vec<f32> = current
        .as_slice()
        .iter()
        .zip(base.as_slice())
        .map(|(&c, &b)| c - b)
        .collect();

    if tp.node() == 0 {
        // Gather in fixed id order: float addition order is part of the
        // result, so the order must not depend on arrival timing.
        for peer in 1..nodes {
            let (tag, payload) = tp.recv(peer)?;
            debug_assert_eq!(tag, TAG_DELTA);
            *stall_seconds += link.charge(payload.len()).as_secs_f64();
            for (acc, chunk) in delta.iter_mut().zip(payload.chunks_exact(4)) {
                *acc += f32::from_le_bytes(chunk.try_into().unwrap());
            }
        }
        let synced: Vec<f32> = base
            .as_slice()
            .iter()
            .zip(&delta)
            .map(|(&b, &dx)| b + dx)
            .collect();
        let payload = f32s_to_bytes(&synced);
        for peer in 1..nodes {
            tp.send(peer, TAG_BASE, &payload)?;
            *bytes_sent += payload.len();
        }
        Ok(Embedding::from_vec(synced, n, d))
    } else {
        let payload = f32s_to_bytes(&delta);
        *bytes_sent += payload.len();
        tp.send(0, TAG_DELTA, &payload)?;
        let (tag, body) = tp.recv(0)?;
        debug_assert_eq!(tag, TAG_BASE);
        *stall_seconds += link.charge(body.len()).as_secs_f64();
        let synced: Vec<f32> = body
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Embedding::from_vec(synced, n, d))
    }
}

fn f32s_to_bytes(xs: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 * xs.len());
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosh_graph::gen::{community_graph, CommunityConfig};

    fn cfg() -> GoshConfig {
        GoshConfig::default()
            .with_dim(16)
            .with_epochs(40)
            .with_threads(1)
    }

    #[test]
    fn single_node_matches_plain_cpu_pipeline_bitwise() {
        let g = community_graph(&CommunityConfig::new(600, 6), 41);
        let cfg = cfg();
        let dcfg = DistribConfig::default();
        let (dm, report) = embed_distributed(&g, &cfg, &dcfg).unwrap();

        // The reference: the plain CPU pipeline on the same config.
        let device = gosh_gpu::Device::new(gosh_gpu::DeviceConfig::titan_x());
        let (sm, _) = crate::pipeline::embed(
            &g,
            &cfg.with_backend(crate::backend::BackendChoice::Cpu),
            &device,
        );
        assert_eq!(dm.as_slice(), sm.as_slice());
        assert_eq!(report.exchanges, 0);
        assert_eq!(report.bytes_exchanged, 0);
        assert_eq!(report.sharded_levels, 0);
    }

    #[test]
    fn two_nodes_exchange_and_agree_with_each_other() {
        let g = community_graph(&CommunityConfig::new(700, 6), 43);
        let cfg = cfg();
        let dcfg = DistribConfig {
            nodes: 2,
            shard_min: 256, // force sharding on the fine levels
            exchange_every: 4,
            ..Default::default()
        };
        let (m, report) = embed_distributed(&g, &cfg, &dcfg).unwrap();
        assert_eq!(m.num_vertices(), g.num_vertices());
        assert!(m.as_slice().iter().all(|x| x.is_finite()));
        assert!(report.sharded_levels >= 1, "no level sharded: {report:?}");
        assert!(report.exchanges >= 1);
        assert!(report.bytes_exchanged > 0);
    }

    #[test]
    fn channel_and_tcp_wires_are_bit_identical() {
        let g = community_graph(&CommunityConfig::new(640, 5), 45);
        let cfg = cfg();
        let mk = |transport| DistribConfig {
            nodes: 2,
            transport,
            shard_min: 256,
            exchange_every: 4,
            ..Default::default()
        };
        let (a, _) = embed_distributed(&g, &cfg, &mk(TransportKind::Channel)).unwrap();
        let (b, _) = embed_distributed(&g, &cfg, &mk(TransportKind::Tcp)).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn replicated_levels_cost_no_bytes() {
        let g = community_graph(&CommunityConfig::new(500, 5), 47);
        let dcfg = DistribConfig {
            nodes: 3,
            shard_min: usize::MAX, // everything replicated
            ..Default::default()
        };
        let (m, report) = embed_distributed(&g, &cfg(), &dcfg).unwrap();
        assert_eq!(report.bytes_exchanged, 0);
        assert_eq!(report.sharded_levels, 0);
        assert!(m.as_slice().iter().all(|x| x.is_finite()));
    }
}
