//! Embedding projection between levels — `ExpandEmbedding` (Algorithm 2,
//! line 11): every fine vertex starts from its super-vertex's trained row,
//! `M_{i-1}[v] = M_i[map_{i-1}[v]]`.

use gosh_coarsen::mapping::Mapping;

use crate::model::Embedding;

/// Project a coarse matrix down one level through `mapping`.
pub fn expand_embedding(coarse: &Embedding, mapping: &Mapping) -> Embedding {
    assert_eq!(
        coarse.num_vertices(),
        mapping.num_clusters(),
        "matrix rows must match cluster count"
    );
    let d = coarse.dim();
    let n = mapping.num_fine();
    let mut fine = Embedding::zeros(n, d);
    for v in 0..n as u32 {
        let c = mapping.cluster_of(v);
        fine.row_mut(v).copy_from_slice(coarse.row(c));
    }
    fine
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_super_vertex_rows() {
        let mut coarse = Embedding::zeros(2, 3);
        coarse.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        coarse.row_mut(1).copy_from_slice(&[4.0, 5.0, 6.0]);
        let mapping = Mapping::new(vec![0, 1, 0, 1, 1], 2);
        let fine = expand_embedding(&coarse, &mapping);
        assert_eq!(fine.num_vertices(), 5);
        assert_eq!(fine.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(fine.row(2), &[1.0, 2.0, 3.0]);
        assert_eq!(fine.row(4), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn siblings_start_identical() {
        let coarse = Embedding::random(3, 8, 7);
        let mapping = Mapping::new(vec![2, 0, 2, 1, 2], 3);
        let fine = expand_embedding(&coarse, &mapping);
        assert_eq!(fine.row(0), fine.row(2));
        assert_eq!(fine.row(0), fine.row(4));
        assert_ne!(fine.row(0), fine.row(1));
    }

    #[test]
    #[should_panic(expected = "rows must match")]
    fn shape_mismatch_panics() {
        let coarse = Embedding::zeros(2, 3);
        let mapping = Mapping::new(vec![0, 1, 2], 3);
        expand_embedding(&coarse, &mapping);
    }
}
