//! Embedding projection between levels — `ExpandEmbedding` (Algorithm 2,
//! line 11): every fine vertex starts from its super-vertex's trained row,
//! `M_{i-1}[v] = M_i[map_{i-1}[v]]`.
//!
//! The projection at the finest level is an O(|V| · d) copy that sits
//! *between* two parallel training levels — left single-threaded it is a
//! serial stall in the middle of the pipeline, so
//! [`expand_embedding_parallel`] shards the copy over the worker team:
//! fine rows split into contiguous ranges, each thread fills its own
//! disjoint slice of the output matrix. The result is bit-identical to
//! the sequential [`expand_embedding`] for any thread count (it is a pure
//! gather — no arithmetic, no races), which the tests enforce.

use gosh_coarsen::mapping::Mapping;

use crate::model::Embedding;

fn check_shapes(coarse: &Embedding, mapping: &Mapping) {
    assert_eq!(
        coarse.num_vertices(),
        mapping.num_clusters(),
        "matrix rows must match cluster count"
    );
}

/// Fill one shard of the fine matrix: `slab` holds the rows for fine
/// vertices `v0 .. v0 + slab.len()/d`.
///
/// Coarsening assigns sibling vertices contiguous fine ids often enough
/// that the cluster sequence is run-heavy, so the gather is batched by
/// run: the coarse row is copied into the run's first row, then doubled
/// across the run with whole-slice `copy_from_slice` — wide memcpys
/// instead of `d`-element strided copies. Pure copies, so the output is
/// bitwise the same as the row-at-a-time loop for any run structure.
fn project_rows(slab: &mut [f32], d: usize, v0: u32, coarse: &Embedding, mapping: &Mapping) {
    let rows = slab.len() / d;
    let mut i = 0;
    while i < rows {
        let c = mapping.cluster_of(v0 + i as u32);
        let mut run = 1;
        while i + run < rows && mapping.cluster_of(v0 + (i + run) as u32) == c {
            run += 1;
        }
        let region = &mut slab[i * d..(i + run) * d];
        region[..d].copy_from_slice(coarse.row(c));
        // Double the filled prefix until the run is covered.
        let mut filled = d;
        while filled < region.len() {
            let (done, rest) = region.split_at_mut(filled);
            let take = filled.min(rest.len());
            rest[..take].copy_from_slice(&done[..take]);
            filled += take;
        }
        i += run;
    }
}

/// Project a coarse matrix down one level through `mapping` (sequential
/// reference).
pub fn expand_embedding(coarse: &Embedding, mapping: &Mapping) -> Embedding {
    check_shapes(coarse, mapping);
    let d = coarse.dim();
    let n = mapping.num_fine();
    let mut fine = Embedding::zeros(n, d);
    if n > 0 && d > 0 {
        project_rows(fine.as_mut_slice(), d, 0, coarse, mapping);
    }
    fine
}

/// Project a coarse matrix down one level with a worker team.
/// Bit-identical to [`expand_embedding`] for any `threads >= 1`.
pub fn expand_embedding_parallel(
    coarse: &Embedding,
    mapping: &Mapping,
    threads: usize,
) -> Embedding {
    check_shapes(coarse, mapping);
    let threads = threads.max(1);
    if threads == 1 {
        return expand_embedding(coarse, mapping);
    }
    let d = coarse.dim();
    let n = mapping.num_fine();
    let mut fine = Embedding::zeros(n, d);
    if n == 0 || d == 0 {
        return fine;
    }
    // Contiguous row ranges, one per thread: each worker owns a disjoint
    // `&mut` slab of the output, so the copy needs no synchronization at
    // all beyond the team join.
    let rows_per_shard = n.div_ceil(threads);
    let slabs: Vec<std::sync::Mutex<Option<&mut [f32]>>> = fine
        .as_mut_slice()
        .chunks_mut(rows_per_shard * d)
        .map(|s| std::sync::Mutex::new(Some(s)))
        .collect();
    gosh_runtime::map_jobs(threads, slabs.len(), |t| {
        let slab = slabs[t]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("slab claimed once");
        let v0 = (t * rows_per_shard) as u32;
        project_rows(slab, d, v0, coarse, mapping);
    });
    drop(slabs);
    fine
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_super_vertex_rows() {
        let mut coarse = Embedding::zeros(2, 3);
        coarse.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        coarse.row_mut(1).copy_from_slice(&[4.0, 5.0, 6.0]);
        let mapping = Mapping::new(vec![0, 1, 0, 1, 1], 2);
        let fine = expand_embedding(&coarse, &mapping);
        assert_eq!(fine.num_vertices(), 5);
        assert_eq!(fine.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(fine.row(2), &[1.0, 2.0, 3.0]);
        assert_eq!(fine.row(4), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn siblings_start_identical() {
        let coarse = Embedding::random(3, 8, 7);
        let mapping = Mapping::new(vec![2, 0, 2, 1, 2], 3);
        let fine = expand_embedding(&coarse, &mapping);
        assert_eq!(fine.row(0), fine.row(2));
        assert_eq!(fine.row(0), fine.row(4));
        assert_ne!(fine.row(0), fine.row(1));
    }

    #[test]
    fn parallel_expansion_is_bit_identical_to_sequential() {
        // Sizes straddle the shard boundaries: empty tail shards, ragged
        // last shard, single row, more threads than rows.
        for (k, n, d) in [
            (3usize, 7usize, 5usize),
            (16, 1000, 17),
            (1, 1, 4),
            (2, 3, 8),
        ] {
            let coarse = Embedding::random(k, d, 0xE0 + n as u64);
            let map: Vec<u32> = (0..n).map(|v| (v * 2654435761) as u32 % k as u32).collect();
            let mapping = Mapping::new(map, k);
            let seq = expand_embedding(&coarse, &mapping);
            for threads in [1, 2, 3, 4, 8, 16] {
                let par = expand_embedding_parallel(&coarse, &mapping, threads);
                assert_eq!(
                    seq.as_slice(),
                    par.as_slice(),
                    "k={k} n={n} d={d} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn run_batched_fill_matches_row_at_a_time() {
        // Run-heavy mappings (long sibling runs, runs crossing shard
        // boundaries, a run covering the whole matrix) against the naive
        // per-row gather.
        for (k, d, map) in [
            (2usize, 7usize, vec![0u32; 9]),
            (3, 5, vec![0, 0, 0, 1, 1, 2, 2, 2, 2, 2, 0]),
            (4, 16, (0..64).map(|v| (v / 13) as u32 % 4).collect()),
            (2, 1, vec![0, 1, 1, 0, 0, 0, 1]),
        ] {
            let n = map.len();
            let coarse = Embedding::random(k, d, 0x51 + n as u64);
            let mapping = Mapping::new(map, k);
            let mut naive = Embedding::zeros(n, d);
            for v in 0..n as u32 {
                naive
                    .row_mut(v)
                    .copy_from_slice(coarse.row(mapping.cluster_of(v)));
            }
            assert_eq!(
                expand_embedding(&coarse, &mapping).as_slice(),
                naive.as_slice()
            );
            for threads in [2, 3, 8] {
                assert_eq!(
                    expand_embedding_parallel(&coarse, &mapping, threads).as_slice(),
                    naive.as_slice(),
                    "k={k} n={n} d={d} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_expansion_handles_empty_mapping() {
        let coarse = Embedding::random(0, 4, 3);
        let mapping = Mapping::new(vec![], 0);
        let fine = expand_embedding_parallel(&coarse, &mapping, 4);
        assert_eq!(fine.num_vertices(), 0);
    }

    #[test]
    #[should_panic(expected = "rows must match")]
    fn shape_mismatch_panics() {
        let coarse = Embedding::zeros(2, 3);
        let mapping = Mapping::new(vec![0, 1, 2], 3);
        expand_embedding(&coarse, &mapping);
    }

    #[test]
    #[should_panic(expected = "rows must match")]
    fn parallel_shape_mismatch_panics() {
        let coarse = Embedding::zeros(2, 3);
        let mapping = Mapping::new(vec![0, 1, 2], 3);
        expand_embedding_parallel(&coarse, &mapping, 4);
    }
}
