//! Multi-GPU training — the extension §1 promises ("it can easily be
//! extended to the multi-GPU setting").
//!
//! The scheme is synchronous data parallelism, the one GraphVite-style
//! systems use for replicated matrices: every device holds a full replica
//! of `M_i`, each epoch's source list is sharded across devices, devices
//! train their shard concurrently (Hogwild within a device, isolated
//! between devices), and replicas are averaged at the epoch barrier. The
//! epoch-synchronization requirement of §3.1 maps directly onto the
//! barrier, and per-device sampling uses disjoint RNG streams so the
//! shards do not duplicate work.

use gosh_gpu::{Access, Device, DeviceError, FloatBuffer, LaunchConfig};
use gosh_graph::csr::Csr;

use crate::backend::TrainParams;
use crate::model::Embedding;
use crate::schedule::decayed_lr;
use crate::train_cpu::train_cpu;
use crate::train_gpu::DeviceGraph;

/// One device's replica: graph + matrix resident together.
struct Replica {
    device: Device,
    graph: DeviceGraph,
    matrix: FloatBuffer,
}

/// Train `host` on `g` across several devices with synchronous replica
/// averaging. Uses the optimized kernel on every device.
///
/// With an empty device list the replica set degenerates to the host:
/// training falls back to the sharded CPU Hogwild engine
/// ([`crate::train_cpu::train_cpu`]), so callers can hand over whatever
/// device inventory they discovered — including none.
///
/// Errors if any device cannot hold a full replica (replicated data
/// parallelism needs the whole matrix per device; for matrices beyond a
/// single device, use the partitioned path of [`crate::large`]).
pub fn train_multi_gpu(
    devices: &[Device],
    g: &Csr,
    host: &mut Embedding,
    params: &TrainParams,
) -> Result<(), DeviceError> {
    if devices.is_empty() {
        train_cpu(g, host, params);
        return Ok(());
    }
    assert_eq!(
        g.num_vertices(),
        host.num_vertices(),
        "graph/matrix mismatch"
    );
    assert_eq!(host.dim(), params.dim, "dimension mismatch");
    if g.num_edges() == 0 {
        return Ok(());
    }

    let mut replicas = Vec::with_capacity(devices.len());
    for device in devices {
        replicas.push(Replica {
            device: device.clone(),
            graph: DeviceGraph::upload(device, g)?,
            matrix: device.upload_floats(host.as_slice())?,
        });
    }
    let num_devices = replicas.len();
    let sources_total = replicas[0].graph.sources_per_epoch();
    let shard = sources_total.div_ceil(num_devices);

    let mut averaged = host.as_slice().to_vec();
    let mut scratch = vec![0f32; averaged.len()];

    for epoch in 0..params.epochs {
        let lr_now = decayed_lr(params.lr, epoch, params.epochs);
        // Each device trains its shard concurrently (separate worker pools).
        std::thread::scope(|scope| {
            for (dev_idx, replica) in replicas.iter().enumerate() {
                let start = dev_idx * shard;
                let end = ((dev_idx + 1) * shard).min(sources_total);
                if start >= end {
                    continue;
                }
                scope.spawn(move || {
                    shard_epoch(replica, params, lr_now, epoch, start, end);
                });
            }
        });

        // Epoch barrier: average the replicas and redistribute.
        averaged.iter_mut().for_each(|x| *x = 0.0);
        let weight = 1.0 / num_devices as f32;
        for replica in &replicas {
            replica.matrix.copy_to_host_at(0, &mut scratch);
            for (acc, &x) in averaged.iter_mut().zip(&scratch) {
                *acc += weight * x;
            }
        }
        for replica in &replicas {
            replica.matrix.copy_from_host_at(0, &averaged);
        }
    }

    host.as_mut_slice().copy_from_slice(&averaged);
    Ok(())
}

/// One device's share of one epoch: sources `[start, end)` of the arc
/// schedule, optimized kernel (§3.1).
fn shard_epoch(
    replica: &Replica,
    params: &TrainParams,
    lr: f32,
    epoch: u32,
    start: usize,
    end: usize,
) {
    let d = params.dim;
    let ns = params.negative_samples;
    let graph = &replica.graph;
    let matrix = &replica.matrix;
    let n = graph.num_vertices() as u32;
    let num_arcs = graph.num_arcs();
    let xadj = graph.xadj_slice();
    let adj = graph.adj_slice();
    let arc_src = graph.arc_src_slice();

    replica
        .device
        .launch(LaunchConfig::new(end - start, 2 * d), |w, scratch| {
            let (src_row, tmp) = scratch.split_at_mut(d);
            let s = start + w.id();
            let src = arc_src[(2 * s + epoch as usize) % num_arcs] as usize;
            w.global_read_row(matrix, src * d, src_row, Access::Coalesced);
            w.shared_store(d);
            let (lo, hi) = (xadj[src] as usize, xadj[src + 1] as usize);
            let deg = (hi - lo) as u32;
            let mut one = |u: usize, b: f32| {
                w.global_read_row(matrix, u * d, tmp, Access::Coalesced);
                let dot = w.dot(src_row, tmp);
                let score = (b - w.sigmoid(dot)) * lr;
                w.global_axpy_row(matrix, u * d, score, src_row, Access::Coalesced);
                w.shared_axpy(score, tmp, src_row);
            };
            if deg > 0 {
                let u = adj[lo + w.rand_below(deg) as usize] as usize;
                one(u, 1.0);
            }
            for _ in 0..ns {
                one(w.rand_below(n) as usize, 0.0);
            }
            w.global_write_row(matrix, src * d, src_row, Access::Coalesced);
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosh_gpu::DeviceConfig;
    use gosh_graph::gen::{community_graph, CommunityConfig};

    fn params(epochs: u32) -> TrainParams {
        TrainParams::adjacency(16, 3, 0.05, epochs)
    }

    fn quality(m: &Embedding, g: &Csr) -> f32 {
        // Mean cosine over edges minus mean cosine over random pairs.
        let edges: Vec<_> = g.undirected_edges().take(400).collect();
        let edge_cos: f32 =
            edges.iter().map(|&(u, v)| m.cosine(u, v)).sum::<f32>() / edges.len() as f32;
        let n = g.num_vertices() as u32;
        let rand_cos: f32 = (0..400u32)
            .map(|i| m.cosine(i % n, (i * 7 + 13) % n))
            .sum::<f32>()
            / 400.0;
        edge_cos - rand_cos
    }

    #[test]
    fn two_devices_learn_like_one() {
        let g = community_graph(&CommunityConfig::new(512, 8), 31);
        let single = vec![Device::new(DeviceConfig::titan_x())];
        let double = vec![
            Device::new(DeviceConfig::titan_x()),
            Device::new(DeviceConfig::titan_x()),
        ];
        let mut m1 = Embedding::random(512, 16, 7);
        let mut m2 = m1.clone();
        train_multi_gpu(&single, &g, &mut m1, &params(80)).unwrap();
        train_multi_gpu(&double, &g, &mut m2, &params(80)).unwrap();
        let (q1, q2) = (quality(&m1, &g), quality(&m2, &g));
        // Both must clearly learn; replica averaging changes the exact
        // trajectory (it can even act as an ensemble and help), so the
        // two runs only need to land in the same quality regime.
        assert!(q1 > 0.25, "single-device quality {q1}");
        assert!(q2 > 0.25, "dual-device quality {q2}");
    }

    #[test]
    fn four_devices_shard_all_sources() {
        let g = community_graph(&CommunityConfig::new(256, 6), 33);
        let devices: Vec<Device> = (0..4)
            .map(|_| Device::new(DeviceConfig::titan_x()))
            .collect();
        let mut m = Embedding::random(256, 16, 9);
        let before = m.clone();
        train_multi_gpu(&devices, &g, &mut m, &params(10)).unwrap();
        assert_ne!(m, before);
        // Every device did real work.
        for d in &devices {
            assert!(d.snapshot().warps > 0);
        }
        // All replicas freed.
        for d in &devices {
            assert_eq!(d.allocated_bytes(), 0);
        }
    }

    #[test]
    fn replica_that_does_not_fit_errors() {
        let g = community_graph(&CommunityConfig::new(512, 6), 35);
        let devices = vec![
            Device::new(DeviceConfig::titan_x()),
            Device::new(DeviceConfig::tiny(1024)), // cannot hold the replica
        ];
        let mut m = Embedding::random(512, 16, 11);
        assert!(train_multi_gpu(&devices, &g, &mut m, &params(5)).is_err());
    }

    #[test]
    fn empty_graph_is_noop() {
        let g = Csr::empty(8);
        let devices = vec![Device::new(DeviceConfig::titan_x())];
        let mut m = Embedding::random(8, 16, 1);
        let before = m.clone();
        train_multi_gpu(&devices, &g, &mut m, &params(3)).unwrap();
        assert_eq!(m, before);
    }

    #[test]
    fn no_devices_falls_back_to_host_hogwild() {
        let g = community_graph(&CommunityConfig::new(256, 6), 37);
        let mut m = Embedding::random(256, 16, 13);
        let p = TrainParams {
            threads: 4,
            ..params(60)
        };
        train_multi_gpu(&[], &g, &mut m, &p).unwrap();
        assert!(m.as_slice().iter().all(|x| x.is_finite()));
        assert!(quality(&m, &g) > 0.25, "host fallback failed to learn");
    }
}
