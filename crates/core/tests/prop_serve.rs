//! Property-based tests for the query engines: batching and the worker
//! team are pure execution detail. One batch through `search_batch` at
//! any thread count must be bit-identical (ids *and* score bits) to the
//! same queries answered one at a time — scores accumulate in a fixed
//! order per `(store, row, query)` and ties break on the row id total
//! order, so nothing observable may depend on scheduling.

use gosh_core::model::Embedding;
use gosh_core::quant::Precision;
use gosh_core::serve::{search_batch, search_exact, IvfIndex};
use gosh_core::store::{write_store, EmbeddingStore};
use proptest::prelude::*;

fn precision_from(idx: usize) -> Precision {
    [Precision::F32, Precision::F16, Precision::I8][idx % 3]
}

fn store_for(n: usize, dim: usize, precision: Precision, seed: u64) -> EmbeddingStore {
    let dir = std::env::temp_dir().join("gosh-prop-serve");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-case.embin", std::process::id()));
    let m = Embedding::random(n, dim, seed);
    write_store(&path, &m, precision).unwrap();
    EmbeddingStore::open(&path).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ISSUE satellite: batched execution is bit-identical to
    /// one-at-a-time across worker teams of 1, 2, 4, and 8 threads,
    /// for both engines and all three stored precisions.
    #[test]
    fn batched_queries_are_bit_identical_across_thread_counts(
        n in 2usize..150,
        dim in 1usize..24,
        nq in 1usize..10,
        k in 1usize..12,
        seed in 0u64..u64::MAX,
        pidx in 0usize..3,
    ) {
        let store = store_for(n, dim, precision_from(pidx), seed);
        let queries = Embedding::random(nq, dim, seed ^ 0x9E37_79B9).as_slice().to_vec();
        let index = IvfIndex::build(&store, 2);
        let nprobe = (index.nlist() / 2).max(1);

        // One-at-a-time references, single-threaded.
        let exact_ref: Vec<_> = queries
            .chunks_exact(dim)
            .map(|q| search_exact(&store, q, k))
            .collect();
        let ivf_ref: Vec<_> = queries
            .chunks_exact(dim)
            .map(|q| index.search(&store, q, k, nprobe))
            .collect();

        for threads in [1usize, 2, 4, 8] {
            let exact = search_batch(&store, None, &queries, k, 0, threads);
            prop_assert_eq!(&exact, &exact_ref, "exact diverged at {} threads", threads);
            let ivf = search_batch(&store, Some(&index), &queries, k, nprobe, threads);
            prop_assert_eq!(&ivf, &ivf_ref, "ivf diverged at {} threads", threads);
        }
    }

    /// Probing every list makes IVF a partition-ordered exact search:
    /// same ids, same score bits, any thread count.
    #[test]
    fn full_probe_ivf_equals_exact(
        n in 2usize..100,
        dim in 1usize..16,
        k in 1usize..8,
        seed in 0u64..u64::MAX,
        pidx in 0usize..3,
    ) {
        let store = store_for(n, dim, precision_from(pidx), seed);
        let q = Embedding::random(1, dim, seed ^ 0x51F0).as_slice().to_vec();
        let index = IvfIndex::build(&store, 4);
        let exact = search_exact(&store, &q, k);
        let full = index.search(&store, &q, k, index.nlist());
        prop_assert_eq!(exact, full);
    }
}
