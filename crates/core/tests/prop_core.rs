//! Property-based tests for the training core: the Algorithm 1 update,
//! the epoch schedule, embedding expansion, and the large-graph path's
//! host-side machinery (sample pools, Belady eviction).

use std::sync::atomic::{AtomicU64, Ordering};

use gosh_coarsen::mapping::Mapping;
use gosh_core::expand::expand_embedding;
use gosh_core::large::pools::NO_SAMPLE;
use gosh_core::large::{farthest_future_victim, generate_pool, inside_out_pairs, Partition};
use gosh_core::model::{pack_pair, unpack_pair, Embedding};
use gosh_core::quant::{
    dequantize_row_i8, f16_bits_to_f32, f32_to_f16_bits, quantize_roundtrip, quantize_row_i8,
    Precision,
};
use gosh_core::schedule::{decayed_lr, epoch_distribution};
use gosh_core::simd::{
    dot8, dot8_scalar, dot_pairs, dot_pairs_scalar, update_pairs, update_pairs_scalar,
};
use gosh_core::update::update_embedding;
use gosh_graph::builder::csr_from_edges;
use proptest::prelude::*;

/// A random graph plus a partition of its vertices.
fn graph_and_partition() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, usize)> {
    (8usize..120).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..600);
        let parts = 2usize..=n.min(9);
        (Just(n), edges, parts)
    })
}

fn row(d: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0f32..1.0, d..=d)
}

/// Rows of every length around the 8-lane boundaries (1..=40 covers
/// sub-lane, exact-group, and ragged-remainder shapes), values spanning
/// several orders of magnitude so accumulation order actually matters.
fn ragged_row() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..=40)
}

/// Pack an f32 slice (even length) into SharedMatrix pair cells.
fn to_pairs(xs: &[f32]) -> Vec<AtomicU64> {
    xs.chunks(2)
        .map(|p| AtomicU64::new(pack_pair(p[0], p[1])))
        .collect()
}

proptest! {
    #[test]
    fn positive_updates_never_decrease_similarity(
        mut src in row(8),
        mut sam in row(8),
        lr in 0.001f32..0.2,
    ) {
        let before: f32 = src.iter().zip(&sam).map(|(a, b)| a * b).sum();
        update_embedding(&mut src, &mut sam, 1.0, lr);
        let after: f32 = src.iter().zip(&sam).map(|(a, b)| a * b).sum();
        // σ(x) < 1 always, so a positive update moves dot upward (up to
        // second-order effects bounded by lr²; allow tiny slack).
        prop_assert!(after >= before - lr * lr, "{before} -> {after}");
    }

    #[test]
    fn negative_updates_never_increase_similarity(
        mut src in row(8),
        mut sam in row(8),
        lr in 0.001f32..0.2,
    ) {
        let before: f32 = src.iter().zip(&sam).map(|(a, b)| a * b).sum();
        update_embedding(&mut src, &mut sam, 0.0, lr);
        let after: f32 = src.iter().zip(&sam).map(|(a, b)| a * b).sum();
        prop_assert!(after <= before + lr * lr, "{before} -> {after}");
    }

    #[test]
    fn updates_keep_values_finite(
        mut src in row(16),
        mut sam in row(16),
        b in prop::bool::ANY,
        lr in 0.0f32..1.0,
    ) {
        update_embedding(&mut src, &mut sam, if b { 1.0 } else { 0.0 }, lr);
        prop_assert!(src.iter().chain(&sam).all(|x| x.is_finite()));
    }

    #[test]
    fn epoch_distribution_conserves_budget(
        e in 50u32..5000,
        p in 0.0f64..=1.0,
        levels in 1usize..12,
    ) {
        let dist = epoch_distribution(e, p, levels);
        prop_assert_eq!(dist.len(), levels);
        prop_assert!(dist.iter().all(|&x| x >= 1));
        let total: u32 = dist.iter().sum();
        // Rounding each level can drift by at most half an epoch per level.
        let slack = levels as u32 + 1;
        prop_assert!(total >= e.saturating_sub(slack) && total <= e + slack,
            "total {} vs budget {}", total, e);
    }

    #[test]
    fn epoch_distribution_is_monotone_toward_coarse(
        e in 100u32..5000,
        p in 0.0f64..0.99,
        levels in 2usize..10,
    ) {
        let dist = epoch_distribution(e, p, levels);
        for w in dist.windows(2) {
            prop_assert!(w[1] >= w[0], "{:?}", dist);
        }
    }

    #[test]
    fn lr_decay_is_monotone_and_floored(lr in 0.001f32..0.5, e in 1u32..1000) {
        let mut prev = f32::INFINITY;
        for j in 0..=e {
            let cur = decayed_lr(lr, j, e);
            prop_assert!(cur > 0.0);
            prop_assert!(cur <= prev);
            prev = cur;
        }
        prop_assert!(decayed_lr(lr, e, e) >= lr * 1e-4 * 0.99);
    }

    #[test]
    fn expansion_preserves_rows(
        k in 1usize..10,
        d in 1usize..8,
        assignment in prop::collection::vec(0usize..10, 1..50),
    ) {
        let coarse = Embedding::random(k, d, 11);
        let map: Vec<u32> = assignment.iter().map(|&a| (a % k) as u32).collect();
        let mapping = Mapping::new(map.clone(), k);
        let fine = expand_embedding(&coarse, &mapping);
        prop_assert_eq!(fine.num_vertices(), map.len());
        for (v, &c) in map.iter().enumerate() {
            prop_assert_eq!(fine.row(v as u32), coarse.row(c));
        }
    }

    #[test]
    fn pool_targets_live_in_counterpart_or_sentinel(
        (n, edges, k) in graph_and_partition(),
        b in 1usize..7,
        seed in 0u64..1000,
    ) {
        // Every pool entry is either NO_SAMPLE or a *neighbour of its
        // source* inside the counterpart part — across random graphs,
        // partitions, pairs, and batch sizes.
        let g = csr_from_edges(n, &edges);
        let p = Partition::new(n, k);
        for &pair in inside_out_pairs(k).iter() {
            let pool = generate_pool(&g, &p, pair, b, 2, seed);
            let (a, bb) = pair;
            prop_assert_eq!(pool.fwd.len(), p.len(a) * b);
            let range_a = p.range(a);
            let range_b = p.range(bb);
            for (i, chunk) in pool.fwd.chunks(b).enumerate() {
                let v = range_a.start + i as u32;
                for &t in chunk {
                    if t != NO_SAMPLE {
                        prop_assert!(range_b.contains(&t),
                            "fwd target {} of {} outside part {}", t, v, bb);
                        prop_assert!(g.has_edge(v, t), "({},{}) not an edge", v, t);
                    }
                }
            }
            if a == bb {
                prop_assert!(pool.rev.is_empty());
            } else {
                prop_assert_eq!(pool.rev.len(), p.len(bb) * b);
                for (i, chunk) in pool.rev.chunks(b).enumerate() {
                    let v = range_b.start + i as u32;
                    for &t in chunk {
                        if t != NO_SAMPLE {
                            prop_assert!(range_a.contains(&t),
                                "rev target {} of {} outside part {}", t, v, a);
                            prop_assert!(g.has_edge(v, t), "({},{}) not an edge", v, t);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pools_are_identical_for_fixed_seed_across_thread_counts(
        (n, edges, k) in graph_and_partition(),
        b in 1usize..7,
        seed in 0u64..1000,
        t1 in 1usize..9,
        t2 in 1usize..9,
    ) {
        // Chunk-seeded RNG: the pool bytes depend on the seed only,
        // never on which worker claimed which chunk.
        let g = csr_from_edges(n, &edges);
        let p = Partition::new(n, k);
        let pair = *inside_out_pairs(k).last().unwrap();
        let x = generate_pool(&g, &p, pair, b, t1, seed);
        let y = generate_pool(&g, &p, pair, b, t2, seed);
        prop_assert_eq!(x.fwd, y.fwd);
        prop_assert_eq!(x.rev, y.rev);
    }

    #[test]
    fn belady_victim_matches_brute_force_oracle(
        held in prop::collection::vec(0usize..12, 2..6),
        future_raw in prop::collection::vec((0usize..12, 0usize..12), 0..40),
        pinned in prop::collection::vec(0usize..12, 0..3),
    ) {
        // The eviction choice in ensure_resident: among unpinned bins,
        // the held part whose next use is farthest away (never = ∞),
        // ties to the lowest bin. Checked against a direct re-derivation.
        let holds: Vec<Option<usize>> = held.iter().copied().map(Some).collect();
        let future: Vec<(usize, usize)> =
            future_raw.iter().map(|&(a, b)| (a.max(b), a.min(b))).collect();
        let oracle = held
            .iter()
            .enumerate()
            .filter(|(_, p)| !pinned.contains(p))
            .map(|(bin, &p)| {
                let dist = future
                    .iter()
                    .position(|&(x, y)| x == p || y == p)
                    .unwrap_or(usize::MAX);
                (bin, dist)
            })
            // max_by_key returns the *last* max; the planner takes the
            // first, so compare with strict greater-than by hand.
            .fold(None::<(usize, usize)>, |best, (bin, dist)| match best {
                Some((_, bd)) if dist <= bd => best,
                _ => Some((bin, dist)),
            })
            .map(|(bin, _)| bin);
        let got = farthest_future_victim(&holds, &pinned, &future);
        prop_assert_eq!(got, oracle, "holds {:?} pinned {:?}", held, pinned);
    }
}

// ---------------------------------------------------------------------------
// SIMD dispatch vs scalar core — the bit-parity contract of `gosh_core::simd`
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn dot8_dispatch_matches_scalar_core_bitwise(
        a in ragged_row(),
        b in ragged_row(),
    ) {
        // The runtime-dispatched path (AVX2 where detected) must produce
        // the *bits* of the scalar lane-group reference for every row
        // length — sub-lane, full groups, ragged remainders.
        let n = a.len().min(b.len());
        let x = dot8(&a[..n], &b[..n]);
        let y = dot8_scalar(&a[..n], &b[..n]);
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y} at n={n}");
    }

    #[test]
    fn pair_kernels_dispatch_matches_scalar_core_bitwise(
        vals in prop::collection::vec(-100.0f32..100.0, 1..=40),
        sam in prop::collection::vec(-100.0f32..100.0, 1..=40),
        score in -0.2f32..0.2,
    ) {
        // Staged-source-vs-atomic-pair-row kernels, the fused_update hot
        // loop: dot and the two-sided axpy, dispatch vs scalar, across
        // unaligned dims (odd d gets a zero pad lane like train_cpu does).
        let d = vals.len().min(sam.len());
        let pairs = d.div_ceil(2);
        let mut src = vals[..d].to_vec();
        src.resize(2 * pairs, 0.0);
        let mut padded_sam = sam[..d].to_vec();
        padded_sam.resize(2 * pairs, 0.0);

        let cells_a = to_pairs(&padded_sam);
        let cells_b = to_pairs(&padded_sam);
        let da = dot_pairs(&src, &cells_a);
        let db = dot_pairs_scalar(&src, &cells_b);
        prop_assert_eq!(da.to_bits(), db.to_bits(), "dot {da} vs {db} at d={d}");

        let mut src_a = src.clone();
        let mut src_b = src.clone();
        update_pairs(&mut src_a, &cells_a, score);
        update_pairs_scalar(&mut src_b, &cells_b, score);
        for (k, (x, y)) in src_a.iter().zip(&src_b).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "src lane {k} at d={d}");
        }
        for (k, (wa, wb)) in cells_a.iter().zip(&cells_b).enumerate() {
            prop_assert_eq!(
                wa.load(Ordering::Relaxed),
                wb.load(Ordering::Relaxed),
                "sample cell {} at d={}", k, d
            );
        }
    }

    #[test]
    fn zero_padding_to_lane_width_is_invisible(
        vals in prop::collection::vec(-50.0f32..50.0, 1..=24),
    ) {
        // The staged-row trick train_cpu relies on: padding a row with
        // zeros up to the paired-lane width must not change the dot bits
        // (remainder elements land in lanes 0..r, zeros add nothing).
        let mut padded = vals.clone();
        padded.resize(vals.len().next_multiple_of(8), 0.0);
        let x = dot8(&vals, &vals);
        let y = dot8(&padded, &padded);
        prop_assert_eq!(x.to_bits(), y.to_bits());
    }
}

// ---------------------------------------------------------------------------
// Quantized storage round trips — `gosh_core::quant`
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn i8_quantization_is_monotone_with_exact_zero_point(
        vals in prop::collection::vec(-1000.0f32..1000.0, 1..=64),
    ) {
        let mut codes = vec![0u8; vals.len()];
        let rs = quantize_row_i8(&vals, &mut codes);
        prop_assert!(rs.scale.is_finite() && rs.scale >= 0.0);
        prop_assert!(rs.zero.is_finite());

        // Monotone: larger value never gets a smaller code.
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                if vals[i] <= vals[j] {
                    prop_assert!(codes[i] <= codes[j],
                        "x[{}]={} <= x[{}]={} but codes {} > {}",
                        i, vals[i], j, vals[j], codes[i], codes[j]);
                }
            }
        }

        let mut out = vec![0f32; vals.len()];
        dequantize_row_i8(&codes, rs, &mut out);
        let lo = vals.iter().copied().fold(f32::INFINITY, f32::min);
        for (k, (&y, &x)) in out.iter().zip(&vals).enumerate() {
            prop_assert!(y.is_finite(), "lane {k} decoded non-finite");
            // Zero-point: the row minimum decodes exactly.
            if x == lo {
                prop_assert_eq!(y, x, "min lane {} decoded {} != {}", k, y, x);
            }
            // Nearest-code decode error is half a step plus f32 rounding.
            let tol = rs.scale * 0.5 + lo.abs().max(x.abs()) * 1e-5 + 1e-6;
            prop_assert!((y - x).abs() <= tol, "lane {k}: {y} vs {x} (tol {tol})");
        }
    }

    #[test]
    fn i8_quantization_never_leaks_non_finite(
        raw in prop::collection::vec((0u8..7, -1e30f32..1e30), 1..=32),
    ) {
        // Selectors 4..6 inject NaN/±Inf among ordinary magnitudes.
        let vals: Vec<f32> = raw
            .iter()
            .map(|&(sel, x)| match sel {
                4 => f32::NAN,
                5 => f32::INFINITY,
                6 => f32::NEG_INFINITY,
                _ => x,
            })
            .collect();
        // Rows contaminated with NaN/Inf must still produce finite decode
        // parameters and finite decoded lanes — a poisoned vertex cannot
        // poison the whole shared matrix through its scale pair.
        let mut codes = vec![0u8; vals.len()];
        let rs = quantize_row_i8(&vals, &mut codes);
        prop_assert!(rs.scale.is_finite() && rs.zero.is_finite());
        let mut out = vec![0f32; vals.len()];
        dequantize_row_i8(&codes, rs, &mut out);
        prop_assert!(out.iter().all(|y| y.is_finite()), "{out:?}");
    }

    #[test]
    fn f16_roundtrip_is_accurate_and_idempotent(
        x in -60000.0f32..60000.0,
    ) {
        let y = f16_bits_to_f32(f32_to_f16_bits(x));
        // RNE to 11 significand bits: relative error ≤ 2^-11 in the
        // normal range, absolute ≤ half the subnormal step below it.
        let tol = (x.abs() * (1.0 / 2048.0)).max(2.0f32.powi(-25));
        prop_assert!((y - x).abs() <= tol, "{x} -> {y}");
        // A second trip is the identity: stores of already-f16 values
        // must not drift.
        let z = f16_bits_to_f32(f32_to_f16_bits(y));
        prop_assert_eq!(z.to_bits(), y.to_bits());
    }

    #[test]
    fn quantize_roundtrip_is_stable(
        rows in 1usize..6,
        d in 1usize..20,
        seed in 0u64..500,
    ) {
        // Repeated quantize∘dequantize must not drift: f16 is exactly
        // idempotent (every decoded value is an f16 value), and i8 — whose
        // second pass re-derives the scale from decoded endpoints, shifting
        // it by an ulp — moves values by at most a few ulps of the row
        // range, orders of magnitude below one quantization step.
        let m = Embedding::random(rows, d, seed);
        for precision in [Precision::F16, Precision::I8] {
            let mut once = m.as_slice().to_vec();
            quantize_roundtrip(&mut once, d, precision);
            prop_assert!(once.iter().all(|x| x.is_finite()));
            let mut twice = once.clone();
            quantize_roundtrip(&mut twice, d, precision);
            if precision == Precision::F16 {
                let same = once.iter().zip(&twice).all(|(a, b)| a.to_bits() == b.to_bits());
                prop_assert!(same, "f16 roundtrip not idempotent");
            } else {
                for (row_a, row_b) in once.chunks(d).zip(twice.chunks(d)) {
                    let lo = row_a.iter().copied().fold(f32::INFINITY, f32::min);
                    let hi = row_a.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let tol = (hi - lo) * 1e-6 + 1e-12;
                    for (a, b) in row_a.iter().zip(row_b) {
                        prop_assert!((a - b).abs() <= tol, "i8 drift {a} -> {b} (tol {tol})");
                    }
                }
            }
        }
    }

    #[test]
    fn pack_pair_roundtrips_bits(a in 0u32..=u32::MAX, b in 0u32..=u32::MAX) {
        // Every bit pattern, NaN payloads and infinities included.
        let (x, y) = unpack_pair(pack_pair(f32::from_bits(a), f32::from_bits(b)));
        prop_assert_eq!(x.to_bits(), a);
        prop_assert_eq!(y.to_bits(), b);
    }
}
