//! Property-based tests for the training core: the Algorithm 1 update,
//! the epoch schedule, and embedding expansion.

use gosh_coarsen::mapping::Mapping;
use gosh_core::expand::expand_embedding;
use gosh_core::model::Embedding;
use gosh_core::schedule::{decayed_lr, epoch_distribution};
use gosh_core::update::update_embedding;
use proptest::prelude::*;

fn row(d: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0f32..1.0, d..=d)
}

proptest! {
    #[test]
    fn positive_updates_never_decrease_similarity(
        mut src in row(8),
        mut sam in row(8),
        lr in 0.001f32..0.2,
    ) {
        let before: f32 = src.iter().zip(&sam).map(|(a, b)| a * b).sum();
        update_embedding(&mut src, &mut sam, 1.0, lr);
        let after: f32 = src.iter().zip(&sam).map(|(a, b)| a * b).sum();
        // σ(x) < 1 always, so a positive update moves dot upward (up to
        // second-order effects bounded by lr²; allow tiny slack).
        prop_assert!(after >= before - lr * lr, "{before} -> {after}");
    }

    #[test]
    fn negative_updates_never_increase_similarity(
        mut src in row(8),
        mut sam in row(8),
        lr in 0.001f32..0.2,
    ) {
        let before: f32 = src.iter().zip(&sam).map(|(a, b)| a * b).sum();
        update_embedding(&mut src, &mut sam, 0.0, lr);
        let after: f32 = src.iter().zip(&sam).map(|(a, b)| a * b).sum();
        prop_assert!(after <= before + lr * lr, "{before} -> {after}");
    }

    #[test]
    fn updates_keep_values_finite(
        mut src in row(16),
        mut sam in row(16),
        b in prop::bool::ANY,
        lr in 0.0f32..1.0,
    ) {
        update_embedding(&mut src, &mut sam, if b { 1.0 } else { 0.0 }, lr);
        prop_assert!(src.iter().chain(&sam).all(|x| x.is_finite()));
    }

    #[test]
    fn epoch_distribution_conserves_budget(
        e in 50u32..5000,
        p in 0.0f64..=1.0,
        levels in 1usize..12,
    ) {
        let dist = epoch_distribution(e, p, levels);
        prop_assert_eq!(dist.len(), levels);
        prop_assert!(dist.iter().all(|&x| x >= 1));
        let total: u32 = dist.iter().sum();
        // Rounding each level can drift by at most half an epoch per level.
        let slack = levels as u32 + 1;
        prop_assert!(total >= e.saturating_sub(slack) && total <= e + slack,
            "total {} vs budget {}", total, e);
    }

    #[test]
    fn epoch_distribution_is_monotone_toward_coarse(
        e in 100u32..5000,
        p in 0.0f64..0.99,
        levels in 2usize..10,
    ) {
        let dist = epoch_distribution(e, p, levels);
        for w in dist.windows(2) {
            prop_assert!(w[1] >= w[0], "{:?}", dist);
        }
    }

    #[test]
    fn lr_decay_is_monotone_and_floored(lr in 0.001f32..0.5, e in 1u32..1000) {
        let mut prev = f32::INFINITY;
        for j in 0..=e {
            let cur = decayed_lr(lr, j, e);
            prop_assert!(cur > 0.0);
            prop_assert!(cur <= prev);
            prev = cur;
        }
        prop_assert!(decayed_lr(lr, e, e) >= lr * 1e-4 * 0.99);
    }

    #[test]
    fn expansion_preserves_rows(
        k in 1usize..10,
        d in 1usize..8,
        assignment in prop::collection::vec(0usize..10, 1..50),
    ) {
        let coarse = Embedding::random(k, d, 11);
        let map: Vec<u32> = assignment.iter().map(|&a| (a % k) as u32).collect();
        let mapping = Mapping::new(map.clone(), k);
        let fine = expand_embedding(&coarse, &mapping);
        prop_assert_eq!(fine.num_vertices(), map.len());
        for (v, &c) in map.iter().enumerate() {
            prop_assert_eq!(fine.row(v as u32), coarse.row(c));
        }
    }
}
