//! Property-based tests for the training core: the Algorithm 1 update,
//! the epoch schedule, embedding expansion, and the large-graph path's
//! host-side machinery (sample pools, Belady eviction).

use gosh_coarsen::mapping::Mapping;
use gosh_core::expand::expand_embedding;
use gosh_core::large::pools::NO_SAMPLE;
use gosh_core::large::{farthest_future_victim, generate_pool, inside_out_pairs, Partition};
use gosh_core::model::Embedding;
use gosh_core::schedule::{decayed_lr, epoch_distribution};
use gosh_core::update::update_embedding;
use gosh_graph::builder::csr_from_edges;
use proptest::prelude::*;

/// A random graph plus a partition of its vertices.
fn graph_and_partition() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, usize)> {
    (8usize..120).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..600);
        let parts = 2usize..=n.min(9);
        (Just(n), edges, parts)
    })
}

fn row(d: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0f32..1.0, d..=d)
}

proptest! {
    #[test]
    fn positive_updates_never_decrease_similarity(
        mut src in row(8),
        mut sam in row(8),
        lr in 0.001f32..0.2,
    ) {
        let before: f32 = src.iter().zip(&sam).map(|(a, b)| a * b).sum();
        update_embedding(&mut src, &mut sam, 1.0, lr);
        let after: f32 = src.iter().zip(&sam).map(|(a, b)| a * b).sum();
        // σ(x) < 1 always, so a positive update moves dot upward (up to
        // second-order effects bounded by lr²; allow tiny slack).
        prop_assert!(after >= before - lr * lr, "{before} -> {after}");
    }

    #[test]
    fn negative_updates_never_increase_similarity(
        mut src in row(8),
        mut sam in row(8),
        lr in 0.001f32..0.2,
    ) {
        let before: f32 = src.iter().zip(&sam).map(|(a, b)| a * b).sum();
        update_embedding(&mut src, &mut sam, 0.0, lr);
        let after: f32 = src.iter().zip(&sam).map(|(a, b)| a * b).sum();
        prop_assert!(after <= before + lr * lr, "{before} -> {after}");
    }

    #[test]
    fn updates_keep_values_finite(
        mut src in row(16),
        mut sam in row(16),
        b in prop::bool::ANY,
        lr in 0.0f32..1.0,
    ) {
        update_embedding(&mut src, &mut sam, if b { 1.0 } else { 0.0 }, lr);
        prop_assert!(src.iter().chain(&sam).all(|x| x.is_finite()));
    }

    #[test]
    fn epoch_distribution_conserves_budget(
        e in 50u32..5000,
        p in 0.0f64..=1.0,
        levels in 1usize..12,
    ) {
        let dist = epoch_distribution(e, p, levels);
        prop_assert_eq!(dist.len(), levels);
        prop_assert!(dist.iter().all(|&x| x >= 1));
        let total: u32 = dist.iter().sum();
        // Rounding each level can drift by at most half an epoch per level.
        let slack = levels as u32 + 1;
        prop_assert!(total >= e.saturating_sub(slack) && total <= e + slack,
            "total {} vs budget {}", total, e);
    }

    #[test]
    fn epoch_distribution_is_monotone_toward_coarse(
        e in 100u32..5000,
        p in 0.0f64..0.99,
        levels in 2usize..10,
    ) {
        let dist = epoch_distribution(e, p, levels);
        for w in dist.windows(2) {
            prop_assert!(w[1] >= w[0], "{:?}", dist);
        }
    }

    #[test]
    fn lr_decay_is_monotone_and_floored(lr in 0.001f32..0.5, e in 1u32..1000) {
        let mut prev = f32::INFINITY;
        for j in 0..=e {
            let cur = decayed_lr(lr, j, e);
            prop_assert!(cur > 0.0);
            prop_assert!(cur <= prev);
            prev = cur;
        }
        prop_assert!(decayed_lr(lr, e, e) >= lr * 1e-4 * 0.99);
    }

    #[test]
    fn expansion_preserves_rows(
        k in 1usize..10,
        d in 1usize..8,
        assignment in prop::collection::vec(0usize..10, 1..50),
    ) {
        let coarse = Embedding::random(k, d, 11);
        let map: Vec<u32> = assignment.iter().map(|&a| (a % k) as u32).collect();
        let mapping = Mapping::new(map.clone(), k);
        let fine = expand_embedding(&coarse, &mapping);
        prop_assert_eq!(fine.num_vertices(), map.len());
        for (v, &c) in map.iter().enumerate() {
            prop_assert_eq!(fine.row(v as u32), coarse.row(c));
        }
    }

    #[test]
    fn pool_targets_live_in_counterpart_or_sentinel(
        (n, edges, k) in graph_and_partition(),
        b in 1usize..7,
        seed in 0u64..1000,
    ) {
        // Every pool entry is either NO_SAMPLE or a *neighbour of its
        // source* inside the counterpart part — across random graphs,
        // partitions, pairs, and batch sizes.
        let g = csr_from_edges(n, &edges);
        let p = Partition::new(n, k);
        for &pair in inside_out_pairs(k).iter() {
            let pool = generate_pool(&g, &p, pair, b, 2, seed);
            let (a, bb) = pair;
            prop_assert_eq!(pool.fwd.len(), p.len(a) * b);
            let range_a = p.range(a);
            let range_b = p.range(bb);
            for (i, chunk) in pool.fwd.chunks(b).enumerate() {
                let v = range_a.start + i as u32;
                for &t in chunk {
                    if t != NO_SAMPLE {
                        prop_assert!(range_b.contains(&t),
                            "fwd target {} of {} outside part {}", t, v, bb);
                        prop_assert!(g.has_edge(v, t), "({},{}) not an edge", v, t);
                    }
                }
            }
            if a == bb {
                prop_assert!(pool.rev.is_empty());
            } else {
                prop_assert_eq!(pool.rev.len(), p.len(bb) * b);
                for (i, chunk) in pool.rev.chunks(b).enumerate() {
                    let v = range_b.start + i as u32;
                    for &t in chunk {
                        if t != NO_SAMPLE {
                            prop_assert!(range_a.contains(&t),
                                "rev target {} of {} outside part {}", t, v, a);
                            prop_assert!(g.has_edge(v, t), "({},{}) not an edge", v, t);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pools_are_identical_for_fixed_seed_across_thread_counts(
        (n, edges, k) in graph_and_partition(),
        b in 1usize..7,
        seed in 0u64..1000,
        t1 in 1usize..9,
        t2 in 1usize..9,
    ) {
        // Chunk-seeded RNG: the pool bytes depend on the seed only,
        // never on which worker claimed which chunk.
        let g = csr_from_edges(n, &edges);
        let p = Partition::new(n, k);
        let pair = *inside_out_pairs(k).last().unwrap();
        let x = generate_pool(&g, &p, pair, b, t1, seed);
        let y = generate_pool(&g, &p, pair, b, t2, seed);
        prop_assert_eq!(x.fwd, y.fwd);
        prop_assert_eq!(x.rev, y.rev);
    }

    #[test]
    fn belady_victim_matches_brute_force_oracle(
        held in prop::collection::vec(0usize..12, 2..6),
        future_raw in prop::collection::vec((0usize..12, 0usize..12), 0..40),
        pinned in prop::collection::vec(0usize..12, 0..3),
    ) {
        // The eviction choice in ensure_resident: among unpinned bins,
        // the held part whose next use is farthest away (never = ∞),
        // ties to the lowest bin. Checked against a direct re-derivation.
        let holds: Vec<Option<usize>> = held.iter().copied().map(Some).collect();
        let future: Vec<(usize, usize)> =
            future_raw.iter().map(|&(a, b)| (a.max(b), a.min(b))).collect();
        let oracle = held
            .iter()
            .enumerate()
            .filter(|(_, p)| !pinned.contains(p))
            .map(|(bin, &p)| {
                let dist = future
                    .iter()
                    .position(|&(x, y)| x == p || y == p)
                    .unwrap_or(usize::MAX);
                (bin, dist)
            })
            // max_by_key returns the *last* max; the planner takes the
            // first, so compare with strict greater-than by hand.
            .fold(None::<(usize, usize)>, |best, (bin, dist)| match best {
                Some((_, bd)) if dist <= bd => best,
                _ => Some((bin, dist)),
            })
            .map(|(bin, _)| bin);
        let got = farthest_future_victim(&holds, &pinned, &future);
        prop_assert_eq!(got, oracle, "holds {:?} pinned {:?}", held, pinned);
    }
}
