//! Fuzz-style property tests for the `.embin` reader: the file is
//! untrusted input, so *no* byte-level damage — truncation, bit flips,
//! arbitrary garbage — may ever panic, allocate toward a forged size, or
//! open successfully while inconsistent. Every header byte is covered by
//! a validation rule and the payload by the checksum, so any single-bit
//! flip of a valid store must be rejected, not just "usually caught".

use gosh_core::model::Embedding;
use gosh_core::quant::{quantize_roundtrip, Precision};
use gosh_core::store::{write_store, EmbeddingStore, EMBIN_HEADER_BYTES, EMBIN_MAGIC};
use proptest::prelude::*;

fn precision_from(idx: usize) -> Precision {
    [Precision::F32, Precision::F16, Precision::I8][idx % 3]
}

/// Write a fresh valid store for one proptest case and return its bytes.
fn valid_store_bytes(n: usize, dim: usize, precision: Precision, seed: u64) -> Vec<u8> {
    let dir = std::env::temp_dir().join("gosh-prop-store");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-gen.embin", std::process::id()));
    let m = Embedding::random(n, dim, seed);
    write_store(&path, &m, precision).unwrap();
    std::fs::read(&path).unwrap()
}

/// Round-trip `bytes` through a file and the full open-time validation.
fn open_bytes(bytes: &[u8], tag: &str) -> std::io::Result<EmbeddingStore> {
    let dir = std::env::temp_dir().join("gosh-prop-store");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-{tag}.embin", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    EmbeddingStore::open(&path)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_is_bit_identical_to_the_canonical_decode(
        n in 1usize..40,
        dim in 1usize..24,
        seed in 0u64..u64::MAX,
        pidx in 0usize..3,
    ) {
        let precision = precision_from(pidx);
        let m = Embedding::random(n, dim, seed);
        let dir = std::env::temp_dir().join("gosh-prop-store");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-rt.embin", std::process::id()));
        write_store(&path, &m, precision).unwrap();
        let store = EmbeddingStore::open(&path).unwrap();
        prop_assert_eq!(store.num_vertices(), n);
        prop_assert_eq!(store.dim(), dim);
        prop_assert_eq!(store.precision(), precision);

        let mut canonical = m.as_slice().to_vec();
        quantize_roundtrip(&mut canonical, dim, precision);
        let decoded = store.to_embedding();
        let want: Vec<u32> = canonical.iter().map(|x| x.to_bits()).collect();
        let got: Vec<u32> = decoded.as_slice().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(want, got);
    }

    #[test]
    fn any_truncation_of_a_valid_store_is_rejected(
        n in 1usize..20,
        dim in 1usize..16,
        seed in 0u64..u64::MAX,
        pidx in 0usize..3,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = valid_store_bytes(n, dim, precision_from(pidx), seed);
        // Any strict prefix: header implies a length the file cannot have.
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(
            open_bytes(&bytes[..cut], "cut").is_err(),
            "truncation to {cut}/{} bytes opened",
            bytes.len()
        );
        // Appended garbage is the dual failure: too long, same check.
        let mut long = bytes.clone();
        long.push(0u8);
        prop_assert!(open_bytes(&long, "long").is_err(), "oversize file opened");
    }

    #[test]
    fn any_single_bit_flip_of_a_valid_store_is_rejected(
        n in 1usize..20,
        dim in 1usize..16,
        seed in 0u64..u64::MAX,
        pidx in 0usize..3,
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = valid_store_bytes(n, dim, precision_from(pidx), seed);
        let pos = ((bytes.len() - 1) as f64 * flip_frac) as usize;
        bytes[pos] ^= 1 << bit;
        // Header bytes are each pinned by a rule (magic, version,
        // precision code, reserved zeros, counts vs file length, stored
        // checksum); payload bytes are pinned by the checksum. So every
        // flip must surface as InvalidData.
        let err = open_bytes(&bytes, "flip");
        prop_assert!(
            err.is_err(),
            "bit {bit} of byte {pos} flipped silently (header is {EMBIN_HEADER_BYTES} bytes)"
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_reader(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        match open_bytes(&bytes, "garbage") {
            // Random bytes opening at all requires forging the magic,
            // version, counts matching the length, *and* the checksum.
            Ok(_) => prop_assert!(
                bytes.len() >= EMBIN_HEADER_BYTES && &bytes[..8] == EMBIN_MAGIC,
                "garbage opened without even the magic present"
            ),
            Err(e) => prop_assert!(
                e.kind() == std::io::ErrorKind::InvalidData
                    || e.kind() == std::io::ErrorKind::UnexpectedEof,
                "unexpected error kind {:?}",
                e.kind()
            ),
        }
    }
}
