//! Property-based tests for the multi-node replica trainer: the wire is
//! an implementation detail (channel vs TCP must be bit-identical), one
//! node is the single-node pipeline (bit-identical to the CPU backend),
//! and replication never touches the network.
//!
//! Cases are few and graphs small: every case runs full multilevel
//! training across a real transport mesh.

use gosh_core::backend::BackendChoice;
use gosh_core::config::{GoshConfig, Preset};
use gosh_core::distrib::{embed_distributed, DistribConfig, TransportKind};
use gosh_core::pipeline::embed;
use gosh_gpu::{Device, DeviceConfig};
use gosh_graph::gen::{community_graph, CommunityConfig};
use proptest::prelude::*;

/// A small training config; one thread because these tests compare runs
/// bitwise and multi-threaded Hogwild is racy by design.
fn train_cfg(dim: usize, epochs: u32, seed: u64) -> GoshConfig {
    let mut cfg = GoshConfig::preset(Preset::Normal, false)
        .with_dim(dim)
        .with_epochs(epochs)
        .with_threads(1);
    cfg.seed = seed;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn channel_and_tcp_transports_are_bit_identical(
        vertices in 60usize..160,
        degree in 4usize..8,
        seed in 0u64..u64::MAX,
        nodes in 2usize..=3,
        exchange_every in 1u32..5,
    ) {
        let g = community_graph(&CommunityConfig::new(vertices, degree), seed);
        let cfg = train_cfg(8, 12, seed);
        let dcfg = DistribConfig {
            nodes,
            transport: TransportKind::Channel,
            exchange_every,
            shard_min: 32,
            ..Default::default()
        };
        let (m_chan, r_chan) = embed_distributed(&g, &cfg, &dcfg).unwrap();
        let (m_tcp, r_tcp) = embed_distributed(
            &g,
            &cfg,
            &DistribConfig { transport: TransportKind::Tcp, ..dcfg },
        ).unwrap();
        prop_assert_eq!(m_chan.as_slice(), m_tcp.as_slice());
        prop_assert_eq!(r_chan.exchanges, r_tcp.exchanges);
        prop_assert_eq!(r_chan.bytes_exchanged, r_tcp.bytes_exchanged);
    }

    #[test]
    fn one_node_is_the_single_node_pipeline_bitwise(
        vertices in 60usize..200,
        degree in 4usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let g = community_graph(&CommunityConfig::new(vertices, degree), seed);
        let cfg = train_cfg(8, 12, seed).with_backend(BackendChoice::Cpu);
        let device = Device::new(DeviceConfig::titan_x());
        let (m_plain, _) = embed(&g, &cfg, &device);
        let (m_one, report) = embed_distributed(
            &g,
            &cfg,
            &DistribConfig { nodes: 1, ..Default::default() },
        ).unwrap();
        prop_assert_eq!(m_plain.as_slice(), m_one.as_slice());
        prop_assert_eq!(report.bytes_exchanged, 0);
    }

    #[test]
    fn replicated_levels_never_touch_the_wire(
        vertices in 60usize..160,
        degree in 4usize..8,
        seed in 0u64..u64::MAX,
        nodes in 2usize..=3,
    ) {
        let g = community_graph(&CommunityConfig::new(vertices, degree), seed);
        let cfg = train_cfg(8, 10, seed);
        let dcfg = DistribConfig {
            nodes,
            shard_min: usize::MAX, // every level replicated
            ..Default::default()
        };
        let (m, report) = embed_distributed(&g, &cfg, &dcfg).unwrap();
        prop_assert_eq!(report.bytes_exchanged, 0);
        prop_assert_eq!(report.sharded_levels, 0);
        prop_assert!(m.as_slice().iter().all(|x| x.is_finite()));
    }
}
