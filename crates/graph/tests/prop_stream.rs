//! Property-based tests for the edge-delta streaming layer: applying a
//! delta to a CSR must be **byte-identical** to rebuilding the graph
//! from scratch over the edited edge set, sequentially and at every
//! thread count — the invariant that lets the incremental pipeline
//! share baselines with the static one.

use std::collections::HashSet;

use gosh_graph::builder::csr_from_edges;
use gosh_graph::stream::{apply_delta, apply_delta_parallel, EdgeDelta};
use proptest::prelude::*;

/// Strategy: a base edge list over up to 48 vertices plus a random
/// insert/delete sequence that may also name up to 16 new vertices.
#[allow(clippy::type_complexity)]
fn base_and_ops() -> impl Strategy<Value = (usize, Vec<(u32, u32)>, Vec<(bool, u32, u32)>)> {
    (4usize..48).prop_flat_map(|n| {
        let base = prop::collection::vec((0..n as u32, 0..n as u32), 0..192);
        let hi = n as u32 + 16;
        let ops = prop::collection::vec((prop::bool::ANY, 0..hi, 0..hi), 0..96);
        (Just(n), base, ops)
    })
}

/// The normalized undirected edge `{u, v}` (loops excluded by callers).
fn norm(u: u32, v: u32) -> (u32, u32) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// The model: `(E ∪ I) \ D` over normalized undirected pairs.
fn edited_edge_set(
    base: &[(u32, u32)],
    ops: &[(bool, u32, u32)],
) -> (HashSet<(u32, u32)>, EdgeDelta) {
    let mut set: HashSet<(u32, u32)> = base
        .iter()
        .filter(|&&(u, v)| u != v)
        .map(|&(u, v)| norm(u, v))
        .collect();
    let mut delta = EdgeDelta::new();
    let mut ins: HashSet<(u32, u32)> = HashSet::new();
    let mut del: HashSet<(u32, u32)> = HashSet::new();
    for &(is_insert, u, v) in ops {
        if is_insert {
            delta.insert(u, v);
            if u != v {
                ins.insert(norm(u, v));
            }
        } else {
            delta.delete(u, v);
            if u != v {
                del.insert(norm(u, v));
            }
        }
    }
    set.extend(&ins);
    for e in &del {
        set.remove(e);
    }
    (set, delta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The tentpole invariant: `apply_delta` equals a from-scratch build
    /// of the edited edge set, byte for byte (deletion wins inside one
    /// batch; new vertices extend the id range).
    #[test]
    fn apply_delta_is_byte_identical_to_rebuild((n, base, ops) in base_and_ops()) {
        let g = csr_from_edges(n, &base);
        let (set, delta) = edited_edge_set(&base, &ops);
        let n_final = n.max(delta.min_vertices());
        let edited: Vec<(u32, u32)> = set.iter().copied().collect();
        let rebuilt = csr_from_edges(n_final, &edited);
        let applied = apply_delta(&g, &delta);
        prop_assert_eq!(&applied, &rebuilt);
        // And the result upholds the CSR contract independently.
        prop_assert!(applied.is_symmetric());
        prop_assert!(applied.has_no_self_loops());
    }

    /// The parallel path is byte-identical to the sequential one at every
    /// thread count the repo pins (1/2/4/8).
    #[test]
    fn parallel_apply_matches_sequential_at_every_thread_count(
        (n, base, ops) in base_and_ops()
    ) {
        let g = csr_from_edges(n, &base);
        let (_, delta) = edited_edge_set(&base, &ops);
        let reference = apply_delta(&g, &delta);
        for threads in [1usize, 2, 4, 8] {
            let par = apply_delta_parallel(&g, &delta, threads);
            prop_assert_eq!(&par, &reference, "threads = {}", threads);
        }
    }

    /// Epochs compose: applying two deltas one after the other equals a
    /// rebuild over the sequentially edited set — a deletion followed by
    /// a later-epoch insertion restores the edge.
    #[test]
    fn sequential_epochs_compose(
        (n, base, ops) in base_and_ops(),
        ops2 in prop::collection::vec((prop::bool::ANY, 0u32..64, 0u32..64), 0..64)
    ) {
        let g = csr_from_edges(n, &base);
        let (set1, d1) = edited_edge_set(&base, &ops);
        let g1 = apply_delta(&g, &d1);
        let mid: Vec<(u32, u32)> = set1.iter().copied().collect();
        let (set2, d2) = edited_edge_set(&mid, &ops2);
        let g2 = apply_delta(&g1, &d2);
        let n_final = g1.num_vertices().max(d2.min_vertices());
        let edited: Vec<(u32, u32)> = set2.iter().copied().collect();
        prop_assert_eq!(&g2, &csr_from_edges(n_final, &edited));
    }

    /// The dirty set covers every named endpoint and every new vertex.
    #[test]
    fn dirty_set_covers_endpoints_and_new_vertices((n, base, ops) in base_and_ops()) {
        let (_, delta) = edited_edge_set(&base, &ops);
        let dirty = gosh_graph::stream::EdgeDelta::dirty_vertices(&delta, n);
        prop_assert!(dirty.windows(2).all(|w| w[0] < w[1]), "not sorted-unique");
        let have: HashSet<u32> = dirty.into_iter().collect();
        for &(_, u, v) in &ops {
            if u != v {
                prop_assert!(have.contains(&u) && have.contains(&v));
            }
        }
        for v in n..delta.min_vertices() {
            prop_assert!(have.contains(&(v as u32)), "new vertex {} not dirty", v);
        }
    }
}
