//! Determinism proptests for the parallel ingestion path: for any input
//! the worker-team parser must be byte-identical to the sequential
//! reference `read_edge_list` — same CSR, same `original_ids`, same
//! reported counts — across thread counts and chunk sizes, including
//! comment/blank/CRLF-heavy inputs with sparse recurring ids, weight
//! columns, self loops, and duplicates.

use std::io::Cursor;

use gosh_graph::ingest::{read_edge_list_parallel, IngestConfig};
use gosh_graph::io::read_edge_list;
use proptest::prelude::*;

/// One encoded line: `kind` 0 = blank, 1–2 = comment, otherwise an edge
/// `u v` (ids drawn from a small pool then sparsified so the same id
/// recurs across chunks), optionally weighted (`w >= 40`, rendered as
/// `w - 40` so negative weights appear too), optionally padded with
/// leading whitespace.
type LineSpec = ((usize, u64), (u64, u64), bool);

fn line_specs() -> impl Strategy<Value = Vec<LineSpec>> {
    prop::collection::vec(
        (
            (0usize..16, 0u64..24),
            (0u64..24, 0u64..140),
            prop::bool::ANY,
        ),
        0..64,
    )
}

fn render(lines: &[LineSpec], crlf: bool, trailing: bool) -> String {
    let sep = if crlf { "\r\n" } else { "\n" };
    let mut text = String::new();
    for (i, &((kind, u), (v, w), pad)) in lines.iter().enumerate() {
        if i > 0 {
            text.push_str(sep);
        }
        match kind {
            0 => {}
            1 => text.push_str(&format!("# comment {u} {v}")),
            2 => text.push_str(&format!("% konect header {w}")),
            _ => {
                if pad {
                    text.push_str("  \t");
                }
                // Sparsify: SNAP-style non-contiguous ids.
                text.push_str(&format!("{} {}", u * 1_000_003 + 17, v * 1_000_003 + 17));
                if w >= 40 {
                    text.push_str(&format!("\t{}.25", w as i64 - 80));
                }
            }
        }
    }
    if trailing && !text.is_empty() {
        text.push_str(sep);
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_parse_is_byte_identical_to_sequential(
        lines in line_specs(),
        crlf in prop::bool::ANY,
        trailing in prop::bool::ANY,
    ) {
        let text = render(&lines, crlf, trailing);
        let seq = read_edge_list(Cursor::new(text.as_bytes())).unwrap();
        for threads in [1usize, 2, 4, 8] {
            for chunk_bytes in [1usize, 9, 57, 1 << 16] {
                let cfg = IngestConfig { threads, chunk_bytes };
                let par = read_edge_list_parallel(text.as_bytes(), &cfg).unwrap();
                prop_assert_eq!(&par.graph, &seq.graph,
                    "graph diverged at threads={} chunk_bytes={}", threads, chunk_bytes);
                prop_assert_eq!(&par.original_ids, &seq.original_ids,
                    "ids diverged at threads={} chunk_bytes={}", threads, chunk_bytes);
                prop_assert_eq!(par.stats, seq.stats,
                    "stats diverged at threads={} chunk_bytes={}", threads, chunk_bytes);
            }
        }
    }

    #[test]
    fn parallel_errors_match_sequential(
        lines in line_specs(),
        bad_at in 0usize..64,
        bad_kind in 0usize..4,
    ) {
        // Splice a malformed line into the document: both parsers must
        // reject it with the same message and line number.
        let text = render(&lines, false, true);
        let bad = match bad_kind {
            0 => "bogus",
            1 => "12 noninteger",
            2 => "1 2 not-a-weight",
            _ => "1 2 3.0 too many",
        };
        let mut doc_lines: Vec<&str> = text.lines().collect();
        let at = bad_at.min(doc_lines.len());
        doc_lines.insert(at, bad);
        let broken = doc_lines.join("\n");
        let seq_msg = read_edge_list(Cursor::new(broken.as_bytes()))
            .unwrap_err()
            .to_string();
        for threads in [1usize, 3, 8] {
            for chunk_bytes in [1usize, 23, 1 << 16] {
                let cfg = IngestConfig { threads, chunk_bytes };
                let err = read_edge_list_parallel(broken.as_bytes(), &cfg).unwrap_err();
                prop_assert_eq!(err.to_string(), seq_msg.clone());
            }
        }
    }
}
