//! Property-based tests for the graph substrate: CSR construction, split
//! invariants, and generator cleanliness over randomized inputs.

use gosh_graph::builder::csr_from_edges;
use gosh_graph::gen::{barabasi_albert, erdos_renyi, rmat, RmatConfig};
use gosh_graph::split::{train_test_split, SplitConfig};
use proptest::prelude::*;

/// Strategy: a random edge list over up to 64 vertices.
fn edge_list() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..64).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..256);
        (Just(n), edges)
    })
}

proptest! {
    #[test]
    fn builder_output_is_always_clean((n, edges) in edge_list()) {
        let g = csr_from_edges(n, &edges);
        prop_assert_eq!(g.num_vertices(), n);
        prop_assert!(g.is_symmetric());
        prop_assert!(g.has_no_self_loops());
        // Sorted, deduplicated neighbour lists.
        for v in 0..n as u32 {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn builder_preserves_every_non_loop_edge((n, edges) in edge_list()) {
        let g = csr_from_edges(n, &edges);
        for &(u, v) in &edges {
            if u != v {
                prop_assert!(g.has_edge(u, v), "missing edge ({}, {})", u, v);
                prop_assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn builder_invents_no_edges((n, edges) in edge_list()) {
        let g = csr_from_edges(n, &edges);
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                let present = edges.iter().any(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u));
                prop_assert!(present, "invented edge ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn split_partitions_edges((n, edges) in edge_list(), seed in 0u64..1000) {
        let g = csr_from_edges(n, &edges);
        let s = train_test_split(&g, &SplitConfig { train_fraction: 0.8, seed });
        let total = g.num_undirected_edges();
        let split_total = s.train.num_undirected_edges() + s.test_edges.len() + s.dropped_test_edges;
        prop_assert_eq!(total, split_total);
        // Test edges never appear in train.
        for &(u, v) in &s.test_edges {
            prop_assert!(!s.train.has_edge(u, v));
        }
        prop_assert_eq!(s.train.num_isolated(), 0);
    }

    #[test]
    fn erdos_renyi_clean(n in 2usize..256, seed in 0u64..50) {
        let m = n * 3;
        let g = erdos_renyi(n, m, seed);
        prop_assert!(g.is_symmetric());
        prop_assert!(g.has_no_self_loops());
        prop_assert!(g.num_undirected_edges() <= m);
    }

    #[test]
    fn rmat_clean(scale in 4u32..10, seed in 0u64..20) {
        let g = rmat(&RmatConfig::graph500(scale, 4.0), seed);
        prop_assert_eq!(g.num_vertices(), 1usize << scale);
        prop_assert!(g.is_symmetric());
        prop_assert!(g.has_no_self_loops());
    }

    #[test]
    fn ba_connected_and_clean(n in 8usize..128, k in 1usize..4, seed in 0u64..20) {
        let g = barabasi_albert(n, k, seed);
        prop_assert!(g.is_symmetric());
        prop_assert!(g.has_no_self_loops());
        prop_assert_eq!(g.num_isolated(), 0);
    }
}
