//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on SNAP/KONECT graphs (Table 2). Those datasets are
//! not redistributable here, so experiments use synthetic stand-ins whose
//! vertex counts, edge counts and degree skew are chosen to mimic each
//! dataset at laptop scale. RMAT reproduces the heavy-tailed, hub-dominated
//! structure that drives GOSH's coarsening behaviour; Erdős–Rényi and
//! Barabási–Albert cover the flat and preferential-attachment extremes for
//! tests and ablations.

pub mod barabasi_albert;
pub mod community;
pub mod erdos_renyi;
pub mod powerlaw_cluster;
pub mod rmat;
pub mod suite;

pub use barabasi_albert::barabasi_albert;
pub use community::{community_graph, community_graph_with_labels, CommunityConfig};
pub use erdos_renyi::erdos_renyi;
pub use powerlaw_cluster::{powerlaw_cluster, sampled_clustering};
pub use rmat::{rmat, RmatConfig};
pub use suite::{dataset, Dataset, LARGE_SUITE, MEDIUM_SUITE};
