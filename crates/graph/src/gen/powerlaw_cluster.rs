//! Holme–Kim "powerlaw cluster" generator.
//!
//! Barabási–Albert preferential attachment with a triad-formation step:
//! after wiring a new vertex to a preferentially chosen target `u`, each
//! subsequent edge closes a triangle through a random neighbour of `u`
//! with probability `triangle_p`. The result has both the heavy-tailed
//! degree distribution GOSH's coarsening exploits *and* the high
//! clustering coefficient that makes held-out edges predictable — the two
//! structural properties of the paper's social/web datasets that the
//! evaluation depends on (pure R-MAT lacks the second).

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::rng::Xorshift128Plus;

/// Generate a Holme–Kim graph: `n` vertices, `k` edges per newcomer,
/// triad-formation probability `triangle_p` in `[0, 1]`.
pub fn powerlaw_cluster(n: usize, k: usize, triangle_p: f64, seed: u64) -> Csr {
    assert!(k >= 1, "attachment count must be positive");
    assert!(n > k, "need more vertices than attachments");
    assert!(
        (0.0..=1.0).contains(&triangle_p),
        "probability out of range"
    );
    let mut rng = Xorshift128Plus::new(seed);
    // Degree-proportional sampling via the repeated-endpoints multiset.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * k);
    let mut b = GraphBuilder::new(n);
    b.reserve(n * k);
    // Neighbour lists maintained incrementally for the triad step.
    let mut nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];

    let connect = |b: &mut GraphBuilder,
                   endpoints: &mut Vec<u32>,
                   nbrs: &mut Vec<Vec<u32>>,
                   u: u32,
                   v: u32| {
        b.add_edge(u, v);
        endpoints.push(u);
        endpoints.push(v);
        nbrs[u as usize].push(v);
        nbrs[v as usize].push(u);
    };

    // Seed clique over the first k+1 vertices.
    for u in 0..=(k as u32) {
        for v in 0..u {
            connect(&mut b, &mut endpoints, &mut nbrs, u, v);
        }
    }

    for u in (k as u32 + 1)..(n as u32) {
        let mut added: Vec<u32> = Vec::with_capacity(k);
        // First edge: always preferential.
        let mut last_target = loop {
            let t = endpoints[rng.below(endpoints.len() as u32) as usize];
            if t != u {
                break t;
            }
        };
        connect(&mut b, &mut endpoints, &mut nbrs, u, last_target);
        added.push(last_target);

        let mut guard = 0usize;
        while added.len() < k && guard < 64 * k {
            guard += 1;
            // Triad step: close a triangle through the last target.
            if rng.next_f64() < triangle_p {
                let cand = &nbrs[last_target as usize];
                if !cand.is_empty() {
                    let w = cand[rng.below(cand.len() as u32) as usize];
                    if w != u && !added.contains(&w) {
                        connect(&mut b, &mut endpoints, &mut nbrs, u, w);
                        added.push(w);
                        continue;
                    }
                }
            }
            // Preferential step.
            let t = endpoints[rng.below(endpoints.len() as u32) as usize];
            if t != u && !added.contains(&t) {
                connect(&mut b, &mut endpoints, &mut nbrs, u, t);
                added.push(t);
                last_target = t;
            }
        }
    }
    b.build()
}

/// Global clustering estimate: fraction of sampled length-2 paths that
/// close into triangles (used by tests and dataset diagnostics).
pub fn sampled_clustering(g: &Csr, samples: usize, seed: u64) -> f64 {
    let mut rng = Xorshift128Plus::new(seed);
    let n = g.num_vertices() as u32;
    if n == 0 {
        return 0.0;
    }
    let mut closed = 0usize;
    let mut total = 0usize;
    let mut guard = 0usize;
    while total < samples && guard < samples * 50 {
        guard += 1;
        let v = rng.below(n);
        let d = g.degree(v);
        if d < 2 {
            continue;
        }
        let a = g.neighbor_at(v, rng.below(d as u32) as usize);
        let c = g.neighbor_at(v, rng.below(d as u32) as usize);
        if a == c {
            continue;
        }
        total += 1;
        if g.has_edge(a, c) {
            closed += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        closed as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            powerlaw_cluster(300, 3, 0.7, 5),
            powerlaw_cluster(300, 3, 0.7, 5)
        );
    }

    #[test]
    fn clean_and_connected() {
        let g = powerlaw_cluster(500, 3, 0.6, 2);
        assert!(g.is_symmetric());
        assert!(g.has_no_self_loops());
        assert_eq!(g.num_isolated(), 0);
    }

    #[test]
    fn density_tracks_k() {
        let (n, k) = (2000, 5);
        let g = powerlaw_cluster(n, k, 0.5, 3);
        let realized = g.num_undirected_edges() as f64 / n as f64;
        assert!(
            (realized / k as f64 - 1.0).abs() < 0.15,
            "density {realized}"
        );
    }

    #[test]
    fn has_hubs() {
        let g = powerlaw_cluster(3000, 3, 0.5, 7);
        assert!(g.max_degree() as f64 > 6.0 * g.density());
    }

    #[test]
    fn triangles_increase_with_p() {
        let lo = powerlaw_cluster(2000, 4, 0.0, 11);
        let hi = powerlaw_cluster(2000, 4, 0.9, 11);
        let c_lo = sampled_clustering(&lo, 4000, 1);
        let c_hi = sampled_clustering(&hi, 4000, 1);
        assert!(c_hi > 2.0 * c_lo.max(0.005), "clustering {c_lo} vs {c_hi}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_panics() {
        powerlaw_cluster(10, 2, 1.5, 0);
    }
}
