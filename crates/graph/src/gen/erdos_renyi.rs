//! Erdős–Rényi G(n, m) generator.
//!
//! Uniform random graphs: every vertex has roughly the same degree, i.e.
//! no hubs. Used in tests and ablations as the antipode of R-MAT — the
//! coarsening density rule should almost never fire here, and coarsening
//! efficiency stays high.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::rng::Xorshift128Plus;

/// Generate an undirected G(n, m) graph with `m` sampled edge slots.
///
/// Sampling is with replacement followed by dedup, so the realized edge
/// count is marginally below `m` for dense settings.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = Xorshift128Plus::new(seed);
    let mut b = GraphBuilder::new(n);
    b.reserve(m);
    let bound = n as u32;
    let mut added = 0usize;
    while added < m {
        let u = rng.below(bound);
        let v = rng.below(bound);
        if u != v {
            b.add_edge(u, v);
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(100, 500, 4), erdos_renyi(100, 500, 4));
    }

    #[test]
    fn respects_counts() {
        let g = erdos_renyi(1000, 5000, 1);
        assert_eq!(g.num_vertices(), 1000);
        let m = g.num_undirected_edges();
        assert!(m > 4700 && m <= 5000, "m = {m}");
    }

    #[test]
    fn clean_output() {
        let g = erdos_renyi(500, 2000, 9);
        assert!(g.is_symmetric());
        assert!(g.has_no_self_loops());
    }

    #[test]
    fn degrees_are_flat() {
        let g = erdos_renyi(2000, 20000, 2);
        // Max degree in G(n,m) stays within a small factor of the mean.
        assert!((g.max_degree() as f64) < 4.0 * g.density());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_graph_panics() {
        erdos_renyi(1, 1, 0);
    }
}
