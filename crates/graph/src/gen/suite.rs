//! Named synthetic stand-ins for the paper's Table 2 datasets.
//!
//! Each entry mirrors one SNAP/KONECT graph: the density (|E|/|V|) matches
//! the paper, while the vertex count is scaled down (1/16–1/128) so the
//! full evaluation runs on a laptop without a GPU. Graphs come from the
//! community-structured scale-free generator, which plants the three
//! structural traits the experiments depend on: hubs, triangles, and
//! communities.

use crate::csr::Csr;
use crate::gen::community::{community_graph, CommunityConfig};

/// A synthetic dataset description, mirroring one row of Table 2.
#[derive(Clone, Copy, Debug)]
pub struct Dataset {
    /// Name of the synthetic stand-in.
    pub name: &'static str,
    /// Name of the paper dataset it mimics.
    pub mimics: &'static str,
    /// log2(|V|) for the synthetic graph.
    pub scale: u32,
    /// Target |E|/|V| density (matches the paper's Table 2).
    pub density: f64,
    /// |V| of the original dataset (for the Table 2 reproduction printout).
    pub paper_vertices: u64,
    /// |E| of the original dataset.
    pub paper_edges: u64,
    /// True if the original exceeds a single 12 GB GPU at d = 128
    /// (the paper's "large graphs", Table 7).
    pub large: bool,
}

impl Dataset {
    /// Number of vertices of the synthetic graph.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Generate the synthetic graph for this dataset.
    ///
    /// Uses the community-structured scale-free model
    /// ([`crate::gen::community`]): power-law degrees give the hubs
    /// `MultiEdgeCollapse` is built around, Holme–Kim triads give local
    /// clustering, and planted communities give the mesoscale structure
    /// that makes held-out edges predictable — the three properties of the
    /// SNAP/KONECT graphs this suite stands in for. The average degree is
    /// the rounded Table 2 density; no isolated vertices are produced
    /// (edge-list datasets have none either).
    pub fn generate(&self, seed: u64) -> Csr {
        let k = (self.density.round() as usize).max(2);
        // Fold the name into the seed so same-shape datasets (e.g.
        // dblp-like vs amazon-like) still get distinct graphs.
        let mut tag = 0xcbf2_9ce4_8422_2325u64;
        for b in self.name.bytes() {
            tag = (tag ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        community_graph(&CommunityConfig::new(self.num_vertices(), k), seed ^ tag)
    }
}

/// Medium-scale suite (Table 6 graphs).
pub const MEDIUM_SUITE: &[Dataset] = &[
    Dataset {
        name: "dblp-like",
        mimics: "com-dblp",
        scale: 14,
        density: 3.31,
        paper_vertices: 317_080,
        paper_edges: 1_049_866,
        large: false,
    },
    Dataset {
        name: "amazon-like",
        mimics: "com-amazon",
        scale: 14,
        density: 2.76,
        paper_vertices: 334_863,
        paper_edges: 925_872,
        large: false,
    },
    Dataset {
        name: "youtube-like",
        mimics: "youtube",
        scale: 15,
        density: 4.34,
        paper_vertices: 1_138_499,
        paper_edges: 4_945_382,
        large: false,
    },
    Dataset {
        name: "pokec-like",
        mimics: "soc-pokec",
        scale: 15,
        density: 18.75,
        paper_vertices: 1_632_803,
        paper_edges: 30_622_564,
        large: false,
    },
    Dataset {
        name: "wiki-topcats-like",
        mimics: "wiki-topcats",
        scale: 15,
        density: 15.92,
        paper_vertices: 1_791_489,
        paper_edges: 28_511_807,
        large: false,
    },
    Dataset {
        name: "orkut-like",
        mimics: "com-orkut",
        scale: 16,
        density: 38.14,
        paper_vertices: 3_072_441,
        paper_edges: 117_185_083,
        large: false,
    },
    Dataset {
        name: "lj-like",
        mimics: "com-lj",
        scale: 16,
        density: 8.67,
        paper_vertices: 3_997_962,
        paper_edges: 34_681_189,
        large: false,
    },
    Dataset {
        name: "livejournal-like",
        mimics: "soc-LiveJournal",
        scale: 16,
        density: 14.23,
        paper_vertices: 4_847_571,
        paper_edges: 68_993_773,
        large: false,
    },
];

/// Large-scale suite (Table 7 graphs) — these exceed the simulated device
/// memory used in the experiments and exercise `LargeGraphGPU`.
pub const LARGE_SUITE: &[Dataset] = &[
    Dataset {
        name: "hyperlink-like",
        mimics: "hyperlink2012",
        scale: 18,
        density: 15.77,
        paper_vertices: 39_497_204,
        paper_edges: 623_056_313,
        large: true,
    },
    Dataset {
        name: "sinaweibo-like",
        mimics: "soc-sinaweibo",
        scale: 19,
        density: 4.46,
        paper_vertices: 58_655_849,
        paper_edges: 261_321_071,
        large: true,
    },
    Dataset {
        name: "twitter-like",
        mimics: "twitter_rv",
        scale: 18,
        density: 35.25,
        paper_vertices: 41_652_230,
        paper_edges: 1_468_365_182,
        large: true,
    },
    Dataset {
        name: "friendster-like",
        mimics: "com-friendster",
        scale: 19,
        density: 27.53,
        paper_vertices: 65_608_366,
        paper_edges: 1_806_067_135,
        large: true,
    },
];

/// Look up a dataset by its synthetic name in either suite.
pub fn dataset(name: &str) -> Option<&'static Dataset> {
    MEDIUM_SUITE
        .iter()
        .chain(LARGE_SUITE.iter())
        .find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(dataset("orkut-like").unwrap().mimics, "com-orkut");
        assert!(dataset("friendster-like").unwrap().large);
        assert!(dataset("nope").is_none());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = MEDIUM_SUITE
            .iter()
            .chain(LARGE_SUITE.iter())
            .map(|d| d.name)
            .collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len);
    }

    #[test]
    fn generated_density_tracks_target() {
        let d = dataset("dblp-like").unwrap();
        let g = d.generate(42);
        assert_eq!(g.num_vertices(), d.num_vertices());
        assert_eq!(g.num_isolated(), 0);
        let realized = g.num_undirected_edges() as f64 / g.num_vertices() as f64;
        assert!(
            realized > 0.6 * d.density && realized < 1.5 * d.density,
            "realized {realized}, target {}",
            d.density
        );
    }

    #[test]
    fn generated_graphs_have_clustering_and_hubs() {
        let d = dataset("youtube-like").unwrap();
        let g = d.generate(1);
        let c = crate::gen::sampled_clustering(&g, 2000, 3);
        assert!(c > 0.05, "clustering {c}");
        assert!(g.max_degree() as f64 > 5.0 * g.density());
    }

    #[test]
    fn medium_suite_matches_paper_rows() {
        // Spot-check the transcription of Table 2.
        let orkut = dataset("orkut-like").unwrap();
        assert_eq!(orkut.paper_vertices, 3_072_441);
        assert_eq!(orkut.paper_edges, 117_185_083);
        let dblp = dataset("dblp-like").unwrap();
        assert!((dblp.paper_edges as f64 / dblp.paper_vertices as f64 - dblp.density).abs() < 0.01);
    }
}
