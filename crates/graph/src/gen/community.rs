//! Community-structured scale-free generator.
//!
//! The paper's datasets (social networks, web graphs) combine three
//! structural traits: power-law degrees (hubs — what `MultiEdgeCollapse`
//! exploits), local clustering, and **community structure** (what makes a
//! held-out edge predictable from an embedding: its endpoints usually
//! share a community). This generator plants all three:
//!
//! * community sizes are drawn from a truncated Pareto distribution;
//! * each community is a Holme–Kim powerlaw-cluster graph (hubs +
//!   triangles);
//! * a mixing fraction `mu` of extra edges connects random vertices of
//!   different communities, degree-proportionally.
//!
//! This is an LFR-benchmark-style construction, simplified to stay O(|E|).

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::gen::powerlaw_cluster::powerlaw_cluster;
use crate::rng::Xorshift128Plus;

/// Parameters for [`community_graph`].
#[derive(Clone, Copy, Debug)]
pub struct CommunityConfig {
    /// Total vertices.
    pub num_vertices: usize,
    /// Target average undirected degree.
    pub avg_degree: usize,
    /// Fraction of edge budget spent on inter-community edges.
    pub mixing: f64,
    /// Smallest community size.
    pub min_community: usize,
    /// Largest community size (truncation).
    pub max_community: usize,
}

impl CommunityConfig {
    /// Sensible defaults for a graph of `n` vertices with average degree `k`.
    pub fn new(n: usize, k: usize) -> Self {
        Self {
            num_vertices: n,
            avg_degree: k,
            mixing: 0.15,
            min_community: 32.min(n / 2).max(4),
            max_community: (n / 4).max(64).min(n),
        }
    }
}

/// Draw community sizes from a truncated Pareto(α = 2) until they cover
/// `n`, then trim the last one.
fn community_sizes(cfg: &CommunityConfig, rng: &mut Xorshift128Plus) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut total = 0usize;
    let alpha = 2.0f64;
    while total < cfg.num_vertices {
        let u = rng.next_f64().max(1e-12);
        // Inverse-CDF of Pareto with scale = min_community.
        let raw = cfg.min_community as f64 / u.powf(1.0 / alpha);
        let size = (raw as usize)
            .clamp(cfg.min_community, cfg.max_community)
            .min(cfg.num_vertices - total + cfg.min_community);
        sizes.push(size);
        total += size;
    }
    // Trim overshoot off the last community (merge into previous if tiny).
    let overshoot = total - cfg.num_vertices;
    let last = sizes.last_mut().unwrap();
    *last -= overshoot;
    if *last < cfg.min_community && sizes.len() > 1 {
        let dropped = sizes.pop().unwrap();
        *sizes.last_mut().unwrap() += dropped;
    }
    sizes
}

/// Generate the community graph. Also returns the community id of every
/// vertex (useful for diagnostics and node-classification style tests).
pub fn community_graph_with_labels(cfg: &CommunityConfig, seed: u64) -> (Csr, Vec<u32>) {
    assert!(cfg.num_vertices >= 2 * cfg.min_community, "graph too small");
    assert!((0.0..1.0).contains(&cfg.mixing), "mixing must be in [0,1)");
    let mut rng = Xorshift128Plus::new(seed);
    let sizes = community_sizes(cfg, &mut rng);
    let n = cfg.num_vertices;
    let k_intra = ((cfg.avg_degree as f64 * (1.0 - cfg.mixing)).round() as usize).max(2);

    let mut builder = GraphBuilder::new(n);
    let mut labels = vec![0u32; n];
    let mut base = 0u32;
    for (c, &size) in sizes.iter().enumerate() {
        let k = k_intra.min(size.saturating_sub(1)).max(1);
        let sub = powerlaw_cluster(size, k, 0.6, seed ^ ((c as u64 + 1) << 32));
        for (u, v) in sub.undirected_edges() {
            builder.add_edge(base + u, base + v);
        }
        for v in 0..size {
            labels[(base + v as u32) as usize] = c as u32;
        }
        base += size as u32;
    }

    // Inter-community edges: endpoints uniform (degree bias comes from the
    // rewiring below being accepted only across communities).
    let inter_edges = (cfg.num_vertices as f64 * cfg.avg_degree as f64 * cfg.mixing) as usize;
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < inter_edges && guard < inter_edges * 50 {
        guard += 1;
        let u = rng.below(n as u32);
        let v = rng.below(n as u32);
        if labels[u as usize] != labels[v as usize] {
            builder.add_edge(u, v);
            added += 1;
        }
    }
    (builder.build(), labels)
}

/// Generate just the graph.
pub fn community_graph(cfg: &CommunityConfig, seed: u64) -> Csr {
    community_graph_with_labels(cfg, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_clean() {
        let cfg = CommunityConfig::new(1000, 6);
        let (g1, l1) = community_graph_with_labels(&cfg, 3);
        let (g2, l2) = community_graph_with_labels(&cfg, 3);
        assert_eq!(g1, g2);
        assert_eq!(l1, l2);
        assert!(g1.is_symmetric());
        assert!(g1.has_no_self_loops());
        assert_eq!(g1.num_vertices(), 1000);
    }

    #[test]
    fn density_tracks_target() {
        let cfg = CommunityConfig::new(4000, 8);
        let g = community_graph(&cfg, 5);
        let realized = g.num_undirected_edges() as f64 / 4000.0;
        assert!((realized / 8.0 - 1.0).abs() < 0.3, "density {realized}");
    }

    #[test]
    fn most_edges_are_intra_community() {
        let cfg = CommunityConfig::new(2000, 8);
        let (g, labels) = community_graph_with_labels(&cfg, 7);
        let intra = g
            .undirected_edges()
            .filter(|&(u, v)| labels[u as usize] == labels[v as usize])
            .count();
        let frac = intra as f64 / g.num_undirected_edges() as f64;
        assert!(frac > 0.7, "intra fraction {frac}");
        assert!(frac < 0.99, "no mixing at all: {frac}");
    }

    #[test]
    fn sizes_are_power_lawish() {
        let cfg = CommunityConfig::new(8000, 6);
        let (_, labels) = community_graph_with_labels(&cfg, 9);
        let num_comms = *labels.iter().max().unwrap() as usize + 1;
        assert!(num_comms >= 10, "only {num_comms} communities");
        let mut counts = vec![0usize; num_comms];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max >= 3 * min, "sizes too uniform: {min}..{max}");
    }

    #[test]
    fn hubs_exist() {
        let g = community_graph(&CommunityConfig::new(3000, 8), 11);
        assert!(g.max_degree() as f64 > 4.0 * g.density());
    }

    #[test]
    fn no_isolated_vertices() {
        let g = community_graph(&CommunityConfig::new(1500, 4), 13);
        assert_eq!(g.num_isolated(), 0);
    }
}
