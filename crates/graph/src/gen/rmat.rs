//! Recursive MATrix (R-MAT) generator.
//!
//! Kronecker-style power-law graphs: each edge picks a quadrant of the
//! adjacency matrix recursively with probabilities (a, b, c, d). With the
//! classic (0.57, 0.19, 0.19, 0.05) parameters the result has the skewed
//! degree distribution and hub vertices that `MultiEdgeCollapse`'s density
//! rule (Algorithm 4, line 12) is designed around.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::rng::Xorshift128Plus;

/// Parameters for [`rmat`].
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average *undirected* degree; `edges = degree * 2^scale`.
    pub avg_degree: f64,
    /// Quadrant probabilities; must sum to 1.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Noise added to the quadrant probabilities at each recursion level to
    /// avoid the artificial staircase degree distribution of pure R-MAT.
    pub noise: f64,
}

impl RmatConfig {
    /// Classic Graph500-style parameters at the given scale and degree.
    pub fn graph500(scale: u32, avg_degree: f64) -> Self {
        Self {
            scale,
            avg_degree,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.05,
        }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generate an undirected R-MAT graph (deduplicated, loop-free, symmetric).
///
/// Duplicate edges produced by the recursive process are merged, so the
/// realized edge count lands slightly below `avg_degree * n`; the suite
/// configs in [`super::suite`] compensate by oversampling.
pub fn rmat(cfg: &RmatConfig, seed: u64) -> Csr {
    assert!(cfg.scale >= 1 && cfg.scale <= 31, "scale out of range");
    let frac_sum = cfg.a + cfg.b + cfg.c;
    assert!(
        frac_sum < 1.0 + 1e-9 && cfg.a > 0.0 && cfg.b >= 0.0 && cfg.c >= 0.0,
        "invalid quadrant probabilities"
    );
    let n = 1usize << cfg.scale;
    let m = (cfg.avg_degree * n as f64).round() as usize;
    let mut rng = Xorshift128Plus::new(seed);
    let mut builder = GraphBuilder::new(n);
    builder.reserve(m);

    for _ in 0..m {
        let (u, v) = sample_edge(cfg, &mut rng);
        builder.add_edge(u, v);
    }
    builder.build()
}

#[inline]
fn sample_edge(cfg: &RmatConfig, rng: &mut Xorshift128Plus) -> (u32, u32) {
    let mut u = 0u32;
    let mut v = 0u32;
    let d = cfg.d();
    for _level in 0..cfg.scale {
        // Jitter quadrant probabilities per level (smooth R-MAT).
        let na = cfg.a * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.next_f64());
        let nb = cfg.b * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.next_f64());
        let nc = cfg.c * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.next_f64());
        let nd = d * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.next_f64());
        let total = na + nb + nc + nd;
        let r = rng.next_f64() * total;
        u <<= 1;
        v <<= 1;
        if r < na {
            // top-left
        } else if r < na + nb {
            v |= 1;
        } else if r < na + nb + nc {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = RmatConfig::graph500(10, 8.0);
        let g1 = rmat(&cfg, 99);
        let g2 = rmat(&cfg, 99);
        assert_eq!(g1, g2);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RmatConfig::graph500(10, 8.0);
        assert_ne!(rmat(&cfg, 1), rmat(&cfg, 2));
    }

    #[test]
    fn size_is_plausible() {
        let cfg = RmatConfig::graph500(12, 8.0);
        let g = rmat(&cfg, 7);
        assert_eq!(g.num_vertices(), 4096);
        // Dedup and loop removal lose some edges but most survive.
        let target = 8.0 * 4096.0;
        assert!(g.num_undirected_edges() as f64 > 0.5 * target);
        assert!((g.num_undirected_edges() as f64) < 1.01 * target);
    }

    #[test]
    fn output_is_clean() {
        let cfg = RmatConfig::graph500(10, 4.0);
        let g = rmat(&cfg, 3);
        assert!(g.is_symmetric());
        assert!(g.has_no_self_loops());
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let cfg = RmatConfig::graph500(12, 16.0);
        let g = rmat(&cfg, 5);
        // Hubs should far exceed the mean degree in a power-law graph.
        assert!(g.max_degree() as f64 > 8.0 * g.density());
    }

    #[test]
    #[should_panic(expected = "scale out of range")]
    fn zero_scale_panics() {
        rmat(&RmatConfig::graph500(0, 1.0), 0);
    }
}
