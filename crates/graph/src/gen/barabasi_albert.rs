//! Barabási–Albert preferential attachment generator.
//!
//! Grows a graph one vertex at a time, attaching each new vertex to `k`
//! existing vertices chosen proportionally to degree. Produces power-law
//! degree tails with a different hub topology than R-MAT (a connected core
//! rather than quadrant clusters) — useful for stressing the coarsening on
//! structures where hubs are adjacent to each other.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::rng::Xorshift128Plus;

/// Generate a BA graph: `n` vertices, each newcomer attaching `k` edges.
///
/// Attachment uses the standard "repeated endpoints" trick: sampling a
/// uniform position of the running edge-endpoint list is exactly
/// degree-proportional sampling, with no auxiliary weights.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> Csr {
    assert!(k >= 1, "attachment count must be positive");
    assert!(n > k, "need more vertices than attachments");
    let mut rng = Xorshift128Plus::new(seed);
    // Endpoint multiset: every edge contributes both endpoints.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * k);
    let mut b = GraphBuilder::new(n);
    b.reserve(n * k);

    // Seed clique over the first k+1 vertices.
    for u in 0..=(k as u32) {
        for v in 0..u {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    for u in (k as u32 + 1)..(n as u32) {
        let mut picked = 0usize;
        let mut guard = 0usize;
        let mut chosen = Vec::with_capacity(k);
        while picked < k && guard < 32 * k {
            guard += 1;
            let t = endpoints[rng.below(endpoints.len() as u32) as usize];
            if t != u && !chosen.contains(&t) {
                chosen.push(t);
                picked += 1;
            }
        }
        for &t in &chosen {
            b.add_edge(u, t);
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(200, 3, 8), barabasi_albert(200, 3, 8));
    }

    #[test]
    fn edge_count_matches_growth() {
        let n = 500;
        let k = 4;
        let g = barabasi_albert(n, k, 1);
        // clique + k per newcomer (a handful may be lost to the guard).
        let expect = k * (k + 1) / 2 + (n - k - 1) * k;
        let m = g.num_undirected_edges();
        assert!(
            m <= expect && m as f64 > 0.98 * expect as f64,
            "m={m} expect={expect}"
        );
    }

    #[test]
    fn clean_output() {
        let g = barabasi_albert(300, 2, 3);
        assert!(g.is_symmetric());
        assert!(g.has_no_self_loops());
        assert_eq!(g.num_isolated(), 0);
    }

    #[test]
    fn rich_get_richer() {
        let g = barabasi_albert(3000, 2, 5);
        assert!(g.max_degree() > 20, "max degree {}", g.max_degree());
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn degenerate_panics() {
        barabasi_albert(3, 3, 0);
    }
}
