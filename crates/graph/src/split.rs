//! Link-prediction train/test split (paper §4.1).
//!
//! The input graph is split into `G_train` holding 80% of the edges and a
//! test set with the remaining 20%. Isolated vertices are removed from
//! `G_train` (ids are compacted), and every test edge with an endpoint that
//! fell out of `G_train` is dropped — this guarantees `V_test ⊆ V_train`,
//! exactly as the paper's pipeline requires.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use crate::rng::Xorshift128Plus;

/// Parameters for [`train_test_split`].
#[derive(Clone, Copy, Debug)]
pub struct SplitConfig {
    /// Fraction of undirected edges assigned to the training graph.
    pub train_fraction: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        Self {
            train_fraction: 0.8,
            seed: 0x90_5E,
        }
    }
}

/// Output of [`train_test_split`].
#[derive(Clone, Debug)]
pub struct TrainTestSplit {
    /// Training graph over compacted vertex ids `0..n_train`.
    pub train: Csr,
    /// Held-out edges, endpoints in *train* id space.
    pub test_edges: Vec<(VertexId, VertexId)>,
    /// `orig_of_train[t]` = original id of train vertex `t`.
    pub orig_of_train: Vec<VertexId>,
    /// `train_of_orig[v]` = train id of original vertex `v`, or `NONE`.
    pub train_of_orig: Vec<VertexId>,
    /// Number of test edges dropped because an endpoint left `G_train`.
    pub dropped_test_edges: usize,
}

/// Sentinel for "vertex not present in the training graph".
pub const NONE: VertexId = VertexId::MAX;

/// Split `g` into train/test per the paper's link-prediction pipeline.
pub fn train_test_split(g: &Csr, cfg: &SplitConfig) -> TrainTestSplit {
    assert!(
        (0.0..=1.0).contains(&cfg.train_fraction),
        "train_fraction must be in [0,1]"
    );
    let mut edges: Vec<(VertexId, VertexId)> = g.undirected_edges().collect();
    let mut rng = Xorshift128Plus::new(cfg.seed);
    // Fisher–Yates shuffle. The 64-bit-bound sampler matters here: the
    // 32-bit `below` would truncate `i + 1` once the edge list passes
    // `u32::MAX`, silently biasing billion-edge splits.
    for i in (1..edges.len()).rev() {
        let j = rng.below_usize(i + 1);
        edges.swap(i, j);
    }
    let n_train_edges = (edges.len() as f64 * cfg.train_fraction).round() as usize;
    let (train_edges, test_edges_raw) = edges.split_at(n_train_edges.min(edges.len()));

    // Vertices that keep at least one training edge survive; compact ids.
    let mut train_of_orig = vec![NONE; g.num_vertices()];
    let mut orig_of_train: Vec<VertexId> = Vec::new();
    for &(u, v) in train_edges {
        for w in [u, v] {
            if train_of_orig[w as usize] == NONE {
                train_of_orig[w as usize] = orig_of_train.len() as VertexId;
                orig_of_train.push(w);
            }
        }
    }

    let mut b = GraphBuilder::new(orig_of_train.len());
    b.reserve(train_edges.len());
    for &(u, v) in train_edges {
        b.add_edge(train_of_orig[u as usize], train_of_orig[v as usize]);
    }
    let train = b.build();

    let mut test_edges = Vec::with_capacity(test_edges_raw.len());
    let mut dropped = 0usize;
    for &(u, v) in test_edges_raw {
        let (tu, tv) = (train_of_orig[u as usize], train_of_orig[v as usize]);
        if tu != NONE && tv != NONE {
            test_edges.push((tu, tv));
        } else {
            dropped += 1;
        }
    }

    TrainTestSplit {
        train,
        test_edges,
        orig_of_train,
        train_of_orig,
        dropped_test_edges: dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::erdos_renyi;

    #[test]
    fn fractions_are_respected() {
        let g = erdos_renyi(500, 3000, 1);
        let s = train_test_split(&g, &SplitConfig::default());
        let total = g.num_undirected_edges();
        let train = s.train.num_undirected_edges();
        assert!((train as f64 / total as f64 - 0.8).abs() < 0.02);
        assert_eq!(s.test_edges.len() + s.dropped_test_edges, total - train);
    }

    #[test]
    fn split_is_deterministic() {
        let g = erdos_renyi(300, 1500, 2);
        let a = train_test_split(&g, &SplitConfig::default());
        let b = train_test_split(&g, &SplitConfig::default());
        assert_eq!(a.train, b.train);
        assert_eq!(a.test_edges, b.test_edges);
    }

    #[test]
    fn different_seed_changes_split() {
        let g = erdos_renyi(300, 1500, 2);
        let a = train_test_split(
            &g,
            &SplitConfig {
                seed: 1,
                ..Default::default()
            },
        );
        let b = train_test_split(
            &g,
            &SplitConfig {
                seed: 2,
                ..Default::default()
            },
        );
        assert_ne!(a.test_edges, b.test_edges);
    }

    #[test]
    fn no_isolated_vertices_in_train() {
        let g = erdos_renyi(400, 900, 3);
        let s = train_test_split(&g, &SplitConfig::default());
        assert_eq!(s.train.num_isolated(), 0);
    }

    #[test]
    fn test_endpoints_exist_in_train() {
        let g = erdos_renyi(400, 900, 4);
        let s = train_test_split(&g, &SplitConfig::default());
        let n = s.train.num_vertices() as VertexId;
        for &(u, v) in &s.test_edges {
            assert!(u < n && v < n);
        }
    }

    #[test]
    fn test_edges_are_held_out() {
        let g = erdos_renyi(200, 800, 5);
        let s = train_test_split(&g, &SplitConfig::default());
        for &(u, v) in &s.test_edges {
            assert!(
                !s.train.has_edge(u, v),
                "test edge ({u},{v}) leaked into train"
            );
        }
    }

    #[test]
    fn id_mappings_are_inverse() {
        let g = erdos_renyi(200, 600, 6);
        let s = train_test_split(&g, &SplitConfig::default());
        for (t, &o) in s.orig_of_train.iter().enumerate() {
            assert_eq!(s.train_of_orig[o as usize] as usize, t);
        }
    }

    #[test]
    fn extreme_fractions() {
        let g = erdos_renyi(100, 300, 7);
        let all = train_test_split(
            &g,
            &SplitConfig {
                train_fraction: 1.0,
                seed: 1,
            },
        );
        assert_eq!(all.test_edges.len(), 0);
        assert_eq!(all.train.num_undirected_edges(), g.num_undirected_edges());
        let none = train_test_split(
            &g,
            &SplitConfig {
                train_fraction: 0.0,
                seed: 1,
            },
        );
        assert_eq!(none.train.num_vertices(), 0);
        assert_eq!(none.test_edges.len(), 0);
        assert_eq!(none.dropped_test_edges, g.num_undirected_edges());
    }
}
