//! Connected components.
//!
//! Used for dataset diagnostics (the paper's graphs are dominated by one
//! giant component — a property the coarsening dynamics depend on: whole
//! components collapse into isolated super-vertices that stall shrinkage)
//! and by the CLI's `stats` command.

use crate::csr::{Csr, VertexId};

/// Component labelling of a graph.
#[derive(Clone, Debug)]
pub struct Components {
    /// `label[v]` = component id of vertex `v`, in `0..count`.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Sizes of all components.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.label {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component.
    pub fn giant_size(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Fraction of vertices in the largest component.
    pub fn giant_fraction(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.giant_size() as f64 / n as f64
        }
    }
}

/// Label connected components with an iterative BFS (no recursion, so
/// million-vertex graphs are fine).
pub fn connected_components(g: &Csr) -> Components {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue: Vec<VertexId> = Vec::new();
    for start in 0..n as VertexId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = count;
        queue.clear();
        queue.push(start);
        while let Some(v) = queue.pop() {
            for &u in g.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = count;
                    queue.push(u);
                }
            }
        }
        count += 1;
    }
    Components {
        label,
        count: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::csr_from_edges;
    use crate::gen::{community_graph, CommunityConfig};

    #[test]
    fn two_triangles_are_two_components() {
        let g = csr_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.label[0], c.label[1]);
        assert_eq!(c.label[3], c.label[4]);
        assert_ne!(c.label[0], c.label[3]);
        assert_eq!(c.sizes(), vec![3, 3]);
    }

    #[test]
    fn isolated_vertices_are_singleton_components() {
        let g = csr_from_edges(4, &[(0, 1)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.giant_size(), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(0);
        let c = connected_components(&g);
        assert_eq!(c.count, 0);
        assert_eq!(c.giant_fraction(0), 0.0);
    }

    #[test]
    fn community_graphs_have_a_giant_component() {
        let g = community_graph(&CommunityConfig::new(2000, 6), 3);
        let c = connected_components(&g);
        assert!(
            c.giant_fraction(2000) > 0.95,
            "giant = {}",
            c.giant_fraction(2000)
        );
    }

    #[test]
    fn labels_respect_edges() {
        let g = community_graph(&CommunityConfig::new(500, 4), 5);
        let c = connected_components(&g);
        for (u, v) in g.edges() {
            assert_eq!(c.label[u as usize], c.label[v as usize]);
        }
    }

    use crate::csr::Csr;
}
