//! Edge-list to CSR construction.
//!
//! The builder accepts arbitrary (possibly duplicated, self-looped,
//! unsorted) edge lists and produces the clean symmetric CSR that the
//! coarsening and trainers assume: sorted neighbour lists, no duplicate
//! arcs, no self loops, every edge present in both directions (for the
//! undirected graphs used throughout the paper).

use crate::csr::{Csr, VertexId};

/// Accumulates edges and finalizes them into a [`Csr`].
///
/// Construction is O(|V| + |E|) using counting sort over the source
/// endpoint — the same complexity budget the paper gives for each
/// coarsening stage, so graph (re)construction never dominates.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    symmetrize: bool,
    dedup: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices. By default the result is
    /// symmetrized, deduplicated, and self-loop free.
    pub fn new(n: usize) -> Self {
        Self {
            num_vertices: n,
            edges: Vec::new(),
            symmetrize: true,
            dedup: true,
            drop_self_loops: true,
        }
    }

    /// Keep the graph directed (no reverse arcs added).
    pub fn directed(mut self) -> Self {
        self.symmetrize = false;
        self
    }

    /// Keep duplicate arcs (multi-graph).
    pub fn keep_duplicates(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Keep self loops.
    pub fn keep_self_loops(mut self) -> Self {
        self.drop_self_loops = false;
        self
    }

    /// Number of vertices the builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of raw edges added so far.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add one edge. Panics if an endpoint is out of range.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u},{v}) out of range for n={}",
            self.num_vertices
        );
        self.edges.push((u, v));
    }

    /// Add many edges.
    pub fn extend<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
    }

    /// Reserve capacity for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Finalize into a CSR graph.
    pub fn build(self) -> Csr {
        let n = self.num_vertices;
        let mut arcs: Vec<(VertexId, VertexId)> =
            Vec::with_capacity(self.edges.len() * if self.symmetrize { 2 } else { 1 });
        for &(u, v) in &self.edges {
            if self.drop_self_loops && u == v {
                continue;
            }
            arcs.push((u, v));
            if self.symmetrize && u != v {
                arcs.push((v, u));
            }
        }

        // Counting sort by source: O(|V| + |E|).
        let mut counts = vec![0usize; n + 1];
        for &(u, _) in &arcs {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let xadj = counts.clone();
        let mut adj = vec![0 as VertexId; arcs.len()];
        let mut cursor = counts;
        for &(u, v) in &arcs {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }

        // Sort each neighbour list, then optionally dedup in place.
        let mut out_adj = Vec::with_capacity(adj.len());
        let mut out_xadj = Vec::with_capacity(n + 1);
        out_xadj.push(0usize);
        for v in 0..n {
            let start = out_adj.len();
            let slice = &mut adj[xadj[v]..xadj[v + 1]];
            slice.sort_unstable();
            if self.dedup {
                let mut last: Option<VertexId> = None;
                for &u in slice.iter() {
                    if last != Some(u) {
                        out_adj.push(u);
                        last = Some(u);
                    }
                }
            } else {
                out_adj.extend_from_slice(slice);
            }
            let _ = start;
            out_xadj.push(out_adj.len());
        }

        Csr::from_raw(out_xadj, out_adj)
    }
}

impl GraphBuilder {
    /// Finalize into a [`Csr`] with a worker team. Byte-identical to
    /// [`GraphBuilder::build`] for any thread count; only the default
    /// configuration (symmetrized, deduplicated, loop-free) is
    /// supported — the non-default modes keep the sequential path.
    pub fn build_parallel(self, threads: usize) -> Csr {
        assert!(
            self.symmetrize && self.dedup && self.drop_self_loops,
            "build_parallel supports the default (symmetric, dedup, loop-free) configuration"
        );
        build_csr_parallel(self.num_vertices, &[&self.edges], threads)
    }
}

/// Parallel counting-sort CSR construction over pre-chunked edge lists —
/// the scatter/gather discipline of `gosh-coarsen::fused`, minus every
/// atomic: the arc list is split into one *static* span set per worker,
/// each worker counts its spans into a private per-vertex array, a
/// lexicographic (vertex, worker) prefix sum turns those counts into
/// private scatter cursors (so the shared arena is written without a
/// single locked instruction), and per-thread contiguous vertex ranges
/// (balanced by arc mass) then sort + dedup each neighbour list *in
/// place* before a memcpy assembly pass.
///
/// The result is byte-identical to the sequential
/// [`GraphBuilder::build`] (default configuration) on the concatenation
/// of `chunks`, for any thread count: workers interleave differently in
/// the arena, but every per-vertex slice holds the same multiset, and
/// sort + dedup is order-insensitive.
pub(crate) fn build_csr_parallel(
    n: usize,
    chunks: &[&[(VertexId, VertexId)]],
    threads: usize,
) -> Csr {
    assert!(threads >= 1, "need at least one thread");
    if n == 0 {
        return Csr::empty(0);
    }
    let spans = partition_spans(chunks, threads);

    // Pass 1: private per-vertex counts per worker. The safe indexing
    // here is also the range check for every endpoint — by the time the
    // unchecked scatter below runs, `u < n` and `v < n` are proven for
    // the exact same arc set.
    let mut counts: Vec<Vec<usize>> = gosh_runtime::map_jobs(threads, spans.len(), |t| {
        let mut c = vec![0usize; n];
        for &(ci, a, b) in &spans[t] {
            for &(u, v) in &chunks[ci][a..b] {
                if u != v {
                    c[u as usize] += 1;
                    c[v as usize] += 1;
                }
            }
        }
        c
    });

    // Prefix sum in lexicographic (vertex, worker) order: `xadj0[v]` is
    // where vertex v's region starts, and `counts[t][v]` becomes worker
    // t's private write cursor inside that region. Each (worker, vertex)
    // pair owns a disjoint sub-range, so the scatter needs no
    // synchronization at all.
    let mut xadj0 = vec![0usize; n + 1];
    let mut running = 0usize;
    for v in 0..n {
        xadj0[v] = running;
        for c in counts.iter_mut() {
            let k = c[v];
            c[v] = running;
            running += k;
        }
    }
    xadj0[n] = running;

    // Pass 2: scatter both arc directions through the private cursors.
    let mut arena: Vec<VertexId> = vec![0; running];
    {
        let shared = SharedArena::new(&mut arena);
        let cursor_slots: Vec<std::sync::Mutex<Option<Vec<usize>>>> = std::mem::take(&mut counts)
            .into_iter()
            .map(|c| std::sync::Mutex::new(Some(c)))
            .collect();
        gosh_runtime::map_jobs(threads, spans.len(), |t| {
            let mut cur = cursor_slots[t]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("cursor set claimed once");
            for &(ci, a, b) in &spans[t] {
                for &(u, v) in &chunks[ci][a..b] {
                    if u != v {
                        // SAFETY: pass 1 proved `u, v < n` for
                        // this very span set, and each cursor
                        // walks a sub-range no other (worker,
                        // vertex) pair overlaps, exactly
                        // `counts` entries long.
                        unsafe {
                            shared.write(cur[u as usize], v);
                            shared.write(cur[v as usize], u);
                        }
                        cur[u as usize] += 1;
                        cur[v as usize] += 1;
                    }
                }
            }
        });
    }

    // Pass 3: sort + dedup every neighbour list in place, over
    // contiguous vertex ranges balanced by arc mass. `split_at_mut`
    // hands each worker its own arena window — back to fully safe code.
    let bounds = arc_mass_bounds(&xadj0, n, threads);
    let mut uniq = vec![0usize; n];
    {
        type SortWindow<'a> = (&'a mut [VertexId], &'a mut [usize]);
        let mut arena_rest = arena.as_mut_slice();
        let mut uniq_rest = uniq.as_mut_slice();
        let mut windows: Vec<std::sync::Mutex<Option<SortWindow<'_>>>> =
            Vec::with_capacity(threads);
        for t in 0..threads {
            let (vs, ve) = (bounds[t], bounds[t + 1]);
            let (mine, rest) = arena_rest.split_at_mut(xadj0[ve] - xadj0[vs]);
            arena_rest = rest;
            let (uniq_mine, rest) = uniq_rest.split_at_mut(ve - vs);
            uniq_rest = rest;
            windows.push(std::sync::Mutex::new(Some((mine, uniq_mine))));
        }
        gosh_runtime::map_jobs(threads, threads, |t| {
            let (mine, uniq_mine) = windows[t]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("sort window claimed once");
            let (vs, ve) = (bounds[t], bounds[t + 1]);
            let off = xadj0[vs];
            for v in vs..ve {
                let list = &mut mine[xadj0[v] - off..xadj0[v + 1] - off];
                list.sort_unstable();
                uniq_mine[v - vs] = dedup_prefix(list);
            }
        });
    }

    // Pass 4: assemble — prefix-sum the unique degrees, then copy each
    // vertex's deduplicated prefix into its final slot, again over
    // disjoint per-worker output windows.
    let mut xadj = vec![0usize; n + 1];
    for v in 0..n {
        xadj[v + 1] = xadj[v] + uniq[v];
    }
    let mut adj: Vec<VertexId> = vec![0; xadj[n]];
    {
        let mut adj_rest = adj.as_mut_slice();
        let mut windows: Vec<std::sync::Mutex<Option<&mut [VertexId]>>> =
            Vec::with_capacity(threads);
        for t in 0..threads {
            let (vs, ve) = (bounds[t], bounds[t + 1]);
            let (mine, rest) = adj_rest.split_at_mut(xadj[ve] - xadj[vs]);
            adj_rest = rest;
            windows.push(std::sync::Mutex::new(Some(mine)));
        }
        let (arena, xadj0, xadj, uniq) = (&arena, &xadj0, &xadj, &uniq);
        gosh_runtime::map_jobs(threads, threads, |t| {
            let mine = windows[t]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("assembly window claimed once");
            let (vs, ve) = (bounds[t], bounds[t + 1]);
            let off = xadj[vs];
            for v in vs..ve {
                mine[xadj[v] - off..xadj[v + 1] - off]
                    .copy_from_slice(&arena[xadj0[v]..xadj0[v] + uniq[v]]);
            }
        });
    }
    // Construction proves the invariants: `xadj` is a prefix sum whose
    // total is exactly the copied length, and pass 1 range-checked every
    // entry. Debug builds re-validate.
    Csr::from_raw_trusted(xadj, adj)
}

/// Sort-assuming in-place dedup: compact the unique prefix of a sorted
/// slice and return its length (`slice::partition_dedup` without the
/// nightly feature).
fn dedup_prefix(list: &mut [VertexId]) -> usize {
    if list.is_empty() {
        return 0;
    }
    let mut w = 1usize;
    for r in 1..list.len() {
        if list[r] != list[w - 1] {
            list[w] = list[r];
            w += 1;
        }
    }
    w
}

/// Statically split the concatenation of `chunks` into `threads` span
/// groups of near-equal arc count. Each span is `(chunk, start, end)`.
/// The partition must be identical across the count and scatter passes —
/// the private-cursor discipline depends on both passes walking the same
/// arcs per worker — which is why claims are not dynamic here.
fn partition_spans(
    chunks: &[&[(VertexId, VertexId)]],
    threads: usize,
) -> Vec<Vec<(usize, usize, usize)>> {
    let total: usize = chunks.iter().map(|c| c.len()).sum();
    let mut out = vec![Vec::new(); threads];
    let mut t = 0usize;
    let mut consumed = 0usize;
    for (ci, chunk) in chunks.iter().enumerate() {
        let mut start = 0usize;
        while start < chunk.len() {
            let group_end = total * (t + 1) / threads;
            if group_end <= consumed && t + 1 < threads {
                t += 1;
                continue;
            }
            let take = (group_end - consumed).min(chunk.len() - start).max(1);
            out[t].push((ci, start, start + take));
            start += take;
            consumed += take;
        }
    }
    out
}

/// A `&mut [T]` writable concurrently by the scoped scatter workers at
/// provably disjoint indices (each index is written exactly once, by
/// exactly one worker, per the private-cursor prefix sums). Reads wait
/// until the scope join.
struct SharedArena<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: sharing the arena across threads only permits `write`, whose
// contract (disjoint indices, `i < len`) makes every access exclusive;
// `T: Send` lets the written values move to the writing thread.
unsafe impl<T: Send> Sync for SharedArena<T> {}

impl<T> SharedArena<T> {
    fn new(slice: &mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// # Safety
    /// `i < len`, and no other write to `i` may race with this one.
    unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        // SAFETY: `i < len` puts the pointer inside the arena, and the
        // caller contract makes this the only access to slot `i`.
        unsafe { *self.ptr.add(i) = value }
    }
}

/// Split `0..n` into one contiguous vertex range per thread with roughly
/// equal arc mass (`xadj0` prefix sums), so the sort/dedup and assembly
/// passes balance even when a few hubs dominate.
fn arc_mass_bounds(xadj0: &[usize], n: usize, threads: usize) -> Vec<usize> {
    let total = xadj0[n];
    let mut bounds = Vec::with_capacity(threads + 1);
    bounds.push(0);
    let mut v = 0usize;
    for t in 1..threads {
        let target = total * t / threads;
        while v < n && xadj0[v] < target {
            v += 1;
        }
        bounds.push(v.min(n));
    }
    bounds.push(n);
    bounds
}

/// Convenience: build a symmetric, deduplicated, loop-free CSR from an edge list.
pub fn csr_from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Csr {
    let mut b = GraphBuilder::new(n);
    b.extend(edges.iter().copied());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_symmetric() {
        let g = csr_from_edges(4, &[(2, 0), (0, 1), (3, 1)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 3]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.neighbors(3), &[1]);
        assert!(g.is_symmetric());
    }

    #[test]
    fn dedups_duplicates_and_reverse_duplicates() {
        let g = csr_from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn drops_self_loops_by_default() {
        let g = csr_from_edges(2, &[(0, 0), (0, 1)]);
        assert!(g.has_no_self_loops());
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn keep_self_loops_opt_in() {
        let mut b = GraphBuilder::new(2).keep_self_loops();
        b.add_edge(0, 0);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[0]);
        // Self loop is not doubled by symmetrization.
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn directed_preserves_orientation() {
        let mut b = GraphBuilder::new(3).directed();
        b.extend([(0, 1), (1, 2)]);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert!(!g.is_symmetric());
    }

    #[test]
    fn multigraph_keeps_duplicates() {
        let mut b = GraphBuilder::new(2).keep_duplicates();
        b.extend([(0, 1), (0, 1)]);
        let g = b.build();
        // Two parallel edges, each symmetrized.
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        use crate::rng::Xorshift128Plus;
        let mut rng = Xorshift128Plus::new(41);
        let n = 500usize;
        // Duplicate-laden list with self loops and reverse duplicates.
        let edges: Vec<(u32, u32)> = (0..8_000)
            .map(|_| {
                (
                    (rng.next_u64() % n as u64) as u32,
                    (rng.next_u64() % n as u64) as u32,
                )
            })
            .collect();
        let seq = csr_from_edges(n, &edges);
        for threads in [1, 2, 3, 4, 8] {
            let mut b = GraphBuilder::new(n);
            b.extend(edges.iter().copied());
            assert_eq!(b.build_parallel(threads), seq, "threads = {threads}");
        }
        // The chunked entry point agrees too, for any chunking.
        let (a, bpart) = edges.split_at(1234);
        let (b1, b2) = bpart.split_at(17);
        assert_eq!(build_csr_parallel(n, &[a, b1, b2], 4), seq);
    }

    #[test]
    #[should_panic(expected = "default")]
    fn parallel_build_rejects_non_default_modes() {
        GraphBuilder::new(2).directed().build_parallel(2);
    }

    #[test]
    fn parallel_build_empty_inputs() {
        assert_eq!(GraphBuilder::new(0).build_parallel(4), Csr::empty(0));
        let g = GraphBuilder::new(3).build_parallel(2);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_vertices_survive() {
        let g = csr_from_edges(5, &[(0, 1)]);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_isolated(), 3);
    }
}
