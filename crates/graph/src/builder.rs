//! Edge-list to CSR construction.
//!
//! The builder accepts arbitrary (possibly duplicated, self-looped,
//! unsorted) edge lists and produces the clean symmetric CSR that the
//! coarsening and trainers assume: sorted neighbour lists, no duplicate
//! arcs, no self loops, every edge present in both directions (for the
//! undirected graphs used throughout the paper).

use crate::csr::{Csr, VertexId};

/// Accumulates edges and finalizes them into a [`Csr`].
///
/// Construction is O(|V| + |E|) using counting sort over the source
/// endpoint — the same complexity budget the paper gives for each
/// coarsening stage, so graph (re)construction never dominates.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    symmetrize: bool,
    dedup: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices. By default the result is
    /// symmetrized, deduplicated, and self-loop free.
    pub fn new(n: usize) -> Self {
        Self {
            num_vertices: n,
            edges: Vec::new(),
            symmetrize: true,
            dedup: true,
            drop_self_loops: true,
        }
    }

    /// Keep the graph directed (no reverse arcs added).
    pub fn directed(mut self) -> Self {
        self.symmetrize = false;
        self
    }

    /// Keep duplicate arcs (multi-graph).
    pub fn keep_duplicates(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Keep self loops.
    pub fn keep_self_loops(mut self) -> Self {
        self.drop_self_loops = false;
        self
    }

    /// Number of vertices the builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of raw edges added so far.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add one edge. Panics if an endpoint is out of range.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u},{v}) out of range for n={}",
            self.num_vertices
        );
        self.edges.push((u, v));
    }

    /// Add many edges.
    pub fn extend<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
    }

    /// Reserve capacity for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Finalize into a CSR graph.
    pub fn build(self) -> Csr {
        let n = self.num_vertices;
        let mut arcs: Vec<(VertexId, VertexId)> =
            Vec::with_capacity(self.edges.len() * if self.symmetrize { 2 } else { 1 });
        for &(u, v) in &self.edges {
            if self.drop_self_loops && u == v {
                continue;
            }
            arcs.push((u, v));
            if self.symmetrize && u != v {
                arcs.push((v, u));
            }
        }

        // Counting sort by source: O(|V| + |E|).
        let mut counts = vec![0usize; n + 1];
        for &(u, _) in &arcs {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let xadj = counts.clone();
        let mut adj = vec![0 as VertexId; arcs.len()];
        let mut cursor = counts;
        for &(u, v) in &arcs {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }

        // Sort each neighbour list, then optionally dedup in place.
        let mut out_adj = Vec::with_capacity(adj.len());
        let mut out_xadj = Vec::with_capacity(n + 1);
        out_xadj.push(0usize);
        for v in 0..n {
            let start = out_adj.len();
            let slice = &mut adj[xadj[v]..xadj[v + 1]];
            slice.sort_unstable();
            if self.dedup {
                let mut last: Option<VertexId> = None;
                for &u in slice.iter() {
                    if last != Some(u) {
                        out_adj.push(u);
                        last = Some(u);
                    }
                }
            } else {
                out_adj.extend_from_slice(slice);
            }
            let _ = start;
            out_xadj.push(out_adj.len());
        }

        Csr::from_raw(out_xadj, out_adj)
    }
}

/// Convenience: build a symmetric, deduplicated, loop-free CSR from an edge list.
pub fn csr_from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Csr {
    let mut b = GraphBuilder::new(n);
    b.extend(edges.iter().copied());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_symmetric() {
        let g = csr_from_edges(4, &[(2, 0), (0, 1), (3, 1)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 3]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.neighbors(3), &[1]);
        assert!(g.is_symmetric());
    }

    #[test]
    fn dedups_duplicates_and_reverse_duplicates() {
        let g = csr_from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn drops_self_loops_by_default() {
        let g = csr_from_edges(2, &[(0, 0), (0, 1)]);
        assert!(g.has_no_self_loops());
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn keep_self_loops_opt_in() {
        let mut b = GraphBuilder::new(2).keep_self_loops();
        b.add_edge(0, 0);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[0]);
        // Self loop is not doubled by symmetrization.
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn directed_preserves_orientation() {
        let mut b = GraphBuilder::new(3).directed();
        b.extend([(0, 1), (1, 2)]);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert!(!g.is_symmetric());
    }

    #[test]
    fn multigraph_keeps_duplicates() {
        let mut b = GraphBuilder::new(2).keep_duplicates();
        b.extend([(0, 1), (0, 1)]);
        let g = b.build();
        // Two parallel edges, each symmetrized.
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn isolated_vertices_survive() {
        let g = csr_from_edges(5, &[(0, 1)]);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_isolated(), 3);
    }
}
