//! # gosh-graph
//!
//! Graph substrate for the GOSH reproduction: a compact CSR (Compressed
//! Sparse Row) graph representation, edge-list construction and I/O,
//! deterministic synthetic generators (RMAT, Erdős–Rényi, Barabási–Albert),
//! the 80/20 link-prediction train/test split from the paper's §4.1,
//! structural statistics, and the edge-delta streaming layer for dynamic
//! graphs ([`stream`]).
//!
//! All vertex identifiers are `u32` (`VertexId`); offsets are `usize`.
//! Every stochastic routine takes an explicit seed so that experiments are
//! reproducible bit-for-bit.

// This crate contains audited `unsafe` (see docs/SAFETY.md and the
// `gosh audit` gate): every unsafe operation must sit in an explicit
// block with its own `// SAFETY:` invariant, even inside `unsafe fn`.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod builder;
pub mod compact;
pub mod components;
pub mod csr;
pub mod gen;
pub mod ingest;
pub mod io;
pub mod rng;
pub mod split;
pub mod stats;
pub mod stream;

pub use builder::GraphBuilder;
pub use csr::{Csr, VertexId};
pub use split::{train_test_split, SplitConfig, TrainTestSplit};
pub use stats::GraphStats;
pub use stream::{apply_delta, apply_delta_parallel, EdgeDelta};
