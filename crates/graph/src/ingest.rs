//! Parallel streaming edge-list ingestion.
//!
//! [`crate::io::read_edge_list`] is the sequential reference: one thread,
//! one line at a time, one global interner. This module is the production
//! path for multi-million-edge SNAP/KONECT files — a worker team over
//! newline-aligned chunks whose output is **byte-identical** to the
//! sequential parser (graph, `original_ids`, and [`ParseStats`]),
//! enforced by proptest across thread counts and chunk sizes:
//!
//! 1. **Chunk** — the input splits into newline-aligned byte ranges of
//!    roughly [`IngestConfig::chunk_bytes`] each; workers claim chunks
//!    through an atomic cursor.
//! 2. **Parse** — each chunk is scanned as raw bytes (no per-line
//!    `String`, no UTF-8 pass) by a single-pass fast scanner for the hot
//!    `u v` / `u v w` shapes; anything else falls back to the shared
//!    [`crate::io::parse_edge_line`] grammar, so format (and error)
//!    semantics live in one place. Sparse vertex ids intern into a
//!    *chunk-local* open-addressed map (multiply-shift hashing — much
//!    cheaper than the reference parser's SipHash `HashMap`), producing
//!    local arcs plus the chunk's raw ids in local first-seen order.
//! 3. **Shard merge** — raw ids hash-partition across one shard map per
//!    worker; each shard records the earliest `(chunk, position)`
//!    occurrence of its ids. No locks: a shard is owned by one worker.
//! 4. **Stable resolution** — an id's global dense id is determined by
//!    its earliest occurrence: chunks are numbered in document order and
//!    positions in local first-seen order, so ranking winners by
//!    `(chunk, position)` reproduces the sequential first-seen order
//!    exactly. A prefix sum over per-chunk win counts turns ranks into
//!    dense ids, per-chunk translation tables rewrite the local arcs,
//!    and `original_ids` concatenates the winners.
//! 5. **Build** — the remapped arc chunks feed the parallel
//!    counting-sort CSR build ([`crate::builder`]): an atomic-free
//!    scatter/gather in the spirit of the fused coarsener, with static
//!    arc spans, private per-worker counts turned into private scatter
//!    cursors by a (vertex, worker) prefix sum, in-place sort + dedup
//!    over arc-mass-balanced vertex ranges, and memcpy assembly.
//!
//! Errors are deterministic too: the first malformed line in document
//! order is reported with the same message and line number the
//! sequential parser would produce.

use std::io;
use std::path::Path;

use crate::builder::build_csr_parallel;
use crate::csr::VertexId;
use crate::io::{bad_line, parse_edge_line, EdgeLine, LoadedGraph, ParseStats};
use crate::rng::mix64;

/// Knobs for the parallel ingestion path.
#[derive(Clone, Copy, Debug)]
pub struct IngestConfig {
    /// Worker threads for every phase.
    pub threads: usize,
    /// Target bytes per newline-aligned chunk (actual chunks extend to
    /// the next newline). Small values exist for tests; the default
    /// keeps per-chunk interners L2-resident while giving the team
    /// enough chunks to balance.
    pub chunk_bytes: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(16),
            chunk_bytes: 1 << 20,
        }
    }
}

impl IngestConfig {
    /// A config with `threads` workers and the default chunk size.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }
}

/// Parse an in-memory edge list with a worker team. Output is
/// byte-identical to [`crate::io::read_edge_list`] on the same bytes.
pub fn read_edge_list_parallel(data: &[u8], cfg: &IngestConfig) -> io::Result<LoadedGraph> {
    let threads = cfg.threads.max(1);
    let bounds = chunk_bounds(data, cfg.chunk_bytes.max(1));
    let nc = bounds.len();

    // Phase 2: parse chunks.
    let mut chunks: Vec<ChunkParse> = map_jobs(threads, nc, |c| {
        parse_chunk(&data[bounds[c].0..bounds[c].1])
    });

    // The first malformed line in document order wins, with the global
    // line number the sequential parser would report.
    let mut line_base = 0usize;
    for ch in &chunks {
        if let Some((local, msg)) = ch.error {
            return Err(bad_line(line_base + local, msg));
        }
        line_base += ch.lines;
    }

    // Phase 3: shard merge. Each shard map records the earliest
    // (chunk, position) occurrence of the raw ids that hash to it.
    let num_shards = threads.next_power_of_two();
    let shards: Vec<RawMap> = map_jobs(threads, num_shards, |sh| {
        let mut m = RawMap::with_capacity(64);
        for (c, ch) in chunks.iter().enumerate() {
            for (p, &raw) in ch.firsts.iter().enumerate() {
                if shard_of(raw, num_shards) == sh {
                    m.insert_if_absent(raw, pack(c, p));
                }
            }
        }
        m
    });
    let owner_of = |raw: u64| {
        shards[shard_of(raw, num_shards)]
            .get(raw)
            .expect("interned id missing from its shard")
    };

    // Phase 4a: per chunk, which first-seen entries are global wins, and
    // their rank among the chunk's wins (in position order).
    let wins: Vec<WinInfo> = map_jobs(threads, nc, |c| {
        let ch = &chunks[c];
        let mut rank = vec![NOT_A_WIN; ch.firsts.len()];
        let mut w = 0u32;
        for (p, &raw) in ch.firsts.iter().enumerate() {
            if owner_of(raw) == pack(c, p) {
                rank[p] = w;
                w += 1;
            }
        }
        WinInfo {
            rank,
            wins: w as usize,
        }
    });
    let mut base = vec![0usize; nc + 1];
    for c in 0..nc {
        base[c + 1] = base[c] + wins[c].wins;
    }
    let n = base[nc];
    if n > u32::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{n} distinct vertex ids exceed the u32 vertex-id space"),
        ));
    }

    // Phase 4b: per-chunk original-id runs and local→global translation
    // tables. Winners take `base[chunk] + rank`; losers resolve through
    // their owning chunk's rank.
    let parts: Vec<(Vec<u64>, Vec<VertexId>)> = map_jobs(threads, nc, |c| {
        let ch = &chunks[c];
        let rank = &wins[c].rank;
        let mut ids: Vec<u64> = Vec::with_capacity(wins[c].wins);
        let mut trans: Vec<VertexId> = Vec::with_capacity(ch.firsts.len());
        for (p, &raw) in ch.firsts.iter().enumerate() {
            let g = if rank[p] != NOT_A_WIN {
                ids.push(raw);
                base[c] + rank[p] as usize
            } else {
                let (oc, op) = unpack(owner_of(raw));
                base[oc] + wins[oc].rank[op] as usize
            };
            trans.push(g as VertexId);
        }
        (ids, trans)
    });

    // Phase 4c: remap each chunk's local arcs to global dense ids — in
    // place, so arc storage is never duplicated (the lists are moved out
    // of the chunks and rewritten where they sit). Chunk groups are
    // contiguous, so each worker owns a disjoint `&mut` window.
    let mut arc_lists: Vec<Vec<(VertexId, VertexId)>> = chunks
        .iter_mut()
        .map(|ch| std::mem::take(&mut ch.arcs))
        .collect();
    let group = nc.div_ceil(threads).max(1);
    let windows: Vec<std::sync::Mutex<Option<Window<'_>>>> = arc_lists
        .chunks_mut(group)
        .zip(parts.chunks(group))
        .map(|w| std::sync::Mutex::new(Some(w)))
        .collect();
    map_jobs(threads, windows.len(), |i| {
        let (lists, trs) = windows[i]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("window claimed once");
        for (arcs, (_, trans)) in lists.iter_mut().zip(trs) {
            for a in arcs.iter_mut() {
                *a = (trans[a.0 as usize], trans[a.1 as usize]);
            }
        }
    });

    // Phase 5: parallel counting-sort CSR build over the arc chunks.
    let refs: Vec<&[(VertexId, VertexId)]> = arc_lists.iter().map(|v| v.as_slice()).collect();
    let graph = build_csr_parallel(n, &refs, threads);

    let mut original_ids: Vec<u64> = Vec::with_capacity(n);
    for (ids, _) in &parts {
        original_ids.extend_from_slice(ids);
    }

    let mut stats = ParseStats::default();
    for ch in &chunks {
        stats.edge_lines += ch.edge_lines;
        stats.weighted_lines += ch.weighted_lines;
        stats.self_loops_dropped += ch.self_loops;
    }
    stats.duplicates_dropped =
        stats.edge_lines - stats.self_loops_dropped - graph.num_undirected_edges();

    Ok(LoadedGraph {
        graph,
        original_ids,
        stats,
    })
}

/// Load an edge-list file through the parallel path.
///
/// The file is read into memory once and then processed at chunk
/// granularity — newline-aligned chunking needs random access, so
/// "streaming" here means the *work* (parse, validate, intern, build)
/// flows through bounded per-chunk state, not that the input bytes do.
/// Peak memory is the file plus one `(u32, u32)` arc per edge line.
pub fn load_edge_list_parallel<P: AsRef<Path>>(
    path: P,
    cfg: &IngestConfig,
) -> io::Result<LoadedGraph> {
    let data = std::fs::read(path)?;
    read_edge_list_parallel(&data, cfg)
}

/// One chunk's parse result: locally interned arcs plus raw ids in local
/// first-seen order.
struct ChunkParse {
    /// Raw ids in local first-seen order.
    firsts: Vec<u64>,
    /// Arcs over local ids (indices into `firsts`).
    arcs: Vec<(u32, u32)>,
    /// Lines in this chunk (for global line numbers).
    lines: usize,
    /// Edge lines parsed.
    edge_lines: usize,
    /// Lines with a validated weight column.
    weighted_lines: usize,
    /// Edge lines with `u == v`.
    self_loops: usize,
    /// First malformed line: (chunk-local 0-based line, message).
    error: Option<(usize, &'static str)>,
}

/// Rank sentinel: this first-seen entry lost to an earlier chunk.
const NOT_A_WIN: u32 = u32::MAX;

/// Per-chunk win bookkeeping for the stable resolution pass.
struct WinInfo {
    /// For winning positions, the rank among the chunk's wins; else
    /// [`NOT_A_WIN`].
    rank: Vec<u32>,
    /// Number of wins (new dense ids this chunk introduces).
    wins: usize,
}

#[inline]
fn pack(chunk: usize, pos: usize) -> u64 {
    (chunk as u64) << 32 | pos as u64
}

#[inline]
fn unpack(v: u64) -> (usize, usize) {
    ((v >> 32) as usize, (v & 0xFFFF_FFFF) as usize)
}

#[inline]
fn shard_of(raw: u64, num_shards: usize) -> usize {
    // High mix bits pick the shard; the shard maps index with the low
    // bits, so the two decisions stay independent.
    (mix64(raw) >> 33) as usize & (num_shards - 1)
}

/// Split `data` into newline-aligned `(start, end)` ranges of roughly
/// `target` bytes: every chunk but the last ends just past a `'\n'`.
fn chunk_bounds(data: &[u8], target: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < data.len() {
        let mut end = start.saturating_add(target).min(data.len());
        if end < data.len() && data[end - 1] != b'\n' {
            end = match data[end..].iter().position(|&b| b == b'\n') {
                Some(i) => end + i + 1,
                None => data.len(),
            };
        }
        out.push((start, end));
        start = end;
    }
    out
}

/// Byte-scan one chunk: fast-path scanner with the shared grammar as
/// the fallback oracle, feeding the local interner.
fn parse_chunk(data: &[u8]) -> ChunkParse {
    let mut cp = ChunkParse {
        firsts: Vec::new(),
        arcs: Vec::new(),
        lines: 0,
        edge_lines: 0,
        weighted_lines: 0,
        self_loops: 0,
        error: None,
    };
    let mut map = RawMap::with_capacity(256);
    let intern = |map: &mut RawMap, firsts: &mut Vec<u64>, raw: u64| -> u32 {
        let (val, inserted) = map.get_or_insert(raw, firsts.len() as u64);
        if inserted {
            firsts.push(raw);
        }
        val as u32
    };
    let mut pos = 0usize;
    while pos < data.len() {
        let scanned = match scan_line(data, pos) {
            Scan::Skip { next } => {
                cp.lines += 1;
                pos = next;
                continue;
            }
            Scan::Edge {
                u,
                v,
                weighted,
                next,
            } => {
                pos = next;
                Ok(EdgeLine::Edge { u, v, weighted })
            }
            Scan::Fallback { line_end, next } => {
                let line = &data[pos..line_end];
                pos = next;
                parse_edge_line(line)
            }
        };
        match scanned {
            Ok(EdgeLine::Skip) => {}
            Ok(EdgeLine::Edge { u, v, weighted }) => {
                cp.edge_lines += 1;
                cp.weighted_lines += usize::from(weighted);
                cp.self_loops += usize::from(u == v);
                let ui = intern(&mut map, &mut cp.firsts, u);
                let vi = intern(&mut map, &mut cp.firsts, v);
                cp.arcs.push((ui, vi));
            }
            Err(msg) => {
                if cp.error.is_none() {
                    cp.error = Some((cp.lines, msg));
                }
            }
        }
        cp.lines += 1;
    }
    cp
}

/// One fast-scanned line.
enum Scan {
    /// Blank or comment; `next` is the start of the following line.
    Skip { next: usize },
    /// A proven `u v` / `u v w` line.
    Edge {
        u: u64,
        v: u64,
        weighted: bool,
        next: usize,
    },
    /// Anything the fast path does not prove — exotic number forms,
    /// malformed fields — re-parsed by [`parse_edge_line`] so semantics
    /// (and error messages) stay defined in exactly one place.
    Fallback { line_end: usize, next: usize },
}

/// ASCII whitespace that can appear *inside* a line (everything
/// `u8::is_ascii_whitespace` accepts except `\n`, which terminates it).
#[inline]
fn is_line_ws(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\r' | 0x0C)
}

/// Scan one line starting at `pos` in a single left-to-right pass. The
/// hot case — optionally padded `digits ws digits`, with an optional
/// numeric third column — is decided without the generic trim/split
/// machinery of [`parse_edge_line`]; every other shape falls back to it.
fn scan_line(data: &[u8], pos: usize) -> Scan {
    let len = data.len();
    let fallback = |from: usize| {
        let line_end = from
            + data[from..]
                .iter()
                .position(|&b| b == b'\n')
                .unwrap_or(len - from);
        Scan::Fallback {
            line_end,
            next: (line_end + 1).min(len),
        }
    };
    let mut i = pos;
    while i < len && is_line_ws(data[i]) {
        i += 1;
    }
    if i >= len {
        return Scan::Skip { next: len };
    }
    match data[i] {
        b'\n' => return Scan::Skip { next: i + 1 },
        b'#' | b'%' => {
            while i < len && data[i] != b'\n' {
                i += 1;
            }
            return Scan::Skip {
                next: (i + 1).min(len),
            };
        }
        _ => {}
    }
    let Some((u, j)) = scan_u64(data, i) else {
        return fallback(pos);
    };
    let mut i = j;
    if i >= len || !is_line_ws(data[i]) {
        // Lone token, `12x`-style junk, or `u\n`: all grammar errors.
        return fallback(pos);
    }
    while i < len && is_line_ws(data[i]) {
        i += 1;
    }
    let Some((v, j)) = scan_u64(data, i) else {
        return fallback(pos);
    };
    let mut i = j;
    if i < len && !is_line_ws(data[i]) && data[i] != b'\n' {
        return fallback(pos);
    }
    while i < len && is_line_ws(data[i]) {
        i += 1;
    }
    if i >= len || data[i] == b'\n' {
        return Scan::Edge {
            u,
            v,
            weighted: false,
            next: (i + 1).min(len),
        };
    }
    // Third column: must be a number, and must be the last field.
    let w_start = i;
    while i < len && !is_line_ws(data[i]) && data[i] != b'\n' {
        i += 1;
    }
    let weight_ok = std::str::from_utf8(&data[w_start..i])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .is_some();
    if !weight_ok {
        return fallback(pos);
    }
    while i < len && is_line_ws(data[i]) {
        i += 1;
    }
    if i < len && data[i] != b'\n' {
        return fallback(pos); // fourth field: grammar error
    }
    Scan::Edge {
        u,
        v,
        weighted: true,
        next: (i + 1).min(len),
    }
}

/// Scan a plain decimal run at `pos`: returns the value and the index
/// one past the digits, or `None` when the token does not start with a
/// digit or overflows `u64` (the fallback path decides what that means).
#[inline]
fn scan_u64(data: &[u8], pos: usize) -> Option<(u64, usize)> {
    let mut i = pos;
    let mut x: u64 = 0;
    while i < data.len() && data[i].is_ascii_digit() {
        x = x.checked_mul(10)?.checked_add(u64::from(data[i] - b'0'))?;
        i += 1;
    }
    (i > pos).then_some((x, i))
}

/// Indexed typed tasks on the global runtime's team, results restored
/// to job order — the runtime's `map_jobs`, used for every ingest phase.
use gosh_runtime::map_jobs;

/// One phase-4c work window: a worker's disjoint `&mut` group of arc
/// chunk lists plus the matching translation tables.
type Window<'a> = (
    &'a mut [Vec<(VertexId, VertexId)>],
    &'a [(Vec<u64>, Vec<VertexId>)],
);

/// Value slot marking an empty [`RawMap`] bucket. Safe as a sentinel:
/// interner values are local ids `< 2^32`, and shard values are
/// `pack(chunk, pos)` with `chunk` far below `2^32`, so a stored value
/// never equals `u64::MAX` (keys, in contrast, may be any `u64` —
/// `u64::MAX` is a legal vertex id — which is why the sentinel lives on
/// the value side).
const VACANT: u64 = u64::MAX;

/// Open-addressed `u64 → u64` map with multiply-shift hashing and linear
/// probing. The reference parser's `HashMap` pays SipHash per token;
/// this is the ingestion-grade replacement (one `mix64`, one probe in
/// the common case).
struct RawMap {
    /// `(key, value)` slots; a slot is empty iff `value == VACANT`.
    slots: Vec<(u64, u64)>,
    mask: usize,
    len: usize,
}

impl RawMap {
    fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(16);
        Self {
            slots: vec![(0, VACANT); cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Existing value, or insert `new_val`; the flag reports insertion.
    fn get_or_insert(&mut self, key: u64, new_val: u64) -> (u64, bool) {
        debug_assert_ne!(new_val, VACANT, "VACANT is reserved");
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = (mix64(key) as usize) & self.mask;
        loop {
            let (k, v) = self.slots[i];
            if v == VACANT {
                self.slots[i] = (key, new_val);
                self.len += 1;
                return (new_val, true);
            }
            if k == key {
                return (v, false);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn insert_if_absent(&mut self, key: u64, val: u64) {
        let _ = self.get_or_insert(key, val);
    }

    fn get(&self, key: u64) -> Option<u64> {
        let mut i = (mix64(key) as usize) & self.mask;
        loop {
            let (k, v) = self.slots[i];
            if v == VACANT {
                return None;
            }
            if k == key {
                return Some(v);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let doubled = vec![(0, VACANT); self.slots.len() * 2];
        let old = std::mem::replace(&mut self.slots, doubled);
        self.mask = self.slots.len() - 1;
        self.len = 0;
        for (k, v) in old {
            if v != VACANT {
                let mut i = (mix64(k) as usize) & self.mask;
                while self.slots[i].1 != VACANT {
                    i = (i + 1) & self.mask;
                }
                self.slots[i] = (k, v);
                self.len += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::read_edge_list;
    use std::io::Cursor;

    fn assert_matches_sequential(text: &str, threads: usize, chunk_bytes: usize) {
        let seq = read_edge_list(Cursor::new(text)).unwrap();
        let cfg = IngestConfig {
            threads,
            chunk_bytes,
        };
        let par = read_edge_list_parallel(text.as_bytes(), &cfg).unwrap();
        assert_eq!(par.graph, seq.graph, "t={threads} cb={chunk_bytes}");
        assert_eq!(par.original_ids, seq.original_ids);
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn matches_sequential_on_messy_input() {
        let text = "# header\n% konect\n1000000 5\n5 7\n\n7 7\n5 1000000 2.5\r\n9 5\n5 9\n42 5\n";
        for threads in [1, 2, 4, 8] {
            for chunk_bytes in [1, 7, 64, 1 << 20] {
                assert_matches_sequential(text, threads, chunk_bytes);
            }
        }
    }

    #[test]
    fn cross_chunk_interning_is_first_seen_stable() {
        // Ids deliberately recur across many tiny chunks; the winner must
        // always be the document-order first occurrence.
        let mut text = String::new();
        for i in 0..200u64 {
            let a = (i * 7919) % 31; // heavy reuse from a small pool
            let b = (i * 104729) % 31;
            text.push_str(&format!("{} {}\n", a * 1_000_003, b * 1_000_003));
        }
        for chunk_bytes in [1, 13, 64, 255] {
            assert_matches_sequential(&text, 4, chunk_bytes);
        }
    }

    #[test]
    fn error_line_numbers_match_sequential() {
        let text = "1 2\n2 3\nbogus line here\n3 4\n";
        let seq_err = read_edge_list(Cursor::new(text)).unwrap_err();
        for chunk_bytes in [1, 6, 1 << 20] {
            let cfg = IngestConfig {
                threads: 4,
                chunk_bytes,
            };
            let par_err = read_edge_list_parallel(text.as_bytes(), &cfg).unwrap_err();
            assert_eq!(par_err.to_string(), seq_err.to_string(), "cb={chunk_bytes}");
        }
        // Two errors: the document-order first one is reported.
        let text2 = "1 2\nbad\n3 4\nworse worse worse worse\n";
        let cfg = IngestConfig {
            threads: 4,
            chunk_bytes: 4,
        };
        let err = read_edge_list_parallel(text2.as_bytes(), &cfg).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn empty_and_trailing_newline_edge_cases() {
        for text in ["", "\n", "# only comments\n% more\n", "1 2", "1 2\n"] {
            for chunk_bytes in [1, 3, 1 << 20] {
                assert_matches_sequential(text, 3, chunk_bytes);
            }
        }
    }

    #[test]
    fn u64_max_is_a_legal_vertex_id() {
        let text = format!("{} 7\n7 {}\n{0} {0}\n", u64::MAX, u64::MAX - 1);
        for chunk_bytes in [1, 1 << 20] {
            assert_matches_sequential(&text, 2, chunk_bytes);
        }
    }

    #[test]
    fn chunk_bounds_are_newline_aligned_and_exhaustive() {
        let data = b"aa\nbbbb\nc\n\ndddddd\nee";
        for target in 1..=data.len() + 1 {
            let bounds = chunk_bounds(data, target);
            assert_eq!(bounds.first().map(|b| b.0), Some(0));
            assert_eq!(bounds.last().map(|b| b.1), Some(data.len()));
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
                assert_eq!(data[w[0].1 - 1], b'\n', "aligned at {:?}", w[0]);
            }
        }
        assert!(chunk_bounds(b"", 8).is_empty());
    }

    #[test]
    fn raw_map_behaves_like_a_map() {
        let mut m = RawMap::with_capacity(4);
        let mut reference = std::collections::HashMap::new();
        let mut x = 0x12345u64;
        for i in 0..10_000u64 {
            x = mix64(x);
            let key = x % 4096; // force collisions and repeats
            let (v, inserted) = m.get_or_insert(key, i);
            match reference.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    assert!(!inserted);
                    assert_eq!(v, *e.get());
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    assert!(inserted);
                    assert_eq!(v, i);
                    e.insert(i);
                }
            }
        }
        for (&k, &v) in &reference {
            assert_eq!(m.get(k), Some(v));
        }
        assert_eq!(m.get(999_999_999), None);
        assert_eq!(m.len, reference.len());
    }
}
