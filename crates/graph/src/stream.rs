//! Edge-delta streaming layer — dynamic graphs as batched epochs.
//!
//! GOSH embeds static snapshots; this module is the ingestion side of the
//! streaming mode: edge insertions and deletions arrive as text lines,
//! are batched into *epochs* (the unit the incremental coarsening repair
//! and warm-start retraining consume), and are applied to an existing CSR
//! as a per-vertex sorted merge that is **byte-identical** to rebuilding
//! the graph from scratch with [`GraphBuilder`](crate::builder::GraphBuilder)
//! over the edited edge set — the invariant the `prop_stream` proptests
//! pin at threads 1/2/4/8.
//!
//! Two id spaces are involved, mirroring [`crate::ingest`]: delta files
//! carry *raw* (file) ids, which [`resolve_delta`] interns against a
//! loaded graph's `original_ids` map in first-seen order — unknown ids in
//! insertions become fresh dense vertices, deletions naming unknown ids
//! are counted and dropped. [`EdgeDelta`] itself always holds dense ids.
//!
//! Batch semantics within one epoch: the resulting undirected edge set is
//! `(E ∪ I) \ D` — a deletion wins over an insertion of the same edge in
//! the *same* epoch. Order across epochs is preserved by applying them
//! one at a time (`delete e` then `insert e` in a *later* epoch restores
//! the edge).

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::csr::{Csr, VertexId};
use crate::io::{bad_line, parse_edge_line, EdgeLine};

/// A batch of edge insertions and deletions over *dense* vertex ids.
///
/// Self-loops are dropped on entry (the CSR never stores them) and pairs
/// are kept unordered — `insert(u, v)` and `insert(v, u)` are the same
/// undirected edge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    ins: Vec<(VertexId, VertexId)>,
    del: Vec<(VertexId, VertexId)>,
    min_vertices: usize,
}

impl EdgeDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an insertion of undirected edge `{u, v}`. Self-loops are
    /// ignored (beyond growing the vertex bound).
    pub fn insert(&mut self, u: VertexId, v: VertexId) {
        self.min_vertices = self.min_vertices.max(u.max(v) as usize + 1);
        if u != v {
            self.ins.push((u, v));
        }
    }

    /// Record a deletion of undirected edge `{u, v}`.
    pub fn delete(&mut self, u: VertexId, v: VertexId) {
        self.min_vertices = self.min_vertices.max(u.max(v) as usize + 1);
        if u != v {
            self.del.push((u, v));
        }
    }

    /// True when no insertion or deletion was recorded.
    pub fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }

    /// Recorded insertion pairs (raw, as given).
    pub fn num_insertions(&self) -> usize {
        self.ins.len()
    }

    /// Recorded deletion pairs (raw, as given).
    pub fn num_deletions(&self) -> usize {
        self.del.len()
    }

    /// The minimum vertex count any graph this delta applies to must end
    /// up with: one past the largest id named by the delta.
    pub fn min_vertices(&self) -> usize {
        self.min_vertices
    }

    /// Raise the vertex bound without recording an edge (used when the
    /// target graph is known to have at least `n` vertices).
    pub fn grow_to(&mut self, n: usize) {
        self.min_vertices = self.min_vertices.max(n);
    }

    /// The *dirty set* of this delta against a graph of `old_n` vertices:
    /// every endpoint of an inserted or deleted edge, plus every new
    /// vertex (`id >= old_n`), sorted and deduplicated. This is the seed
    /// the incremental coarsening repair and warm-start retraining grow
    /// their work regions from.
    pub fn dirty_vertices(&self, old_n: usize) -> Vec<VertexId> {
        let mut dirty: Vec<VertexId> = self
            .ins
            .iter()
            .chain(self.del.iter())
            .flat_map(|&(u, v)| [u, v])
            .collect();
        dirty.extend((old_n as VertexId)..(self.min_vertices.max(old_n) as VertexId));
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Directed sorted-unique arc lists `(ins_arcs, del_arcs)` — each
    /// undirected pair contributes both directions.
    #[allow(clippy::type_complexity)]
    fn arc_lists(&self) -> (Vec<(VertexId, VertexId)>, Vec<(VertexId, VertexId)>) {
        let expand = |pairs: &[(VertexId, VertexId)]| {
            let mut arcs: Vec<(VertexId, VertexId)> = Vec::with_capacity(2 * pairs.len());
            for &(u, v) in pairs {
                arcs.push((u, v));
                arcs.push((v, u));
            }
            arcs.sort_unstable();
            arcs.dedup();
            arcs
        };
        (expand(&self.ins), expand(&self.del))
    }
}

/// Merge one vertex's sorted-unique neighbour list with its sorted-unique
/// insert and delete lists: the result is `(old ∪ ins) \ del`, emitted in
/// sorted order — exactly the per-vertex invariant `GraphBuilder`
/// produces, which is what makes [`apply_delta`] byte-identical to a
/// rebuild.
fn merge_into(out: &mut Vec<VertexId>, old: &[VertexId], ins: &[VertexId], del: &[VertexId]) {
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    loop {
        let next = match (old.get(i), ins.get(j)) {
            (Some(&a), Some(&b)) => {
                if a < b {
                    i += 1;
                    a
                } else if b < a {
                    j += 1;
                    b
                } else {
                    i += 1;
                    j += 1;
                    a
                }
            }
            (Some(&a), None) => {
                i += 1;
                a
            }
            (None, Some(&b)) => {
                j += 1;
                b
            }
            (None, None) => break,
        };
        while k < del.len() && del[k] < next {
            k += 1;
        }
        if k < del.len() && del[k] == next {
            continue;
        }
        out.push(next);
    }
}

/// Counting twin of [`merge_into`]: `|(old ∪ ins) \ del|` without
/// allocating — the first pass of the parallel apply.
fn merge_count(old: &[VertexId], ins: &[VertexId], del: &[VertexId]) -> usize {
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    let mut count = 0usize;
    loop {
        let next = match (old.get(i), ins.get(j)) {
            (Some(&a), Some(&b)) => {
                if a < b {
                    i += 1;
                    a
                } else if b < a {
                    j += 1;
                    b
                } else {
                    i += 1;
                    j += 1;
                    a
                }
            }
            (Some(&a), None) => {
                i += 1;
                a
            }
            (None, Some(&b)) => {
                j += 1;
                b
            }
            (None, None) => break,
        };
        while k < del.len() && del[k] < next {
            k += 1;
        }
        if k < del.len() && del[k] == next {
            continue;
        }
        count += 1;
    }
    count
}

/// The destinations of `arcs` whose source is `v`, assuming `arcs` is
/// sorted by `(src, dst)`; `cursor` advances monotonically across calls
/// with increasing `v`.
fn arcs_of<'a>(
    arcs: &'a [(VertexId, VertexId)],
    v: VertexId,
    cursor: &mut usize,
) -> &'a [(VertexId, VertexId)] {
    let start = *cursor;
    while *cursor < arcs.len() && arcs[*cursor].0 == v {
        *cursor += 1;
    }
    &arcs[start..*cursor]
}

/// Apply `delta` to `g`, returning the edited graph.
///
/// The result covers `max(g.num_vertices(), delta.min_vertices())`
/// vertices and its undirected edge set is `(E(g) ∪ I) \ D`: inserting an
/// existing edge and deleting a missing one are no-ops, a deletion beats
/// an insertion of the same edge within the batch. Requires `g`'s
/// neighbour lists sorted and deduplicated (the `GraphBuilder` /
/// coarsening invariant; checked in debug builds).
///
/// Byte-identical to `GraphBuilder` over the edited edge set — the
/// structural part of `delta-apply ≡ rebuild-from-scratch`.
pub fn apply_delta(g: &Csr, delta: &EdgeDelta) -> Csr {
    let n_old = g.num_vertices();
    let n_new = n_old.max(delta.min_vertices());
    debug_assert!(
        (0..n_old as VertexId).all(|v| g.neighbors(v).windows(2).all(|w| w[0] < w[1])),
        "apply_delta requires sorted, deduplicated neighbour lists"
    );
    let (ins_arcs, del_arcs) = delta.arc_lists();
    let mut xadj = Vec::with_capacity(n_new + 1);
    xadj.push(0usize);
    let mut adj: Vec<VertexId> = Vec::with_capacity(g.num_edges() + ins_arcs.len());
    let (mut ic, mut dc) = (0usize, 0usize);
    let dsts =
        |arcs: &[(VertexId, VertexId)]| -> Vec<VertexId> { arcs.iter().map(|&(_, d)| d).collect() };
    for v in 0..n_new as VertexId {
        let old = if (v as usize) < n_old {
            g.neighbors(v)
        } else {
            &[]
        };
        let ins = dsts(arcs_of(&ins_arcs, v, &mut ic));
        let del = dsts(arcs_of(&del_arcs, v, &mut dc));
        merge_into(&mut adj, old, &ins, &del);
        xadj.push(adj.len());
    }
    Csr::from_raw_trusted(xadj, adj)
}

/// [`apply_delta`] on a worker team: a count pass shards the per-vertex
/// merges, a prefix sum fixes `xadj`, and a fill pass writes disjoint
/// adjacency slabs. Pure per-vertex merges — bit-identical to the
/// sequential apply for any `threads >= 1`.
pub fn apply_delta_parallel(g: &Csr, delta: &EdgeDelta, threads: usize) -> Csr {
    let threads = threads.max(1);
    if threads == 1 {
        return apply_delta(g, delta);
    }
    let n_old = g.num_vertices();
    let n_new = n_old.max(delta.min_vertices());
    let (ins_arcs, del_arcs) = delta.arc_lists();
    let shards = gosh_runtime::shard_ranges(n_new, threads);

    // Per-vertex slices of the sorted arc lists, found once by binary
    // search at shard starts and walked by cursor inside.
    let slice_for = |arcs: &[(VertexId, VertexId)], v: VertexId| -> (usize, usize) {
        let lo = arcs.partition_point(|&(s, _)| s < v);
        let hi = arcs.partition_point(|&(s, _)| s <= v);
        (lo, hi)
    };

    // Pass 1: new degree of every vertex.
    let mut degrees = vec![0usize; n_new];
    {
        let deg_slabs: Vec<std::sync::Mutex<Option<&mut [usize]>>> = {
            let mut rest = degrees.as_mut_slice();
            let mut slabs = Vec::with_capacity(threads);
            for r in &shards {
                let (head, tail) = rest.split_at_mut(r.len());
                slabs.push(std::sync::Mutex::new(Some(head)));
                rest = tail;
            }
            slabs
        };
        gosh_runtime::map_jobs(threads, threads, |t| {
            let slab = deg_slabs[t]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("degree slab claimed once");
            for (i, v) in shards[t].clone().enumerate() {
                let v = v as VertexId;
                let old = if (v as usize) < n_old {
                    g.neighbors(v)
                } else {
                    &[]
                };
                let (il, ih) = slice_for(&ins_arcs, v);
                let (dl, dh) = slice_for(&del_arcs, v);
                let ins: Vec<VertexId> = ins_arcs[il..ih].iter().map(|&(_, d)| d).collect();
                let del: Vec<VertexId> = del_arcs[dl..dh].iter().map(|&(_, d)| d).collect();
                slab[i] = merge_count(old, &ins, &del);
            }
        });
    }
    let mut xadj = Vec::with_capacity(n_new + 1);
    xadj.push(0usize);
    let mut total = 0usize;
    for &d in &degrees {
        total += d;
        xadj.push(total);
    }

    // Pass 2: fill disjoint adjacency slabs.
    let mut adj = vec![0 as VertexId; total];
    {
        let adj_slabs: Vec<std::sync::Mutex<Option<&mut [VertexId]>>> = {
            let mut rest = adj.as_mut_slice();
            let mut slabs = Vec::with_capacity(threads);
            for r in &shards {
                let len = xadj[r.end] - xadj[r.start];
                let (head, tail) = rest.split_at_mut(len);
                slabs.push(std::sync::Mutex::new(Some(head)));
                rest = tail;
            }
            slabs
        };
        gosh_runtime::map_jobs(threads, threads, |t| {
            let slab = adj_slabs[t]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("adj slab claimed once");
            let mut out: Vec<VertexId> = Vec::with_capacity(slab.len());
            for v in shards[t].clone() {
                let v = v as VertexId;
                let old = if (v as usize) < n_old {
                    g.neighbors(v)
                } else {
                    &[]
                };
                let (il, ih) = slice_for(&ins_arcs, v);
                let (dl, dh) = slice_for(&del_arcs, v);
                let ins: Vec<VertexId> = ins_arcs[il..ih].iter().map(|&(_, d)| d).collect();
                let del: Vec<VertexId> = del_arcs[dl..dh].iter().map(|&(_, d)| d).collect();
                merge_into(&mut out, old, &ins, &del);
            }
            slab.copy_from_slice(&out);
        });
    }
    Csr::from_raw_trusted(xadj, adj)
}

// ---------------------------------------------------------------------------
// Delta files: raw-id epochs on disk.
// ---------------------------------------------------------------------------

/// One epoch of a delta file, in *raw* (file) ids — resolve against a
/// graph's `original_ids` with [`resolve_delta`] before applying.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RawDelta {
    /// Inserted undirected edges, file order.
    pub ins: Vec<(u64, u64)>,
    /// Deleted undirected edges, file order.
    pub del: Vec<(u64, u64)>,
}

impl RawDelta {
    /// True when the epoch records nothing.
    pub fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty()
    }
}

/// What the delta parser saw (the [`crate::io::ParseStats`] analogue).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// `+ u v` lines parsed.
    pub insert_lines: usize,
    /// `- u v` lines parsed.
    pub delete_lines: usize,
    /// Explicit `commit` epoch boundaries.
    pub commits: usize,
}

/// One parsed delta-file line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeltaLine {
    /// Blank or comment line.
    Skip,
    /// Epoch boundary.
    Commit,
    /// `+ u v` — insert the undirected edge.
    Insert(u64, u64),
    /// `- u v` — delete the undirected edge.
    Delete(u64, u64),
}

/// Parse one line of the delta format: `+ u v`, `- u v` (an optional
/// third numeric column is accepted and discarded, matching the edge-list
/// grammar), `commit` as an epoch boundary, `#`/`%` comments and blanks
/// skipped. The `u v` tail is parsed by [`parse_edge_line`] so the two
/// formats accept exactly the same id and weight language.
pub fn parse_delta_line(line: &[u8]) -> Result<DeltaLine, &'static str> {
    let line = line.trim_ascii();
    if line.is_empty() || line[0] == b'#' || line[0] == b'%' {
        return Ok(DeltaLine::Skip);
    }
    if line == b"commit" {
        return Ok(DeltaLine::Commit);
    }
    let (op, rest) = match line[0] {
        b'+' => (b'+', &line[1..]),
        b'-' => (b'-', &line[1..]),
        _ => return Err("expected `+ u v`, `- u v`, or `commit`"),
    };
    match parse_edge_line(rest)? {
        EdgeLine::Edge { u, v, .. } => Ok(if op == b'+' {
            DeltaLine::Insert(u, v)
        } else {
            DeltaLine::Delete(u, v)
        }),
        EdgeLine::Skip => Err("missing vertex ids after +/-"),
    }
}

/// Parse a delta stream into its epochs. A trailing epoch without an
/// explicit `commit` is included when non-empty; empty epochs (e.g. a
/// double `commit`) are preserved so epoch indices match the file.
pub fn read_delta<R: BufRead>(mut reader: R) -> io::Result<(Vec<RawDelta>, DeltaStats)> {
    let mut epochs = Vec::new();
    let mut current = RawDelta::default();
    let mut stats = DeltaStats::default();
    let mut buf: Vec<u8> = Vec::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            break;
        }
        match parse_delta_line(&buf).map_err(|e| bad_line(lineno, e))? {
            DeltaLine::Skip => {}
            DeltaLine::Commit => {
                stats.commits += 1;
                epochs.push(std::mem::take(&mut current));
            }
            DeltaLine::Insert(u, v) => {
                stats.insert_lines += 1;
                current.ins.push((u, v));
            }
            DeltaLine::Delete(u, v) => {
                stats.delete_lines += 1;
                current.del.push((u, v));
            }
        }
        lineno += 1;
    }
    if !current.is_empty() {
        epochs.push(current);
    }
    Ok((epochs, stats))
}

/// [`read_delta`] from a file path.
pub fn load_delta<P: AsRef<Path>>(path: P) -> io::Result<(Vec<RawDelta>, DeltaStats)> {
    read_delta(BufReader::new(File::open(path)?))
}

/// Write epochs in the delta format (each epoch `commit`-terminated).
pub fn write_delta<P: AsRef<Path>>(path: P, epochs: &[RawDelta]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# gosh-rs edge delta: {} epochs", epochs.len())?;
    for epoch in epochs {
        for &(u, v) in &epoch.ins {
            writeln!(w, "+ {u} {v}")?;
        }
        for &(u, v) in &epoch.del {
            writeln!(w, "- {u} {v}")?;
        }
        writeln!(w, "commit")?;
    }
    Ok(())
}

/// A [`RawDelta`] resolved into a graph's dense id space.
#[derive(Clone, Debug)]
pub struct ResolvedDelta {
    /// The delta in dense ids, ready for [`apply_delta`].
    pub delta: EdgeDelta,
    /// Raw ids of fresh vertices the delta introduced, in first-seen
    /// order — append to `original_ids` after applying.
    pub new_original_ids: Vec<u64>,
    /// Deletions dropped because an endpoint named an unknown raw id
    /// (the edge cannot exist).
    pub dropped_deletions: usize,
}

/// Resolve a raw-id epoch against the interning state of a loaded graph:
/// `original_ids[dense] = raw`, exactly the map [`crate::io::read_edge_list`]
/// and the parallel ingest produce. Unknown raw ids in insertions are
/// interned as fresh dense vertices in first-seen order; deletions with
/// unknown endpoints are dropped and counted.
pub fn resolve_delta(raw: &RawDelta, original_ids: &[u64]) -> ResolvedDelta {
    let mut ids: HashMap<u64, VertexId> =
        HashMap::with_capacity(original_ids.len() + raw.ins.len());
    for (dense, &orig) in original_ids.iter().enumerate() {
        ids.insert(orig, dense as VertexId);
    }
    let mut new_original_ids: Vec<u64> = Vec::new();
    let mut delta = EdgeDelta::new();
    let mut next = original_ids.len() as VertexId;
    let mut intern = |raw_id: u64, ids: &mut HashMap<u64, VertexId>, new: &mut Vec<u64>| {
        *ids.entry(raw_id).or_insert_with(|| {
            let d = next;
            new.push(raw_id);
            next += 1;
            d
        })
    };
    for &(u, v) in &raw.ins {
        let du = intern(u, &mut ids, &mut new_original_ids);
        let dv = intern(v, &mut ids, &mut new_original_ids);
        delta.insert(du, dv);
    }
    let mut dropped = 0usize;
    for &(u, v) in &raw.del {
        match (ids.get(&u), ids.get(&v)) {
            (Some(&du), Some(&dv)) => delta.delete(du, dv),
            _ => dropped += 1,
        }
    }
    // A delta may name no new ids yet still apply to the whole graph.
    delta.grow_to(original_ids.len() + new_original_ids.len());
    ResolvedDelta {
        delta,
        new_original_ids,
        dropped_deletions: dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{csr_from_edges, GraphBuilder};
    use crate::gen::erdos_renyi;

    fn rebuild(n: usize, edges: &[(VertexId, VertexId)]) -> Csr {
        let mut b = GraphBuilder::new(n);
        b.extend(edges.iter().copied());
        b.build()
    }

    #[test]
    fn insert_into_empty_graph() {
        let g = Csr::empty(3);
        let mut d = EdgeDelta::new();
        d.insert(0, 1);
        d.insert(2, 1);
        let out = apply_delta(&g, &d);
        assert_eq!(out, rebuild(3, &[(0, 1), (1, 2)]));
    }

    #[test]
    fn delete_and_insert_mixed() {
        let g = csr_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut d = EdgeDelta::new();
        d.delete(1, 2);
        d.insert(0, 3);
        let out = apply_delta(&g, &d);
        assert_eq!(out, rebuild(4, &[(0, 1), (2, 3), (0, 3)]));
    }

    #[test]
    fn deletion_wins_within_a_batch() {
        let g = csr_from_edges(3, &[(0, 1)]);
        let mut d = EdgeDelta::new();
        d.insert(1, 2);
        d.delete(1, 2);
        let out = apply_delta(&g, &d);
        assert_eq!(out, rebuild(3, &[(0, 1)]));
    }

    #[test]
    fn reinsert_in_later_epoch_restores_edge() {
        let g = csr_from_edges(3, &[(0, 1), (1, 2)]);
        let mut e1 = EdgeDelta::new();
        e1.delete(0, 1);
        let g1 = apply_delta(&g, &e1);
        let mut e2 = EdgeDelta::new();
        e2.insert(0, 1);
        let g2 = apply_delta(&g1, &e2);
        assert_eq!(g2, g);
    }

    #[test]
    fn new_vertices_are_appended() {
        let g = csr_from_edges(2, &[(0, 1)]);
        let mut d = EdgeDelta::new();
        d.insert(1, 4);
        let out = apply_delta(&g, &d);
        assert_eq!(out.num_vertices(), 5);
        assert_eq!(out, rebuild(5, &[(0, 1), (1, 4)]));
        assert_eq!(d.dirty_vertices(2), vec![1, 2, 3, 4]);
    }

    #[test]
    fn noop_inserts_and_deletes() {
        let g = csr_from_edges(3, &[(0, 1), (1, 2)]);
        let mut d = EdgeDelta::new();
        d.insert(0, 1); // already present
        d.delete(0, 2); // never existed
        d.insert(1, 1); // self-loop: dropped
        let out = apply_delta(&g, &d);
        assert_eq!(out, g);
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = erdos_renyi(100, 400, 7);
        assert_eq!(apply_delta(&g, &EdgeDelta::new()), g);
    }

    #[test]
    fn reverse_direction_pairs_are_the_same_edge() {
        let g = csr_from_edges(3, &[(0, 1)]);
        let mut d = EdgeDelta::new();
        d.delete(1, 0);
        assert_eq!(apply_delta(&g, &d), rebuild(3, &[]));
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = erdos_renyi(200, 800, 3);
        let mut d = EdgeDelta::new();
        for i in 0..50u32 {
            d.insert(i % 200, (i * 37 + 5) % 230); // some grow the graph
            d.delete((i * 13) % 200, (i * 29) % 200);
        }
        let seq = apply_delta(&g, &d);
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                apply_delta_parallel(&g, &d, threads),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parse_delta_lines() {
        assert_eq!(parse_delta_line(b"+ 3 5"), Ok(DeltaLine::Insert(3, 5)));
        assert_eq!(parse_delta_line(b"- 7 2"), Ok(DeltaLine::Delete(7, 2)));
        assert_eq!(parse_delta_line(b"+ 3 5 1.5"), Ok(DeltaLine::Insert(3, 5)));
        assert_eq!(parse_delta_line(b"commit"), Ok(DeltaLine::Commit));
        assert_eq!(parse_delta_line(b"# note"), Ok(DeltaLine::Skip));
        assert_eq!(parse_delta_line(b"  "), Ok(DeltaLine::Skip));
        assert_eq!(parse_delta_line(b"+ 3 5\r"), Ok(DeltaLine::Insert(3, 5)));
        assert!(parse_delta_line(b"3 5").is_err());
        assert!(parse_delta_line(b"+ 3").is_err());
        assert!(parse_delta_line(b"+ 3 x").is_err());
        assert!(parse_delta_line(b"commit now").is_err());
    }

    #[test]
    fn read_delta_epochs_round_trip() {
        let text = b"# header\n+ 1 2\n- 3 4\ncommit\n+ 5 6\n";
        let (epochs, stats) = read_delta(&text[..]).unwrap();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].ins, vec![(1, 2)]);
        assert_eq!(epochs[0].del, vec![(3, 4)]);
        assert_eq!(epochs[1].ins, vec![(5, 6)]);
        assert_eq!(stats.insert_lines, 2);
        assert_eq!(stats.delete_lines, 1);
        assert_eq!(stats.commits, 1);
    }

    #[test]
    fn read_delta_rejects_garbage_with_line_number() {
        let err = read_delta(&b"+ 1 2\nwhat\n"[..]).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn write_then_load_delta() {
        let dir = std::env::temp_dir().join(format!("gosh-delta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.delta");
        let epochs = vec![
            RawDelta {
                ins: vec![(10, 20), (30, 40)],
                del: vec![(10, 50)],
            },
            RawDelta {
                ins: vec![(20, 50)],
                del: vec![],
            },
        ];
        write_delta(&path, &epochs).unwrap();
        let (back, _) = load_delta(&path).unwrap();
        assert_eq!(back, epochs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resolve_interns_new_ids_first_seen() {
        // Graph with raw ids 100, 200, 300 at dense 0, 1, 2.
        let original = vec![100u64, 200, 300];
        let raw = RawDelta {
            ins: vec![(100, 999), (999, 888), (200, 300)],
            del: vec![(100, 200), (100, 777)],
        };
        let r = resolve_delta(&raw, &original);
        assert_eq!(r.new_original_ids, vec![999, 888]);
        assert_eq!(r.dropped_deletions, 1); // 777 unknown
        assert_eq!(r.delta.num_insertions(), 3);
        assert_eq!(r.delta.num_deletions(), 1);
        assert_eq!(r.delta.min_vertices(), 5);
    }

    #[test]
    fn resolved_delta_applies_cleanly() {
        let original = vec![7u64, 8, 9];
        let g = csr_from_edges(3, &[(0, 1), (1, 2)]);
        let raw = RawDelta {
            ins: vec![(7, 42)],
            del: vec![(8, 9)],
        };
        let r = resolve_delta(&raw, &original);
        let out = apply_delta(&g, &r.delta);
        assert_eq!(out, rebuild(4, &[(0, 1), (0, 3)]));
    }
}
