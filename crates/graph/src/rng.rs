//! Small, fast, deterministic PRNGs used across the workspace.
//!
//! The hot paths (sampling, generators) use a hand-rolled xorshift128+ and
//! SplitMix64 rather than `rand`'s generic machinery: the generators below
//! are branch-free, inline, and identical across platforms, which keeps
//! every experiment reproducible from a single `u64` seed.

/// SplitMix64: used to seed other generators and for one-shot hashing.
///
/// Passes BigCrush when used as a generator; its main role here is turning
/// one user-provided seed into arbitrarily many independent streams.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One-shot SplitMix64 finalizer; handy for hashing (seed, index) pairs.
#[inline]
pub fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xorshift128+: the workhorse generator for sampling loops.
///
/// Two words of state, one add, three shifts per output — fast enough that
/// sampling never dominates an embedding update, mirroring the role of the
/// in-kernel RNG in the paper's CUDA implementation.
#[derive(Clone, Debug)]
pub struct Xorshift128Plus {
    s0: u64,
    s1: u64,
}

impl Xorshift128Plus {
    /// Seed via SplitMix64 (as recommended by the xorshift authors) so that
    /// even seeds 0 and 1 give well-mixed streams. State is never all-zero.
    #[inline]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s0 = sm.next_u64();
        let mut s1 = sm.next_u64();
        if s0 == 0 && s1 == 0 {
            s1 = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s0, s1 }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift.
    ///
    /// The tiny modulo bias (< 2^-32 for the graph sizes used here) is the
    /// same trade the paper's GPU sampler makes; negative-sample quality is
    /// unaffected.
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        let x = self.next_u64() as u32 as u64;
        ((x * bound as u64) >> 32) as u32
    }

    /// Uniform integer in `[0, bound)` for 64-bit bounds, via the 128-bit
    /// multiply-shift. [`Self::below`] keeps only the low 32 bits of the
    /// stream, so it silently truncates (and biases) once `bound` exceeds
    /// `u32::MAX` — billion-edge shuffles must use this instead.
    #[inline]
    pub fn below_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// [`Self::below_u64`] for `usize` bounds (indexing convenience).
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below_u64(bound as u64) as usize
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 high-quality mantissa bits.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn xorshift_never_zero_state() {
        // Seed 0 must still produce a usable stream.
        let mut r = Xorshift128Plus::new(0);
        let mut all_zero = true;
        for _ in 0..16 {
            if r.next_u64() != 0 {
                all_zero = false;
            }
        }
        assert!(!all_zero);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Xorshift128Plus::new(7);
        for bound in [1u32, 2, 3, 10, 1000, u32::MAX] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut r = Xorshift128Plus::new(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_u64_respects_bound() {
        let mut r = Xorshift128Plus::new(13);
        for bound in [1u64, 2, 1000, u32::MAX as u64 + 1, 1 << 40, u64::MAX] {
            for _ in 0..200 {
                assert!(r.below_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn below_u64_covers_small_range() {
        let mut r = Xorshift128Plus::new(17);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below_usize(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_u64_reaches_beyond_u32() {
        // A 2^40 bound must produce values the 32-bit sampler never could.
        let mut r = Xorshift128Plus::new(19);
        let max = (0..1000).map(|_| r.below_u64(1 << 40)).max().unwrap();
        assert!(max > u32::MAX as u64, "max draw {max}");
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = Xorshift128Plus::new(3);
        for _ in 0..1000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = Xorshift128Plus::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn mix64_differs_from_identity() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), 1);
        assert_ne!(mix64(0), mix64(1));
    }
}
