//! Isolated-vertex removal.
//!
//! Graphs loaded from edge lists (the paper's SNAP/KONECT sources) contain
//! no isolated vertices by construction — every vertex id appears in an
//! edge. Synthetic generators like R-MAT, however, can leave many ids
//! untouched. Isolated vertices distort the coarsening density threshold
//! δ = |E|/|V| (they inflate |V| and thus make ordinary vertices look like
//! hubs), so dataset construction compacts them away, mirroring the
//! paper's "remove all the isolated vertices" preprocessing (§4.1).

use crate::csr::{Csr, VertexId};

/// A compacted graph plus the id mapping back to the original.
#[derive(Clone, Debug)]
pub struct CompactedGraph {
    /// The graph over `0..n'` with every vertex of degree >= 1.
    pub graph: Csr,
    /// `orig_of_new[v]` = original id of compact vertex `v`.
    pub orig_of_new: Vec<VertexId>,
}

/// Remove all degree-0 vertices, renumbering the rest contiguously.
pub fn remove_isolated(g: &Csr) -> CompactedGraph {
    let n = g.num_vertices();
    let mut new_of_orig = vec![VertexId::MAX; n];
    let mut orig_of_new = Vec::new();
    for v in 0..n as VertexId {
        if g.degree(v) > 0 {
            new_of_orig[v as usize] = orig_of_new.len() as VertexId;
            orig_of_new.push(v);
        }
    }
    let mut xadj = Vec::with_capacity(orig_of_new.len() + 1);
    xadj.push(0usize);
    let mut adj = Vec::with_capacity(g.num_edges());
    for &v in &orig_of_new {
        for &u in g.neighbors(v) {
            adj.push(new_of_orig[u as usize]);
        }
        xadj.push(adj.len());
    }
    CompactedGraph {
        graph: Csr::from_raw(xadj, adj),
        orig_of_new,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::csr_from_edges;
    use crate::gen::{rmat, RmatConfig};

    #[test]
    fn removes_only_isolated() {
        let g = csr_from_edges(6, &[(0, 2), (2, 4)]);
        let c = remove_isolated(&g);
        assert_eq!(c.graph.num_vertices(), 3);
        assert_eq!(c.graph.num_isolated(), 0);
        assert_eq!(c.orig_of_new, vec![0, 2, 4]);
        assert!(c.graph.has_edge(0, 1));
        assert!(c.graph.has_edge(1, 2));
        assert!(!c.graph.has_edge(0, 2));
    }

    #[test]
    fn noop_when_no_isolated() {
        let g = csr_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let c = remove_isolated(&g);
        assert_eq!(c.graph, g);
        assert_eq!(c.orig_of_new, vec![0, 1, 2]);
    }

    #[test]
    fn preserves_edge_count_and_symmetry() {
        let g = rmat(&RmatConfig::graph500(10, 2.0), 3);
        let c = remove_isolated(&g);
        assert_eq!(c.graph.num_edges(), g.num_edges());
        assert!(c.graph.is_symmetric());
        assert_eq!(c.graph.num_isolated(), 0);
    }

    #[test]
    fn all_isolated_gives_empty() {
        let g = Csr::empty(4);
        let c = remove_isolated(&g);
        assert_eq!(c.graph.num_vertices(), 0);
        assert!(c.orig_of_new.is_empty());
    }
}
