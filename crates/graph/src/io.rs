//! Edge-list I/O.
//!
//! Reads the whitespace-separated edge-list format used by SNAP and KONECT
//! (the paper's data sources): one `u v` pair — or a weighted KONECT
//! `u v w` triple — per line, `#` or `%` comment lines ignored. Vertex ids
//! are compacted to a dense `0..n` range, which is what the SNAP graphs
//! require (their ids are sparse). A matching writer allows round-tripping
//! graphs to disk, preserving the original file ids when the
//! [`LoadedGraph`] mapping is supplied.
//!
//! This module is the *sequential reference* parser; the parallel
//! streaming path in [`crate::ingest`] must produce output byte-identical
//! to [`read_edge_list`] (enforced by proptest). Both share one byte-level
//! line parser, [`parse_edge_line`], so format decisions live in exactly
//! one place.

use std::collections::HashMap;
use std::io::{self, BufRead, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};

/// What the parser dropped or tolerated while loading an edge list.
///
/// The counts make silently-cleaned input visible: a SNAP file with a
/// million duplicate lines and a KONECT file with a weight column load to
/// the same clean CSR, but the caller can now tell the difference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Edge lines parsed (comments and blanks excluded).
    pub edge_lines: usize,
    /// Lines carrying a third (weight) column, KONECT style. The weight
    /// is validated as a number and discarded (GOSH is unweighted).
    pub weighted_lines: usize,
    /// Edge lines with `u == v`, dropped during CSR construction.
    pub self_loops_dropped: usize,
    /// Non-loop edge lines beyond the first occurrence of their
    /// undirected edge (`u v` and `v u` count as the same edge).
    pub duplicates_dropped: usize,
}

/// Result of loading an edge list: the graph plus the mapping from original
/// file ids to the dense ids used internally, plus what was dropped.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The graph with dense vertex ids.
    pub graph: Csr,
    /// `original_ids[v]` is the id vertex `v` had in the input file.
    pub original_ids: Vec<u64>,
    /// Dropped self-loop/duplicate counts and format observations.
    pub stats: ParseStats,
}

/// One parsed edge-list line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgeLine {
    /// Blank or comment line.
    Skip,
    /// An edge, with `weighted` set when a third (weight) column was
    /// present and validated.
    Edge { u: u64, v: u64, weighted: bool },
}

/// Parse one line of the edge-list format. Shared by the sequential
/// parser and the parallel chunks of [`crate::ingest`], so both accept
/// exactly the same language: `u v`, or `u v w` with a numeric KONECT
/// weight; anything else on an edge line is an error, not silently
/// ignored trailing text.
pub fn parse_edge_line(line: &[u8]) -> Result<EdgeLine, &'static str> {
    let line = line.trim_ascii();
    if line.is_empty() || line[0] == b'#' || line[0] == b'%' {
        return Ok(EdgeLine::Skip);
    }
    let mut tokens = line
        .split(|b: &u8| b.is_ascii_whitespace())
        .filter(|t| !t.is_empty());
    let u = parse_u64_token(tokens.next()).ok_or("expected an integer vertex id")?;
    let v = parse_u64_token(tokens.next()).ok_or("expected `u v` or `u v weight`")?;
    let weighted = match tokens.next() {
        None => false,
        Some(w) => {
            // KONECT third column: must be a number (the weight is
            // discarded — GOSH is unweighted — but garbage is rejected).
            std::str::from_utf8(w)
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .ok_or("non-numeric edge weight")?;
            true
        }
    };
    if tokens.next().is_some() {
        return Err("too many fields (expected `u v` or `u v weight`)");
    }
    Ok(EdgeLine::Edge { u, v, weighted })
}

/// Parse a vertex-id token. Fast path for plain digit runs (the hot case
/// on multi-million-line files); anything else falls back to the standard
/// parser so accepted forms match `str::parse::<u64>` exactly.
fn parse_u64_token(tok: Option<&[u8]>) -> Option<u64> {
    let tok = tok?;
    let mut x: u64 = 0;
    for &b in tok {
        if !b.is_ascii_digit() {
            return std::str::from_utf8(tok).ok()?.parse().ok();
        }
        x = x.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
    }
    if tok.is_empty() {
        None
    } else {
        Some(x)
    }
}

pub(crate) fn bad_line(lineno: usize, msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed edge list at line {}: {msg}", lineno + 1),
    )
}

/// Parse an edge list from a reader. Ids are compacted in first-seen order.
///
/// This is the sequential reference implementation; for large files use
/// [`crate::ingest::read_edge_list_parallel`], which produces identical
/// output from a parallel worker team.
pub fn read_edge_list<R: BufRead>(mut reader: R) -> io::Result<LoadedGraph> {
    let mut ids: HashMap<u64, VertexId> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut stats = ParseStats::default();

    let mut intern = |raw: u64, orig: &mut Vec<u64>| {
        *ids.entry(raw).or_insert_with(|| {
            let id = orig.len() as VertexId;
            orig.push(raw);
            id
        })
    };

    let mut line = Vec::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_until(b'\n', &mut line)? == 0 {
            break;
        }
        match parse_edge_line(&line).map_err(|msg| bad_line(lineno, msg))? {
            EdgeLine::Skip => {}
            EdgeLine::Edge { u, v, weighted } => {
                stats.edge_lines += 1;
                stats.weighted_lines += usize::from(weighted);
                stats.self_loops_dropped += usize::from(u == v);
                let ui = intern(u, &mut original_ids);
                let vi = intern(v, &mut original_ids);
                edges.push((ui, vi));
            }
        }
        lineno += 1;
    }

    let mut b = GraphBuilder::new(original_ids.len());
    b.extend(edges);
    let graph = b.build();
    stats.duplicates_dropped =
        stats.edge_lines - stats.self_loops_dropped - graph.num_undirected_edges();
    Ok(LoadedGraph {
        graph,
        original_ids,
        stats,
    })
}

/// Load an edge-list file from disk (sequential reference path).
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> io::Result<LoadedGraph> {
    let file = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(file))
}

/// Write a graph as an edge list (each undirected edge once, `u <= v`),
/// using the dense internal ids.
///
/// When the graph came from [`read_edge_list`], use
/// [`write_edge_list_with_ids`] with the loaded `original_ids` instead —
/// writing dense ids silently relabels the vertices of a SNAP/KONECT
/// graph on round trip.
pub fn write_edge_list<P: AsRef<Path>>(path: P, graph: &Csr) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# gosh-rs edge list: {} vertices", graph.num_vertices())?;
    for (u, v) in graph.undirected_edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Write a graph as an edge list under its *original* file ids:
/// `original_ids[v]` (the [`LoadedGraph`] mapping) is written wherever
/// the dense id `v` would appear, so a loaded SNAP graph round-trips
/// without relabeling its vertices.
pub fn write_edge_list_with_ids<P: AsRef<Path>>(
    path: P,
    graph: &Csr,
    original_ids: &[u64],
) -> io::Result<()> {
    assert_eq!(
        original_ids.len(),
        graph.num_vertices(),
        "one original id per vertex"
    );
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# gosh-rs edge list: {} vertices", graph.num_vertices())?;
    for (u, v) in graph.undirected_edges() {
        writeln!(
            w,
            "{} {}",
            original_ids[u as usize], original_ids[v as usize]
        )?;
    }
    w.flush()
}

impl LoadedGraph {
    /// Write the graph back as an edge list under its original file ids.
    pub fn write_edge_list<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        write_edge_list_with_ids(path, &self.graph, &self.original_ids)
    }
}

/// Magic header of the binary CSR format.
const BINARY_MAGIC: &[u8; 8] = b"GOSHCSR1";

/// Bytes of the streaming read buffer for the binary loader.
const BINARY_CHUNK: usize = 64 * 1024;

/// Write a graph in the binary CSR format: magic, |V| and |arcs| as
/// little-endian u64, then `xadj` (u64 each) and `adj` (u32 each).
/// Loading a binary CSR skips the parse + build of the text path, which
/// matters when the experiment harness re-reads multi-million-edge
/// graphs.
pub fn write_binary<P: AsRef<Path>>(path: P, graph: &Csr) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    for &x in graph.xadj() {
        w.write_all(&(x as u64).to_le_bytes())?;
    }
    for &u in graph.adj() {
        w.write_all(&u.to_le_bytes())?;
    }
    w.flush()
}

/// Load a graph written by [`write_binary`].
///
/// The header is untrusted: sizes are computed with checked arithmetic
/// (a crafted `|V|` near `u64::MAX` must return `InvalidData`, not
/// overflow) and cross-checked against the real file length *before*
/// anything is allocated. The body is then **streamed** through a fixed
/// chunk buffer — never slurped whole — with validation on the fly:
/// `xadj` must start at 0, be monotone, and end at `|arcs|`, and every
/// `adj` entry must be a valid vertex id, so a malicious file can never
/// make a later neighbour lookup index out of bounds, and a bad file is
/// rejected at the first offending entry instead of after a full read.
pub fn load_binary<P: AsRef<Path>>(path: P) -> io::Result<Csr> {
    let file = std::fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    read_binary(io::BufReader::with_capacity(BINARY_CHUNK, file), file_len)
}

/// Streaming-validated binary CSR read from any reader; `total_len` is
/// the byte length the source claims (file size), cross-checked against
/// the header before any allocation.
pub fn read_binary<R: Read>(mut r: R, total_len: u64) -> io::Result<Csr> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if total_len < 24 {
        return Err(bad("not a gosh binary CSR file"));
    }
    let mut header = [0u8; 24];
    r.read_exact(&mut header)?;
    if &header[0..8] != BINARY_MAGIC {
        return Err(bad("not a gosh binary CSR file"));
    }
    let n64 = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let arcs64 = u64::from_le_bytes(header[16..24].try_into().unwrap());
    // Checked: 24 + (n + 1) * 8 + arcs * 4, all in u64.
    let expect = n64
        .checked_add(1)
        .and_then(|x| x.checked_mul(8))
        .and_then(|x| x.checked_add(arcs64.checked_mul(4)?))
        .and_then(|x| x.checked_add(24));
    if expect != Some(total_len) {
        return Err(bad("truncated or oversized binary CSR file"));
    }
    // The size check bounds both counts by the actual source length, so
    // the usize conversions below cannot truncate and the `Vec`
    // capacities are backed by real bytes.
    let n = n64 as usize;
    let arcs = arcs64 as usize;
    let mut buf = [0u8; BINARY_CHUNK];

    let mut xadj: Vec<usize> = Vec::with_capacity(n + 1);
    let mut prev = 0usize;
    let mut remaining = n + 1;
    while remaining > 0 {
        let take = remaining.min(buf.len() / 8);
        let bytes = &mut buf[..take * 8];
        r.read_exact(bytes)?;
        for chunk in bytes.chunks_exact(8) {
            let x = u64::from_le_bytes(chunk.try_into().unwrap()) as usize;
            if xadj.is_empty() && x != 0 {
                return Err(bad("inconsistent xadj/adj lengths"));
            }
            if x < prev {
                return Err(bad("xadj is not monotone"));
            }
            prev = x;
            xadj.push(x);
        }
        remaining -= take;
    }
    if prev != arcs {
        return Err(bad("inconsistent xadj/adj lengths"));
    }

    let mut adj: Vec<VertexId> = Vec::with_capacity(arcs);
    let mut remaining = arcs;
    while remaining > 0 {
        let take = remaining.min(buf.len() / 4);
        let bytes = &mut buf[..take * 4];
        r.read_exact(bytes)?;
        for chunk in bytes.chunks_exact(4) {
            let u = u32::from_le_bytes(chunk.try_into().unwrap());
            if u as usize >= n {
                return Err(bad("adj entry out of vertex range"));
            }
            adj.push(u);
        }
        remaining -= take;
    }
    // Every invariant was enforced during the stream (start at 0,
    // monotone, ends at |arcs|, neighbour ids in range); debug builds
    // still re-validate inside `from_raw_trusted`.
    Ok(Csr::from_raw_trusted(xadj, adj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_with_comments_and_blanks() {
        let text = "# header\n% konect style\n\n10 20\n20 30\n10 30\n";
        let loaded = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_undirected_edges(), 3);
        assert_eq!(loaded.original_ids, vec![10, 20, 30]);
        assert_eq!(loaded.stats.edge_lines, 3);
        assert_eq!(loaded.stats.weighted_lines, 0);
        assert_eq!(loaded.stats.self_loops_dropped, 0);
        assert_eq!(loaded.stats.duplicates_dropped, 0);
    }

    #[test]
    fn compacts_sparse_ids_first_seen() {
        let text = "1000000 5\n5 7\n";
        let loaded = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(loaded.original_ids, vec![1_000_000, 5, 7]);
        assert!(loaded.graph.has_edge(0, 1));
        assert!(loaded.graph.has_edge(1, 2));
    }

    #[test]
    fn rejects_malformed_lines() {
        let text = "1 2\nbogus\n";
        let err = read_edge_list(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let text2 = "1\n";
        assert!(read_edge_list(Cursor::new(text2)).is_err());
    }

    #[test]
    fn accepts_weighted_konect_lines() {
        let text = "1 2 1.5\n2 3 -3\n3 1 2e-4\n1 4\n";
        let loaded = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(loaded.graph.num_undirected_edges(), 4);
        assert_eq!(loaded.stats.edge_lines, 4);
        assert_eq!(loaded.stats.weighted_lines, 3);
    }

    #[test]
    fn rejects_garbage_third_column_and_extra_fields() {
        // The seed parser silently ignored everything after the second
        // token; both of these loaded as `1 2` then.
        let err = read_edge_list(Cursor::new("1 2 not-a-weight\n")).unwrap_err();
        assert!(err.to_string().contains("weight"), "{err}");
        let err = read_edge_list(Cursor::new("1 2 3.0 4\n")).unwrap_err();
        assert!(err.to_string().contains("too many fields"), "{err}");
    }

    #[test]
    fn counts_dropped_self_loops_and_duplicates() {
        let text = "1 1\n1 2\n2 1\n1 2 9.0\n2 3\n3 3\n";
        let loaded = read_edge_list(Cursor::new(text)).unwrap();
        // Clean graph: edges {1-2, 2-3}.
        assert_eq!(loaded.graph.num_undirected_edges(), 2);
        assert_eq!(loaded.stats.edge_lines, 6);
        assert_eq!(loaded.stats.self_loops_dropped, 2);
        assert_eq!(loaded.stats.duplicates_dropped, 2);
        assert_eq!(loaded.stats.weighted_lines, 1);
        // Self-loop endpoints intern like any other: the `1 1` line is
        // what makes 1 the first-seen id.
        assert_eq!(loaded.original_ids, vec![1, 2, 3]);
    }

    #[test]
    fn crlf_lines_parse_cleanly() {
        let text = "# dos file\r\n10 20\r\n20 30 1.0\r\n\r\n30 10\r\n";
        let loaded = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(loaded.graph.num_undirected_edges(), 3);
        assert_eq!(loaded.original_ids, vec![10, 20, 30]);
        assert_eq!(loaded.stats.weighted_lines, 1);
    }

    #[test]
    fn round_trip_through_disk() {
        let g = crate::builder::csr_from_edges(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]);
        let dir = std::env::temp_dir().join("gosh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        write_edge_list(&path, &g).unwrap();
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(
            loaded.graph.num_undirected_edges(),
            g.num_undirected_edges()
        );
        assert_eq!(loaded.graph.num_vertices(), g.num_vertices());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trip_preserves_original_ids() {
        // Sparse SNAP-style ids. The seed writer dropped the mapping and
        // silently relabelled everything to dense 0..n on round trip.
        let text = "# snap-ish\n9000001 17\n17 400\n400 9000001\n400 52\n";
        let loaded = read_edge_list(Cursor::new(text)).unwrap();
        let dir = std::env::temp_dir().join("gosh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("orig_ids.txt");
        loaded.write_edge_list(&path).unwrap();
        let reloaded = load_edge_list(&path).unwrap();
        // Same vertex set under original ids…
        let mut a = loaded.original_ids.clone();
        let mut b = reloaded.original_ids.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // …and the same edge set under original ids.
        let edge_set = |l: &LoadedGraph| {
            let mut set: Vec<(u64, u64)> = l
                .graph
                .undirected_edges()
                .map(|(u, v)| {
                    let (a, b) = (l.original_ids[u as usize], l.original_ids[v as usize]);
                    (a.min(b), a.max(b))
                })
                .collect();
            set.sort_unstable();
            set
        };
        assert_eq!(edge_set(&loaded), edge_set(&reloaded));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let g = crate::gen::erdos_renyi(300, 1200, 5);
        let dir = std::env::temp_dir().join("gosh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csr");
        write_binary(&path, &g).unwrap();
        let loaded = load_binary(&path).unwrap();
        assert_eq!(loaded, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_garbage() {
        let dir = std::env::temp_dir().join("gosh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.csr");
        std::fs::write(&path, b"not a graph at all").unwrap();
        assert!(load_binary(&path).is_err());
        // Truncated file with a valid magic.
        let g = crate::builder::csr_from_edges(4, &[(0, 1), (2, 3)]);
        write_binary(&path, &g).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        assert!(load_binary(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_overflowing_header() {
        // |V| near u64::MAX must fail cleanly, not overflow-panic while
        // computing the expected file size.
        let dir = std::env::temp_dir().join("gosh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("overflow.csr");
        let mut bytes = BINARY_MAGIC.to_vec();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // |V|
        bytes.extend_from_slice(&0u64.to_le_bytes()); // arcs
        std::fs::write(&path, &bytes).unwrap();
        let err = load_binary(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    fn raw_csr_file(name: &str, xadj: &[u64], adj: &[u32]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gosh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut bytes = BINARY_MAGIC.to_vec();
        bytes.extend_from_slice(&((xadj.len() - 1) as u64).to_le_bytes());
        bytes.extend_from_slice(&(adj.len() as u64).to_le_bytes());
        for &x in xadj {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        for &u in adj {
            bytes.extend_from_slice(&u.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        path
    }

    #[test]
    fn binary_rejects_nonmonotone_xadj() {
        // Right length, last entry matches |arcs| — but the middle offset
        // points past the adj array, which the seed loader accepted.
        let path = raw_csr_file("nonmono.csr", &[0, 3, 2], &[1, 0]);
        let err = load_binary(&path).unwrap_err();
        assert!(err.to_string().contains("monotone"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_out_of_range_adj() {
        let path = raw_csr_file("badadj.csr", &[0, 1, 2], &[5, 0]);
        let err = load_binary(&path).unwrap_err();
        assert!(err.to_string().contains("vertex range"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_nonzero_xadj_start() {
        let path = raw_csr_file("badstart.csr", &[1, 1, 2], &[1, 0]);
        assert!(load_binary(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_short_xadj_tail() {
        // xadj monotone but ends below |arcs|: the stream must flag the
        // mismatch instead of mis-slicing adj.
        let path = raw_csr_file("shorttail.csr", &[0, 1, 1], &[1, 0]);
        let err = load_binary(&path).unwrap_err();
        assert!(err.to_string().contains("inconsistent"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_streams_large_files_in_chunks() {
        // Bigger than one 64 KiB chunk on both arrays: exercises the
        // chunk-boundary arithmetic of the streaming loader.
        let g = crate::gen::erdos_renyi(20_000, 60_000, 11);
        assert!(g.num_vertices() * 8 > BINARY_CHUNK);
        assert!(g.num_edges() * 4 > BINARY_CHUNK);
        let dir = std::env::temp_dir().join("gosh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("big.csr");
        write_binary(&path, &g).unwrap();
        assert_eq!(load_binary(&path).unwrap(), g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let loaded = read_edge_list(Cursor::new("# nothing\n")).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 0);
        assert_eq!(loaded.graph.num_edges(), 0);
        assert_eq!(loaded.stats, ParseStats::default());
    }

    #[test]
    fn final_line_without_newline_parses() {
        let loaded = read_edge_list(Cursor::new("1 2\n2 3")).unwrap();
        assert_eq!(loaded.graph.num_undirected_edges(), 2);
    }
}
