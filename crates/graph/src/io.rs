//! Edge-list I/O.
//!
//! Reads the whitespace-separated edge-list format used by SNAP and KONECT
//! (the paper's data sources): one `u v` pair per line, `#` or `%` comment
//! lines ignored. Vertex ids are compacted to a dense `0..n` range, which
//! is what the SNAP graphs require (their ids are sparse). A matching
//! writer allows round-tripping generated graphs to disk.

use std::collections::HashMap;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};

/// Result of loading an edge list: the graph plus the mapping from original
/// file ids to the dense ids used internally.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The graph with dense vertex ids.
    pub graph: Csr,
    /// `original_ids[v]` is the id vertex `v` had in the input file.
    pub original_ids: Vec<u64>,
}

/// Parse an edge list from a reader. Ids are compacted in first-seen order.
pub fn read_edge_list<R: BufRead>(reader: R) -> io::Result<LoadedGraph> {
    let mut ids: HashMap<u64, VertexId> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();

    let intern = |raw: u64, ids: &mut HashMap<u64, VertexId>, orig: &mut Vec<u64>| {
        *ids.entry(raw).or_insert_with(|| {
            let id = orig.len() as VertexId;
            orig.push(raw);
            id
        })
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u64> {
            tok.ok_or_else(|| bad_line(lineno))?
                .parse::<u64>()
                .map_err(|_| bad_line(lineno))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        let ui = intern(u, &mut ids, &mut original_ids);
        let vi = intern(v, &mut ids, &mut original_ids);
        edges.push((ui, vi));
    }

    let mut b = GraphBuilder::new(original_ids.len());
    b.extend(edges);
    Ok(LoadedGraph {
        graph: b.build(),
        original_ids,
    })
}

fn bad_line(lineno: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed edge list at line {}", lineno + 1),
    )
}

/// Load an edge-list file from disk.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> io::Result<LoadedGraph> {
    let file = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(file))
}

/// Write a graph as an edge list (each undirected edge once, `u <= v`).
pub fn write_edge_list<P: AsRef<Path>>(path: P, graph: &Csr) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# gosh-rs edge list: {} vertices", graph.num_vertices())?;
    for (u, v) in graph.undirected_edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Magic header of the binary CSR format.
const BINARY_MAGIC: &[u8; 8] = b"GOSHCSR1";

/// Write a graph in the binary CSR format: magic, |V| and |arcs| as
/// little-endian u64, then `xadj` (u64 each) and `adj` (u32 each).
/// Loading a binary CSR skips the parse + build of the text path, which
/// matters when the experiment harness re-reads multi-million-edge
/// graphs.
pub fn write_binary<P: AsRef<Path>>(path: P, graph: &Csr) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    for &x in graph.xadj() {
        w.write_all(&(x as u64).to_le_bytes())?;
    }
    for &u in graph.adj() {
        w.write_all(&u.to_le_bytes())?;
    }
    w.flush()
}

/// Load a graph written by [`write_binary`].
///
/// The header is untrusted: sizes are computed with checked arithmetic
/// (a crafted `|V|` near `u64::MAX` must return `InvalidData`, not
/// overflow), `xadj` must start at 0, be monotone, and end at `|arcs|`,
/// and every `adj` entry must be a valid vertex id — so a malicious file
/// can never make a later neighbour lookup index out of bounds.
pub fn load_binary<P: AsRef<Path>>(path: P) -> io::Result<Csr> {
    let data = std::fs::read(path)?;
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if data.len() < 24 || &data[0..8] != BINARY_MAGIC {
        return Err(bad("not a gosh binary CSR file"));
    }
    let read_u64 = |off: usize| u64::from_le_bytes(data[off..off + 8].try_into().unwrap());
    let n64 = read_u64(8);
    let arcs64 = read_u64(16);
    // Checked: 24 + (n + 1) * 8 + arcs * 4, all in u64.
    let expect = n64
        .checked_add(1)
        .and_then(|x| x.checked_mul(8))
        .and_then(|x| x.checked_add(arcs64.checked_mul(4)?))
        .and_then(|x| x.checked_add(24));
    if expect != Some(data.len() as u64) {
        return Err(bad("truncated or oversized binary CSR file"));
    }
    // The size check bounds both counts by the actual file length, so the
    // usize conversions below cannot truncate.
    let n = n64 as usize;
    let arcs = arcs64 as usize;
    let mut xadj = Vec::with_capacity(n + 1);
    let mut off = 24;
    for _ in 0..=n {
        xadj.push(read_u64(off) as usize);
        off += 8;
    }
    let mut adj = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        adj.push(u32::from_le_bytes(data[off..off + 4].try_into().unwrap()));
        off += 4;
    }
    if xadj[0] != 0 || *xadj.last().unwrap() != arcs {
        return Err(bad("inconsistent xadj/adj lengths"));
    }
    if xadj.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad("xadj is not monotone"));
    }
    if adj.iter().any(|&u| u as usize >= n) {
        return Err(bad("adj entry out of vertex range"));
    }
    Ok(Csr::from_raw(xadj, adj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_with_comments_and_blanks() {
        let text = "# header\n% konect style\n\n10 20\n20 30\n10 30\n";
        let loaded = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_undirected_edges(), 3);
        assert_eq!(loaded.original_ids, vec![10, 20, 30]);
    }

    #[test]
    fn compacts_sparse_ids_first_seen() {
        let text = "1000000 5\n5 7\n";
        let loaded = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(loaded.original_ids, vec![1_000_000, 5, 7]);
        assert!(loaded.graph.has_edge(0, 1));
        assert!(loaded.graph.has_edge(1, 2));
    }

    #[test]
    fn rejects_malformed_lines() {
        let text = "1 2\nbogus\n";
        let err = read_edge_list(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let text2 = "1\n";
        assert!(read_edge_list(Cursor::new(text2)).is_err());
    }

    #[test]
    fn round_trip_through_disk() {
        let g = crate::builder::csr_from_edges(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]);
        let dir = std::env::temp_dir().join("gosh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        write_edge_list(&path, &g).unwrap();
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(
            loaded.graph.num_undirected_edges(),
            g.num_undirected_edges()
        );
        assert_eq!(loaded.graph.num_vertices(), g.num_vertices());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let g = crate::gen::erdos_renyi(300, 1200, 5);
        let dir = std::env::temp_dir().join("gosh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csr");
        write_binary(&path, &g).unwrap();
        let loaded = load_binary(&path).unwrap();
        assert_eq!(loaded, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_garbage() {
        let dir = std::env::temp_dir().join("gosh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.csr");
        std::fs::write(&path, b"not a graph at all").unwrap();
        assert!(load_binary(&path).is_err());
        // Truncated file with a valid magic.
        let g = crate::builder::csr_from_edges(4, &[(0, 1), (2, 3)]);
        write_binary(&path, &g).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        assert!(load_binary(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_overflowing_header() {
        // |V| near u64::MAX must fail cleanly, not overflow-panic while
        // computing the expected file size.
        let dir = std::env::temp_dir().join("gosh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("overflow.csr");
        let mut bytes = BINARY_MAGIC.to_vec();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // |V|
        bytes.extend_from_slice(&0u64.to_le_bytes()); // arcs
        std::fs::write(&path, &bytes).unwrap();
        let err = load_binary(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    fn raw_csr_file(name: &str, xadj: &[u64], adj: &[u32]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gosh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut bytes = BINARY_MAGIC.to_vec();
        bytes.extend_from_slice(&((xadj.len() - 1) as u64).to_le_bytes());
        bytes.extend_from_slice(&(adj.len() as u64).to_le_bytes());
        for &x in xadj {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        for &u in adj {
            bytes.extend_from_slice(&u.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        path
    }

    #[test]
    fn binary_rejects_nonmonotone_xadj() {
        // Right length, last entry matches |arcs| — but the middle offset
        // points past the adj array, which the seed loader accepted.
        let path = raw_csr_file("nonmono.csr", &[0, 3, 2], &[1, 0]);
        let err = load_binary(&path).unwrap_err();
        assert!(err.to_string().contains("monotone"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_out_of_range_adj() {
        let path = raw_csr_file("badadj.csr", &[0, 1, 2], &[5, 0]);
        let err = load_binary(&path).unwrap_err();
        assert!(err.to_string().contains("vertex range"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_nonzero_xadj_start() {
        let path = raw_csr_file("badstart.csr", &[1, 1, 2], &[1, 0]);
        assert!(load_binary(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let loaded = read_edge_list(Cursor::new("# nothing\n")).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 0);
        assert_eq!(loaded.graph.num_edges(), 0);
    }
}
