//! Compressed Sparse Row graph representation.
//!
//! This is the data structure named in the paper's §3.2.1: `xadj` holds the
//! starting index of each vertex's neighbour list inside `adj`, with
//! `xadj[n]` equal to the number of (directed) edges. Both the coarsening
//! and the trainers operate directly on this layout.

/// Vertex identifier. 32 bits cover every graph in the paper
/// (com-friendster has 65.6 M vertices).
pub type VertexId = u32;

/// A graph in CSR form.
///
/// For undirected graphs each edge is stored in both directions, so
/// `num_edges()` counts *directed* arcs; `num_undirected_edges()` halves it.
/// The structure is immutable after construction — exactly how GOSH treats
/// each level of the coarsening hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    xadj: Vec<usize>,
    adj: Vec<VertexId>,
}

impl Csr {
    /// Build from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent: `xadj` must be non-empty,
    /// non-decreasing, start at 0 and end at `adj.len()`, and every
    /// neighbour id must be `< n`.
    pub fn from_raw(xadj: Vec<usize>, adj: Vec<VertexId>) -> Self {
        assert!(!xadj.is_empty(), "xadj must have at least one entry");
        assert_eq!(xadj[0], 0, "xadj must start at 0");
        assert_eq!(*xadj.last().unwrap(), adj.len(), "xadj must end at |adj|");
        let n = xadj.len() - 1;
        for w in xadj.windows(2) {
            assert!(w[0] <= w[1], "xadj must be non-decreasing");
        }
        for &u in &adj {
            assert!((u as usize) < n, "neighbour id {u} out of range (n={n})");
        }
        Self { xadj, adj }
    }

    /// Build from raw CSR arrays the caller guarantees are valid: the
    /// invariants of [`Csr::from_raw`] are checked only in debug builds.
    ///
    /// For internal builders whose construction proves validity (e.g.
    /// the coarsening pipeline's prefix-summed `xadj` over compact
    /// cluster ids), where the O(|V| + |E|) validation pass is
    /// measurable. External or untrusted data must go through
    /// [`Csr::from_raw`].
    pub fn from_raw_trusted(xadj: Vec<usize>, adj: Vec<VertexId>) -> Self {
        if cfg!(debug_assertions) {
            Self::from_raw(xadj, adj)
        } else {
            Self { xadj, adj }
        }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            xadj: vec![0; n + 1],
            adj: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of directed arcs stored (2x the edge count for symmetric graphs).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges assuming a symmetric adjacency.
    #[inline]
    pub fn num_undirected_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Average degree `|E| / |V|` — the δ threshold of Algorithm 4.
    #[inline]
    pub fn density(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// The neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.adj[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Degree of `v` (|Γ(v)| in the paper's notation for symmetric graphs).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.xadj[v + 1] - self.xadj[v]
    }

    /// The `k`-th neighbour of `v` (unchecked in release builds).
    #[inline]
    pub fn neighbor_at(&self, v: VertexId, k: usize) -> VertexId {
        debug_assert!(k < self.degree(v));
        self.adj[self.xadj[v as usize] + k]
    }

    /// Raw offset array.
    #[inline]
    pub fn xadj(&self) -> &[usize] {
        &self.xadj
    }

    /// Raw adjacency array.
    #[inline]
    pub fn adj(&self) -> &[VertexId] {
        &self.adj
    }

    /// Iterator over all directed arcs `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterator over undirected edges `(u, v)` with `u <= v` (each reported once).
    pub fn undirected_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.edges().filter(|&(u, v)| u <= v)
    }

    /// True if `(u, v)` is an arc. Binary search when the list is sorted,
    /// which `GraphBuilder` guarantees; linear fallback is still correct on
    /// unsorted lists produced by external CSR data.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let nbrs = self.neighbors(u);
        if nbrs.len() >= 16 && nbrs.windows(2).all(|w| w[0] <= w[1]) {
            nbrs.binary_search(&v).is_ok()
        } else {
            nbrs.contains(&v)
        }
    }

    /// True if every arc `(u, v)` has a reverse arc `(v, u)`.
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.neighbors(v).contains(&u))
    }

    /// True if no vertex lists itself as a neighbour.
    pub fn has_no_self_loops(&self) -> bool {
        self.edges().all(|(u, v)| u != v)
    }

    /// Number of vertices with degree zero.
    pub fn num_isolated(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .filter(|&v| self.degree(v) == 0)
            .count()
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Bytes needed to hold the graph (`(|V|+1) + |E|` entries, §3.3).
    pub fn memory_bytes(&self) -> usize {
        self.xadj.len() * std::mem::size_of::<usize>()
            + self.adj.len() * std::mem::size_of::<VertexId>()
    }

    /// Consume into raw arrays.
    pub fn into_raw(self) -> (Vec<usize>, Vec<VertexId>) {
        (self.xadj, self.adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2 stored symmetrically.
    fn path3() -> Csr {
        Csr::from_raw(vec![0, 1, 3, 4], vec![1, 0, 2, 1])
    }

    #[test]
    fn basic_accessors() {
        let g = path3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_undirected_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbor_at(1, 1), 2);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_isolated(), 5);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.density(), 0.0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Csr::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.density(), 0.0);
    }

    #[test]
    fn edges_iterator_counts() {
        let g = path3();
        assert_eq!(g.edges().count(), 4);
        assert_eq!(g.undirected_edges().count(), 2);
        let e: Vec<_> = g.undirected_edges().collect();
        assert_eq!(e, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn symmetry_and_loops() {
        let g = path3();
        assert!(g.is_symmetric());
        assert!(g.has_no_self_loops());
        let asym = Csr::from_raw(vec![0, 1, 1], vec![1]);
        assert!(!asym.is_symmetric());
        let looped = Csr::from_raw(vec![0, 1], vec![0]);
        assert!(!looped.has_no_self_loops());
    }

    #[test]
    fn has_edge_small_and_large() {
        let g = path3();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        // Large sorted neighbour list to hit the binary-search path.
        let n = 64usize;
        let xadj = vec![0, n - 1]
            .into_iter()
            .chain(std::iter::repeat_n(n - 1, n - 1))
            .collect::<Vec<_>>();
        let adj: Vec<u32> = (1..n as u32).collect();
        let g = Csr::from_raw(xadj, adj);
        assert!(g.has_edge(0, 33));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn density_matches_definition() {
        let g = path3();
        assert!((g.density() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "xadj must start at 0")]
    fn bad_xadj_start_panics() {
        Csr::from_raw(vec![1, 2], vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_xadj_panics() {
        Csr::from_raw(vec![0, 2, 1, 3], vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_neighbor_panics() {
        Csr::from_raw(vec![0, 1], vec![5]);
    }

    #[test]
    fn memory_bytes_formula() {
        let g = path3();
        let expect = 4 * std::mem::size_of::<usize>() + 4 * std::mem::size_of::<u32>();
        assert_eq!(g.memory_bytes(), expect);
    }

    #[test]
    fn into_raw_round_trip() {
        let g = path3();
        let (xadj, adj) = g.clone().into_raw();
        let g2 = Csr::from_raw(xadj, adj);
        assert_eq!(g, g2);
    }

    #[test]
    fn trusted_constructor_matches_checked_on_valid_input() {
        let g = path3();
        let (xadj, adj) = g.clone().into_raw();
        assert_eq!(g, Csr::from_raw_trusted(xadj, adj));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn trusted_constructor_still_validates_in_debug() {
        Csr::from_raw_trusted(vec![0, 1], vec![5]);
    }
}
