//! Structural statistics used by the experiment printouts (Table 2) and by
//! coarsening-quality checks (shrink rate, degree skew).

use crate::csr::Csr;

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges (assuming symmetric storage).
    pub num_edges: usize,
    /// |E| / |V| with |E| counted once per undirected edge, as in Table 2.
    pub density: f64,
    /// Largest degree.
    pub max_degree: usize,
    /// Vertices with no edges.
    pub isolated: usize,
    /// Fraction of arcs incident to the top 1% highest-degree vertices —
    /// a cheap skew measure (≈1 means hub-dominated, ≈0.02 means flat).
    pub hub_mass: f64,
}

impl GraphStats {
    /// Compute statistics for `g`.
    pub fn compute(g: &Csr) -> Self {
        let n = g.num_vertices();
        let mut degrees: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
        let isolated = degrees.iter().filter(|&&d| d == 0).count();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let total: usize = degrees.iter().sum();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top = (n / 100).max(1).min(n.max(1));
        let hub: usize = degrees.iter().take(top).sum();
        let hub_mass = if total == 0 {
            0.0
        } else {
            hub as f64 / total as f64
        };
        Self {
            num_vertices: n,
            num_edges: g.num_undirected_edges(),
            density: if n == 0 {
                0.0
            } else {
                g.num_undirected_edges() as f64 / n as f64
            },
            max_degree,
            isolated,
            hub_mass,
        }
    }
}

/// Degree histogram with logarithmic buckets `[2^k, 2^{k+1})`.
///
/// Bucket 0 counts degree-0 vertices, bucket k >= 1 counts degrees in
/// `[2^{k-1}, 2^k)`.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let mut hist = vec![0usize; 34];
    for v in 0..g.num_vertices() as u32 {
        let d = g.degree(v);
        let bucket = if d == 0 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize
        };
        hist[bucket] += 1;
    }
    while hist.len() > 1 && *hist.last().unwrap() == 0 {
        hist.pop();
    }
    hist
}

/// Shrink rate between consecutive coarsening levels (§3.2):
/// `(|V_{i-1}| - |V_i|) / |V_{i-1}|`.
pub fn shrink_rate(prev_vertices: usize, next_vertices: usize) -> f64 {
    if prev_vertices == 0 {
        return 0.0;
    }
    (prev_vertices as f64 - next_vertices as f64) / prev_vertices as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::csr_from_edges;
    use crate::gen::{erdos_renyi, rmat, RmatConfig};

    #[test]
    fn stats_on_path() {
        let g = csr_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated, 0);
        assert!((s.density - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stats_on_empty() {
        let g = Csr::empty(3);
        let s = GraphStats::compute(&g);
        assert_eq!(s.isolated, 3);
        assert_eq!(s.hub_mass, 0.0);
        let g0 = Csr::empty(0);
        assert_eq!(GraphStats::compute(&g0).density, 0.0);
    }

    use crate::csr::Csr;

    #[test]
    fn rmat_is_more_skewed_than_er() {
        let er = erdos_renyi(4096, 32768, 1);
        let rm = rmat(&RmatConfig::graph500(12, 8.0), 1);
        let s_er = GraphStats::compute(&er);
        let s_rm = GraphStats::compute(&rm);
        assert!(
            s_rm.hub_mass > 2.0 * s_er.hub_mass,
            "rmat hub mass {} vs er {}",
            s_rm.hub_mass,
            s_er.hub_mass
        );
    }

    #[test]
    fn histogram_counts_everything() {
        let g = erdos_renyi(1000, 4000, 2);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn histogram_buckets_are_correct() {
        // Star: center degree 4 -> bucket 3 ([4,8)); leaves degree 1 -> bucket 1.
        let g = csr_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let hist = degree_histogram(&g);
        assert_eq!(hist[1], 4);
        assert_eq!(hist[3], 1);
    }

    #[test]
    fn shrink_rate_examples() {
        assert!((shrink_rate(100, 20) - 0.8).abs() < 1e-12);
        assert_eq!(shrink_rate(0, 0), 0.0);
        assert_eq!(shrink_rate(10, 10), 0.0);
    }
}
