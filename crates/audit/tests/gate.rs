//! End-to-end tests for the audit gate, in the same style as
//! `bench_check`'s injected-regression tests: build a miniature
//! workspace in a temp dir, run the real [`gosh_audit::run`] entry
//! point against it, and check that a clean tree passes while each
//! class of injected violation fails with the right rule. The final
//! test audits this repository itself, so the gate can never ship red.

use std::fs;
use std::path::{Path, PathBuf};

struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("gosh_audit_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        TempTree { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const CLEAN_LIB: &str = "\
// SAFETY: p points into the caller's live buffer.
fn read(p: *const u8) -> u8 {
    // SAFETY: the caller keeps `p` valid for this call.
    unsafe { *p }
}

#[test]
fn covering_test() {
    assert_eq!(1 + 1, 2);
}
";

const CLEAN_CONFIG: &str = "\
forbid_unsafe = []
unsafe_crates = []
unwrap_forbidden = []

[[coverage]]
file = \"lib.rs\"
tests = [\"covering_test\"]
";

fn rules_of(outcome: &gosh_audit::Outcome) -> Vec<&'static str> {
    outcome.violations.iter().map(|v| v.rule).collect()
}

/// Write the inventory first so the drift gate sees a fresh one, then
/// run the real check.
fn audit(root: &Path) -> gosh_audit::Outcome {
    gosh_audit::run(root, true).unwrap();
    gosh_audit::run(root, false).unwrap()
}

#[test]
fn clean_tree_passes() {
    let t = TempTree::new("clean");
    t.write("audit.toml", CLEAN_CONFIG);
    t.write("lib.rs", CLEAN_LIB);
    let outcome = audit(&t.root);
    assert!(outcome.passed(), "{:?}", outcome.violations);
    assert_eq!(outcome.sites, 1);
    assert!(t.root.join("docs/UNSAFE.md").exists());
    assert!(t.root.join("docs/UNSAFE.json").exists());
}

#[test]
fn injected_undocumented_unsafe_fails() {
    let t = TempTree::new("undoc");
    t.write("audit.toml", CLEAN_CONFIG);
    t.write(
        "lib.rs",
        &CLEAN_LIB.replace(
            "    // SAFETY: the caller keeps `p` valid for this call.\n",
            "",
        ),
    );
    let outcome = audit(&t.root);
    assert!(rules_of(&outcome).contains(&"undocumented-unsafe"));
}

#[test]
fn injected_unlisted_relaxed_fails() {
    let t = TempTree::new("relaxed");
    t.write("audit.toml", "forbid_unsafe = []\nunsafe_crates = []\n");
    t.write(
        "counter.rs",
        "use std::sync::atomic::{AtomicU32, Ordering};\n\
         fn bump(c: &AtomicU32) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n",
    );
    let outcome = audit(&t.root);
    assert!(
        rules_of(&outcome).contains(&"atomic-ordering"),
        "{:?}",
        outcome.violations
    );
}

#[test]
fn drifted_ordering_count_fails_even_in_a_blessed_file() {
    let t = TempTree::new("drift");
    let cfg = "forbid_unsafe = []\nunsafe_crates = []\n\n\
               [[atomics]]\nfile = \"counter.rs\"\nrelaxed = 1\nseqcst = 0\nwhy = \"stat counter\"\n";
    let src_one = "use std::sync::atomic::{AtomicU32, Ordering};\n\
                   fn bump(c: &AtomicU32) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
    t.write("audit.toml", cfg);
    t.write("counter.rs", src_one);
    assert!(audit(&t.root).passed());

    // One more Relaxed than the entry blesses: fail until re-reviewed.
    t.write(
        "counter.rs",
        &format!("{src_one}fn dec(c: &AtomicU32) {{\n    c.fetch_sub(1, Ordering::Relaxed);\n}}\n"),
    );
    let outcome = audit(&t.root);
    assert!(rules_of(&outcome).contains(&"atomic-ordering"));
    let msg = &outcome
        .violations
        .iter()
        .find(|v| v.rule == "atomic-ordering")
        .unwrap()
        .msg;
    assert!(msg.contains("drifted"), "{msg}");
}

#[test]
fn injected_transmute_and_static_mut_fail_without_waivers() {
    let t = TempTree::new("api");
    t.write("audit.toml", "forbid_unsafe = []\nunsafe_crates = []\n");
    t.write(
        "bad.rs",
        "static mut GLOBAL: u32 = 0;\n\
         fn reinterpret(x: f32) -> u32 {\n\
             // SAFETY: same size and alignment.\n\
             unsafe { std::mem::transmute(x) }\n\
         }\n",
    );
    let outcome = audit(&t.root);
    let forbidden = outcome
        .violations
        .iter()
        .filter(|v| v.rule == "forbidden-api")
        .count();
    assert_eq!(forbidden, 2, "{:?}", outcome.violations);
    // The same file also needs a coverage entry for its unsafe block.
    assert!(rules_of(&outcome).contains(&"coverage"));
}

#[test]
fn unsafe_without_covering_test_fails() {
    let t = TempTree::new("cover");
    t.write("audit.toml", "forbid_unsafe = []\nunsafe_crates = []\n");
    t.write(
        "lib.rs",
        "fn read(p: *const u8) -> u8 {\n    // SAFETY: caller contract.\n    unsafe { *p }\n}\n",
    );
    let outcome = audit(&t.root);
    assert!(rules_of(&outcome).contains(&"coverage"));
}

#[test]
fn coverage_naming_a_missing_test_fails() {
    let t = TempTree::new("ghost");
    t.write(
        "audit.toml",
        &CLEAN_CONFIG.replace("covering_test", "test_that_does_not_exist"),
    );
    t.write("lib.rs", CLEAN_LIB);
    let outcome = audit(&t.root);
    assert!(rules_of(&outcome).contains(&"coverage"));
    assert!(outcome
        .violations
        .iter()
        .any(|v| v.msg.contains("test_that_does_not_exist")));
}

#[test]
fn stale_inventory_fails_until_regenerated() {
    let t = TempTree::new("stale");
    t.write("audit.toml", CLEAN_CONFIG);
    t.write("lib.rs", CLEAN_LIB);
    assert!(audit(&t.root).passed());

    // Moving the unsafe site shifts its line; the inventory must drift.
    t.write(
        "lib.rs",
        &format!("// a new leading comment line\n{CLEAN_LIB}"),
    );
    let outcome = gosh_audit::run(&t.root, false).unwrap();
    assert!(
        rules_of(&outcome).contains(&"inventory"),
        "{:?}",
        outcome.violations
    );

    gosh_audit::run(&t.root, true).unwrap();
    assert!(gosh_audit::run(&t.root, false).unwrap().passed());
}

#[test]
fn unclassified_crate_fails() {
    let t = TempTree::new("crate");
    t.write("audit.toml", "forbid_unsafe = []\nunsafe_crates = []\n");
    t.write(
        "crates/newcrate/Cargo.toml",
        "[package]\nname = \"newcrate\"\n",
    );
    t.write("crates/newcrate/src/lib.rs", "pub fn f() {}\n");
    let outcome = audit(&t.root);
    assert!(
        rules_of(&outcome).contains(&"config"),
        "{:?}",
        outcome.violations
    );
    assert!(outcome
        .violations
        .iter()
        .any(|v| v.msg.contains("newcrate") && v.msg.contains("not classified")));
}

#[test]
fn missing_lint_header_fails() {
    let t = TempTree::new("lint");
    t.write(
        "audit.toml",
        "forbid_unsafe = [\"crates/safe\"]\nunsafe_crates = []\n",
    );
    t.write("crates/safe/Cargo.toml", "[package]\nname = \"safe\"\n");
    t.write("crates/safe/src/lib.rs", "pub fn f() {}\n");
    let outcome = audit(&t.root);
    assert!(rules_of(&outcome).contains(&"lint-header"));

    t.write(
        "crates/safe/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    );
    assert!(audit(&t.root).passed());
}

#[test]
fn unsafe_inside_a_declared_safe_crate_fails() {
    let t = TempTree::new("leak");
    t.write(
        "audit.toml",
        "forbid_unsafe = [\"crates/safe\"]\nunsafe_crates = []\n\n\
         [[coverage]]\nfile = \"crates/safe/src/lib.rs\"\ntests = [\"t\"]\n",
    );
    t.write("crates/safe/Cargo.toml", "[package]\nname = \"safe\"\n");
    t.write(
        "crates/safe/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         fn read(p: *const u8) -> u8 {\n    // SAFETY: caller contract.\n    unsafe { *p }\n}\n\
         #[test]\nfn t() {}\n",
    );
    let outcome = audit(&t.root);
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.rule == "lint-header" && v.msg.contains("unsafe-free")),
        "{:?}",
        outcome.violations
    );
}

/// The gate must pass on this repository as shipped — the same
/// invocation CI runs. This is the test that keeps the audit honest:
/// any unsafe site, ordering, or inventory drift in the workspace
/// fails the suite, not just the CI step.
#[test]
fn the_workspace_itself_passes_the_audit() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    assert!(root.join("audit.toml").exists(), "repo root not found");
    let outcome = gosh_audit::run(&root, false).unwrap();
    for v in &outcome.violations {
        eprintln!("{v}");
    }
    assert!(outcome.passed(), "workspace audit failed");
    assert!(
        outcome.sites > 0,
        "scanner found no unsafe at all — broken walk?"
    );
    assert!(outcome.files_scanned > 100);
}
