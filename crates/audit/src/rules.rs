//! The audit rules, applied per file over the token stream from
//! [`crate::lexer`]. Each rule is documented in `docs/SAFETY.md`; the
//! short names here appear in violation output and in
//! `audit:allow(<rule>)` waiver comments.
//!
//! * `undocumented-unsafe` — every `unsafe` block / `unsafe impl` /
//!   `unsafe trait` / `unsafe extern` must have a `// SAFETY:` comment
//!   immediately above it (a contiguous comment run ending at most 3
//!   lines before the site, with no other code in between).
//! * `missing-safety-doc` — every `unsafe fn` must carry a `# Safety`
//!   section in its doc comment.
//! * `atomic-ordering` — `Ordering::Relaxed` / `Ordering::SeqCst` may
//!   only appear in files blessed by `[[atomics]]` in `audit.toml`,
//!   and the per-file counts must match exactly. Importing ordering
//!   variants unqualified (`use …::Ordering::Relaxed`) is forbidden
//!   outright because it would blind this rule.
//! * `forbidden-api` — `transmute` and `static mut` anywhere; bare
//!   `.unwrap()` outside `#[cfg(test)]` in the hardened files listed
//!   under `unwrap_forbidden`. Waivable per-site with
//!   `// audit:allow(<rule>): reason`.

use crate::lexer::{lex, Tok, TokKind};
use std::fmt;

/// Kind of unsafe site, for the inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    Block,
    Fn,
    Impl,
    Trait,
    ExternBlock,
}

impl fmt::Display for SiteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SiteKind::Block => "block",
            SiteKind::Fn => "fn",
            SiteKind::Impl => "impl",
            SiteKind::Trait => "trait",
            SiteKind::ExternBlock => "extern",
        })
    }
}

/// One `unsafe` occurrence with its stated invariant (the SAFETY
/// comment or `# Safety` doc text, whitespace-collapsed).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub line: u32,
    pub kind: SiteKind,
    /// Function name for `Fn` sites, `impl`/`trait` target for those,
    /// empty for plain blocks.
    pub name: String,
    /// The documented invariant; empty when missing (which is itself a
    /// violation, so a passing audit has no empty invariants).
    pub invariant: String,
    /// True when the site sits inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

/// A waived forbidden-API use, carried into the inventory so waivers
/// stay visible instead of silently suppressing findings.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub line: u32,
    pub rule: String,
    pub reason: String,
}

#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Everything the scanner learned about one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub sites: Vec<UnsafeSite>,
    pub violations: Vec<Violation>,
    pub waivers: Vec<Waiver>,
    pub relaxed: u32,
    pub seqcst: u32,
    /// Every `fn` name defined in the file — used to check that the
    /// tests named in `[[coverage]]` actually exist somewhere.
    pub fn_names: Vec<String>,
}

/// Per-file knobs derived from `audit.toml` and the path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileOptions {
    /// `.unwrap()` outside tests is a violation in this file.
    pub unwrap_forbidden: bool,
    /// The whole file is test/bench/example code: the unwrap rule is
    /// off and every site counts as `in_test`.
    pub test_file: bool,
}

/// How close (in lines) a SAFETY comment run must end to the site it
/// blesses. 3 lines tolerates a short wrapped statement between them.
const SAFETY_COMMENT_WINDOW: u32 = 3;

struct Scanner<'a> {
    file: &'a str,
    toks: &'a [Tok],
    /// Indices into `toks` of non-comment tokens.
    code: Vec<usize>,
    /// Half-open spans over *code positions* that are test-gated items.
    test_spans: Vec<(usize, usize)>,
    /// (start_line, end_line) of every attribute, for doc-walking.
    attr_lines: Vec<(u32, u32)>,
    opts: FileOptions,
    report: FileReport,
}

/// Run every per-file rule over `src`.
pub fn scan_file(file: &str, src: &str, opts: FileOptions) -> FileReport {
    let toks = lex(src);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut s = Scanner {
        file,
        toks: &toks,
        code,
        test_spans: Vec::new(),
        attr_lines: Vec::new(),
        opts,
        report: FileReport::default(),
    };
    s.find_attrs_and_test_spans();
    s.walk();
    s.report
}

impl<'a> Scanner<'a> {
    fn ctext(&self, pos: usize) -> &str {
        self.code
            .get(pos)
            .map(|&i| self.toks[i].text.as_str())
            .unwrap_or("")
    }

    fn violation(&mut self, line: u32, rule: &'static str, msg: String) {
        self.report.violations.push(Violation {
            file: self.file.to_string(),
            line,
            rule,
            msg,
        });
    }

    /// Locate attributes; mark items behind `#[test]`-ish attributes as
    /// test spans. An attribute is test-ish when its tokens contain the
    /// identifier `test` (covers `#[test]`, `#[cfg(test)]`,
    /// `#[cfg(any(test, …))]`; string values like `feature = "test"`
    /// are Str tokens and don't match).
    fn find_attrs_and_test_spans(&mut self) {
        let mut p = 0usize;
        while p < self.code.len() {
            if self.ctext(p) != "#" {
                p += 1;
                continue;
            }
            let mut q = p + 1;
            if self.ctext(q) == "!" {
                q += 1;
            }
            if self.ctext(q) != "[" {
                p += 1;
                continue;
            }
            // Find the matching `]`.
            let mut depth = 0i32;
            let mut r = q;
            let mut test_ish = false;
            while r < self.code.len() {
                match self.ctext(r) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" if self.toks[self.code[r]].kind == TokKind::Ident => {
                        test_ish = true;
                    }
                    _ => {}
                }
                r += 1;
            }
            if r >= self.code.len() {
                break;
            }
            let start_line = self.toks[self.code[p]].line;
            let end_line = self.toks[self.code[r]].end_line;
            self.attr_lines.push((start_line, end_line));
            if test_ish && self.ctext(p + 1) != "!" {
                // Skip any further attributes, then swallow the item:
                // either `…;` at depth 0 or a balanced `{…}` body.
                let mut item = r + 1;
                while self.ctext(item) == "#" {
                    let mut d2 = 0i32;
                    let mut r2 = item + 1;
                    while r2 < self.code.len() {
                        match self.ctext(r2) {
                            "[" => d2 += 1,
                            "]" => {
                                d2 -= 1;
                                if d2 == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        r2 += 1;
                    }
                    let a_start = self.toks[self.code[item]].line;
                    let a_end = self
                        .code
                        .get(r2)
                        .map(|&i| self.toks[i].end_line)
                        .unwrap_or(a_start);
                    self.attr_lines.push((a_start, a_end));
                    item = r2 + 1;
                }
                let mut brace = 0i32;
                let mut e = item;
                let mut entered = false;
                while e < self.code.len() {
                    match self.ctext(e) {
                        "{" => {
                            brace += 1;
                            entered = true;
                        }
                        "}" => {
                            brace -= 1;
                            if entered && brace == 0 {
                                e += 1;
                                break;
                            }
                        }
                        ";" if !entered && brace == 0 => {
                            e += 1;
                            break;
                        }
                        _ => {}
                    }
                    e += 1;
                }
                self.test_spans.push((p, e));
                p = e;
                continue;
            }
            p = r + 1;
        }
    }

    fn in_test(&self, pos: usize) -> bool {
        self.opts.test_file || self.test_spans.iter().any(|&(a, b)| pos >= a && pos < b)
    }

    /// Is there an `audit:allow(<rule>): reason` comment on or just
    /// above `line`? Records the waiver when found.
    fn take_waiver(&mut self, line: u32, rule: &str) -> bool {
        let needle = format!("audit:allow({rule})");
        for t in self.toks.iter().filter(|t| t.is_comment()) {
            if t.end_line + 2 >= line && t.end_line <= line && t.text.contains(&needle) {
                let reason = t
                    .text
                    .split_once(&needle)
                    .map(|(_, rest)| rest.trim_start_matches(':').trim().to_string())
                    .unwrap_or_default();
                self.report.waivers.push(Waiver {
                    line,
                    rule: rule.to_string(),
                    reason,
                });
                return true;
            }
        }
        false
    }

    /// The contiguous comment run immediately preceding token index
    /// `ti` (a `toks` index), joined. Returns `(text, end_line)`.
    ///
    /// Walking backwards stops at a statement boundary (`;`, `{`, `}`)
    /// so a comment can only bless the statement it sits directly
    /// above — `// SAFETY:` above one `unsafe impl` does not carry
    /// over to the next, matching clippy's comment-above-statement
    /// behavior. Statement-head tokens (`let x = unsafe {`) are walked
    /// through, bounded by [`SAFETY_COMMENT_WINDOW`].
    fn preceding_comment_run(&self, ti: usize) -> Option<(String, u32)> {
        let mut j = ti;
        while j > 0 {
            j -= 1;
            if self.toks[j].is_comment() {
                // Extend backwards over adjacent comment lines.
                let mut k = j;
                while k > 0
                    && self.toks[k - 1].is_comment()
                    && self.toks[k - 1].end_line + 1 >= self.toks[k].line
                {
                    k -= 1;
                }
                let text = self.toks[k..=j]
                    .iter()
                    .map(|t| t.text.trim())
                    .collect::<Vec<_>>()
                    .join(" ");
                return Some((text, self.toks[j].end_line));
            }
            let t = &self.toks[j];
            // A boundary on the site's own line is part of the same
            // statement (match-arm patterns, `f(); let x = unsafe {`);
            // one on an earlier line ends the association.
            let boundary =
                matches!(t.text.as_str(), ";" | "{" | "}") && t.end_line < self.toks[ti].line;
            if boundary || t.end_line + SAFETY_COMMENT_WINDOW < self.toks[ti].line {
                return None;
            }
        }
        None
    }

    /// Doc text attached to the item whose first modifier token is at
    /// `toks` index `ti`, walking up over attribute and comment lines.
    fn doc_text_above(&self, ti: usize) -> String {
        let site_line = self.toks[ti].line;
        // Lines covered by attributes above the site.
        let mut cursor = site_line;
        let mut docs: Vec<&str> = Vec::new();
        // Walk tokens backwards, consuming doc comments and attribute
        // spans that end on cursor-1 (or touch it).
        let mut j = ti;
        while j > 0 {
            j -= 1;
            let t = &self.toks[j];
            if t.end_line + 1 < cursor {
                // A gap: check if an attribute span covers the gap.
                let covered = self
                    .attr_lines
                    .iter()
                    .any(|&(a, b)| b + 1 >= cursor && a <= t.end_line + 1);
                if !covered {
                    break;
                }
            }
            match t.kind {
                TokKind::DocComment => {
                    docs.push(&t.text);
                    cursor = t.line;
                }
                TokKind::LineComment | TokKind::BlockComment => {
                    cursor = t.line;
                }
                _ => {
                    // Code token: keep walking only if it's attribute
                    // machinery (`#`, `[`, `]`, or inside an attr span).
                    let in_attr = self
                        .attr_lines
                        .iter()
                        .any(|&(a, b)| t.line >= a && t.end_line <= b);
                    if in_attr {
                        cursor = t.line;
                    } else {
                        break;
                    }
                }
            }
        }
        docs.reverse();
        docs.join("\n")
    }

    fn walk(&mut self) {
        let mut p = 0usize;
        while p < self.code.len() {
            let ti = self.code[p];
            let t = &self.toks[ti];
            match (t.kind, t.text.as_str()) {
                (TokKind::Ident, "unsafe") => {
                    // `r#unsafe` also lexes to Ident("unsafe"); it can
                    // never be followed by fn/impl/trait/{/extern, so
                    // the classifier below treats it as… nothing we
                    // flag. Guard: skip if next token is not a site
                    // opener.
                    self.handle_unsafe(p);
                }
                (TokKind::Ident, "fn") => {
                    if let Some(&ni) = self.code.get(p + 1) {
                        if self.toks[ni].kind == TokKind::Ident {
                            let name = self.toks[ni].text.clone();
                            self.report.fn_names.push(name);
                        }
                    }
                }
                (TokKind::Ident, "Ordering")
                    if self.ctext(p + 1) == ":"
                        && self.ctext(p + 2) == ":"
                        && matches!(self.ctext(p + 3), "Relaxed" | "SeqCst") =>
                {
                    if self.ctext(p + 3) == "Relaxed" {
                        self.report.relaxed += 1;
                    } else {
                        self.report.seqcst += 1;
                    }
                }
                (TokKind::Ident, "use") => {
                    self.check_use_statement(p);
                }
                (TokKind::Ident, "transmute") => {
                    let line = t.line;
                    if !self.take_waiver(line, "transmute") {
                        self.violation(
                            line,
                            "forbidden-api",
                            "`transmute` is forbidden (see docs/SAFETY.md); \
                             waive a justified use with `// audit:allow(transmute): why`"
                                .to_string(),
                        );
                    }
                }
                (TokKind::Ident, "static") if self.ctext(p + 1) == "mut" => {
                    let line = t.line;
                    if !self.take_waiver(line, "static-mut") {
                        self.violation(
                            line,
                            "forbidden-api",
                            "`static mut` is forbidden; use an atomic or OnceLock".to_string(),
                        );
                    }
                }
                (TokKind::Ident, "unwrap")
                    if self.opts.unwrap_forbidden
                        && !self.in_test(p)
                        && self.ctext(p + 1) == "("
                        && self.ctext(p + 2) == ")"
                        && p > 0
                        && self.ctext(p - 1) == "." =>
                {
                    let line = t.line;
                    if !self.take_waiver(line, "unwrap") {
                        self.violation(
                            line,
                            "forbidden-api",
                            "`.unwrap()` outside tests in a hardened file; return an \
                             error or waive with `// audit:allow(unwrap): why`"
                                .to_string(),
                        );
                    }
                }
                _ => {}
            }
            p += 1;
        }
    }

    /// `use …::Ordering::{Relaxed,SeqCst,*}` would let orderings appear
    /// without the `Ordering::` prefix and blind the counting rule.
    fn check_use_statement(&mut self, p: usize) {
        let line = self.toks[self.code[p]].line;
        let mut q = p + 1;
        let mut prev_ordering = false;
        while q < self.code.len() && self.ctext(q) != ";" {
            let txt = self.ctext(q);
            if prev_ordering && txt == ":" && self.ctext(q + 1) == ":" {
                let nxt = self.ctext(q + 2);
                if matches!(nxt, "Relaxed" | "SeqCst" | "Acquire" | "Release" | "AcqRel")
                    || nxt == "*"
                    || nxt == "{"
                {
                    self.violation(
                        line,
                        "atomic-ordering",
                        "importing `Ordering` variants unqualified defeats the \
                         per-file ordering audit; import `Ordering` itself instead"
                            .to_string(),
                    );
                    return;
                }
            }
            prev_ordering = txt == "Ordering";
            q += 1;
        }
    }

    fn handle_unsafe(&mut self, p: usize) {
        let ti = self.code[p];
        let line = self.toks[ti].line;
        let next = self.ctext(p + 1);
        let name_is_ident = |s: &Self, at: usize| {
            s.code
                .get(at)
                .map(|&i| s.toks[i].kind == TokKind::Ident)
                .unwrap_or(false)
        };
        let (kind, name) = match next {
            "fn" => {
                if !name_is_ident(self, p + 2) {
                    return; // `unsafe fn(…)` pointer type, not an item
                }
                (SiteKind::Fn, self.ctext(p + 2).to_string())
            }
            "impl" => (SiteKind::Impl, self.impl_target(p + 2)),
            "trait" => (SiteKind::Trait, self.ctext(p + 2).to_string()),
            "extern" => {
                // `unsafe extern "C" fn` vs `unsafe extern "C" { … }`.
                let mut q = p + 2;
                if self
                    .toks
                    .get(self.code.get(q).copied().unwrap_or(usize::MAX))
                    .map(|t| t.kind)
                    == Some(TokKind::Str)
                {
                    q += 1;
                }
                if self.ctext(q) == "fn" {
                    if !name_is_ident(self, q + 1) {
                        return; // `unsafe extern "C" fn(…)` pointer type
                    }
                    (SiteKind::Fn, self.ctext(q + 1).to_string())
                } else {
                    (SiteKind::ExternBlock, String::new())
                }
            }
            "{" => (SiteKind::Block, String::new()),
            _ => return, // `r#unsafe` identifier or type position; not a site
        };

        let in_test = self.in_test(p);
        let invariant = match kind {
            SiteKind::Fn => {
                // Anchor the doc walk at the first modifier of the item
                // (`pub(crate) const unsafe fn …` docs sit above `pub`).
                let mut head = p;
                while head > 0 {
                    let prev_ti = self.code[head - 1];
                    let prev = &self.toks[prev_ti];
                    let is_modifier = matches!(
                        prev.text.as_str(),
                        "pub" | "crate" | "super" | "in" | "const" | "async" | "extern" | "(" | ")"
                    ) || prev.kind == TokKind::Str;
                    if is_modifier {
                        head -= 1;
                    } else {
                        break;
                    }
                }
                let doc = self.doc_text_above(self.code[head]);
                match extract_safety_section(&doc) {
                    Some(text) => text,
                    None => {
                        if !in_test {
                            self.violation(
                                line,
                                "missing-safety-doc",
                                format!(
                                    "`unsafe fn {name}` has no `# Safety` section in its \
                                     doc comment"
                                ),
                            );
                        }
                        String::new()
                    }
                }
            }
            _ => {
                let found = self.preceding_comment_run(ti).and_then(|(text, end)| {
                    if end + SAFETY_COMMENT_WINDOW >= line {
                        extract_safety_comment(&text)
                    } else {
                        None
                    }
                });
                match found {
                    Some(text) => text,
                    None => {
                        if !in_test {
                            self.violation(
                                line,
                                "undocumented-unsafe",
                                format!(
                                    "`unsafe {kind}` has no `// SAFETY:` comment \
                                     immediately above it",
                                    kind = kind
                                ),
                            );
                        }
                        String::new()
                    }
                }
            }
        };

        self.report.sites.push(UnsafeSite {
            line,
            kind,
            name,
            invariant,
            in_test,
        });
    }

    /// Render `unsafe impl Sync for Foo` as `Sync for Foo`, skipping
    /// generic parameter lists.
    fn impl_target(&self, mut q: usize) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut angle = 0i32;
        while q < self.code.len() && parts.len() < 6 {
            let txt = self.ctext(q);
            match txt {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" | "where" => break,
                _ if angle == 0 && self.toks[self.code[q]].kind == TokKind::Ident => {
                    parts.push(txt.to_string());
                }
                _ => {}
            }
            q += 1;
        }
        parts.join(" ")
    }
}

/// Pull the text after `SAFETY:` out of a joined comment run.
fn extract_safety_comment(text: &str) -> Option<String> {
    let idx = text.find("SAFETY:")?;
    let tail = text[idx + "SAFETY:".len()..].trim();
    Some(collapse_ws(tail))
}

/// Pull the body of a `# Safety` heading out of joined doc text,
/// stopping at the next heading.
fn extract_safety_section(doc: &str) -> Option<String> {
    let mut out: Vec<&str> = Vec::new();
    let mut in_section = false;
    for line in doc.lines() {
        let t = line.trim();
        if t.starts_with('#') {
            if in_section {
                break;
            }
            in_section = t
                .trim_start_matches('#')
                .trim()
                .eq_ignore_ascii_case("safety");
            continue;
        }
        if in_section && !t.is_empty() {
            out.push(t);
        }
    }
    if in_section {
        Some(collapse_ws(&out.join(" ")))
    } else {
        None
    }
}

fn collapse_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Check a crate entry file for the required lint header tokens.
/// Returns the missing lint names.
pub fn check_lint_header(src: &str, want_forbid: bool) -> Vec<&'static str> {
    let toks = lex(src);
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    let has_seq = |names: &[&str]| -> bool {
        // Look for `#![<lint>(… name …)]` by scanning idents in order
        // within a single inner attribute.
        let mut p = 0usize;
        while p + 2 < code.len() {
            if code[p].text == "#" && code[p + 1].text == "!" && code[p + 2].text == "[" {
                let mut depth = 0i32;
                let mut q = p + 2;
                let mut found = 0usize;
                while q < code.len() {
                    match code[q].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        txt => {
                            if found < names.len() && txt == names[found] {
                                found += 1;
                            }
                        }
                    }
                    q += 1;
                }
                if found == names.len() {
                    return true;
                }
                p = q + 1;
            } else {
                p += 1;
            }
        }
        false
    };
    let mut missing = Vec::new();
    if want_forbid {
        if !has_seq(&["forbid", "unsafe_code"]) {
            missing.push("#![forbid(unsafe_code)]");
        }
    } else {
        if !has_seq(&["deny", "unsafe_op_in_unsafe_fn"]) {
            missing.push("#![deny(unsafe_op_in_unsafe_fn)]");
        }
        if !has_seq(&["warn", "clippy", "undocumented_unsafe_blocks"]) {
            missing.push("#![warn(clippy::undocumented_unsafe_blocks)]");
        }
    }
    missing
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> FileReport {
        scan_file("test.rs", src, FileOptions::default())
    }

    #[test]
    fn documented_block_passes() {
        let r = scan("fn f(p: *const u8) {\n    // SAFETY: p is valid for reads.\n    let _ = unsafe { *p };\n}\n");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.sites.len(), 1);
        assert_eq!(r.sites[0].invariant, "p is valid for reads.");
    }

    #[test]
    fn undocumented_block_fails() {
        let r = scan("fn f(p: *const u8) {\n    let _ = unsafe { *p };\n}\n");
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "undocumented-unsafe");
    }

    #[test]
    fn multiline_safety_run_is_joined() {
        let r = scan(
            "fn f(p: *const u8) {\n    // SAFETY: long explanation that\n    // wraps onto another line.\n    let _ = unsafe { *p };\n}\n",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.sites[0].invariant.contains("wraps onto another line"));
    }

    #[test]
    fn stale_safety_comment_far_above_does_not_count() {
        let r = scan(
            "fn f(p: *const u8) {\n    // SAFETY: too far away.\n    let a = 1;\n    let b = a + 1;\n    let c = b + 1;\n    let _ = (c, unsafe { *p });\n}\n",
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    }

    #[test]
    fn unsafe_fn_needs_safety_doc() {
        let bad = "unsafe fn f() {}\n";
        let r = scan(bad);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "missing-safety-doc");

        let good = "/// Does a thing.\n///\n/// # Safety\n///\n/// Caller must hold the lock.\nunsafe fn f() {}\n";
        let r = scan(good);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.sites[0].invariant, "Caller must hold the lock.");
    }

    #[test]
    fn safety_doc_survives_attributes_between() {
        let src = "/// # Safety\n/// CPU must support AVX2.\n#[target_feature(enable = \"avx2\")]\n#[inline]\nunsafe fn f() {}\n";
        let r = scan(src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn unsafe_impl_needs_comment_and_each_needs_its_own() {
        let src = "struct A(*mut u8);\n// SAFETY: A is never aliased.\nunsafe impl Send for A {}\nunsafe impl Sync for A {}\n";
        let r = scan(src);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.sites.len(), 2);
        assert_eq!(r.sites[0].name, "Send for A");
    }

    #[test]
    fn unsafe_in_test_code_is_exempt_but_inventoried() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = unsafe { std::hint::unreachable_unchecked() };\n    }\n}\n";
        let r = scan(src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.sites[0].in_test);
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_ignored() {
        let src = "fn f() {\n    let _a = \"unsafe { }\";\n    // unsafe { } in a comment\n    let _b = r#\"unsafe fn g()\"#;\n}\n";
        let r = scan(src);
        assert!(r.sites.is_empty());
        assert!(r.violations.is_empty());
    }

    #[test]
    fn ordering_counts() {
        let src = "fn f(a: &std::sync::atomic::AtomicU32) {\n    a.load(Ordering::Relaxed);\n    a.store(1, Ordering::Relaxed);\n    a.load(Ordering::SeqCst);\n    a.load(Ordering::Acquire);\n}\n";
        let r = scan(src);
        assert_eq!(r.relaxed, 2);
        assert_eq!(r.seqcst, 1);
    }

    #[test]
    fn unqualified_ordering_import_is_flagged() {
        for bad in [
            "use std::sync::atomic::Ordering::Relaxed;\n",
            "use std::sync::atomic::Ordering::*;\n",
            "use std::sync::atomic::Ordering::{Relaxed, SeqCst};\n",
        ] {
            let r = scan(bad);
            assert_eq!(r.violations.len(), 1, "{bad}");
            assert_eq!(r.violations[0].rule, "atomic-ordering");
        }
        let ok = "use std::sync::atomic::Ordering;\n";
        assert!(scan(ok).violations.is_empty());
    }

    #[test]
    fn transmute_needs_waiver() {
        let bad = "fn f() { let _: u32 = unsafe { std::mem::transmute(1.0f32) }; }\n";
        let r = scan(bad);
        assert!(r.violations.iter().any(|v| v.rule == "forbidden-api"));

        let waived = "fn f(x: f32) -> u32 {\n    // SAFETY: same size. audit:allow(transmute): bit-level inspection\n    unsafe { std::mem::transmute(x) }\n}\n";
        let r = scan(waived);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.waivers.len(), 1);
        assert_eq!(r.waivers[0].reason, "bit-level inspection");
    }

    #[test]
    fn static_mut_is_flagged_but_static_lifetime_is_not() {
        let r = scan("static mut G: u32 = 0;\n");
        assert!(r.violations.iter().any(|v| v.msg.contains("static mut")));
        let r = scan("fn f(x: &'static mut u32) { *x += 1; }\n");
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn unwrap_rule_only_in_hardened_non_test_code() {
        let opts = FileOptions {
            unwrap_forbidden: true,
            test_file: false,
        };
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        let r = scan_file("t.rs", src, opts);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].line, 1);

        let waived =
            "fn f(x: u64) -> u32 {\n    // audit:allow(unwrap): x < 2^32 by construction\n    x.try_into().unwrap()\n}\n";
        let r = scan_file("t.rs", waived, opts);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.waivers.len(), 1);
    }

    #[test]
    fn nested_unsafe_blocks_each_need_comments() {
        let src = "fn f(p: *const u8) {\n    // SAFETY: outer.\n    unsafe {\n        let _ = *p;\n        unsafe {\n            let _ = *p;\n        }\n    }\n}\n";
        let r = scan(src);
        // Outer documented; inner is not.
        assert_eq!(r.sites.len(), 2);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    }

    #[test]
    fn unsafe_extern_block_classified() {
        let src = "// SAFETY: libc signatures match.\nunsafe extern \"C\" {\n    fn abort();\n}\n";
        let r = scan(src);
        assert_eq!(r.sites[0].kind, SiteKind::ExternBlock);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn macro_bodies_are_scanned_too() {
        let src = "macro_rules! m {\n    () => {\n        unsafe { core::hint::unreachable_unchecked() }\n    };\n}\n";
        let r = scan(src);
        assert_eq!(r.sites.len(), 1);
        assert_eq!(r.violations.len(), 1);
    }

    #[test]
    fn lint_header_check() {
        assert!(check_lint_header("#![forbid(unsafe_code)]\nfn f() {}", true).is_empty());
        assert_eq!(check_lint_header("fn f() {}", true).len(), 1);
        let hdr =
            "#![deny(unsafe_op_in_unsafe_fn)]\n#![warn(clippy::undocumented_unsafe_blocks)]\n";
        assert!(check_lint_header(hdr, false).is_empty());
        assert_eq!(
            check_lint_header("#![deny(unsafe_op_in_unsafe_fn)]", false).len(),
            1
        );
        // An outer attribute on an item must not satisfy the check.
        assert_eq!(
            check_lint_header("#[forbid(unsafe_code)]\nfn f() {}", true).len(),
            1
        );
    }
}
