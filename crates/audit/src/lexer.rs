//! A small Rust *token scanner* — just enough lexical fidelity that the
//! audit rules never mistake `unsafe` inside a string literal, comment,
//! or raw string for the keyword, and never mistake a lifetime for a
//! char literal.
//!
//! This is not a full lexer: multi-character operators come out as
//! consecutive single-character [`TokKind::Punct`] tokens, and numeric
//! literal grammar is approximate. The rules in [`crate::rules`] only
//! need identifier/punct/comment streams with accurate line spans, so
//! that is what we guarantee:
//!
//! * nested block comments (`/* /* */ */`)
//! * raw strings with arbitrary hash fences (`r##"…"##`), byte strings,
//!   raw byte strings, and C strings
//! * char literals vs lifetimes (`'a'` vs `'a`, `'\u{1F600}'`, `b'x'`)
//! * raw identifiers (`r#match`)
//! * doc comments (`///`, `//!`, `/** */`, `/*! */`) kept distinct from
//!   plain comments, with their marker stripped so rules can search the
//!   documentation text directly.

/// Token class produced by [`lex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `r#raw` identifiers, with the
    /// `r#` prefix stripped).
    Ident,
    /// Single punctuation character.
    Punct,
    /// Numeric literal (approximate grammar; never splits mid-token in
    /// a way that fabricates identifiers).
    Num,
    /// String literal of any flavor; `text` holds the raw source slice.
    Str,
    /// Character or byte literal.
    CharLit,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// `// …` comment; `text` holds the body without the `//`.
    LineComment,
    /// `/* … */` comment; `text` holds the body without the delimiters.
    BlockComment,
    /// `///`, `//!`, `/** */` or `/*! */`; `text` holds the body with
    /// the doc marker stripped.
    DocComment,
}

/// One token with its 1-based source line span.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub end_line: u32,
}

impl Tok {
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment
        )
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Scan `src` into tokens. Never fails: unterminated literals simply
/// run to end-of-file, which is good enough for a lint that runs on
/// code the compiler already accepted.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Count newlines inside b[from..to] and advance `line`.
    let bump = |line: &mut u32, from: usize, to: usize| {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count() as u32;
    };

    while i < n {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == b'/' && i + 1 < n {
            if b[i + 1] == b'/' {
                let start = i;
                let mut j = i + 2;
                while j < n && b[j] != b'\n' {
                    j += 1;
                }
                let body = &src[start + 2..j];
                let (kind, text) = if let Some(rest) = body.strip_prefix('/') {
                    // `////…` is a plain comment line per the reference,
                    // but treating it as doc text is harmless here.
                    (TokKind::DocComment, rest)
                } else if let Some(rest) = body.strip_prefix('!') {
                    (TokKind::DocComment, rest)
                } else {
                    (TokKind::LineComment, body)
                };
                toks.push(Tok {
                    kind,
                    text: text.to_string(),
                    line,
                    end_line: line,
                });
                i = j;
                continue;
            }
            if b[i + 1] == b'*' {
                let start = i;
                let start_line = line;
                let mut j = i + 2;
                let mut depth = 1u32;
                while j < n && depth > 0 {
                    if j + 1 < n && b[j] == b'/' && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && b[j] == b'*' && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                bump(&mut line, start, j);
                let inner_end = j.saturating_sub(2).max(start + 2);
                let body = &src[start + 2..inner_end];
                let (kind, text) = if let Some(rest) = body.strip_prefix('*') {
                    // `/**/` is empty, not doc; strip_prefix on "" fails
                    // so we only land here for real `/** …` bodies.
                    (TokKind::DocComment, rest)
                } else if let Some(rest) = body.strip_prefix('!') {
                    (TokKind::DocComment, rest)
                } else {
                    (TokKind::BlockComment, body)
                };
                toks.push(Tok {
                    kind,
                    text: text.to_string(),
                    line: start_line,
                    end_line: line,
                });
                i = j;
                continue;
            }
        }

        // Raw strings / raw identifiers / byte & C strings. Handles the
        // prefixes r, br, b, c, cr with any number of `#` fences.
        if matches!(c, b'r' | b'b' | b'c') {
            // Longest literal prefix starting at i that is followed by
            // `"` or `#…"` (raw) — otherwise fall through to ident.
            let mut p = i;
            let mut saw_r = false;
            if (c == b'b' || c == b'c') && p + 1 < n && b[p + 1] == b'r' {
                p += 1;
                saw_r = true;
            } else if c == b'r' {
                saw_r = true;
            }
            // p now indexes the last prefix byte.
            let mut q = p + 1;
            if saw_r {
                let mut hashes = 0usize;
                while q < n && b[q] == b'#' {
                    hashes += 1;
                    q += 1;
                }
                if q < n && b[q] == b'"' {
                    // Raw string: scan for `"` followed by `hashes` #s.
                    let start = i;
                    let start_line = line;
                    let mut j = q + 1;
                    'raw: while j < n {
                        if b[j] == b'"' {
                            let mut k = 0usize;
                            while k < hashes && j + 1 + k < n && b[j + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    bump(&mut line, start, j);
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: src[start..j].to_string(),
                        line: start_line,
                        end_line: line,
                    });
                    i = j;
                    continue;
                }
                if c == b'r' && hashes == 1 && q < n && is_ident_start(b[q]) {
                    // Raw identifier `r#match`.
                    let mut j = q;
                    while j < n && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: src[q..j].to_string(),
                        line,
                        end_line: line,
                    });
                    i = j;
                    continue;
                }
            }
            if q <= n && b.get(p + 1) == Some(&b'"') && !saw_r {
                // b"…" or c"…": cooked string with escapes.
                let start = i;
                let start_line = line;
                let mut j = p + 2;
                while j < n {
                    if b[j] == b'\\' {
                        j += 2;
                        continue;
                    }
                    if b[j] == b'"' {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                bump(&mut line, start, j.min(n));
                let j = j.min(n);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: src[start..j].to_string(),
                    line: start_line,
                    end_line: line,
                });
                i = j;
                continue;
            }
            if c == b'b' && b.get(i + 1) == Some(&b'\'') {
                // Byte literal b'x'.
                let start = i;
                let mut j = i + 2;
                if j < n && b[j] == b'\\' {
                    j += 2;
                }
                while j < n && b[j] != b'\'' {
                    j += 1;
                }
                j = (j + 1).min(n);
                toks.push(Tok {
                    kind: TokKind::CharLit,
                    text: src[start..j].to_string(),
                    line,
                    end_line: line,
                });
                i = j;
                continue;
            }
            // Fall through: plain identifier starting with r/b/c.
        }

        if is_ident_start(c) {
            let start = i;
            let mut j = i;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: src[start..j].to_string(),
                line,
                end_line: line,
            });
            i = j;
            continue;
        }

        if c == b'"' {
            let start = i;
            let start_line = line;
            let mut j = i + 1;
            while j < n {
                if b[j] == b'\\' {
                    j += 2;
                    continue;
                }
                if b[j] == b'"' {
                    j += 1;
                    break;
                }
                j += 1;
            }
            let j = j.min(n);
            bump(&mut line, start, j);
            toks.push(Tok {
                kind: TokKind::Str,
                text: src[start..j].to_string(),
                line: start_line,
                end_line: line,
            });
            i = j;
            continue;
        }

        if c == b'\'' {
            // Lifetime or char literal. `'a'` / `'\n'` / `'\u{…}'` are
            // chars; `'a`, `'static`, `'_` are lifetimes/labels.
            let is_char = (i + 1 < n && b[i + 1] == b'\\')
                || (i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'');
            if is_char {
                let start = i;
                let mut j = i + 1;
                if j < n && b[j] == b'\\' {
                    j += 2;
                }
                while j < n && b[j] != b'\'' {
                    j += 1;
                }
                let j = (j + 1).min(n);
                toks.push(Tok {
                    kind: TokKind::CharLit,
                    text: src[start..j].to_string(),
                    line,
                    end_line: line,
                });
                i = j;
                continue;
            }
            let start = i;
            let mut j = i + 1;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Lifetime,
                text: src[start..j].to_string(),
                line,
                end_line: line,
            });
            i = j;
            continue;
        }

        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < n
                && (b[j].is_ascii_alphanumeric()
                    || b[j] == b'_'
                    || (b[j] == b'.' && j + 1 < n && b[j + 1].is_ascii_digit()))
            {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: src[start..j].to_string(),
                line,
                end_line: line,
            });
            i = j;
            continue;
        }

        toks.push(Tok {
            kind: TokKind::Punct,
            text: (c as char).to_string(),
            line,
            end_line: line,
        });
        i += 1;
    }

    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn unsafe_in_string_is_not_an_ident() {
        let toks = kinds(r#"let s = "unsafe { }";"#);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unsafe"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("unsafe")));
    }

    #[test]
    fn unsafe_in_comments_is_not_an_ident() {
        let toks = kinds("// unsafe here\n/* and unsafe /* nested unsafe */ there */ fn f() {}");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["fn", "f"]);
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds("let s = r##\"unsafe \"# quote\"##; unsafe {}");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "unsafe"]);
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r##"let x = b"unsafe"; let y = br#"static mut"#;"##);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && (t == "unsafe" || t == "static")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let u = '\\u{1F600}'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::CharLit).count(),
            2
        );
    }

    #[test]
    fn static_lifetime_is_not_static_keyword() {
        let toks = kinds("fn f(x: &'static mut u32) {}");
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "static"));
    }

    #[test]
    fn raw_identifiers_strip_prefix() {
        let toks = kinds("let r#unsafe = 1;");
        // `r#unsafe` is an escaped *identifier*, not the keyword — but
        // the lexer only strips the prefix; keyword-ness is contextual
        // and the rules never see `unsafe` followed by `=` as a site.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unsafe"));
    }

    #[test]
    fn doc_comment_markers_are_stripped() {
        let toks = lex("/// # Safety\n//! inner\n/** block */\nfn f() {}");
        let docs: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::DocComment)
            .map(|t| t.text.trim().to_string())
            .collect();
        assert_eq!(docs, ["# Safety", "inner", "block"]);
    }

    #[test]
    fn line_numbers_span_multiline_tokens() {
        let toks = lex("/* a\nb\nc */\nunsafe {}");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].end_line, 3);
        let u = toks.iter().find(|t| t.text == "unsafe").unwrap();
        assert_eq!(u.line, 4);
    }

    #[test]
    fn empty_block_comment_is_not_doc() {
        let toks = lex("/**/ fn f() {}");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
    }
}
