//! Parser for `audit.toml`, the audited allowlist at the workspace
//! root. We support exactly the TOML subset the file uses — bare
//! `key = value` pairs, `[[array-of-tables]]` headers, strings,
//! integers, and arrays of strings — with no external dependency
//! (the container is offline; see ROADMAP.md).
//!
//! Schema:
//!
//! ```toml
//! forbid_unsafe = ["crates/eval", "crates/cli", ...]
//! unsafe_crates = ["crates/core", ...]
//! unwrap_forbidden = ["crates/runtime/src/transport.rs", ...]
//!
//! [[atomics]]
//! file = "crates/core/src/simd.rs"
//! relaxed = 19
//! seqcst = 0
//! why = "Hogwild reads/writes; see docs/SAFETY.md#atomics"
//!
//! [[coverage]]
//! file = "crates/core/src/simd.rs"
//! tests = ["prop_core::simd_matches_scalar", ...]
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// One `[[atomics]]` entry: a file blessed to use non-default memory
/// orderings, with its *exact* expected counts so drift inside a
/// blessed file still fails the audit.
#[derive(Debug, Clone, Default)]
pub struct AtomicsEntry {
    pub file: String,
    pub relaxed: u32,
    pub seqcst: u32,
    pub why: String,
}

/// One `[[coverage]]` entry: the named tests that exercise the unsafe
/// sites of a file. A file with unsafe sites but no entry fails the
/// audit; an entry for a file with no sites is flagged as stale.
#[derive(Debug, Clone, Default)]
pub struct CoverageEntry {
    pub file: String,
    pub tests: Vec<String>,
}

/// Parsed `audit.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crate dirs (relative to the workspace root) that must carry
    /// `#![forbid(unsafe_code)]` and contain no unsafe sites.
    pub forbid_unsafe: Vec<String>,
    /// Crate dirs that contain audited unsafe and must carry
    /// `#![deny(unsafe_op_in_unsafe_fn)]` plus
    /// `#![warn(clippy::undocumented_unsafe_blocks)]`.
    pub unsafe_crates: Vec<String>,
    /// Files where `.unwrap()` is forbidden outside tests (the
    /// hardened transport/store paths from PR 8).
    pub unwrap_forbidden: Vec<String>,
    pub atomics: Vec<AtomicsEntry>,
    pub coverage: Vec<CoverageEntry>,
}

#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit.toml:{}: {}", self.line, self.msg)
    }
}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(u32),
    StrArray(Vec<String>),
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_string(s: &str, lineno: usize) -> Result<(String, &str), ParseError> {
    let b = s.as_bytes();
    debug_assert_eq!(b[0], b'"');
    let mut out = String::new();
    let mut i = 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                let esc = *b
                    .get(i + 1)
                    .ok_or_else(|| err(lineno, "dangling escape in string"))?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'n' => '\n',
                    b't' => '\t',
                    other => {
                        return Err(err(
                            lineno,
                            format!("unsupported escape \\{}", other as char),
                        ))
                    }
                });
                i += 2;
            }
            b'"' => return Ok((out, &s[i + 1..])),
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    Err(err(lineno, "unterminated string"))
}

fn parse_value(raw: &str, lineno: usize) -> Result<Value, ParseError> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('[') {
        let inner = stripped
            .trim_end()
            .strip_suffix(']')
            .ok_or_else(|| err(lineno, "unterminated array"))?;
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            if !rest.starts_with('"') {
                return Err(err(lineno, "arrays may only contain strings"));
            }
            let (s, tail) = parse_string(rest, lineno)?;
            items.push(s);
            rest = tail.trim_start();
            if let Some(after) = rest.strip_prefix(',') {
                rest = after.trim_start();
            } else if !rest.is_empty() {
                return Err(err(lineno, "expected `,` between array items"));
            }
        }
        return Ok(Value::StrArray(items));
    }
    if raw.starts_with('"') {
        let (s, tail) = parse_string(raw, lineno)?;
        if !tail.trim().is_empty() {
            return Err(err(lineno, "trailing garbage after string"));
        }
        return Ok(Value::Str(s));
    }
    if raw.chars().all(|c| c.is_ascii_digit()) && !raw.is_empty() {
        return Ok(Value::Int(
            raw.parse()
                .map_err(|_| err(lineno, "integer out of range"))?,
        ));
    }
    Err(err(lineno, format!("cannot parse value `{raw}`")))
}

#[derive(PartialEq)]
enum Section {
    Top,
    Atomics,
    Coverage,
}

fn assign(
    cfg: &mut Config,
    section: &Section,
    key: &str,
    value: Value,
    lineno: usize,
) -> Result<(), ParseError> {
    let want_array = |v: Value| match v {
        Value::StrArray(a) => Ok(a),
        _ => Err(err(lineno, format!("`{key}` must be an array of strings"))),
    };
    let want_str = |v: Value| match v {
        Value::Str(s) => Ok(s),
        _ => Err(err(lineno, format!("`{key}` must be a string"))),
    };
    let want_int = |v: Value| match v {
        Value::Int(i) => Ok(i),
        _ => Err(err(lineno, format!("`{key}` must be an integer"))),
    };
    match section {
        Section::Top => match key {
            "forbid_unsafe" => cfg.forbid_unsafe = want_array(value)?,
            "unsafe_crates" => cfg.unsafe_crates = want_array(value)?,
            "unwrap_forbidden" => cfg.unwrap_forbidden = want_array(value)?,
            other => return Err(err(lineno, format!("unknown top-level key `{other}`"))),
        },
        Section::Atomics => {
            let entry = cfg
                .atomics
                .last_mut()
                .expect("section implies at least one entry");
            match key {
                "file" => entry.file = want_str(value)?,
                "relaxed" => entry.relaxed = want_int(value)?,
                "seqcst" => entry.seqcst = want_int(value)?,
                "why" => entry.why = want_str(value)?,
                other => return Err(err(lineno, format!("unknown [[atomics]] key `{other}`"))),
            }
        }
        Section::Coverage => {
            let entry = cfg
                .coverage
                .last_mut()
                .expect("section implies at least one entry");
            match key {
                "file" => entry.file = want_str(value)?,
                "tests" => entry.tests = want_array(value)?,
                other => return Err(err(lineno, format!("unknown [[coverage]] key `{other}`"))),
            }
        }
    }
    Ok(())
}

/// Parse the full file. Unknown keys are errors so a typo in
/// `audit.toml` cannot silently disable a rule.
pub fn parse(src: &str) -> Result<Config, ParseError> {
    let mut cfg = Config::default();
    let mut section = Section::Top;
    // Pending multi-line array: `key = [` … `]` accumulated until the
    // brackets balance (outside strings).
    let mut pending: Option<(String, String, usize)> = None;

    let balanced = |s: &str| {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut prev_escape = false;
        for c in s.chars() {
            match c {
                '\\' if in_str && !prev_escape => {
                    prev_escape = true;
                    continue;
                }
                '"' if !prev_escape => in_str = !in_str,
                '[' if !in_str => depth += 1,
                ']' if !in_str => depth -= 1,
                _ => {}
            }
            prev_escape = false;
        }
        depth <= 0
    };

    for (idx, raw_line) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();

        if let Some((key, mut acc, start)) = pending.take() {
            acc.push(' ');
            acc.push_str(line);
            if balanced(&acc) {
                let value = parse_value(&acc, start)?;
                assign(&mut cfg, &section, &key, value, start)?;
            } else {
                pending = Some((key, acc, start));
            }
            continue;
        }

        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let name = header
                .strip_suffix("]]")
                .ok_or_else(|| err(lineno, "malformed table header"))?
                .trim();
            section = match name {
                "atomics" => {
                    cfg.atomics.push(AtomicsEntry::default());
                    Section::Atomics
                }
                "coverage" => {
                    cfg.coverage.push(CoverageEntry::default());
                    Section::Coverage
                }
                other => return Err(err(lineno, format!("unknown table [[{other}]]"))),
            };
            continue;
        }
        if line.starts_with('[') {
            return Err(err(
                lineno,
                "plain [tables] are not used; expected [[atomics]] or [[coverage]]",
            ));
        }
        let eq = line
            .find('=')
            .ok_or_else(|| err(lineno, "expected `key = value`"))?;
        let key = line[..eq].trim().to_string();
        let raw_value = line[eq + 1..].trim().to_string();
        if raw_value.starts_with('[') && !balanced(&raw_value) {
            pending = Some((key, raw_value, lineno));
            continue;
        }
        let value = parse_value(&raw_value, lineno)?;
        assign(&mut cfg, &section, &key, value, lineno)?;
    }

    if let Some((key, _, start)) = pending {
        return Err(err(start, format!("unterminated array for key `{key}`")));
    }

    // Basic cross-checks that don't need the source tree.
    let mut seen = BTreeMap::new();
    for (list, name) in [
        (&cfg.forbid_unsafe, "forbid_unsafe"),
        (&cfg.unsafe_crates, "unsafe_crates"),
    ] {
        for dir in list {
            if let Some(prev) = seen.insert(dir.clone(), name) {
                return Err(err(
                    0,
                    format!("crate dir `{dir}` listed in both {prev} and {name}"),
                ));
            }
        }
    }
    for e in &cfg.atomics {
        if e.file.is_empty() {
            return Err(err(0, "[[atomics]] entry missing `file`"));
        }
        if e.why.is_empty() {
            return Err(err(
                0,
                format!("[[atomics]] entry for `{}` missing `why`", e.file),
            ));
        }
    }
    for e in &cfg.coverage {
        if e.file.is_empty() {
            return Err(err(0, "[[coverage]] entry missing `file`"));
        }
        if e.tests.is_empty() {
            return Err(err(
                0,
                format!("[[coverage]] entry for `{}` names no tests", e.file),
            ));
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment line
forbid_unsafe = ["crates/eval", "crates/cli"]
unsafe_crates = ["crates/core"]
unwrap_forbidden = [
    "crates/runtime/src/transport.rs", # hardened in PR 8
    "crates/core/src/store.rs",
]

[[atomics]]
file = "crates/core/src/simd.rs"
relaxed = 19
seqcst = 0
why = "Hogwild # not a comment"

[[coverage]]
file = "crates/core/src/simd.rs"
tests = ["prop_core::simd_matches_scalar"]
"#;

    #[test]
    fn parses_full_schema() {
        let cfg = parse(SAMPLE).unwrap();
        assert_eq!(cfg.forbid_unsafe, ["crates/eval", "crates/cli"]);
        assert_eq!(cfg.unsafe_crates, ["crates/core"]);
        assert_eq!(
            cfg.unwrap_forbidden,
            [
                "crates/runtime/src/transport.rs",
                "crates/core/src/store.rs"
            ]
        );
        assert_eq!(cfg.atomics.len(), 1);
        assert_eq!(cfg.atomics[0].relaxed, 19);
        assert_eq!(cfg.atomics[0].why, "Hogwild # not a comment");
        assert_eq!(cfg.coverage[0].tests.len(), 1);
    }

    #[test]
    fn unknown_key_is_an_error() {
        let e = parse("forbid_unsafee = []").unwrap_err();
        assert!(e.msg.contains("unknown top-level key"));
    }

    #[test]
    fn unknown_table_is_an_error() {
        assert!(parse("[[atomic]]\nfile = \"x\"").is_err());
    }

    #[test]
    fn crate_in_both_lists_is_an_error() {
        let e =
            parse("forbid_unsafe = [\"crates/a\"]\nunsafe_crates = [\"crates/a\"]").unwrap_err();
        assert!(e.msg.contains("both"));
    }

    #[test]
    fn atomics_without_why_is_an_error() {
        let e = parse("[[atomics]]\nfile = \"x.rs\"\nrelaxed = 1").unwrap_err();
        assert!(e.msg.contains("why"));
    }

    #[test]
    fn coverage_without_tests_is_an_error() {
        let e = parse("[[coverage]]\nfile = \"x.rs\"").unwrap_err();
        assert!(e.msg.contains("tests"));
    }
}
