//! # gosh-audit — workspace safety/concurrency static-analysis gate
//!
//! The training hot path, the mmap-backed `.embin` store, and the
//! Hogwild/lock-free runtime all lean on `unsafe` and relaxed atomics
//! for the paper's speedups (see PAPER.md). This crate is the
//! counterweight: a lightweight lexer-backed scanner that walks every
//! `.rs` file in the workspace and enforces the rules written down in
//! `docs/SAFETY.md`:
//!
//! 1. every `unsafe` block/impl/trait/extern carries a `// SAFETY:`
//!    comment directly above it, and every `unsafe fn` a `# Safety`
//!    doc section (`undocumented-unsafe`, `missing-safety-doc`);
//! 2. `Ordering::Relaxed` / `Ordering::SeqCst` appear only in files
//!    blessed by `[[atomics]]` in `audit.toml`, with exact per-file
//!    counts (`atomic-ordering`);
//! 3. `transmute` and `static mut` are forbidden everywhere, and bare
//!    `.unwrap()` in the hardened transport/store files, unless waived
//!    site-by-site with `// audit:allow(rule): reason`
//!    (`forbidden-api`);
//! 4. every file with non-test unsafe names its covering tests in
//!    `[[coverage]]`, and those test functions must exist
//!    (`coverage`);
//! 5. crates are classified: `forbid_unsafe` crates carry
//!    `#![forbid(unsafe_code)]` and contain no unsafe; the rest carry
//!    `#![deny(unsafe_op_in_unsafe_fn)]` and
//!    `#![warn(clippy::undocumented_unsafe_blocks)]` (`lint-header`);
//! 6. `docs/UNSAFE.md` / `docs/UNSAFE.json` — the machine-readable
//!    inventory of every site, its stated invariant, and its covering
//!    tests — must match the tree exactly (`inventory`).
//!
//! `gosh audit` runs the gate; `gosh audit --write` regenerates the
//! inventory. CI runs the gate next to clippy, and the dynamic side of
//! the story (ThreadSanitizer, AddressSanitizer, Miri) lives in the
//! `sanitizers` workflow — `docs/SAFETY.md` maps each rule to the job
//! that checks its runtime counterpart.

// No unsafe in this crate: the audit gate (docs/SAFETY.md) keeps it
// that way.
#![forbid(unsafe_code)]

pub mod config;
pub mod inventory;
pub mod lexer;
pub mod rules;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use rules::{FileOptions, Violation};

/// Result of a full workspace audit.
#[derive(Debug, Default)]
pub struct Outcome {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
    pub sites: usize,
    pub test_sites: usize,
    pub waivers: usize,
    /// Paths written by `--write` mode (relative to the root).
    pub wrote: Vec<String>,
}

impl Outcome {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn cfg_violation(violations: &mut Vec<Violation>, file: &str, msg: String) {
    violations.push(Violation {
        file: file.to_string(),
        line: 0,
        rule: "config",
        msg,
    });
}

/// Is `rel` test/bench/example code (unsafe allowed undocumented,
/// unwrap rule off)? Integration tests, examples, and benches — the
/// `#[cfg(test)]` spans *inside* source files are handled separately
/// by the scanner.
fn is_test_path(rel: &str) -> bool {
    let in_dir = |d: &str| rel.starts_with(&format!("{d}/")) || rel.contains(&format!("/{d}/"));
    in_dir("tests") || in_dir("examples") || in_dir("benches") || rel.ends_with("build.rs")
}

/// The crate dir (config key) a file belongs to: `crates/<name>` or
/// `.` for the root facade package.
fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some(name) = rest.split('/').next() {
            return format!("crates/{name}");
        }
    }
    String::from(".")
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | "vendor" | ".git" | "docs" | "node_modules"
            ) {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the full audit over the workspace at `root`. `write` regenerates
/// `docs/UNSAFE.md` / `docs/UNSAFE.json` instead of drift-checking
/// them. IO/config errors come back as `Err`; rule findings land in
/// `Outcome::violations`.
pub fn run(root: &Path, write: bool) -> Result<Outcome, String> {
    let cfg_path = root.join("audit.toml");
    let cfg_src = fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = config::parse(&cfg_src).map_err(|e| e.to_string())?;

    let mut out = Outcome::default();

    // ---- Crate classification completeness -------------------------
    let mut crate_dirs: BTreeSet<String> = BTreeSet::new();
    if root.join("Cargo.toml").exists() && root.join("src").exists() {
        crate_dirs.insert(String::from("."));
    }
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() && p.join("Cargo.toml").exists() {
                crate_dirs.insert(format!("crates/{}", entry.file_name().to_string_lossy()));
            }
        }
    }
    let forbid: BTreeSet<&str> = cfg.forbid_unsafe.iter().map(|s| s.as_str()).collect();
    let deny: BTreeSet<&str> = cfg.unsafe_crates.iter().map(|s| s.as_str()).collect();
    for dir in &crate_dirs {
        if !forbid.contains(dir.as_str()) && !deny.contains(dir.as_str()) {
            cfg_violation(
                &mut out.violations,
                "audit.toml",
                format!(
                    "crate `{dir}` is not classified; add it to `forbid_unsafe` \
                     or `unsafe_crates`"
                ),
            );
        }
    }
    for dir in forbid.iter().chain(deny.iter()) {
        if !crate_dirs.contains(*dir) {
            cfg_violation(
                &mut out.violations,
                "audit.toml",
                format!("listed crate `{dir}` does not exist in the workspace"),
            );
        }
    }

    // ---- Lint headers ----------------------------------------------
    for dir in &crate_dirs {
        let want_forbid = forbid.contains(dir.as_str());
        if !want_forbid && !deny.contains(dir.as_str()) {
            continue; // already flagged as unclassified
        }
        let base = if dir == "." {
            root.join("src")
        } else {
            root.join(dir).join("src")
        };
        let mut entry_found = false;
        for entry_name in ["lib.rs", "main.rs"] {
            let p = base.join(entry_name);
            let Ok(src) = fs::read_to_string(&p) else {
                continue;
            };
            entry_found = true;
            let rel = format!("{}/src/{entry_name}", if dir == "." { "" } else { dir })
                .trim_start_matches('/')
                .to_string();
            for missing in rules::check_lint_header(&src, want_forbid) {
                out.violations.push(Violation {
                    file: rel.clone(),
                    line: 1,
                    rule: "lint-header",
                    msg: format!("crate entry file is missing `{missing}`"),
                });
            }
        }
        if !entry_found {
            cfg_violation(
                &mut out.violations,
                "audit.toml",
                format!("crate `{dir}` has no src/lib.rs or src/main.rs to check"),
            );
        }
    }

    // ---- Scan every file -------------------------------------------
    let mut files = Vec::new();
    walk_rs(root, &mut files)?;
    files.sort();

    let unwrap_set: BTreeSet<&str> = cfg.unwrap_forbidden.iter().map(|s| s.as_str()).collect();
    let mut seen_files: BTreeSet<String> = BTreeSet::new();
    let mut orderings: BTreeMap<String, (u32, u32)> = BTreeMap::new();
    let mut entries: Vec<inventory::FileEntry> = Vec::new();
    let mut all_fns: BTreeSet<String> = BTreeSet::new();

    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        seen_files.insert(rel.clone());
        let opts = FileOptions {
            unwrap_forbidden: unwrap_set.contains(rel.as_str()),
            test_file: is_test_path(&rel),
        };
        let report = rules::scan_file(&rel, &src, opts);
        out.files_scanned += 1;
        out.sites += report.sites.len();
        out.test_sites += report.sites.iter().filter(|s| s.in_test).count();
        out.waivers += report.waivers.len();
        out.violations.extend(report.violations);
        all_fns.extend(report.fn_names);
        if report.relaxed > 0 || report.seqcst > 0 {
            orderings.insert(rel.clone(), (report.relaxed, report.seqcst));
        }

        // Unsafe inside a forbid_unsafe crate is a finding even before
        // rustc sees it (the header could have been dropped).
        let krate = crate_of(&rel);
        if forbid.contains(krate.as_str()) {
            for s in &report.sites {
                out.violations.push(Violation {
                    file: rel.clone(),
                    line: s.line,
                    rule: "lint-header",
                    msg: format!(
                        "`unsafe` in `{krate}` which is declared unsafe-free in audit.toml"
                    ),
                });
            }
        }

        if !report.sites.is_empty() || !report.waivers.is_empty() {
            let tests = cfg
                .coverage
                .iter()
                .find(|c| c.file == rel)
                .map(|c| c.tests.clone())
                .unwrap_or_default();
            entries.push(inventory::FileEntry {
                file: rel.clone(),
                sites: report.sites,
                waivers: report.waivers,
                tests,
            });
        }
    }

    // ---- Atomic-ordering allowlist ---------------------------------
    let atomics_by_file: BTreeMap<&str, &config::AtomicsEntry> =
        cfg.atomics.iter().map(|a| (a.file.as_str(), a)).collect();
    for (file, &(relaxed, seqcst)) in &orderings {
        match atomics_by_file.get(file.as_str()) {
            None => out.violations.push(Violation {
                file: file.clone(),
                line: 0,
                rule: "atomic-ordering",
                msg: format!(
                    "uses Ordering::Relaxed/SeqCst ({relaxed}/{seqcst}) but has no \
                     [[atomics]] entry in audit.toml"
                ),
            }),
            Some(a) if a.relaxed != relaxed || a.seqcst != seqcst => {
                out.violations.push(Violation {
                    file: file.clone(),
                    line: 0,
                    rule: "atomic-ordering",
                    msg: format!(
                        "ordering counts drifted: audit.toml says {}/{} \
                         (Relaxed/SeqCst) but the file has {relaxed}/{seqcst}; \
                         re-audit the file and update the entry",
                        a.relaxed, a.seqcst
                    ),
                });
            }
            Some(_) => {}
        }
    }
    for a in &cfg.atomics {
        if !seen_files.contains(&a.file) {
            cfg_violation(
                &mut out.violations,
                "audit.toml",
                format!("[[atomics]] entry for `{}` — file does not exist", a.file),
            );
        } else if !orderings.contains_key(&a.file) {
            cfg_violation(
                &mut out.violations,
                "audit.toml",
                format!(
                    "stale [[atomics]] entry: `{}` no longer uses Relaxed/SeqCst",
                    a.file
                ),
            );
        }
    }

    // ---- Coverage --------------------------------------------------
    let covered: BTreeSet<&str> = cfg.coverage.iter().map(|c| c.file.as_str()).collect();
    for e in &entries {
        let needs = e.sites.iter().any(|s| !s.in_test);
        if needs && !covered.contains(e.file.as_str()) {
            out.violations.push(Violation {
                file: e.file.clone(),
                line: e
                    .sites
                    .iter()
                    .find(|s| !s.in_test)
                    .map(|s| s.line)
                    .unwrap_or(0),
                rule: "coverage",
                msg: "file has unsafe sites but no [[coverage]] entry naming its \
                      covering tests"
                    .to_string(),
            });
        }
    }
    let files_with_sites: BTreeSet<&str> = entries
        .iter()
        .filter(|e| !e.sites.is_empty())
        .map(|e| e.file.as_str())
        .collect();
    for c in &cfg.coverage {
        if !seen_files.contains(&c.file) {
            cfg_violation(
                &mut out.violations,
                "audit.toml",
                format!("[[coverage]] entry for `{}` — file does not exist", c.file),
            );
            continue;
        }
        if !files_with_sites.contains(c.file.as_str()) {
            cfg_violation(
                &mut out.violations,
                "audit.toml",
                format!("stale [[coverage]] entry: `{}` has no unsafe sites", c.file),
            );
        }
        for t in &c.tests {
            let leaf = t.rsplit("::").next().unwrap_or(t);
            if !all_fns.contains(leaf) {
                out.violations.push(Violation {
                    file: c.file.clone(),
                    line: 0,
                    rule: "coverage",
                    msg: format!(
                        "covering test `{t}` does not exist (no `fn {leaf}` \
                         anywhere in the workspace)"
                    ),
                });
            }
        }
    }

    // ---- Inventory -------------------------------------------------
    let md = inventory::render_markdown(&entries, &cfg.atomics);
    let json = inventory::render_json(&entries, &cfg.atomics);
    for (rel, content) in [("docs/UNSAFE.md", &md), ("docs/UNSAFE.json", &json)] {
        let path = root.join(rel);
        if write {
            if let Some(parent) = path.parent() {
                fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
            fs::write(&path, content)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            out.wrote.push(rel.to_string());
        } else {
            let existing = fs::read_to_string(&path).unwrap_or_default();
            if existing != **content {
                out.violations.push(Violation {
                    file: rel.to_string(),
                    line: 0,
                    rule: "inventory",
                    msg: "inventory is stale; run `gosh audit --write` and commit \
                          the result"
                        .to_string(),
                });
            }
        }
    }

    Ok(out)
}
