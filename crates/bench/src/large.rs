//! Large-graph-path throughput harness (`gosh bench-large` and the
//! criterion `large_path` micro-bench).
//!
//! Measures kernels/sec of the stream-overlapped Algorithm 5 pipeline on
//! a synthetic community graph squeezed through a deliberately small
//! device, and — for the perf trajectory — the same workload on a frozen
//! copy of the *pre-pipeline* engine (synchronous inline bin loads and
//! eviction write-backs, no prefetch, no per-bin fencing), so every
//! report carries its own baseline ratio. The trajectory deliverable is
//! the recurring measurement, not a point number: CI runs this on every
//! push and uploads `BENCH_large.json`.
//!
//! ## `BENCH_large.json` schema
//!
//! One flat JSON object per run:
//!
//! ```json
//! {
//!   "bench": "large",
//!   "vertices": 16000, "arcs": 247938,
//!   "dim": 128, "threads": 4, "epochs": 8,
//!   "batch_b": 1, "negative_samples": 1,
//!   "device_bytes": 1781760, "num_parts": 16, "bins": 3,
//!   "rotations": 2, "kernels": 272, "loads": 268, "prefetches": 240,
//!   "evictions": 268,
//!   "seconds": 0.41, "kernels_per_sec": 663.4,
//!   "transfer_stall_seconds": 0.013, "pool_stall_seconds": 0.002,
//!   "sync_seconds": 0.71, "sync_kernels_per_sec": 383.1,
//!   "speedup_vs_sync": 1.73
//! }
//! ```
//!
//! Both engines dispatch exactly the same kernel sequence, so
//! `speedup_vs_sync` is a pure time ratio. `transfer_stall_seconds` is
//! the sub-matrix traffic the pipeline *failed* to hide behind kernels
//! (0 = perfect overlap); the synchronous baseline pays the whole
//! transfer volume as stall by construction. The three `sync_*` fields
//! are omitted when the baseline run is skipped.

use std::time::Instant;

use gosh_core::backend::{PartitionedOpts, TrainParams};
use gosh_core::large::pools::NO_SAMPLE;
use gosh_core::large::{
    choose_num_parts, generate_pool, inside_out_pairs, train_large, LargeReport, Partition,
    SamplePool,
};
use gosh_core::model::Embedding;
use gosh_core::schedule::decayed_lr;
use gosh_gpu::{Access, Device, DeviceConfig, DeviceError, FloatBuffer, LaunchConfig, PlainBuffer};
use gosh_graph::csr::Csr;
use gosh_graph::gen::{community_graph, CommunityConfig};

/// Workload shape for one large-path measurement.
#[derive(Clone, Copy, Debug)]
pub struct LargeBenchConfig {
    /// Vertices of the synthetic community graph.
    pub vertices: usize,
    /// Average degree of the community graph.
    pub degree: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Simulated device memory in bytes (small: forces many parts).
    pub device_bytes: usize,
    /// Modeled interconnect bandwidth in GB/s. The simulator executes
    /// kernels orders of magnitude slower than a Titan X, so the real
    /// 12 GB/s would make transfers look free and erase the phenomenon
    /// Algorithm 5 exists for; this scales the link down by roughly the
    /// same factor as compute, restoring the paper's transfer:compute
    /// ratio.
    pub pcie_gbps: f64,
    /// Warp-executor threads of the simulated device (0 = all cores).
    pub host_threads: usize,
    /// SampleManager worker threads.
    pub threads: usize,
    /// Epoch budget (converted to rotations by Algorithm 5).
    pub epochs: u32,
    /// Positive samples per vertex per pool (B).
    pub batch_b: usize,
    /// Negative samples per positive batch entry.
    pub negative_samples: usize,
    /// Sub-matrix bins (P_GPU).
    pub p_gpu: usize,
    /// Sample pools in flight (S_GPU).
    pub s_gpu: usize,
    /// Seed for graph, matrix, and sampling.
    pub seed: u64,
    /// Also time the frozen synchronous engine for the speedup ratio.
    pub baseline: bool,
    /// Timed repetitions per engine; the best run is reported.
    pub repetitions: u32,
}

impl Default for LargeBenchConfig {
    fn default() -> Self {
        // The transfer-bound regime Algorithm 5 exists for: d = 128
        // (§4.3) and a device holding ~1/9 of the matrix, so every pair
        // moves a sub-matrix and the kernels are short enough that a
        // synchronous engine stalls on PCIe. B = 1, ns = 1 keeps the
        // per-pair compute small relative to the traffic — the regime
        // where Figure 2's overlap pays (bigger B amortizes transfers
        // and shrinks the gap; that trade-off is Figure 3's sweep).
        Self {
            vertices: 16_000,
            degree: 8,
            dim: 128,
            device_bytes: 1_781_760,
            pcie_gbps: 0.5,
            host_threads: 0,
            threads: 4,
            epochs: 12,
            batch_b: 3,
            negative_samples: 1,
            p_gpu: 3,
            s_gpu: 4,
            seed: 0x1A46E,
            baseline: true,
            repetitions: 3,
        }
    }
}

/// What one large-path run measured.
#[derive(Clone, Debug)]
pub struct LargeBenchReport {
    /// Graph shape actually generated.
    pub vertices: usize,
    /// Directed arcs of the generated graph.
    pub arcs: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// SampleManager threads.
    pub threads: usize,
    /// Epoch budget.
    pub epochs: u32,
    /// Positive batch size B.
    pub batch_b: usize,
    /// Negative samples.
    pub negative_samples: usize,
    /// Simulated device memory in bytes.
    pub device_bytes: usize,
    /// The pipelined engine's report (kernels, bins, loads, stalls, …).
    pub pipelined: LargeReport,
    /// Wall-clock seconds of the frozen synchronous engine (if run).
    pub sync_seconds: Option<f64>,
}

impl LargeBenchReport {
    /// Kernels/sec of the pipelined engine.
    pub fn kernels_per_sec(&self) -> f64 {
        self.pipelined.kernels as f64 / self.pipelined.seconds.max(1e-9)
    }

    /// Kernels/sec of the frozen synchronous engine, if it ran.
    pub fn sync_kernels_per_sec(&self) -> Option<f64> {
        self.sync_seconds
            .map(|s| self.pipelined.kernels as f64 / s.max(1e-9))
    }

    /// Speedup of the pipelined engine over the synchronous one.
    pub fn speedup_vs_sync(&self) -> Option<f64> {
        self.sync_seconds.map(|s| s / self.pipelined.seconds)
    }

    /// Serialize to the `BENCH_large.json` schema (see module docs).
    pub fn to_json(&self) -> String {
        let p = &self.pipelined;
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"large\",\n");
        s.push_str(&format!("  \"vertices\": {},\n", self.vertices));
        s.push_str(&format!("  \"arcs\": {},\n", self.arcs));
        s.push_str(&format!("  \"dim\": {},\n", self.dim));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"epochs\": {},\n", self.epochs));
        s.push_str(&format!("  \"batch_b\": {},\n", self.batch_b));
        s.push_str(&format!(
            "  \"negative_samples\": {},\n",
            self.negative_samples
        ));
        s.push_str(&format!("  \"device_bytes\": {},\n", self.device_bytes));
        s.push_str(&format!("  \"num_parts\": {},\n", p.num_parts));
        s.push_str(&format!("  \"bins\": {},\n", p.bins));
        s.push_str(&format!("  \"rotations\": {},\n", p.rotations));
        s.push_str(&format!("  \"kernels\": {},\n", p.kernels));
        s.push_str(&format!("  \"loads\": {},\n", p.loads));
        s.push_str(&format!("  \"prefetches\": {},\n", p.prefetches));
        s.push_str(&format!("  \"evictions\": {},\n", p.evictions));
        s.push_str(&format!("  \"seconds\": {:.6},\n", p.seconds));
        s.push_str(&format!(
            "  \"kernels_per_sec\": {:.1},\n",
            self.kernels_per_sec()
        ));
        s.push_str(&format!(
            "  \"transfer_stall_seconds\": {:.6},\n",
            p.transfer_stall_seconds
        ));
        s.push_str(&format!(
            "  \"pool_stall_seconds\": {:.6}",
            p.pool_stall_seconds
        ));
        if let (Some(ss), Some(sk), Some(x)) = (
            self.sync_seconds,
            self.sync_kernels_per_sec(),
            self.speedup_vs_sync(),
        ) {
            s.push_str(&format!(",\n  \"sync_seconds\": {ss:.6},\n"));
            s.push_str(&format!("  \"sync_kernels_per_sec\": {sk:.1},\n"));
            s.push_str(&format!("  \"speedup_vs_sync\": {x:.2}"));
        }
        s.push_str("\n}\n");
        s
    }
}

fn device_for(cfg: &LargeBenchConfig) -> Device {
    Device::new(DeviceConfig {
        host_threads: cfg.host_threads,
        pcie_gbps: cfg.pcie_gbps,
        ..DeviceConfig::tiny(cfg.device_bytes)
    })
}

fn params_for(cfg: &LargeBenchConfig) -> TrainParams {
    TrainParams::adjacency(cfg.dim, cfg.negative_samples, 0.025, cfg.epochs)
        .with_threads(cfg.threads)
        .with_seed(cfg.seed)
}

fn opts_for(cfg: &LargeBenchConfig) -> PartitionedOpts {
    PartitionedOpts {
        p_gpu: cfg.p_gpu,
        s_gpu: cfg.s_gpu,
        batch_b: cfg.batch_b,
    }
}

/// Run the large-path measurement described by `cfg`. Fails cleanly
/// (instead of panicking) when the configured device cannot even hold
/// its bins — e.g. a `--device-kb` too small for one vertex row.
pub fn run_large_bench(cfg: &LargeBenchConfig) -> Result<LargeBenchReport, DeviceError> {
    let g = community_graph(&CommunityConfig::new(cfg.vertices, cfg.degree), cfg.seed);
    let params = params_for(cfg);
    let opts = opts_for(cfg);

    // Warm-up pass (spin the thread pools and page the graph in).
    {
        let device = device_for(cfg);
        let mut m = Embedding::random(g.num_vertices(), cfg.dim, cfg.seed);
        let warm = TrainParams {
            epochs: 1,
            ..params
        };
        train_large(&device, &g, &mut m, &warm, &opts)?;
    }

    // Best-of-N timing for both engines: the minimum is the standard
    // low-noise estimator on shared machines, and applying it to both
    // sides keeps the ratio fair.
    let reps = cfg.repetitions.max(1);
    let mut best: Option<LargeReport> = None;
    for _ in 0..reps {
        let device = device_for(cfg);
        let mut m = Embedding::random(g.num_vertices(), cfg.dim, cfg.seed);
        let r = train_large(&device, &g, &mut m, &params, &opts)?;
        if best.is_none_or(|b: LargeReport| r.seconds < b.seconds) {
            best = Some(r);
        }
    }
    let pipelined = best.expect("at least one repetition");

    let sync_seconds = if cfg.baseline {
        let mut fastest = f64::INFINITY;
        for _ in 0..reps {
            let device = device_for(cfg);
            let mut m = Embedding::random(g.num_vertices(), cfg.dim, cfg.seed);
            let t0 = Instant::now();
            train_large_sync(&device, &g, &mut m, &params, &opts)?;
            fastest = fastest.min(t0.elapsed().as_secs_f64().max(1e-9));
        }
        Some(fastest)
    } else {
        None
    };

    Ok(LargeBenchReport {
        vertices: g.num_vertices(),
        arcs: g.num_edges(),
        dim: cfg.dim,
        threads: cfg.threads,
        epochs: cfg.epochs,
        batch_b: cfg.batch_b,
        negative_samples: cfg.negative_samples,
        device_bytes: cfg.device_bytes,
        pipelined,
        sync_seconds,
    })
}

// ---------------------------------------------------------------------------
// The frozen synchronous engine: the pre-pipeline Algorithm 5 main loop,
// kept verbatim-in-spirit as the trajectory baseline. Every bin load and
// eviction write-back happens inline on the main thread, serialized with
// kernel dispatch — the behaviour `speedup_vs_sync` is measured against.
// ---------------------------------------------------------------------------

/// A pool resident on the device (baseline copy).
struct DevicePool {
    pair: (usize, usize),
    fwd: PlainBuffer<u32>,
    rev: Option<PlainBuffer<u32>>,
}

/// The frozen synchronous `train_large`: the baseline every
/// `BENCH_large.json` speedup is measured against. Dispatches exactly
/// the same kernel sequence as the pipelined engine — with a
/// single-threaded warp executor the two produce bit-identical
/// matrices (enforced by test).
pub fn train_large_sync(
    device: &Device,
    g: &Csr,
    m: &mut Embedding,
    params: &TrainParams,
    opts: &PartitionedOpts,
) -> Result<LargeReport, DeviceError> {
    let start = Instant::now();
    let n = g.num_vertices();
    let d = params.dim;
    assert_eq!(m.num_vertices(), n, "graph/matrix mismatch");
    assert_eq!(m.dim(), d, "dimension mismatch");

    let avail = device.available_bytes() / 10 * 9;
    let k = choose_num_parts(n, d, avail, opts.p_gpu, opts.s_gpu, opts.batch_b);
    let partition = Partition::new(n, k);
    let pairs = inside_out_pairs(k);
    let e_und = g.num_undirected_edges().max(1);
    let rotations = ((params.epochs as f64 * e_und as f64)
        / (opts.batch_b as f64 * k as f64 * n as f64))
        .round()
        .max(1.0) as u32;

    let num_bins = opts.p_gpu.clamp(2, k);
    let max_part = partition.max_part_len();
    let bins: Vec<FloatBuffer> = (0..num_bins)
        .map(|_| device.alloc_floats(max_part * d))
        .collect::<Result<_, _>>()?;

    let mut loads = 0u64;
    let mut evictions = 0u64;
    let mut kernels = 0u64;

    std::thread::scope(|scope| -> Result<(), DeviceError> {
        let (host_tx, host_rx) = crossbeam::channel::bounded::<SamplePool>(opts.s_gpu);
        let sm_pairs = pairs.clone();
        let sm_partition = partition.clone();
        let sm = scope.spawn(move || {
            'outer: for r in 0..rotations {
                for &pair in &sm_pairs {
                    let seed =
                        params.seed ^ ((r as u64) << 40) ^ ((pair.0 as u64) << 20) ^ pair.1 as u64;
                    let pool =
                        generate_pool(g, &sm_partition, pair, opts.batch_b, params.threads, seed);
                    if host_tx.send(pool).is_err() {
                        break 'outer;
                    }
                }
            }
        });

        let dev_channel_cap = opts.s_gpu.saturating_sub(2).max(1);
        let (dev_tx, dev_rx) = crossbeam::channel::bounded::<DevicePool>(dev_channel_cap);
        let pm_device = device.clone();
        let pm = scope.spawn(move || -> Result<(), DeviceError> {
            for pool in host_rx {
                let fwd = pm_device.upload_plain(&pool.fwd)?;
                let rev = if pool.rev.is_empty() {
                    None
                } else {
                    Some(pm_device.upload_plain(&pool.rev)?)
                };
                if dev_tx
                    .send(DevicePool {
                        pair: pool.pair,
                        fwd,
                        rev,
                    })
                    .is_err()
                {
                    break;
                }
            }
            Ok(())
        });

        // Main thread: synchronous bin management + kernel dispatch.
        let mut holds: Vec<Option<usize>> = vec![None; num_bins];
        'rotations: for r in 0..rotations {
            let lr_now = decayed_lr(params.lr, r, rotations);
            for (step, &(a, b)) in pairs.iter().enumerate() {
                let Ok(pool) = dev_rx.recv() else {
                    break 'rotations;
                };
                debug_assert_eq!(pool.pair, (a, b));
                let bin_a = ensure_resident_sync(
                    m,
                    &partition,
                    &bins,
                    &mut holds,
                    a,
                    (a, b),
                    &pairs[step + 1..],
                    &mut loads,
                    &mut evictions,
                );
                let bin_b = if a == b {
                    bin_a
                } else {
                    ensure_resident_sync(
                        m,
                        &partition,
                        &bins,
                        &mut holds,
                        b,
                        (a, b),
                        &pairs[step + 1..],
                        &mut loads,
                        &mut evictions,
                    )
                };
                kernel_pair_sync(
                    device,
                    &bins[bin_a],
                    &bins[bin_b],
                    &partition,
                    (a, b),
                    &pool,
                    lr_now,
                    params,
                    opts.batch_b,
                );
                kernels += 1;
            }
        }
        drop(dev_rx);
        sm.join().expect("SampleManager panicked");
        pm.join().expect("PoolManager panicked")?;

        for (bin, hold) in holds.iter().enumerate() {
            if let Some(part) = hold {
                write_back_sync(m, &partition, &bins[bin], *part);
                evictions += 1;
            }
        }
        Ok(())
    })?;

    Ok(LargeReport {
        num_parts: k,
        bins: num_bins,
        rotations,
        kernels,
        loads,
        prefetches: 0,
        evictions,
        transfer_stall_seconds: 0.0,
        pool_stall_seconds: 0.0,
        seconds: start.elapsed().as_secs_f64(),
    })
}

/// Make `part` resident with a blocking inline copy; returns its bin.
#[allow(clippy::too_many_arguments)]
fn ensure_resident_sync(
    m: &mut Embedding,
    partition: &Partition,
    bins: &[FloatBuffer],
    holds: &mut [Option<usize>],
    part: usize,
    pinned: (usize, usize),
    future: &[(usize, usize)],
    loads: &mut u64,
    evictions: &mut u64,
) -> usize {
    if let Some(bin) = holds.iter().position(|h| *h == Some(part)) {
        return bin;
    }
    let victim = holds.iter().position(|h| h.is_none()).unwrap_or_else(|| {
        gosh_core::large::farthest_future_victim(holds, &[pinned.0, pinned.1], future)
            .expect("no free bin and every bin pinned")
    });
    if let Some(old) = holds[victim] {
        write_back_sync(m, partition, &bins[victim], old);
        *evictions += 1;
    }
    let range = partition.range(part);
    let d = m.dim();
    let span = (range.start as usize * d)..(range.end as usize * d);
    bins[victim].copy_from_host_at(0, &m.as_slice()[span]);
    holds[victim] = Some(part);
    *loads += 1;
    victim
}

/// Blocking device → host copy of a bin's sub-matrix.
fn write_back_sync(m: &mut Embedding, partition: &Partition, bin: &FloatBuffer, part: usize) {
    let range = partition.range(part);
    let d = m.dim();
    let span = (range.start as usize * d)..(range.end as usize * d);
    bin.copy_to_host_at(0, &mut m.as_mut_slice()[span]);
}

/// The embedding kernel (identical math to the pipelined engine).
#[allow(clippy::too_many_arguments)]
fn kernel_pair_sync(
    device: &Device,
    bin_a: &FloatBuffer,
    bin_b: &FloatBuffer,
    partition: &Partition,
    (a, b): (usize, usize),
    pool: &DevicePool,
    lr: f32,
    params: &TrainParams,
    batch_b: usize,
) {
    let d = params.dim;
    let ns = params.negative_samples;
    let bb = batch_b;
    let range_a = partition.range(a);
    let range_b = partition.range(b);
    let len_a = (range_a.end - range_a.start) as usize;
    let len_b = (range_b.end - range_b.start) as usize;
    let diagonal = a == b;
    let warps = if diagonal { len_a } else { len_a + len_b };
    let fwd = pool.fwd.as_slice();
    let rev = pool.rev.as_ref().map(|r| r.as_slice()).unwrap_or(&[]);

    device.launch(LaunchConfig::new(warps, 2 * d), |w, scratch| {
        let (src_row, tmp) = scratch.split_at_mut(d);
        let (src_local, src_bin, other_bin, other_len, other_start, samples) = if w.id() < len_a {
            (w.id(), bin_a, bin_b, len_b, range_b.start, fwd)
        } else {
            (w.id() - len_a, bin_b, bin_a, len_a, range_a.start, rev)
        };
        w.global_read_row(src_bin, src_local * d, src_row, Access::Coalesced);
        w.shared_store(d);
        for i in 0..bb {
            let t = samples[src_local * bb + i];
            if t != NO_SAMPLE {
                let t_local = (t - other_start) as usize;
                one_update_sync(w, other_bin, t_local, d, src_row, tmp, 1.0, lr);
            }
            for _ in 0..ns {
                let u = w.rand_below(other_len as u32) as usize;
                one_update_sync(w, other_bin, u, d, src_row, tmp, 0.0, lr);
            }
        }
        w.global_write_row(src_bin, src_local * d, src_row, Access::Coalesced);
    });
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn one_update_sync(
    w: &gosh_gpu::Warp,
    buf: &FloatBuffer,
    local: usize,
    d: usize,
    src_row: &mut [f32],
    tmp: &mut [f32],
    b: f32,
    lr: f32,
) {
    w.global_read_row(buf, local * d, tmp, Access::Coalesced);
    let dot = w.dot(src_row, tmp);
    let score = (b - w.sigmoid(dot)) * lr;
    w.global_axpy_row(buf, local * d, score, src_row, Access::Coalesced);
    w.shared_axpy(score, tmp, src_row);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LargeBenchConfig {
        LargeBenchConfig {
            vertices: 512,
            degree: 6,
            dim: 16,
            device_bytes: 24 * 1024,
            host_threads: 2,
            threads: 2,
            epochs: 8,
            batch_b: 2,
            negative_samples: 2,
            seed: 11,
            repetitions: 1,
            ..Default::default()
        }
    }

    #[test]
    fn report_measures_and_serializes() {
        let r = run_large_bench(&tiny()).unwrap();
        assert!(r.pipelined.seconds > 0.0 && r.pipelined.kernels > 0);
        assert!(r.kernels_per_sec() > 0.0);
        assert!(r.sync_seconds.is_some());
        let json = r.to_json();
        for key in [
            "\"bench\": \"large\"",
            "\"kernels_per_sec\"",
            "\"transfer_stall_seconds\"",
            "\"num_parts\"",
            "\"prefetches\"",
            "\"speedup_vs_sync\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn baseline_can_be_skipped() {
        let r = run_large_bench(&LargeBenchConfig {
            baseline: false,
            ..tiny()
        })
        .unwrap();
        assert!(r.sync_seconds.is_none());
        assert!(!r.to_json().contains("speedup_vs_sync"));
    }

    #[test]
    fn pipelined_matches_sync_bit_for_bit_single_stream() {
        // With a single-threaded warp executor both engines are fully
        // deterministic and dispatch the same kernel sequence over the
        // same bin contents — the final matrices must be identical.
        // This is the "seeded single-stream mode" equivalence gate: the
        // pipeline may only move *when* transfers happen, never what any
        // kernel reads or writes.
        let cfg = LargeBenchConfig {
            host_threads: 1,
            threads: 1,
            ..tiny()
        };
        let g = community_graph(&CommunityConfig::new(cfg.vertices, cfg.degree), cfg.seed);
        let params = params_for(&cfg);
        let opts = opts_for(&cfg);

        let mut m_sync = Embedding::random(g.num_vertices(), cfg.dim, cfg.seed);
        let dev_sync = device_for(&cfg);
        let r_sync = train_large_sync(&dev_sync, &g, &mut m_sync, &params, &opts).unwrap();

        let mut m_pipe = Embedding::random(g.num_vertices(), cfg.dim, cfg.seed);
        let dev_pipe = device_for(&cfg);
        let r_pipe = train_large(&dev_pipe, &g, &mut m_pipe, &params, &opts).unwrap();

        assert_eq!(r_sync.kernels, r_pipe.kernels);
        assert_eq!(r_sync.num_parts, r_pipe.num_parts);
        assert_eq!(
            m_sync.as_slice(),
            m_pipe.as_slice(),
            "pipelined engine diverged from the synchronous baseline"
        );
    }

    #[test]
    fn sync_engine_still_learns() {
        // The frozen baseline must stay a *correct* trainer, or the
        // speedup ratio measures against garbage.
        let mut edges = vec![];
        for x in 0..8u32 {
            for y in 0..x {
                edges.push((x, y));
                edges.push((x + 8, y + 8));
            }
        }
        edges.push((0, 8));
        let g = gosh_graph::builder::csr_from_edges(16, &edges);
        let device = Device::new(DeviceConfig::tiny(4096));
        let mut m = Embedding::random(16, 16, 1);
        let params = TrainParams::adjacency(16, 3, 0.05, 400)
            .with_threads(2)
            .with_seed(0xA5);
        train_large_sync(&device, &g, &mut m, &params, &PartitionedOpts::default()).unwrap();
        let intra = (m.cosine(0, 1) + m.cosine(8, 9)) / 2.0;
        let inter = (m.cosine(0, 9) + m.cosine(1, 10)) / 2.0;
        assert!(intra > inter + 0.25, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn unsatisfiable_device_is_a_clean_error() {
        let r = run_large_bench(&LargeBenchConfig {
            device_bytes: 64, // cannot hold one d=16 vertex row per bin
            ..tiny()
        });
        assert!(r.is_err(), "expected OutOfMemory, got {r:?}");
    }

    #[test]
    #[ignore = "perf assertion; run explicitly with --ignored"]
    fn pipelined_engine_is_at_least_1_3x_the_sync_engine() {
        let r = run_large_bench(&LargeBenchConfig::default()).unwrap();
        let x = r.speedup_vs_sync().unwrap();
        assert!(x >= 1.3, "speedup {x:.2} < 1.3 ({r:?})");
    }
}
