//! Ingestion throughput harness (`gosh bench-ingest`).
//!
//! Measures end-to-end edge-list parse speed — bytes to validated CSR
//! plus `original_ids` — of the parallel streaming path
//! (`gosh_graph::ingest`) on a frozen-seed synthetic SNAP-style file
//! held in memory, and — for the perf trajectory — the same bytes
//! through a frozen copy of the *seed* parser
//! ([`read_edge_list_seed`]: one thread, one freshly allocated `String`
//! per line, `trim` + `split_whitespace` + `str::parse`, a global
//! SipHash `HashMap` interner, the sequential builder), so every report
//! carries its own baseline ratio, exactly like the trainer, large-path,
//! and coarsening harnesses freeze their seed engines. Before any
//! timing, three-way output equality is checked — frozen ≡ live
//! sequential ≡ parallel — because a speedup over a parser producing
//! different output would measure nothing. The deliverable is the
//! recurring measurement: CI runs this on every push, uploads
//! `BENCH_ingest.json`, and the `bench_check` gate fails the job if
//! `speedup_vs_seq` regresses.
//!
//! ## `BENCH_ingest.json` schema
//!
//! One flat JSON object per run:
//!
//! ```json
//! {
//!   "bench": "ingest",
//!   "vertices": 120000, "edge_lines": 1762300, "bytes": 38295194,
//!   "arcs": 3524600, "threads": 4,
//!   "seconds": 0.41, "edges_per_sec": 4298293.0, "mb_per_sec": 89.1,
//!   "seq_seconds": 0.93, "seq_edges_per_sec": 1895000.0,
//!   "speedup_vs_seq": 2.27
//! }
//! ```
//!
//! `edge_lines` counts edge lines of the generated file (one per
//! undirected edge), so `edges_per_sec` is the end-to-end ingestion
//! throughput number; `bytes`/`mb_per_sec` track the same run in I/O
//! terms. The two `seq_*` fields and the ratio are omitted when the
//! baseline run is skipped. Both engines parse the identical in-memory
//! bytes, so `speedup_vs_seq` is a pure engine-vs-engine ratio on the
//! same machine in the same process.

use std::collections::HashMap;
use std::io::{self, BufRead, Cursor};
use std::time::Instant;

use gosh_graph::builder::GraphBuilder;
use gosh_graph::csr::{Csr, VertexId};
use gosh_graph::gen::{community_graph, CommunityConfig};
use gosh_graph::ingest::{read_edge_list_parallel, IngestConfig};
use gosh_graph::io::read_edge_list;

/// Workload shape for one ingestion measurement.
#[derive(Clone, Copy, Debug)]
pub struct IngestBenchConfig {
    /// Vertices of the synthetic community graph behind the file.
    pub vertices: usize,
    /// Average degree of the community graph.
    pub degree: usize,
    /// Worker threads for the parallel path.
    pub threads: usize,
    /// Seed for the generated graph.
    pub seed: u64,
    /// Also time the frozen seed parser for the speedup ratio.
    pub baseline: bool,
    /// Timed repetitions per engine; the best run is reported.
    pub repetitions: u32,
}

impl Default for IngestBenchConfig {
    fn default() -> Self {
        // The regime ingestion is now the bottleneck for: a
        // multi-million-line SNAP-style file (tens of MB — well out of
        // cache) with sparse non-contiguous ids, at a size that still
        // finishes in CI seconds.
        Self {
            vertices: 120_000,
            degree: 16,
            threads: 4,
            seed: 0x16E57,
            baseline: true,
            repetitions: 3,
        }
    }
}

/// What one ingestion run measured.
#[derive(Clone, Debug)]
pub struct IngestBenchReport {
    /// Vertices of the parsed graph.
    pub vertices: usize,
    /// Edge lines of the generated file.
    pub edge_lines: usize,
    /// Bytes of the generated file.
    pub bytes: usize,
    /// Directed arcs of the parsed graph.
    pub arcs: usize,
    /// Worker threads of the parallel path.
    pub threads: usize,
    /// Wall-clock seconds of the parallel path (best of N).
    pub seconds: f64,
    /// Wall-clock seconds of the frozen seed parser (if measured).
    pub seq_seconds: Option<f64>,
}

impl IngestBenchReport {
    /// Edge lines per second of the parallel path.
    pub fn edges_per_sec(&self) -> f64 {
        self.edge_lines as f64 / self.seconds
    }

    /// Input megabytes per second of the parallel path.
    pub fn mb_per_sec(&self) -> f64 {
        self.bytes as f64 / (1024.0 * 1024.0) / self.seconds
    }

    /// Edge lines per second of the frozen seed parser, if measured.
    pub fn seq_edges_per_sec(&self) -> Option<f64> {
        self.seq_seconds.map(|s| self.edge_lines as f64 / s)
    }

    /// Speedup of the parallel path over the frozen seed parser.
    pub fn speedup_vs_seq(&self) -> Option<f64> {
        self.seq_seconds.map(|s| s / self.seconds)
    }

    /// Serialize to the `BENCH_ingest.json` schema (see module docs).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"ingest\",\n");
        s.push_str(&format!("  \"vertices\": {},\n", self.vertices));
        s.push_str(&format!("  \"edge_lines\": {},\n", self.edge_lines));
        s.push_str(&format!("  \"bytes\": {},\n", self.bytes));
        s.push_str(&format!("  \"arcs\": {},\n", self.arcs));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"seconds\": {:.6},\n", self.seconds));
        s.push_str(&format!(
            "  \"edges_per_sec\": {:.1},\n",
            self.edges_per_sec()
        ));
        s.push_str(&format!("  \"mb_per_sec\": {:.1}", self.mb_per_sec()));
        if let (Some(bs), Some(beps), Some(x)) = (
            self.seq_seconds,
            self.seq_edges_per_sec(),
            self.speedup_vs_seq(),
        ) {
            s.push_str(&format!(",\n  \"seq_seconds\": {bs:.6},\n"));
            s.push_str(&format!("  \"seq_edges_per_sec\": {beps:.1},\n"));
            s.push_str(&format!("  \"speedup_vs_seq\": {x:.2}"));
        }
        s.push_str("\n}\n");
        s
    }
}

/// Render the frozen-seed workload file: the community graph's edges as
/// SNAP-style text with sparse, non-contiguous vertex ids (the dense id
/// is pushed through an affine map, so the interner does real work) and
/// a comment header. Returns the bytes and the edge-line count.
pub fn synthesize_edge_list(cfg: &IngestBenchConfig) -> (Vec<u8>, usize) {
    let g = community_graph(&CommunityConfig::new(cfg.vertices, cfg.degree), cfg.seed);
    let mut text = String::with_capacity(g.num_undirected_edges() * 22 + 64);
    text.push_str("# gosh bench-ingest synthetic SNAP-style edge list\n");
    text.push_str(&format!(
        "# vertices {} arcs {}\n",
        g.num_vertices(),
        g.num_edges()
    ));
    let sparse = |v: u32| v as u64 * 9973 + 1_234_567;
    let mut edge_lines = 0usize;
    for (u, v) in g.undirected_edges() {
        text.push_str(&format!("{} {}\n", sparse(u), sparse(v)));
        edge_lines += 1;
    }
    (text.into_bytes(), edge_lines)
}

/// Run the ingestion measurement described by `cfg`.
///
/// # Panics
/// Panics if the parallel, live sequential, and frozen seed parsers
/// disagree on the workload file — the ratio would then compare
/// different jobs.
pub fn run_ingest_bench(cfg: &IngestBenchConfig) -> IngestBenchReport {
    assert!(cfg.threads >= 1, "bench-ingest needs at least one thread");
    let (data, edge_lines) = synthesize_edge_list(cfg);
    let ingest_cfg = IngestConfig::with_threads(cfg.threads);

    // Correctness first: all three engines must produce identical output
    // (this is also the warm-up pass that pages the buffer in).
    let par = read_edge_list_parallel(&data, &ingest_cfg).expect("parallel parse failed");
    let live = read_edge_list(Cursor::new(&data[..])).expect("sequential parse failed");
    assert_eq!(par.graph, live.graph, "parallel/sequential CSR mismatch");
    assert_eq!(par.original_ids, live.original_ids, "original_ids mismatch");
    assert_eq!(par.stats, live.stats, "parse stats mismatch");
    let (seed_graph, seed_ids) =
        read_edge_list_seed(Cursor::new(&data[..])).expect("seed parse failed");
    assert_eq!(par.graph, seed_graph, "parallel/seed CSR mismatch");
    assert_eq!(par.original_ids, seed_ids, "parallel/seed id mismatch");
    let vertices = par.graph.num_vertices();
    let arcs = par.graph.num_edges();
    drop((par, live, seed_graph, seed_ids));

    // Interleaved best-of-N timing, as in the other harnesses: the two
    // engines alternate within every repetition so frequency scaling and
    // noisy-neighbour epochs hit both samples alike, and the minimum is
    // taken over the same machine states for both sides.
    let reps = cfg.repetitions.max(1);
    let mut seconds = f64::INFINITY;
    let mut seq_seconds_best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let loaded = read_edge_list_parallel(&data, &ingest_cfg).expect("parallel parse failed");
        seconds = seconds.min(t0.elapsed().as_secs_f64().max(1e-9));
        drop(loaded);
        if cfg.baseline {
            let t0 = Instant::now();
            let loaded = read_edge_list_seed(Cursor::new(&data[..])).expect("seed parse failed");
            seq_seconds_best = seq_seconds_best.min(t0.elapsed().as_secs_f64().max(1e-9));
            drop(loaded);
        }
    }

    IngestBenchReport {
        vertices,
        edge_lines,
        bytes: data.len(),
        arcs,
        threads: cfg.threads,
        seconds,
        seq_seconds: cfg.baseline.then_some(seq_seconds_best),
    }
}

// ---------------------------------------------------------------------------
// The frozen seed-era sequential parser, kept verbatim-in-spirit for the
// trajectory: one freshly allocated `String` per line, `trim` +
// `split_whitespace` + `str::parse` per token, a global SipHash
// `HashMap` interner, and the sequential builder. This is the engine the
// parallel streaming path replaced; `speedup_vs_seq` is measured against
// it, the way the other harnesses measure against their frozen seed
// engines.
// ---------------------------------------------------------------------------

/// The seed `read_edge_list`: the baseline every `BENCH_ingest.json`
/// speedup is measured against. Returns the graph and the first-seen
/// original-id mapping (the seed had no parse statistics).
pub fn read_edge_list_seed<R: BufRead>(reader: R) -> io::Result<(Csr, Vec<u64>)> {
    let mut ids: HashMap<u64, VertexId> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();

    let intern = |raw: u64, ids: &mut HashMap<u64, VertexId>, orig: &mut Vec<u64>| {
        *ids.entry(raw).or_insert_with(|| {
            let id = orig.len() as VertexId;
            orig.push(raw);
            id
        })
    };
    let bad_line = |lineno: usize| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed edge list at line {}", lineno + 1),
        )
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u64> {
            tok.ok_or_else(|| bad_line(lineno))?
                .parse::<u64>()
                .map_err(|_| bad_line(lineno))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        let ui = intern(u, &mut ids, &mut original_ids);
        let vi = intern(v, &mut ids, &mut original_ids);
        edges.push((ui, vi));
    }

    let mut b = GraphBuilder::new(original_ids.len());
    b.extend(edges);
    Ok((b.build(), original_ids))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> IngestBenchConfig {
        IngestBenchConfig {
            vertices: 2000,
            degree: 8,
            threads: 2,
            seed: 5,
            baseline: true,
            repetitions: 1,
        }
    }

    #[test]
    fn report_measures_and_serializes() {
        let r = run_ingest_bench(&tiny());
        assert!(r.seconds > 0.0);
        assert!(r.edge_lines > 0);
        assert!(r.bytes > 0);
        assert_eq!(r.vertices, 2000);
        assert!(r.seq_seconds.is_some());
        let json = r.to_json();
        for key in [
            "\"bench\": \"ingest\"",
            "\"edges_per_sec\"",
            "\"mb_per_sec\"",
            "\"threads\": 2",
            "\"speedup_vs_seq\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn baseline_can_be_skipped() {
        let r = run_ingest_bench(&IngestBenchConfig {
            baseline: false,
            ..tiny()
        });
        assert!(r.seq_seconds.is_none());
        assert!(!r.to_json().contains("speedup_vs_seq"));
    }

    #[test]
    fn frozen_parser_still_matches_the_live_sequential_oracle() {
        // The frozen baseline must keep producing *correct* parses, or
        // the speedup ratio measures against garbage: on seed-grammar
        // input (plain `u v` lines) it must equal the live reference.
        let (data, _) = synthesize_edge_list(&tiny());
        let (seed_graph, seed_ids) = read_edge_list_seed(Cursor::new(&data[..])).unwrap();
        let live = read_edge_list(Cursor::new(&data[..])).unwrap();
        assert_eq!(seed_graph, live.graph);
        assert_eq!(seed_ids, live.original_ids);
        // And it still rejects malformed lines like the seed did.
        assert!(read_edge_list_seed(Cursor::new(&b"1 2\nbogus\n"[..])).is_err());
    }

    #[test]
    fn workload_is_frozen_by_seed() {
        let (a, la) = synthesize_edge_list(&tiny());
        let (b, lb) = synthesize_edge_list(&tiny());
        assert_eq!(a, b);
        assert_eq!(la, lb);
        let (c, _) = synthesize_edge_list(&IngestBenchConfig { seed: 6, ..tiny() });
        assert_ne!(a, c);
    }
}
