//! Serving-layer harness (`gosh bench-serve`).
//!
//! Measures the `gosh serve` query path end-to-end: a trained embedding
//! is written to an `.embin` store, served from a real TCP loopback
//! socket by `gosh_core::serve::Server`, and queried by a client over
//! the framed protocol — so the numbers include store access, scoring,
//! top-k selection, serialization, and the kernel network stack, the
//! same path a deployment pays. Two engines are timed on identical
//! batches: brute-force exact search and the IVF coarse quantizer, and
//! the gated trajectory ratio is their throughput quotient
//! (`speedup_vs_exact`) — engine-vs-engine in one process on one
//! machine, the same contract every other `speedup_vs_*` key has.
//! Recall@k of the IVF answers against the exact answers is measured on
//! the same batch, so the report shows what the speedup costs.
//!
//! ## `BENCH_serve.json` schema
//!
//! One flat JSON object per run:
//!
//! ```json
//! {
//!   "bench": "serve",
//!   "vertices": 4096, "arcs": 65536, "dim": 32, "threads": 2,
//!   "precision": "i8", "k": 10, "nlist": 64, "nprobe": 8,
//!   "batch_queries": 256, "latency_queries": 64,
//!   "exact_qps": 21000.0, "ivf_qps": 96000.0,
//!   "p50_ms": 0.210, "p99_ms": 0.480,
//!   "recall_at_k": 0.9520,
//!   "speedup_vs_exact": 4.57
//! }
//! ```
//!
//! `exact_qps`/`ivf_qps` are best-of-N batched round-trip throughputs;
//! `p50_ms`/`p99_ms` are single-query IVF round-trip latencies over the
//! socket; `recall_at_k` is the mean fraction of each exact top-k the
//! IVF top-k recovered.

use gosh_core::config::{GoshConfig, Preset};
use gosh_core::quant::Precision;
use gosh_core::serve::{Hit, ServeClient, ServeConfig, Server};
use gosh_core::store::{write_store, EmbeddingStore};
use gosh_graph::gen::{community_graph, CommunityConfig};

/// Workload shape for one serving measurement.
#[derive(Clone, Copy, Debug)]
pub struct ServeBenchConfig {
    /// Vertices of the synthetic community graph (= stored rows).
    pub vertices: usize,
    /// Average degree of the community graph.
    pub degree: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Worker team of the server (batch execution + IVF build).
    pub threads: usize,
    /// Store precision served (i8 exercises the direct-read path).
    pub precision: Precision,
    /// Results per query.
    pub k: usize,
    /// IVF lists probed per query.
    pub nprobe: usize,
    /// Queries per batched throughput request.
    pub batch_queries: usize,
    /// Single-query round trips for the latency percentiles.
    pub latency_queries: usize,
    /// Training epochs for the embedding being served.
    pub epochs: u32,
    /// Seed for the graph, the training run, and the query picks.
    pub seed: u64,
    /// Timed repetitions per engine; the best run is reported.
    pub repetitions: u32,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        // Big enough that scoring dominates the socket round trip, small
        // enough that training the served embedding stays in CI seconds.
        Self {
            vertices: 4096,
            degree: 8,
            dim: 32,
            threads: 2,
            precision: Precision::I8,
            k: 10,
            nprobe: 8,
            batch_queries: 256,
            latency_queries: 64,
            epochs: 12,
            seed: 0x5E12,
            repetitions: 3,
        }
    }
}

/// What one serving run measured.
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    pub vertices: usize,
    pub arcs: usize,
    pub dim: usize,
    pub threads: usize,
    pub precision: Precision,
    pub k: usize,
    pub nlist: usize,
    pub nprobe: usize,
    pub batch_queries: usize,
    pub latency_queries: usize,
    /// Best batched exact throughput, queries/second.
    pub exact_qps: f64,
    /// Best batched IVF throughput, queries/second.
    pub ivf_qps: f64,
    /// Median single-query IVF round-trip latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile single-query IVF round-trip latency, ms.
    pub p99_ms: f64,
    /// Mean fraction of the exact top-k the IVF top-k recovered.
    pub recall_at_k: f64,
}

impl ServeBenchReport {
    /// The gated trajectory ratio: IVF throughput over exact throughput
    /// on identical batches through the same socket.
    pub fn speedup_vs_exact(&self) -> f64 {
        if self.exact_qps > 0.0 {
            self.ivf_qps / self.exact_qps
        } else {
            0.0
        }
    }

    /// Serialize to the `BENCH_serve.json` schema (see module docs).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"serve\",\n");
        s.push_str(&format!("  \"vertices\": {},\n", self.vertices));
        s.push_str(&format!("  \"arcs\": {},\n", self.arcs));
        s.push_str(&format!("  \"dim\": {},\n", self.dim));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"precision\": \"{}\",\n", self.precision));
        s.push_str(&format!("  \"k\": {},\n", self.k));
        s.push_str(&format!("  \"nlist\": {},\n", self.nlist));
        s.push_str(&format!("  \"nprobe\": {},\n", self.nprobe));
        s.push_str(&format!("  \"batch_queries\": {},\n", self.batch_queries));
        s.push_str(&format!(
            "  \"latency_queries\": {},\n",
            self.latency_queries
        ));
        s.push_str(&format!("  \"exact_qps\": {:.1},\n", self.exact_qps));
        s.push_str(&format!("  \"ivf_qps\": {:.1},\n", self.ivf_qps));
        s.push_str(&format!("  \"p50_ms\": {:.4},\n", self.p50_ms));
        s.push_str(&format!("  \"p99_ms\": {:.4},\n", self.p99_ms));
        s.push_str(&format!("  \"recall_at_k\": {:.4},\n", self.recall_at_k));
        s.push_str(&format!(
            "  \"speedup_vs_exact\": {:.2}\n",
            self.speedup_vs_exact()
        ));
        s.push_str("}\n");
        s
    }
}

/// Train an embedding for the benchmark graph and serve it from a store.
fn build_store(cfg: &ServeBenchConfig) -> (EmbeddingStore, usize) {
    let g = community_graph(&CommunityConfig::new(cfg.vertices, cfg.degree), cfg.seed);
    let arcs = g.num_edges();
    let mut gcfg = GoshConfig::preset(Preset::Normal, false)
        .with_dim(cfg.dim)
        .with_epochs(cfg.epochs)
        .with_threads(cfg.threads)
        .with_backend(gosh_core::backend::BackendChoice::Cpu);
    gcfg.seed = cfg.seed;
    let device = gosh_gpu::Device::new(gosh_gpu::DeviceConfig::titan_x());
    let (m, _) = gosh_core::pipeline::embed(&g, &gcfg, &device);

    let dir = std::env::temp_dir().join("gosh-bench-serve");
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let path = dir.join(format!("{}-{:x}.embin", std::process::id(), cfg.seed));
    write_store(&path, &m, cfg.precision).expect("writing bench store");
    let store = EmbeddingStore::open(&path).expect("opening bench store");
    (store, arcs)
}

/// Pick `count` evenly spaced stored rows as the query set.
fn pick_queries(store: &EmbeddingStore, count: usize) -> Vec<f32> {
    let n = store.num_vertices().max(1);
    let dim = store.dim();
    let mut queries = vec![0.0f32; count * dim];
    for (i, chunk) in queries.chunks_exact_mut(dim).enumerate() {
        store.decode_row((i * n / count.max(1)) as u32, chunk);
    }
    queries
}

/// Mean |exact ∩ ivf| / k over paired per-query hit lists.
pub fn mean_recall(exact: &[Vec<Hit>], ivf: &[Vec<Hit>], k: usize) -> f64 {
    assert_eq!(exact.len(), ivf.len());
    if exact.is_empty() || k == 0 {
        return 1.0;
    }
    let mut total = 0.0f64;
    for (e, a) in exact.iter().zip(ivf) {
        let got = a.iter().filter(|h| e.iter().any(|x| x.id == h.id)).count();
        total += got as f64 / e.len().max(1) as f64;
    }
    total / exact.len() as f64
}

/// Run the serving measurement described by `cfg`.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> ServeBenchReport {
    assert!(cfg.k >= 1, "bench-serve needs k >= 1");
    assert!(cfg.nprobe >= 1, "bench-serve needs nprobe >= 1");
    let (store, arcs) = build_store(cfg);
    let dim = store.dim();
    let queries = pick_queries(&store, cfg.batch_queries);

    let server = Server::bind(
        store,
        "127.0.0.1:0",
        ServeConfig {
            threads: cfg.threads,
            build_ivf: true,
            verbose: false,
        },
    )
    .expect("binding bench server");
    let nlist = server.index().expect("ivf index").nlist();
    let addr = server.local_addr().expect("server address");
    let handle = std::thread::spawn(move || server.run());

    let mut client = ServeClient::connect(addr).expect("connecting bench client");
    let time_batch = |client: &mut ServeClient, nprobe: usize| -> (f64, Vec<Vec<Hit>>) {
        // Warm-up round, then best-of-N: the first request pays page
        // faults on the mapped store.
        let mut best = f64::INFINITY;
        let mut hits = client
            .query(&queries, dim, cfg.k, nprobe)
            .expect("warm-up query batch");
        for _ in 0..cfg.repetitions.max(1) {
            let t0 = std::time::Instant::now();
            hits = client
                .query(&queries, dim, cfg.k, nprobe)
                .expect("timed query batch");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (cfg.batch_queries as f64 / best.max(1e-9), hits)
    };

    // Interleaving is unnecessary here (both engines run per repetition
    // anyway), but keep the order exact→ivf per rep for the same
    // noisy-neighbour fairness the other harnesses have.
    let (exact_qps, exact_hits) = time_batch(&mut client, 0);
    let (ivf_qps, ivf_hits) = time_batch(&mut client, cfg.nprobe);
    let recall_at_k = mean_recall(&exact_hits, &ivf_hits, cfg.k);

    // Single-query round trips for the latency percentiles (IVF path —
    // the one a deployment would serve point lookups from).
    let mut lat_ms: Vec<f64> = Vec::with_capacity(cfg.latency_queries);
    for i in 0..cfg.latency_queries {
        let q = &queries[(i % cfg.batch_queries) * dim..][..dim];
        let t0 = std::time::Instant::now();
        client
            .query(q, dim, cfg.k, cfg.nprobe)
            .expect("latency query");
        lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    lat_ms.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if lat_ms.is_empty() {
            return 0.0;
        }
        let idx = ((lat_ms.len() as f64 - 1.0) * p).round() as usize;
        lat_ms[idx]
    };
    let (p50_ms, p99_ms) = (pct(0.50), pct(0.99));

    client.shutdown().expect("bench shutdown");
    handle
        .join()
        .expect("server thread")
        .expect("server run result");

    ServeBenchReport {
        vertices: cfg.vertices,
        arcs,
        dim: cfg.dim,
        threads: cfg.threads,
        precision: cfg.precision,
        k: cfg.k,
        nlist,
        nprobe: cfg.nprobe,
        batch_queries: cfg.batch_queries,
        latency_queries: cfg.latency_queries,
        exact_qps,
        ivf_qps,
        p50_ms,
        p99_ms,
        recall_at_k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosh_core::serve::{search_batch, IvfIndex};

    fn tiny() -> ServeBenchConfig {
        ServeBenchConfig {
            vertices: 600,
            degree: 6,
            dim: 16,
            epochs: 6,
            batch_queries: 32,
            latency_queries: 8,
            repetitions: 1,
            ..Default::default()
        }
    }

    #[test]
    fn report_measures_and_serializes() {
        let r = run_serve_bench(&tiny());
        assert!(r.exact_qps > 0.0);
        assert!(r.ivf_qps > 0.0);
        assert!(r.p99_ms >= r.p50_ms);
        assert!((0.0..=1.0).contains(&r.recall_at_k));
        let json = r.to_json();
        for key in [
            "\"bench\": \"serve\"",
            "\"precision\": \"i8\"",
            "\"exact_qps\"",
            "\"ivf_qps\"",
            "\"p50_ms\"",
            "\"p99_ms\"",
            "\"recall_at_k\"",
            "\"speedup_vs_exact\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    /// The ISSUE satellite: IVF recall@10 ≥ 0.9 against exact search on
    /// a `gen::suite` graph embedding, probing a quarter of the lists.
    #[test]
    fn ivf_recall_at_10_clears_090_on_a_suite_graph_embedding() {
        let g = gosh_graph::gen::dataset("dblp-like")
            .expect("suite graph")
            .generate(11);
        let mut gcfg = GoshConfig::preset(Preset::Normal, false)
            .with_dim(16)
            .with_epochs(30)
            .with_threads(4)
            .with_backend(gosh_core::backend::BackendChoice::Cpu);
        gcfg.seed = 11;
        let device = gosh_gpu::Device::new(gosh_gpu::DeviceConfig::titan_x());
        let (m, _) = gosh_core::pipeline::embed(&g, &gcfg, &device);

        let dir = std::env::temp_dir().join("gosh-bench-serve");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-recall.embin", std::process::id()));
        write_store(&path, &m, Precision::F32).unwrap();
        let store = EmbeddingStore::open(&path).unwrap();

        let ivf = IvfIndex::build(&store, 4);
        let nprobe = (ivf.nlist() / 4).max(1);
        let queries = pick_queries(&store, 64);
        let exact = search_batch(&store, None, &queries, 10, 0, 4);
        let approx = search_batch(&store, Some(&ivf), &queries, 10, nprobe, 4);
        let recall = mean_recall(&exact, &approx, 10);
        assert!(
            recall >= 0.9,
            "IVF recall@10 = {recall:.3} with nprobe {nprobe}/{} lists",
            ivf.nlist()
        );
    }
}
