//! Distributed-training throughput harness (`gosh bench-distrib`).
//!
//! Measures the multi-node replica trainer (`gosh_core::distrib`) —
//! coarse levels replicated, fine levels sharded with periodic
//! delta exchange over a [`gosh_runtime::transport::Transport`] mesh —
//! on a frozen-seed synthetic community graph, and — for the trajectory
//! ratio — the same workload through the single-node path
//! (`embed_distributed` with one node, which is bit-identical to the
//! plain CPU pipeline), so every report carries its own
//! `speedup_vs_single` baseline, exactly like the trainer, large-path,
//! coarsening, and ingestion harnesses carry theirs. The exchange-stall
//! seconds and on-wire byte counts come from the run itself: the
//! interconnect copies are charged through the same cost model the
//! simulated PCIe link uses.
//!
//! Heads-up for readers of absolute numbers: the node "cluster" is
//! simulated as threads of one process, so on a machine with fewer
//! cores than nodes the distributed run time-slices and
//! `speedup_vs_single` can sit below 1. The gate does not require it to
//! clear 1 — it requires the committed ratio not to regress, the same
//! contract every other `speedup_vs_*` key has.
//!
//! ## `BENCH_distrib.json` schema
//!
//! One flat JSON object per run:
//!
//! ```json
//! {
//!   "bench": "distrib",
//!   "vertices": 12000, "arcs": 190000, "dim": 16, "threads": 1,
//!   "nodes": 2, "transport": "channel",
//!   "depth": 6, "replicated_levels": 4, "sharded_levels": 2,
//!   "exchanges": 12, "bytes_exchanged": 3145728,
//!   "exchange_stall_seconds": 0.004210,
//!   "updates": 7600000,
//!   "seconds": 1.84, "updates_per_sec": 4130434.0,
//!   "single_seconds": 1.62, "single_updates_per_sec": 4691358.0,
//!   "speedup_vs_single": 0.88
//! }
//! ```
//!
//! `seconds` is training wall-clock of the distributed run (best of N;
//! coarsening is excluded because both sides coarsen identically);
//! `updates` counts positive-sample updates across all nodes and
//! levels. The three `single_*`/ratio fields are omitted when the
//! baseline run is skipped.

use gosh_core::config::{GoshConfig, Preset};
use gosh_core::distrib::{embed_distributed, DistribConfig, DistribReport, TransportKind};
use gosh_graph::gen::{community_graph, CommunityConfig};

/// Workload shape for one distributed-training measurement.
#[derive(Clone, Copy, Debug)]
pub struct DistribBenchConfig {
    /// Vertices of the synthetic community graph.
    pub vertices: usize,
    /// Average degree of the community graph.
    pub degree: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Hogwild threads per node.
    pub threads: usize,
    /// Simulated nodes of the distributed run.
    pub nodes: usize,
    /// Wire the exchanges ride (in-process channels or TCP loopback).
    pub transport: TransportKind,
    /// Modeled interconnect bandwidth in Gbit/s.
    pub net_gbps: f64,
    /// Epochs between delta exchanges on sharded levels.
    pub exchange_every: u32,
    /// Levels below this vertex count are replicated, not sharded.
    pub shard_min: usize,
    /// Total epoch budget (distributed over levels by the schedule).
    pub epochs: u32,
    /// Seed for the generated graph and the training run.
    pub seed: u64,
    /// Also time the single-node path for the speedup ratio.
    pub baseline: bool,
    /// Timed repetitions per engine; the best run is reported.
    pub repetitions: u32,
}

impl Default for DistribBenchConfig {
    fn default() -> Self {
        // The regime the distributed path exists for: fine levels big
        // enough that sharding them is worth network traffic, a few
        // coarse levels cheap enough to replicate, at a size that still
        // finishes in CI seconds.
        Self {
            vertices: 12_000,
            degree: 8,
            dim: 16,
            threads: 1,
            nodes: 2,
            transport: TransportKind::Channel,
            net_gbps: 12.0,
            exchange_every: 4,
            shard_min: 1024,
            epochs: 40,
            seed: 0xD157,
            baseline: true,
            repetitions: 2,
        }
    }
}

/// What one distributed-training run measured.
#[derive(Clone, Debug)]
pub struct DistribBenchReport {
    /// Vertices of the generated graph.
    pub vertices: usize,
    /// Directed arcs of the generated graph.
    pub arcs: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Hogwild threads per node.
    pub threads: usize,
    /// Transport the exchanges rode.
    pub transport: TransportKind,
    /// The distributed run's own report (best-timed repetition).
    pub distrib: DistribReport,
    /// Training seconds of the single-node path (if measured).
    pub single_seconds: Option<f64>,
}

impl DistribBenchReport {
    /// Updates per second of the single-node path, if measured.
    pub fn single_updates_per_sec(&self) -> Option<f64> {
        self.single_seconds.map(|s| self.distrib.updates as f64 / s)
    }

    /// Speedup of the distributed run over the single-node path.
    pub fn speedup_vs_single(&self) -> Option<f64> {
        self.single_seconds
            .map(|s| s / self.distrib.training_seconds)
    }

    /// Serialize to the `BENCH_distrib.json` schema (see module docs).
    pub fn to_json(&self) -> String {
        let d = &self.distrib;
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"distrib\",\n");
        s.push_str(&format!("  \"vertices\": {},\n", self.vertices));
        s.push_str(&format!("  \"arcs\": {},\n", self.arcs));
        s.push_str(&format!("  \"dim\": {},\n", self.dim));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"nodes\": {},\n", d.nodes));
        s.push_str(&format!("  \"transport\": \"{}\",\n", self.transport));
        s.push_str(&format!("  \"depth\": {},\n", d.depth));
        s.push_str(&format!(
            "  \"replicated_levels\": {},\n",
            d.replicated_levels
        ));
        s.push_str(&format!("  \"sharded_levels\": {},\n", d.sharded_levels));
        s.push_str(&format!("  \"exchanges\": {},\n", d.exchanges));
        s.push_str(&format!("  \"bytes_exchanged\": {},\n", d.bytes_exchanged));
        s.push_str(&format!(
            "  \"exchange_stall_seconds\": {:.6},\n",
            d.exchange_stall_seconds
        ));
        s.push_str(&format!("  \"updates\": {},\n", d.updates));
        s.push_str(&format!("  \"seconds\": {:.6},\n", d.training_seconds));
        s.push_str(&format!(
            "  \"updates_per_sec\": {:.1}",
            d.updates_per_sec()
        ));
        if let (Some(bs), Some(bups), Some(x)) = (
            self.single_seconds,
            self.single_updates_per_sec(),
            self.speedup_vs_single(),
        ) {
            s.push_str(&format!(",\n  \"single_seconds\": {bs:.6},\n"));
            s.push_str(&format!("  \"single_updates_per_sec\": {bups:.1},\n"));
            s.push_str(&format!("  \"speedup_vs_single\": {x:.2}"));
        }
        s.push_str("\n}\n");
        s
    }
}

/// Run the distributed-training measurement described by `cfg`.
pub fn run_distrib_bench(cfg: &DistribBenchConfig) -> DistribBenchReport {
    assert!(cfg.nodes >= 1, "bench-distrib needs at least one node");
    assert!(cfg.threads >= 1, "bench-distrib needs at least one thread");
    let g = community_graph(&CommunityConfig::new(cfg.vertices, cfg.degree), cfg.seed);

    let mut gcfg = GoshConfig::preset(Preset::Normal, false)
        .with_dim(cfg.dim)
        .with_epochs(cfg.epochs)
        .with_threads(cfg.threads);
    gcfg.seed = cfg.seed;
    let dcfg = DistribConfig {
        nodes: cfg.nodes,
        transport: cfg.transport,
        net_gbps: cfg.net_gbps,
        exchange_every: cfg.exchange_every,
        shard_min: cfg.shard_min,
    };
    let single = DistribConfig { nodes: 1, ..dcfg };

    // Interleaved best-of-N timing, as in the other harnesses: the two
    // engines alternate within every repetition so frequency scaling and
    // noisy-neighbour epochs hit both samples alike.
    let reps = cfg.repetitions.max(1);
    let mut best: Option<DistribReport> = None;
    let mut single_best = f64::INFINITY;
    for _ in 0..reps {
        let (m, report) = embed_distributed(&g, &gcfg, &dcfg).expect("distributed bench run");
        assert!(
            m.as_slice().iter().all(|x| x.is_finite()),
            "distributed run produced a non-finite embedding"
        );
        if best
            .as_ref()
            .is_none_or(|b| report.training_seconds < b.training_seconds)
        {
            best = Some(report);
        }
        if cfg.baseline {
            let (_, sr) = embed_distributed(&g, &gcfg, &single).expect("single-node baseline run");
            single_best = single_best.min(sr.training_seconds.max(1e-9));
        }
    }

    DistribBenchReport {
        vertices: g.num_vertices(),
        arcs: g.num_edges(),
        dim: cfg.dim,
        threads: cfg.threads,
        transport: cfg.transport,
        distrib: best.expect("at least one repetition ran"),
        single_seconds: cfg.baseline.then_some(single_best),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DistribBenchConfig {
        DistribBenchConfig {
            vertices: 600,
            degree: 6,
            dim: 8,
            epochs: 8,
            shard_min: 64,
            exchange_every: 2,
            repetitions: 1,
            ..Default::default()
        }
    }

    #[test]
    fn report_measures_and_serializes() {
        let r = run_distrib_bench(&tiny());
        assert_eq!(r.distrib.nodes, 2);
        assert!(r.distrib.training_seconds > 0.0);
        assert!(r.distrib.sharded_levels > 0, "workload never sharded");
        assert!(r.distrib.bytes_exchanged > 0);
        assert!(r.single_seconds.is_some());
        let json = r.to_json();
        for key in [
            "\"bench\": \"distrib\"",
            "\"nodes\": 2",
            "\"transport\": \"channel\"",
            "\"exchange_stall_seconds\"",
            "\"updates_per_sec\"",
            "\"speedup_vs_single\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    /// The ISSUE acceptance criterion: a two-node run over real loopback
    /// sockets must land within 0.02 AUCROC of the single-node run on a
    /// default `gen::suite` graph. The runs use different per-node RNG
    /// streams, so this is a statistical bound, not a bitwise one.
    #[test]
    fn two_node_loopback_auc_matches_single_node() {
        use crate::{auc_percent, split};
        let g = gosh_graph::gen::dataset("dblp-like")
            .expect("suite graph")
            .generate(7);
        let s = split(&g);
        let mut gcfg = GoshConfig::preset(Preset::Normal, false)
            .with_dim(16)
            .with_epochs(40)
            .with_threads(2);
        gcfg.seed = 7;
        let two = DistribConfig {
            nodes: 2,
            transport: TransportKind::Tcp,
            exchange_every: 4,
            shard_min: 1024,
            ..Default::default()
        };
        let (m1, _) = embed_distributed(&s.train, &gcfg, &DistribConfig::default()).unwrap();
        let (m2, r2) = embed_distributed(&s.train, &gcfg, &two).unwrap();
        assert!(r2.sharded_levels > 0, "two-node run never sharded");
        assert!(r2.bytes_exchanged > 0);
        let a1 = auc_percent(&m1, &s);
        let a2 = auc_percent(&m2, &s);
        assert!(
            (a1 - a2).abs() <= 2.0,
            "single-node AUC {a1:.2}% vs two-node AUC {a2:.2}%"
        );
    }

    #[test]
    fn baseline_can_be_skipped() {
        let r = run_distrib_bench(&DistribBenchConfig {
            baseline: false,
            ..tiny()
        });
        assert!(r.single_seconds.is_none());
        assert!(!r.to_json().contains("speedup_vs_single"));
    }
}
