//! Figure 3 — large-graph embedding vs the sample batch size B.
//!
//! Runs `LargeGraphGPU` (Algorithm 5) on a hyperlink-like graph with a
//! deliberately small simulated device, sweeping B. Two series come out,
//! matching the figure's two panels: execution time (top) and AUCROC
//! (bottom). Larger B ⇒ fewer rotations ⇒ less data movement ⇒ faster,
//! but more consecutive isolated updates within a part pair ⇒ lower
//! quality.
//!
//! The graph is generated at a reduced scale (2^16 vertices at
//! hyperlink2012's density) so that even the largest B still performs
//! ≥ 2 rotations — otherwise the rotation count floors at 1 and large-B
//! runs would silently train more than their epoch budget, inverting the
//! quality trend the figure demonstrates.

use gosh_bench::{auc_percent, fmt_s, header, scaled_epochs, split, tau, DIM};
use gosh_core::large::train_large;
use gosh_core::model::Embedding;
use gosh_core::{PartitionedOpts, TrainParams};
use gosh_gpu::{Device, DeviceConfig};
use gosh_graph::gen::{community_graph, CommunityConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(16);
    let density = 16; // hyperlink2012's rounded density
    let g = community_graph(&CommunityConfig::new(1usize << scale, density), 0x3_1);
    let s = split(&g);
    // Device sized to ~1/6 of the matrix: partitioning is forced.
    let matrix_bytes = s.train.num_vertices() * DIM * 4;
    let device_mem = (matrix_bytes / 6).max(1 << 20);
    let epochs = scaled_epochs(1000);

    println!(
        "# Figure 3: batch size sweep on hyperlink-like@{scale} (|V|={}, |E|={}, device = {:.1} MB, epochs = {})",
        s.train.num_vertices(),
        s.train.num_undirected_edges(),
        device_mem as f64 / (1 << 20) as f64,
        epochs
    );
    header(&["B", "time_s", "aucroc_%", "rotations", "K", "loads"]);

    for b in [1usize, 2, 3, 4, 5, 6, 8, 10] {
        let device = Device::new(DeviceConfig::tiny(device_mem));
        let mut m = Embedding::random(s.train.num_vertices(), DIM, 0x905E);
        let report = train_large(
            &device,
            &s.train,
            &mut m,
            &TrainParams::adjacency(DIM, 3, 0.035, epochs)
                .with_threads(tau())
                .with_seed(0x905E),
            &PartitionedOpts {
                batch_b: b,
                ..Default::default()
            },
        )
        .expect("large-graph training failed");
        println!(
            "{}\t{}\t{:.2}\t{}\t{}\t{}",
            b,
            fmt_s(report.seconds),
            auc_percent(&m, &s),
            report.rotations,
            report.num_parts,
            report.loads
        );
    }
}
