//! `bench_check <baseline_dir> <current_dir> [--tolerance F]` — the CI
//! perf-regression gate.
//!
//! Compares every committed `BENCH_*.json` trajectory baseline in
//! `<baseline_dir>` against the same-named freshly emitted report in
//! `<current_dir>` and exits nonzero when any `speedup_vs_*` ratio falls
//! more than the tolerance (default 15%) below its baseline, or when a
//! report/key the baseline promises is missing. See `gosh_bench::check`
//! for the comparison rules.

use std::path::Path;
use std::process::ExitCode;

use gosh_bench::check::{compare_dirs, DEFAULT_TOLERANCE};

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_check: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut positional = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance expects a value")?;
                tolerance = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad tolerance `{v}`"))?;
                if !(0.0..1.0).contains(&tolerance) {
                    return Err(format!("tolerance {tolerance} must be in [0, 1)"));
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_check <baseline_dir> <current_dir> [--tolerance F]\n\
                     Fails when any speedup_vs_* in a current BENCH_*.json report\n\
                     drops more than F (default {DEFAULT_TOLERANCE}) below the committed baseline."
                );
                return Ok(());
            }
            other => positional.push(other.to_string()),
        }
    }
    let [baseline_dir, current_dir] = positional.as_slice() else {
        return Err("usage: bench_check <baseline_dir> <current_dir> [--tolerance F]".into());
    };

    let (checked, regressions) =
        compare_dirs(Path::new(baseline_dir), Path::new(current_dir), tolerance)?;
    if regressions.is_empty() {
        println!(
            "bench_check: OK — {checked} speedup ratio(s) within {:.0}% of baseline",
            tolerance * 100.0
        );
        Ok(())
    } else {
        for r in &regressions {
            eprintln!("REGRESSION {r}");
        }
        Err(format!(
            "{} of {checked} speedup ratio(s) regressed beyond the {:.0}% tolerance",
            regressions.len(),
            tolerance * 100.0
        ))
    }
}
