//! Table 6 — link prediction on the medium-scale graphs.
//!
//! Every tool runs on every dataset: VERSE (CPU), MILE, GraphVite
//! fast/slow (device), and the four GOSH configurations of Table 3.
//! Columns mirror the paper: time, speedup over VERSE, AUCROC. Device
//! tools additionally report modeled device seconds (the cost-model
//! clock; see DESIGN.md).

use gosh_bench::{
    datasets_from_args, fmt_s, header, run_gosh, run_graphvite, run_mile, run_verse, split, ToolRow,
};
use gosh_core::config::Preset;

/// Default epoch scale for the quality table.
const SCALE: f64 = 0.3;

fn print_row(graph: &str, r: &ToolRow, verse_wall: f64) {
    let speedup = if r.tool == "Verse" {
        "1.00x".to_string()
    } else {
        format!("{:.2}x", verse_wall / r.wall_seconds)
    };
    let modeled = r.modeled_seconds.map(fmt_s).unwrap_or("-".into());
    println!(
        "{graph}\t{}\t{}\t{speedup}\t{modeled}\t{:.2}",
        r.tool,
        fmt_s(r.wall_seconds),
        r.aucroc
    );
}

fn main() {
    let datasets = datasets_from_args(&[
        "dblp-like",
        "amazon-like",
        "youtube-like",
        "pokec-like",
        "lj-like",
    ]);

    println!("# Table 6: link prediction on medium-scale graphs");
    println!("# Table 3 configurations: fast(p=0.1,lr=0.050,e=600) normal(0.3,0.035,1000) slow(0.5,0.025,1400), epochs scaled by GOSH_EPOCH_SCALE");
    header(&[
        "graph",
        "algorithm",
        "time_s",
        "speedup",
        "modeled_dev_s",
        "aucroc_%",
    ]);

    for d in datasets {
        let g = d.generate(42);
        let s = split(&g);

        let verse = run_verse(&s, 1000, SCALE);
        print_row(d.name, &verse, verse.wall_seconds);

        let mile = run_mile(&s, SCALE);
        print_row(d.name, &mile, verse.wall_seconds);

        for fast in [true, false] {
            match run_graphvite(&s, fast, None, SCALE) {
                Some(r) => print_row(d.name, &r, verse.wall_seconds),
                None => println!("{}\tGraphvite\tOOM\t-\t-\t-", d.name),
            }
        }

        for preset in [
            Preset::Fast,
            Preset::Normal,
            Preset::Slow,
            Preset::NoCoarsening,
        ] {
            let (r, _) = run_gosh(&s, preset, false, None, SCALE);
            print_row(d.name, &r, verse.wall_seconds);
        }
    }
}
