//! Table 2 — dataset properties.
//!
//! Prints |V|, |E| and density for every synthetic stand-in next to the
//! paper's original numbers. Pass dataset names to restrict the set; pass
//! `--medium` to skip the large suite (which takes a minute to generate).

use gosh_bench::header;
use gosh_graph::gen::{sampled_clustering, LARGE_SUITE, MEDIUM_SUITE};
use gosh_graph::stats::GraphStats;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let medium_only = args.iter().any(|a| a == "--medium");
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    println!("# Table 2: normal and large graphs used in the experiments");
    println!("# (synthetic stand-ins; paper columns shown for reference)");
    header(&[
        "graph",
        "mimics",
        "|V|",
        "|E|",
        "density",
        "clustering",
        "max_deg",
        "paper_|V|",
        "paper_|E|",
        "paper_density",
    ]);

    let suites: Vec<_> = if medium_only {
        MEDIUM_SUITE.iter().collect()
    } else {
        MEDIUM_SUITE.iter().chain(LARGE_SUITE.iter()).collect()
    };
    for d in suites {
        if !filter.is_empty() && !filter.iter().any(|f| *f == d.name) {
            continue;
        }
        let g = d.generate(42);
        let s = GraphStats::compute(&g);
        let clustering = sampled_clustering(&g, 4000, 7);
        println!(
            "{}\t{}\t{}\t{}\t{:.2}\t{:.3}\t{}\t{}\t{}\t{:.2}",
            d.name,
            d.mimics,
            s.num_vertices,
            s.num_edges,
            s.density,
            clustering,
            s.max_degree,
            d.paper_vertices,
            d.paper_edges,
            d.paper_edges as f64 / d.paper_vertices as f64,
        );
    }
}
