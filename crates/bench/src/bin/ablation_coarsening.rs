//! Ablation — the two coarsening design choices of §3.2.
//!
//! The paper motivates (a) the density rule that keeps two hubs out of
//! the same cluster and (b) the hubs-first processing order, reporting
//! that both are needed for efficiency *and* effectiveness. This bench
//! turns each off and measures: shrink behaviour (levels, coarsest size,
//! largest-cluster share) and downstream link-prediction AUCROC with the
//! same training budget.

use gosh_bench::{auc_percent, datasets_from_args, header, scaled_epochs_with, split, DIM};
use gosh_coarsen::build::build_coarse_sequential;
use gosh_coarsen::sequential::{map_sequential_with, CollapseOptions};
use gosh_core::config::{GoshConfig, Preset};
use gosh_core::expand::expand_embedding;
use gosh_core::model::Embedding;
use gosh_core::schedule::epoch_distribution;
use gosh_core::train_gpu::train_level_on_device;
use gosh_core::{KernelVariant, TrainParams};
use gosh_gpu::{Device, DeviceConfig};
use gosh_graph::csr::Csr;

/// Coarsen to below 100 vertices with explicit options; returns
/// (graphs, mappings, largest-cluster share seen).
fn coarsen(g0: Csr, opts: &CollapseOptions) -> (Vec<Csr>, Vec<gosh_coarsen::Mapping>, f64) {
    let mut graphs = vec![g0];
    let mut maps = Vec::new();
    let mut worst_share = 0.0f64;
    while graphs.last().unwrap().num_vertices() > 100 && graphs.len() < 32 {
        let g = graphs.last().unwrap();
        let m = map_sequential_with(g, opts);
        let (offsets, _) = m.members();
        let biggest = (0..m.num_clusters())
            .map(|c| offsets[c + 1] - offsets[c])
            .max()
            .unwrap_or(0);
        worst_share = worst_share.max(biggest as f64 / g.num_vertices() as f64);
        if m.num_clusters() as f64 > 0.995 * g.num_vertices() as f64 {
            break;
        }
        let coarse = build_coarse_sequential(g, &m);
        maps.push(m);
        graphs.push(coarse);
    }
    (graphs, maps, worst_share)
}

fn main() {
    let datasets = datasets_from_args(&["youtube-like"]);
    let epochs = scaled_epochs_with(1000, 0.3);

    println!("# Ablation: coarsening design choices (density rule, hub order); epochs = {epochs}");
    header(&[
        "graph",
        "variant",
        "D",
        "|V_D-1|",
        "max_cluster_share",
        "aucroc_%",
    ]);

    for d in datasets {
        let g = d.generate(42);
        let s = split(&g);
        let variants = [
            (
                "full",
                CollapseOptions {
                    density_rule: true,
                    hub_order: true,
                },
            ),
            (
                "no-density-rule",
                CollapseOptions {
                    density_rule: false,
                    hub_order: true,
                },
            ),
            (
                "no-hub-order",
                CollapseOptions {
                    density_rule: true,
                    hub_order: false,
                },
            ),
            (
                "neither",
                CollapseOptions {
                    density_rule: false,
                    hub_order: false,
                },
            ),
        ];
        for (name, opts) in variants {
            let (graphs, maps, share) = coarsen(s.train.clone(), &opts);
            let depth = graphs.len();
            // Train through the hierarchy with the normal schedule.
            let device = Device::new(DeviceConfig::titan_x());
            let cfg = GoshConfig::preset(Preset::Normal, false).with_dim(DIM);
            let dist = epoch_distribution(epochs, cfg.smoothing.unwrap(), depth);
            let mut matrix = Embedding::random(graphs[depth - 1].num_vertices(), DIM, 7);
            for i in (0..depth).rev() {
                train_level_on_device(
                    &device,
                    &graphs[i],
                    &mut matrix,
                    &TrainParams::adjacency(DIM, 3, cfg.lr, dist[i]),
                    KernelVariant::Auto,
                )
                .expect("training failed");
                if i > 0 {
                    matrix = expand_embedding(&matrix, &maps[i - 1]);
                }
            }
            println!(
                "{}\t{name}\t{}\t{}\t{:.3}\t{:.2}",
                d.name,
                depth,
                graphs[depth - 1].num_vertices(),
                share,
                auc_percent(&matrix, &s)
            );
        }
    }
}
