//! Ablation — the smoothing ratio `p` (§3).
//!
//! `p` splits the epoch budget between a uniform share and a geometric
//! share that favours coarse levels. The paper exposes it as *the* user
//! knob trading speed for accuracy (Table 3's presets differ mainly in
//! `p`). This sweep shows the trade-off directly: small `p` concentrates
//! work on cheap coarse graphs (fast), large `p` spreads epochs toward
//! the expensive fine levels (slower, typically a little more accurate).

use gosh_bench::{
    auc_percent, datasets_from_args, fmt_s, header, scaled_epochs_with, split, tau, DIM,
};
use gosh_core::config::{GoshConfig, Preset};
use gosh_core::pipeline::embed;
use gosh_gpu::{Device, DeviceConfig};

fn main() {
    let datasets = datasets_from_args(&["youtube-like"]);
    let epochs = scaled_epochs_with(1000, 0.3);

    println!("# Ablation: smoothing ratio p sweep (lr = 0.035, epochs = {epochs})");
    header(&["graph", "p", "time_s", "train_s_level0", "aucroc_%"]);

    for d in datasets {
        let g = d.generate(42);
        let s = split(&g);
        for p in [0.0, 0.1, 0.3, 0.5, 0.7, 1.0] {
            let device = Device::new(DeviceConfig::titan_x());
            let mut cfg = GoshConfig::preset(Preset::Normal, false)
                .with_dim(DIM)
                .with_epochs(epochs)
                .with_threads(tau());
            cfg.smoothing = Some(p);
            let (m, report) = embed(&s.train, &cfg, &device);
            let level0 = report.levels.last().map(|l| l.seconds).unwrap_or(0.0);
            println!(
                "{}\t{p}\t{}\t{}\t{:.2}",
                d.name,
                fmt_s(report.total_seconds),
                fmt_s(level0),
                auc_percent(&m, &s)
            );
        }
    }
}
