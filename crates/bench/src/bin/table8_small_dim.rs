//! Table 8 — the small-dimension kernel (§3.1.1), SM on/off, d ∈ {8,16,32}.
//!
//! Reports *modeled device seconds* from the cost model: the packed
//! kernel's benefit is an architectural effect (lane utilization and
//! overlapped access latency inside a warp), which the host simulation's
//! wall-clock cannot express — the simulator does the same host FLOPs
//! either way. Wall seconds are printed alongside for transparency.

use std::time::Instant;

use gosh_bench::{datasets_from_args, fmt_s, header, scaled_epochs, split};
use gosh_core::model::Embedding;
use gosh_core::train_gpu::train_level_on_device;
use gosh_core::{KernelVariant, TrainParams};
use gosh_gpu::{CostModel, Device, DeviceConfig};

fn main() {
    let datasets = datasets_from_args(&["orkut-like", "livejournal-like"]);
    let epochs = scaled_epochs(100);

    println!("# Table 8: small-dimension kernel on/off (epochs = {epochs})");
    header(&["graph", "SM", "d", "modeled_dev_s", "wall_s"]);

    for d in datasets {
        let g = d.generate(42);
        let s = split(&g);
        for sm in [false, true] {
            for dim in [8usize, 16, 32] {
                let device = Device::new(DeviceConfig::titan_x());
                let mut m = Embedding::random(s.train.num_vertices(), dim, 1);
                let variant = if sm {
                    KernelVariant::Auto
                } else {
                    KernelVariant::Optimized
                };
                let t0 = Instant::now();
                train_level_on_device(
                    &device,
                    &s.train,
                    &mut m,
                    &TrainParams::adjacency(dim, 3, 0.035, epochs),
                    variant,
                )
                .expect("training failed");
                let wall = t0.elapsed().as_secs_f64();
                let modeled = CostModel::new(*device.config()).kernel_seconds(&device.snapshot());
                println!(
                    "{}\t{}\t{}\t{}\t{}",
                    d.name,
                    if sm { "Yes" } else { "No" },
                    dim,
                    fmt_s(modeled),
                    fmt_s(wall)
                );
            }
        }
    }
}
