//! Figure 4 — the speedup breakdown over intermediate GOSH versions.
//!
//! Five variants per graph, as in §4.8:
//!
//! 1. `CPU-16t`     — the multi-threaded Hogwild CPU trainer (wall-clock).
//! 2. `NaiveGPU`    — no coarsening, naive kernel (modeled device time).
//! 3. `OptGPU`      — no coarsening, §3.1-optimized kernel (modeled).
//! 4. `SeqCoarse`   — full GOSH with sequential coarsening: modeled
//!    kernel time + measured coarsening time.
//! 5. `ParCoarse`   — full GOSH with parallel coarsening (the final tool).
//!
//! Speedups are relative to `CPU-16t`. GPU variants are priced by the
//! cost model; the CPU anchor is wall-clock, so the absolute CPU↔GPU
//! ratio depends on the model's calibration — the ordering and relative
//! gaps between GPU variants are the reproduced shape (see DESIGN.md).

use std::time::Instant;

use gosh_bench::{datasets_from_args, header, scaled_epochs, split, tau, DIM};
use gosh_core::config::{GoshConfig, Preset};
use gosh_core::model::Embedding;
use gosh_core::pipeline::embed;
use gosh_core::train_cpu::train_cpu;
use gosh_core::train_gpu::train_level_on_device;
use gosh_core::{KernelVariant, TrainParams};
use gosh_gpu::{CostModel, Device, DeviceConfig};

fn main() {
    // Mirror the paper's mix (four medium + two large): parallel
    // coarsening only pays off once the graph is big enough that level-0
    // mapping dominates thread startup, exactly as §4.8 discusses.
    let datasets = datasets_from_args(&[
        "youtube-like",
        "pokec-like",
        "lj-like",
        "hyperlink-like",
        "friendster-like",
    ]);
    let epochs = scaled_epochs(1000);

    println!(
        "# Figure 4: speedups of intermediate Gosh versions over the 16-thread CPU implementation"
    );
    println!(
        "# epochs = {epochs}; GPU variants priced by the cost model (see header of the binary)"
    );
    header(&["graph", "variant", "time_s", "speedup_vs_cpu"]);

    for d in datasets {
        let g = d.generate(42);
        let s = split(&g);
        let n = s.train.num_vertices();

        // 1. CPU 16-thread Hogwild (wall).
        let t0 = Instant::now();
        let mut m = Embedding::random(n, DIM, 1);
        train_cpu(
            &s.train,
            &mut m,
            &TrainParams::adjacency(DIM, 3, 0.035, epochs)
                .with_threads(tau())
                .with_seed(1),
        );
        let cpu_s = t0.elapsed().as_secs_f64();
        println!("{}\tCPU-16t\t{:.2}\t1.00x", d.name, cpu_s);

        // 2 & 3. GPU without coarsening, naive vs optimized (modeled).
        for (name, variant) in [
            ("NaiveGPU", KernelVariant::Naive),
            ("OptGPU", KernelVariant::Optimized),
        ] {
            let device = Device::new(DeviceConfig::titan_x());
            let mut m = Embedding::random(n, DIM, 1);
            train_level_on_device(
                &device,
                &s.train,
                &mut m,
                &TrainParams::adjacency(DIM, 3, 0.035, epochs),
                variant,
            )
            .expect("training failed");
            let modeled = CostModel::new(*device.config()).kernel_seconds(&device.snapshot());
            println!(
                "{}\t{name}\t{:.2}\t{:.2}x",
                d.name,
                modeled,
                cpu_s / modeled
            );
        }

        // 4 & 5. Full GOSH, sequential vs parallel coarsening.
        for (name, threads) in [("SeqCoarse", 1usize), ("ParCoarse", tau())] {
            let device = Device::new(DeviceConfig::titan_x());
            let cfg = GoshConfig::preset(Preset::Normal, false)
                .with_dim(DIM)
                .with_epochs(epochs)
                .with_threads(threads);
            let (_, report) = embed(&s.train, &cfg, &device);
            let modeled = CostModel::new(*device.config()).kernel_seconds(&report.device_cost);
            let total = modeled + report.coarsening_seconds;
            println!("{}\t{name}\t{:.2}\t{:.2}x", d.name, total, cpu_s / total);
        }
    }
}
