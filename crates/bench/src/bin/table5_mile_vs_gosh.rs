//! Table 5 — MILE vs GOSH coarsening, level by level, on com-orkut.
//!
//! MILE has no stopping criterion, so both coarseners run the same number
//! of levels; the columns are per-level time and |V_i|, plus totals.

use gosh_bench::{datasets_from_args, fmt_s, header};
use gosh_coarsen::hierarchy::{coarsen_hierarchy, CoarsenConfig};
use gosh_coarsen::mile::mile_coarsen;

fn main() {
    let datasets = datasets_from_args(&["orkut-like"]);
    let levels = 8usize;
    let tau = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8)
        .min(16);

    for d in datasets {
        let g = d.generate(42);
        println!(
            "# Table 5: Mile vs Gosh coarsening on {} (|V|={})",
            d.name,
            g.num_vertices()
        );
        println!("# Gosh uses parallel coarsening with tau = {tau} threads");
        header(&["i", "mile_time_s", "mile_|Vi|", "gosh_time_s", "gosh_|Vi|"]);

        let mile = mile_coarsen(g.clone(), levels);
        let cfg = CoarsenConfig {
            threshold: 1,
            threads: tau,
            max_levels: levels + 1,
            ..Default::default()
        };
        let gosh = coarsen_hierarchy(g, &cfg);

        println!(
            "0\t-\t{}\t-\t{}",
            mile.levels[0].num_vertices(),
            gosh.graphs[0].num_vertices()
        );
        for i in 1..=levels {
            let (mt, mv) = mile
                .stats
                .get(i - 1)
                .map(|s| (fmt_s(s.seconds), s.vertices.to_string()))
                .unwrap_or(("-".into(), "-".into()));
            let (gt, gv) = gosh
                .stats
                .get(i - 1)
                .map(|s| (fmt_s(s.seconds), s.vertices.to_string()))
                .unwrap_or(("-".into(), "-".into()));
            println!("{i}\t{mt}\t{mv}\t{gt}\t{gv}");
        }
        let mile_total: f64 = mile.stats.iter().map(|s| s.seconds).sum();
        println!(
            "total\t{}\t-\t{}\t-",
            fmt_s(mile_total),
            fmt_s(gosh.total_seconds())
        );
        println!(
            "# coarsening speedup (Gosh over Mile): {:.1}x",
            mile_total / gosh.total_seconds().max(1e-9)
        );
    }
}
