//! Table 4 — sequential vs parallel coarsening on the large graphs.
//!
//! For each large dataset: total coarsening time with τ = 1 and τ = all
//! cores, the speedup, the number of levels D, and |V_{D-1}| — the same
//! columns as the paper's Table 4.

use std::time::Instant;

use gosh_bench::{datasets_from_args, fmt_s, header};
use gosh_coarsen::hierarchy::{coarsen_hierarchy, CoarsenConfig};

fn main() {
    let datasets = datasets_from_args(&[
        "hyperlink-like",
        "sinaweibo-like",
        "twitter-like",
        "friendster-like",
    ]);
    let tau = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);

    println!("# Table 4: sequential vs parallel coarsening (threshold = 100)");
    header(&["graph", "tau", "time_s", "speedup", "D", "|V_D-1|"]);

    for d in datasets {
        let g = d.generate(42);
        let t0 = Instant::now();
        let seq = coarsen_hierarchy(g.clone(), &CoarsenConfig::with_threads(1));
        let t_seq = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let par = coarsen_hierarchy(g, &CoarsenConfig::with_threads(tau));
        let t_par = t1.elapsed().as_secs_f64();

        println!(
            "{}\t1\t{}\t-\t{}\t{}",
            d.name,
            fmt_s(t_seq),
            seq.depth(),
            seq.coarsest().num_vertices()
        );
        println!(
            "{}\t{}\t{}\t{:.2}x\t{}\t{}",
            d.name,
            tau,
            fmt_s(t_par),
            t_seq / t_par,
            par.depth(),
            par.coarsest().num_vertices()
        );
    }
}
