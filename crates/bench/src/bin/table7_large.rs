//! Table 7 — link prediction on the large graphs.
//!
//! The simulated device is sized so that the fine levels do *not* fit:
//! GOSH goes through the Algorithm 5 partitioned path. GraphVite is
//! attempted and reported as OOM (it has no partitioned fallback — the
//! paper reports the same), MILE is skipped (the paper reports timeout /
//! memory failure on every large graph), and VERSE runs only where the
//! paper's did (soc-sinaweibo's stand-in).

use gosh_bench::{
    datasets_from_args, fmt_s, header, run_gosh, run_graphvite, run_verse, split, DIM,
};
use gosh_core::config::Preset;

/// Default epoch scale. The paper's large-graph budgets (100/200/300
/// epochs) are already small; scaling them down further floors the
/// rotation counts of the partitioned levels and washes out the
/// fast/normal/slow distinction, so Table 7 runs them in full.
const SCALE: f64 = 1.0;

fn main() {
    let datasets = datasets_from_args(&["hyperlink-like", "sinaweibo-like"]);

    println!("# Table 7: link prediction on large graphs (large-graph epoch budgets: 100/200/300, scaled)");
    header(&[
        "graph",
        "algorithm",
        "time_s",
        "speedup",
        "aucroc_%",
        "note",
    ]);

    for d in datasets {
        let g = d.generate(42);
        let s = split(&g);
        // Device ~1/5 of the full matrix: the fine levels must partition.
        let device_mem = (s.train.num_vertices() * DIM * 4 / 5).max(1 << 20);

        // VERSE succeeded only on soc-sinaweibo in the paper.
        let verse_wall = if d.mimics == "soc-sinaweibo" {
            let r = run_verse(&s, 1000, SCALE);
            println!(
                "{}\tVerse\t{}\t1.00x\t{:.2}\t",
                d.name,
                fmt_s(r.wall_seconds),
                r.aucroc
            );
            Some(r.wall_seconds)
        } else {
            println!("{}\tVerse\tTimeout\t-\t-\t(paper: >12h)", d.name);
            None
        };

        println!(
            "{}\tMile\tskipped\t-\t-\t(paper: OOM / >12h on all large graphs)",
            d.name
        );
        match run_graphvite(&s, true, Some(device_mem), SCALE) {
            Some(r) => println!(
                "{}\tGraphvite\t{}\t-\t{:.2}\tunexpectedly fit",
                d.name,
                fmt_s(r.wall_seconds),
                r.aucroc
            ),
            None => println!(
                "{}\tGraphvite\tOOM\t-\t-\t(matrix exceeds device memory)",
                d.name
            ),
        }

        for preset in [Preset::Fast, Preset::Normal, Preset::Slow] {
            let (r, report) = run_gosh(&s, preset, true, Some(device_mem), SCALE);
            let speedup = verse_wall
                .map(|v| format!("{:.2}x", v / r.wall_seconds))
                .unwrap_or("-".into());
            let large_levels = report.levels.iter().filter(|l| l.used_large_path).count();
            println!(
                "{}\t{}\t{}\t{speedup}\t{:.2}\t{} levels partitioned",
                d.name,
                r.tool,
                fmt_s(r.wall_seconds),
                r.aucroc,
                large_levels
            );
        }
    }
}
